//! Integration test for Proposition 2 and the §4 stratified/inflationary
//! divergence: the paper's six-rule program, evaluated by the real engines,
//! against independent BFS baselines.

use inflog::core::graphs::DiGraph;
use inflog::eval::{inflationary, stratified_eval, CompiledProgram};
use inflog::reductions::distance::{distance_query_baseline, stratified_reading_baseline};
use inflog::reductions::programs::distance_program;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Extracts the S3 carrier relation as vertex-id quadruples.
fn carrier_quadruples(
    g: &DiGraph,
    result: &inflog::eval::Interp,
    cp: &CompiledProgram,
) -> BTreeSet<(u32, u32, u32, u32)> {
    let db = g.to_database("E");
    let s3 = cp.idb_id("S3").expect("S3 carrier");
    let vertex_id = |c: inflog::core::Const| -> u32 {
        db.universe()
            .name(c)
            .and_then(|n| n.strip_prefix('v'))
            .and_then(|n| n.parse().ok())
            .expect("vertex names are v<i>")
    };
    result
        .get(s3)
        .iter()
        .map(|t| {
            (
                vertex_id(t[0]),
                vertex_id(t[1]),
                vertex_id(t[2]),
                vertex_id(t[3]),
            )
        })
        .collect()
}

fn check_graph(g: &DiGraph) {
    let db = g.to_database("E");
    let program = distance_program();
    let cp = CompiledProgram::compile(&program, &db).unwrap();

    // Inflationary semantics computes the distance query (Proposition 2).
    let (inf, _) = inflationary(&program, &db).unwrap();
    assert_eq!(
        carrier_quadruples(g, &inf, &cp),
        distance_query_baseline(g),
        "inflationary semantics must compute the distance query on {g}"
    );

    // Stratified semantics computes TC(x,y) ∧ ¬TC(x*,y*) instead.
    let (strat, _) = stratified_eval(&program, &db).unwrap();
    assert_eq!(
        carrier_quadruples(g, &strat, &cp),
        stratified_reading_baseline(g),
        "stratified semantics must compute TC ∧ ¬TC on {g}"
    );
}

#[test]
fn proposition2_on_paths() {
    for n in 1..=6 {
        check_graph(&DiGraph::path(n));
    }
}

#[test]
fn proposition2_on_cycles() {
    for n in 1..=6 {
        check_graph(&DiGraph::cycle(n));
    }
}

#[test]
fn proposition2_on_structured_graphs() {
    check_graph(&DiGraph::binary_tree(7));
    check_graph(&DiGraph::star(5));
    check_graph(&DiGraph::grid(2, 3));
    check_graph(&DiGraph::disjoint_cycles(2, 3));
    check_graph(&DiGraph::complete(4));
}

#[test]
fn proposition2_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..8 {
        check_graph(&DiGraph::random_gnp(7, 0.25, &mut rng));
    }
    for _ in 0..4 {
        check_graph(&DiGraph::random_dag(8, 0.3, &mut rng));
    }
}

#[test]
fn semantics_genuinely_diverge() {
    // On L_3 the two semantics produce different carriers — the paper's
    // observation that inflationary ≠ stratified on this very program.
    let g = DiGraph::path(3);
    let db = g.to_database("E");
    let program = distance_program();
    let cp = CompiledProgram::compile(&program, &db).unwrap();
    let (inf, _) = inflationary(&program, &db).unwrap();
    let (strat, _) = stratified_eval(&program, &db).unwrap();
    let qi = carrier_quadruples(&g, &inf, &cp);
    let qs = carrier_quadruples(&g, &strat, &cp);
    assert_ne!(qi, qs);
    // The witness quadruple from the paper's reasoning: (0,1,0,2) has
    // dist 1 ≤ dist 2 (in the distance query) but TC(0,2) holds (so the
    // stratified carrier excludes it).
    assert!(qi.contains(&(0, 1, 0, 2)));
    assert!(!qs.contains(&(0, 1, 0, 2)));
    // Both carriers agree on TC ∧ ¬TC quadruples (stratified ⊆ distance).
    assert!(qs.is_subset(&qi));
}

#[test]
fn distance_program_strata_and_rounds() {
    // The program is stratified (2 strata) yet not positive; inflationary
    // iteration takes about diameter-many rounds.
    let program = distance_program();
    let strat = inflog::eval::stratify(&program).unwrap();
    assert_eq!(strat.num_strata, 2);
    assert!(!program.is_positive());

    let g = DiGraph::path(6);
    let (_, trace) = inflationary(&program, &g.to_database("E")).unwrap();
    assert!(trace.rounds >= 5, "rounds = {}", trace.rounds);
    assert!(trace.rounds <= 7, "rounds = {}", trace.rounds);
}
