//! Cross-engine agreement tests over the `graphs` workloads: on *positive*
//! DATALOG programs every engine — naive, semi-naive, inflationary (both
//! iteration styles) and stratified — must compute the same least fixpoint
//! (the invariants documented in `crates/eval/src/lib.rs`), and that
//! fixpoint must match an independent graph-theoretic baseline.
//!
//! The same workloads then witness the §4 separation: on non-stratifiable
//! programs the stratified semantics is undefined while the inflationary
//! fixpoint still exists, and on the (stratifiable) §4 distance program the
//! two semantics are both defined yet disagree.

use inflog::core::graphs::DiGraph;
use inflog::core::{Const, Database};
use inflog::eval::{
    inflationary, inflationary_naive, least_fixpoint_naive, least_fixpoint_seminaive,
    stratified_eval, CompiledProgram, EvalError, Interp,
};
use inflog::reductions::programs::{distance_program, pi1, pi3_tc};
use inflog::syntax::{parse_program, Program};
use std::collections::BTreeSet;

/// Extracts an IDB relation as vertex-id tuples (vertices are named `v<i>`
/// by [`DiGraph::to_database`]).
fn idb_tuples(
    db: &Database,
    cp: &CompiledProgram,
    interp: &Interp,
    name: &str,
) -> BTreeSet<Vec<u32>> {
    let idx = cp.idb_id(name).unwrap_or_else(|| panic!("IDB {name}"));
    let vertex_id = |c: Const| -> u32 {
        db.universe()
            .name(c)
            .and_then(|n| n.strip_prefix('v'))
            .and_then(|n| n.parse().ok())
            .expect("vertex names are v<i>")
    };
    interp
        .get(idx)
        .iter()
        .map(|t| t.items().iter().map(|&c| vertex_id(c)).collect())
        .collect()
}

/// Runs all four least-fixpoint-capable engines on a positive program and
/// asserts they agree exactly; returns the common result.
fn assert_engines_agree(program: &Program, db: &Database, label: &str) -> Interp {
    assert!(program.is_positive(), "{label}: workload must be positive");
    let (naive, tn) = least_fixpoint_naive(program, db).unwrap();
    let (semi, ts) = least_fixpoint_seminaive(program, db).unwrap();
    assert_eq!(naive, semi, "{label}: naive vs semi-naive");
    assert_eq!(tn.rounds, ts.rounds, "{label}: round counts");
    let (inf_semi, _) = inflationary(program, db).unwrap();
    assert_eq!(naive, inf_semi, "{label}: lfp vs inflationary (semi-naive)");
    let (inf_naive, _) = inflationary_naive(program, db).unwrap();
    assert_eq!(naive, inf_naive, "{label}: lfp vs inflationary (naive)");
    let (strat, _) = stratified_eval(program, db).unwrap();
    assert_eq!(naive, strat, "{label}: lfp vs stratified");
    naive
}

/// Positive programs that all compute the transitive closure in `S`, with
/// different rule shapes (right-linear, left-linear, non-linear) so the
/// engines exercise different join orders and delta patterns.
fn tc_variants() -> Vec<(&'static str, Program)> {
    vec![
        ("right-linear", pi3_tc()),
        (
            "left-linear",
            parse_program("S(x, y) :- E(x, y). S(x, y) :- S(x, z), E(z, y).").unwrap(),
        ),
        (
            "non-linear",
            parse_program("S(x, y) :- E(x, y). S(x, y) :- S(x, z), S(z, y).").unwrap(),
        ),
    ]
}

#[test]
fn engines_agree_on_paths() {
    for n in [1usize, 2, 3, 5, 9, 16] {
        let g = DiGraph::path(n);
        let db = g.to_database("E");
        let expected: BTreeSet<Vec<u32>> = g
            .transitive_closure()
            .into_iter()
            .map(|(u, v)| vec![u, v])
            .collect();
        for (shape, program) in tc_variants() {
            let label = format!("L_{n} / {shape}");
            let result = assert_engines_agree(&program, &db, &label);
            let cp = CompiledProgram::compile(&program, &db).unwrap();
            assert_eq!(
                idb_tuples(&db, &cp, &result, "S"),
                expected,
                "{label}: S must be the transitive closure"
            );
        }
    }
}

#[test]
fn engines_agree_on_cycles() {
    for n in [1usize, 2, 3, 4, 7, 12] {
        let g = DiGraph::cycle(n);
        let db = g.to_database("E");
        let expected: BTreeSet<Vec<u32>> = g
            .transitive_closure()
            .into_iter()
            .map(|(u, v)| vec![u, v])
            .collect();
        // On C_n the closure is the complete relation.
        assert_eq!(expected.len(), n * n, "C_{n} closure is complete");
        for (shape, program) in tc_variants() {
            let label = format!("C_{n} / {shape}");
            let result = assert_engines_agree(&program, &db, &label);
            let cp = CompiledProgram::compile(&program, &db).unwrap();
            assert_eq!(
                idb_tuples(&db, &cp, &result, "S"),
                expected,
                "{label}: S must be the transitive closure"
            );
        }
    }
}

#[test]
fn engines_agree_on_multi_idb_positive_program() {
    // Two stacked IDBs: transitive closure plus the vertices that reach the
    // end of the path / close the cycle; agreement must hold per-relation.
    let program = parse_program(
        "
        S(x, y) :- E(x, y).
        S(x, y) :- E(x, z), S(z, y).
        R(x) :- S(x, x).
        ",
    )
    .unwrap();
    for g in [
        DiGraph::path(6),
        DiGraph::cycle(6),
        DiGraph::disjoint_cycles(2, 3),
    ] {
        let db = g.to_database("E");
        let result = assert_engines_agree(&program, &db, "multi-IDB");
        let cp = CompiledProgram::compile(&program, &db).unwrap();
        let tc = g.transitive_closure();
        let on_cycle: BTreeSet<Vec<u32>> = (0..g.num_vertices() as u32)
            .filter(|&v| tc.contains(&(v, v)))
            .map(|v| vec![v])
            .collect();
        assert_eq!(idb_tuples(&db, &cp, &result, "R"), on_cycle);
    }
}

#[test]
fn non_stratifiable_pi1_inflationary_still_defined() {
    // π₁ (§2) recurses through negation, so the stratified semantics is
    // undefined — but the §4 inflationary fixpoint exists on every input.
    for (label, g) in [
        ("L_5", DiGraph::path(5)),
        ("C_4", DiGraph::cycle(4)),
        ("C_5", DiGraph::cycle(5)),
    ] {
        let db = g.to_database("E");
        assert!(
            matches!(
                stratified_eval(&pi1(), &db),
                Err(EvalError::NotStratified { .. })
            ),
            "{label}: π₁ must be rejected by stratification"
        );
        let (inf, trace) = inflationary(&pi1(), &db).unwrap();
        assert!(trace.rounds >= 1, "{label}: at least one round");
        // The inflationary fixpoint of π₁ is the set of vertices with a
        // predecessor: round 1 fires for every in-edge (T is empty), and
        // afterwards no new vertex can be added.
        let cp = CompiledProgram::compile(&pi1(), &db).unwrap();
        let with_pred: BTreeSet<Vec<u32>> = g.edges().map(|(_, v)| vec![v]).collect();
        assert_eq!(
            idb_tuples(&db, &cp, &inf, "T"),
            with_pred,
            "{label}: inflationary π₁ = vertices with a predecessor"
        );
    }
}

#[test]
fn distance_program_semantics_diverge_on_cycles() {
    // The §4 distance program is stratifiable, and both semantics are
    // defined — but they disagree: stratified reads S3 as
    // TC(x,y) ∧ ¬TC(x',y'), which is empty on a cycle (TC is complete),
    // while the inflationary reading computes the non-empty distance query.
    let program = distance_program();
    for n in [3usize, 5] {
        let g = DiGraph::cycle(n);
        let db = g.to_database("E");
        let cp = CompiledProgram::compile(&program, &db).unwrap();
        let (strat, _) = stratified_eval(&program, &db).unwrap();
        let (inf, _) = inflationary(&program, &db).unwrap();
        let s3_strat = idb_tuples(&db, &cp, &strat, "S3");
        let s3_inf = idb_tuples(&db, &cp, &inf, "S3");
        assert!(s3_strat.is_empty(), "C_{n}: stratified S3 = TC ∧ ¬TC = ∅");
        assert!(
            !s3_inf.is_empty(),
            "C_{n}: inflationary S3 is the distance query"
        );
        assert_ne!(s3_strat, s3_inf, "C_{n}: the two semantics must diverge");
        // The lower strata agree: S1 and S2 are positive transitive closure.
        for rel in ["S1", "S2"] {
            assert_eq!(
                idb_tuples(&db, &cp, &strat, rel),
                idb_tuples(&db, &cp, &inf, rel),
                "C_{n}: {rel} is positive, so both semantics agree on it"
            );
        }
    }
}
