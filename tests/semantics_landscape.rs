//! Cross-semantics integration tests: the relationships between fixpoints
//! (supported models), the well-founded model, stratified models and
//! inflationary semantics that the paper's discussion (§1, §4, §5) implies.

use inflog::core::graphs::DiGraph;
use inflog::core::Database;
use inflog::eval::{stratified_eval, well_founded};
use inflog::fixpoint::{is_fixpoint, FixpointAnalyzer};
use inflog::logic::eso::{Eso, SkolemNf};
use inflog::logic::eso_to_datalog;
use inflog::logic::fo::Fo;
use inflog::reductions::programs::pi1;
use inflog::syntax::{parse_program, var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A total well-founded model is a stable model, and every stable model is
/// supported — i.e. a fixpoint of Θ. Check that implication empirically.
#[test]
fn total_well_founded_model_is_a_fixpoint() {
    let programs = [
        pi1(),
        parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap(),
        parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y). C(x, y) :- !S(x, y).")
            .unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(99);
    let mut total_seen = 0;
    for program in &programs {
        for _ in 0..6 {
            let g = DiGraph::random_gnp(5, 0.3, &mut rng);
            // Use the same EDB name the program expects.
            let edb = program.edb_predicates();
            let name = edb.iter().next().map(String::as_str).unwrap_or("E");
            let db = g.to_database(name);
            let wf = well_founded(program, &db).unwrap();
            if wf.is_total() {
                total_seen += 1;
                assert!(
                    is_fixpoint(program, &db, &wf.true_facts).unwrap(),
                    "total WFS model must be a supported model (fixpoint): {program}"
                );
            }
        }
    }
    assert!(total_seen > 3, "the workload should produce total models");
}

/// On stratified programs the well-founded model is total and the perfect
/// model is also a fixpoint of Θ; on π₁ over odd cycles nothing is total
/// and there is no fixpoint — both extremes in one test.
#[test]
fn stratified_perfect_model_vs_wfs_vs_fixpoints() {
    let program =
        parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y). C(x, y) :- !S(x, y).")
            .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        let g = DiGraph::random_gnp(4, 0.4, &mut rng);
        let db = g.to_database("E");
        let (perfect, _) = stratified_eval(&program, &db).unwrap();
        let wf = well_founded(&program, &db).unwrap();
        assert!(wf.is_total());
        assert_eq!(wf.true_facts, perfect);
        assert!(is_fixpoint(&program, &db, &perfect).unwrap());
    }

    // π₁ on C_5: no fixpoint, and the WFS leaves everything undefined.
    let db = DiGraph::cycle(5).to_database("E");
    let analyzer = FixpointAnalyzer::new(&pi1(), &db).unwrap();
    assert!(!analyzer.fixpoint_exists());
    let wf = well_founded(&pi1(), &db).unwrap();
    assert!(!wf.is_total());
    assert_eq!(wf.undefined.total_tuples(), 5);
}

/// Theorem 2, normal-form direction: the Theorem 1 compiler produces a
/// program whose fixpoints are in bijection with the ∃SO witnesses — so
/// counting fixpoints counts witnesses, and "unique witness" becomes
/// "unique fixpoint".
#[test]
fn generic_compiler_fixpoints_count_witnesses() {
    let e = |x: &str, y: &str| Fo::atom("E", vec![var(x), var(y)]);
    let s1 = |x: &str| Fo::atom("S", vec![var(x)]);

    // "S is a 2-coloring": #witnesses = #proper 2-colorings.
    let two_col = Eso::new(
        vec![("S", 1)],
        Fo::Or(vec![
            e("x", "y").negate(),
            Fo::And(vec![s1("x"), s1("y").negate()]),
            Fo::And(vec![s1("x").negate(), s1("y")]),
        ])
        .forall("y")
        .forall("x"),
    );
    let red = eso_to_datalog(&SkolemNf::of(&two_col, 1000));

    let cases: Vec<(DiGraph, &str)> = vec![
        (symmetric_cycle(4), "C4 sym"),
        (symmetric_cycle(6), "C6 sym"),
        (DiGraph::path(3), "L3"),
        (DiGraph::new(2), "2 isolated"),
        (symmetric_cycle(5), "C5 sym (no witness)"),
    ];
    for (g, name) in cases {
        let db = g.to_database("E");
        let witnesses = two_col.count_witnesses_brute(&db);
        let analyzer = FixpointAnalyzer::new(&red.program, &db).unwrap();
        let (fps, complete) = analyzer.count_fixpoints(1 << 12);
        assert!(complete, "{name}");
        assert_eq!(fps, witnesses, "bijection on {name}");
        assert_eq!(
            analyzer.has_unique_fixpoint(),
            witnesses == 1,
            "unique-witness ⟺ unique-fixpoint on {name}"
        );
    }
}

/// A database with an empty universe: the paper's framework assumes
/// nonempty, and the engines must at least not misbehave (no panics; Θ is
/// constantly empty; the toggle has the empty fixpoint).
#[test]
fn empty_universe_degenerate_behaviour() {
    let db = Database::new();
    let analyzer = FixpointAnalyzer::new(&pi1(), &db).unwrap();
    assert!(analyzer.fixpoint_exists(), "the empty interpretation");
    let (count, complete) = analyzer.count_fixpoints(4);
    assert!(complete);
    assert_eq!(count, 1);
    let toggle = parse_program("T(z) :- !T(w).").unwrap();
    let analyzer = FixpointAnalyzer::new(&toggle, &db).unwrap();
    assert!(analyzer.fixpoint_exists(), "toggle is vacuous on A = ∅");
}

fn symmetric_cycle(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n {
        g.add_edge_undirected(i as u32, ((i + 1) % n) as u32);
    }
    g
}
