//! Property-based tests over randomly generated programs, databases and
//! formulas: the cross-engine and cross-theorem invariants that hold for
//! *every* DATALOG¬ program, not just the paper's examples.

use inflog::core::{Database, Universe};
use inflog::eval::{
    inflationary, inflationary_naive, least_fixpoint_naive, least_fixpoint_seminaive,
};
use inflog::fixpoint::{enumerate_fixpoints_brute, FixpointAnalyzer, LeastFixpointResult};
use inflog::sat::{
    brute_force_count, brute_force_sat, count_models, dpll_sat, Cnf, Lit, Solver, Var,
};
use inflog::syntax::{parse_program, Atom, Literal, Program, Rule, Term};
use proptest::prelude::*;

// ---------- generators -----------------------------------------------------

const VARS: [&str; 3] = ["x", "y", "z"];
const CONSTS: [&str; 2] = ["a", "b"];

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => (0..VARS.len()).prop_map(|i| Term::Var(VARS[i].into())),
        1 => (0..CONSTS.len()).prop_map(|i| Term::Const(CONSTS[i].into())),
    ]
}

/// Predicates: EDB `E/2`; IDBs `A/1`, `B/1`.
fn arb_pred() -> impl Strategy<Value = (String, usize)> {
    prop_oneof![
        Just(("E".to_string(), 2)),
        Just(("A".to_string(), 1)),
        Just(("B".to_string(), 1)),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    arb_pred().prop_flat_map(|(name, arity)| {
        proptest::collection::vec(arb_term(), arity)
            .prop_map(move |terms| Atom::new(name.clone(), terms))
    })
}

fn arb_literal(allow_negation: bool) -> impl Strategy<Value = Literal> {
    let neg_weight = u32::from(allow_negation) * 2;
    prop_oneof![
        4 => arb_atom().prop_map(Literal::Pos),
        neg_weight => arb_atom().prop_map(Literal::Neg),
        1 => (arb_term(), arb_term()).prop_map(|(a, b)| Literal::Eq(a, b)),
        neg_weight => (arb_term(), arb_term()).prop_map(|(a, b)| Literal::Neq(a, b)),
    ]
}

fn arb_head() -> impl Strategy<Value = Atom> {
    prop_oneof![Just("A"), Just("B")].prop_flat_map(|name| {
        proptest::collection::vec(arb_term(), 1).prop_map(move |terms| Atom::new(name, terms))
    })
}

fn arb_rule(allow_negation: bool) -> impl Strategy<Value = Rule> {
    (
        arb_head(),
        proptest::collection::vec(arb_literal(allow_negation), 0..3),
    )
        .prop_map(|(head, body)| Rule::new(head, body))
}

fn arb_program(allow_negation: bool) -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_rule(allow_negation), 1..4).prop_map(Program::new)
}

/// A database over universe `{a, b, c}` with a random edge relation `E`.
fn arb_database() -> impl Strategy<Value = Database> {
    proptest::collection::vec((0u32..3, 0u32..3), 0..5).prop_map(|edges| {
        let mut db = Database::with_universe(Universe::range_named(&["a", "b", "c"]));
        db.declare_relation("E", 2).unwrap();
        for (u, v) in edges {
            db.insert_fact(
                "E",
                inflog::core::Tuple::from([inflog::core::Const(u), inflog::core::Const(v)]),
            )
            .unwrap();
        }
        db
    })
}

fn arb_cnf() -> impl Strategy<Value = Cnf> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..6, proptest::bool::ANY), 1..4),
        0..24,
    )
    .prop_map(|clauses| {
        let mut cnf = Cnf::with_vars(6);
        for c in clauses {
            let lits: Vec<Lit> = c
                .into_iter()
                .map(|(v, pos)| Lit::new(Var(v), pos))
                .collect();
            cnf.add_clause(lits);
        }
        cnf
    })
}

// ---------- properties ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pretty-printing then parsing is the identity on programs.
    #[test]
    fn parser_roundtrip(program in arb_program(true)) {
        let printed = program.to_string();
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(program, reparsed);
    }

    /// CDCL, DPLL and exhaustive search agree on satisfiability.
    #[test]
    fn solvers_agree(cnf in arb_cnf()) {
        let brute = brute_force_sat(&cnf).is_some();
        prop_assert_eq!(dpll_sat(&cnf).is_some(), brute);
        prop_assert_eq!(Solver::from_cnf(&cnf).solve().is_sat(), brute);
    }

    /// Blocking-clause model counting matches exhaustive counting.
    #[test]
    fn model_counts_agree(cnf in arb_cnf()) {
        let vars: Vec<Var> = (0..cnf.num_vars() as u32).map(Var).collect();
        let counted = count_models(&cnf, &vars, 1 << 10);
        prop_assert!(counted.complete);
        prop_assert_eq!(counted.count, brute_force_count(&cnf));
    }

    /// Naive and semi-naive least fixpoints agree on positive programs,
    /// and inflationary semantics coincides with them (§4).
    #[test]
    fn positive_engines_agree(program in arb_program(false), db in arb_database()) {
        let (naive, tn) = least_fixpoint_naive(&program, &db).unwrap();
        let (semi, ts) = least_fixpoint_seminaive(&program, &db).unwrap();
        prop_assert_eq!(&naive, &semi);
        prop_assert_eq!(tn.rounds, ts.rounds);
        let (inf, _) = inflationary(&program, &db).unwrap();
        prop_assert_eq!(&naive, &inf);
    }

    /// Naive and semi-naive inflationary iterations agree on arbitrary
    /// DATALOG¬ programs (the delta-soundness argument of DESIGN.md §5.4).
    #[test]
    fn inflationary_engines_agree(program in arb_program(true), db in arb_database()) {
        let (a, ta) = inflationary_naive(&program, &db).unwrap();
        let (b, tb) = inflationary(&program, &db).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(ta.rounds, tb.rounds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The SAT-based fixpoint enumeration finds exactly the fixpoints the
    /// exhaustive search finds (Theorems 1/2 machinery, fully cross-checked).
    #[test]
    fn fixpoint_counts_agree(program in arb_program(true), db in arb_database()) {
        let brute = enumerate_fixpoints_brute(&program, &db, 20).unwrap();
        let analyzer = FixpointAnalyzer::new(&program, &db).unwrap();
        let (count, complete) = analyzer.count_fixpoints(1 << 10);
        prop_assert!(complete);
        prop_assert_eq!(count as usize, brute.len());
        // Every enumerated fixpoint verifies relationally.
        for f in analyzer.enumerate_fixpoints(1 << 10) {
            prop_assert!(analyzer.is_fixpoint(&f));
            prop_assert!(brute.contains(&f));
        }
    }

    /// FONP least-fixpoint decision agrees with enumeration + intersection.
    #[test]
    fn least_fixpoint_deciders_agree(program in arb_program(true), db in arb_database()) {
        let analyzer = FixpointAnalyzer::new(&program, &db).unwrap();
        let (fonp, _) = analyzer.least_fixpoint_fonp();
        let by_enum = analyzer.least_fixpoint_by_enumeration(1 << 10).unwrap();
        prop_assert_eq!(&fonp, &by_enum);
        // Sanity of the three-way outcome.
        match fonp {
            LeastFixpointResult::Least(ref s) => prop_assert!(analyzer.is_fixpoint(s)),
            LeastFixpointResult::NoFixpoint => prop_assert!(!analyzer.fixpoint_exists()),
            LeastFixpointResult::NoLeast => prop_assert!(analyzer.fixpoint_exists()),
        }
    }

    /// On positive programs a least fixpoint always exists and equals the
    /// standard semantics.
    #[test]
    fn positive_programs_have_least_fixpoints(program in arb_program(false), db in arb_database()) {
        let (lfp, _) = least_fixpoint_naive(&program, &db).unwrap();
        let analyzer = FixpointAnalyzer::new(&program, &db).unwrap();
        let (r, _) = analyzer.least_fixpoint_fonp();
        prop_assert_eq!(r, LeastFixpointResult::Least(lfp));
    }
}
