//! End-to-end integration of the paper's main results across crates:
//! Theorem 1 (NP ≡ fixpoint existence), Theorem 2 (US / unique fixpoints),
//! Theorem 3 (FONP least fixpoints) and Theorem 4 (succinct 3-coloring),
//! driven through parsing, evaluation, grounding, SAT and the reductions.

use inflog::circuit::encode::{from_explicit_graph, hypercube};
use inflog::circuit::succinct_coloring_reduction;
use inflog::core::graphs::DiGraph;
use inflog::fixpoint::{enumerate_fixpoints_brute, FixpointAnalyzer, LeastFixpointResult};
use inflog::reductions::coloring::is_3colorable_brute;
use inflog::reductions::programs::{pi1, pi_col, pi_sat};
use inflog::reductions::sat_db::cnf_to_database;
use inflog::sat::gen::random_ksat;
use inflog::sat::{brute_force_count, Solver};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn theorem1_sat_reduction_end_to_end() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut sat_seen = 0;
    let mut unsat_seen = 0;
    // Mix under-constrained (mostly SAT) and over-constrained (mostly
    // UNSAT) densities so the workload covers both verdicts.
    for clauses in [5usize, 5, 6, 6, 18, 20, 22, 24] {
        let cnf = random_ksat(4, clauses, 3, &mut rng);
        let independent = Solver::from_cnf(&cnf).solve().is_sat();
        let db = cnf_to_database(&cnf);
        let analyzer = FixpointAnalyzer::new(&pi_sat(), &db).unwrap();
        assert_eq!(analyzer.fixpoint_exists(), independent);
        if independent {
            sat_seen += 1;
        } else {
            unsat_seen += 1;
        }
    }
    assert!(sat_seen > 0 && unsat_seen > 0, "workload covers both sides");
}

#[test]
fn theorem2_model_fixpoint_bijection() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..6 {
        let cnf = random_ksat(5, 8, 3, &mut rng);
        let models = brute_force_count(&cnf);
        let db = cnf_to_database(&cnf);
        let analyzer = FixpointAnalyzer::new(&pi_sat(), &db).unwrap();
        let (count, complete) = analyzer.count_fixpoints(1 << 14);
        assert!(complete);
        assert_eq!(count, models);
        assert_eq!(analyzer.has_unique_fixpoint(), models == 1);
    }
}

#[test]
fn theorem3_fonp_vs_enumeration_on_paper_families() {
    // The two least-fixpoint deciders agree on every paper family.
    let graphs: Vec<(DiGraph, &str)> = vec![
        (DiGraph::path(5), "L5"),
        (DiGraph::cycle(5), "C5"),
        (DiGraph::cycle(6), "C6"),
        (DiGraph::disjoint_cycles(2, 2), "G2"),
        (DiGraph::disjoint_cycles(3, 2), "G3"),
    ];
    for (g, name) in graphs {
        let db = g.to_database("E");
        let analyzer = FixpointAnalyzer::new(&pi1(), &db).unwrap();
        let (fonp, stats) = analyzer.least_fixpoint_fonp();
        let by_enum = analyzer.least_fixpoint_by_enumeration(1 << 12).unwrap();
        assert_eq!(fonp, by_enum, "{name}");
        // The FONP oracle budget: one existence query + one per tuple when
        // fixpoints exist.
        if !matches!(fonp, LeastFixpointResult::NoFixpoint) {
            assert_eq!(stats.oracle_calls as usize, 1 + g.num_vertices(), "{name}");
        }
    }
}

#[test]
fn theorem3_against_brute_force_enumeration() {
    // Brute-force enumeration (no SAT anywhere) agrees with the analyzer.
    let cases = [DiGraph::path(4), DiGraph::cycle(4), DiGraph::cycle(5)];
    for g in cases {
        let db = g.to_database("E");
        let brute = enumerate_fixpoints_brute(&pi1(), &db, 20).unwrap();
        let analyzer = FixpointAnalyzer::new(&pi1(), &db).unwrap();
        let (r, _) = analyzer.least_fixpoint_fonp();
        match (&r, brute.len()) {
            (LeastFixpointResult::NoFixpoint, 0) => {}
            (LeastFixpointResult::Least(least), n) => {
                assert!(n > 0);
                assert!(brute.iter().all(|f| least.is_subset(f)));
                assert!(brute.iter().any(|f| f == least));
            }
            (LeastFixpointResult::NoLeast, n) => {
                assert!(n > 1);
                let mut inter = brute[0].clone();
                for f in &brute[1..] {
                    inter = inter.intersection(f);
                }
                assert!(!brute.contains(&inter));
            }
            other => panic!("mismatch: {other:?} on {g}"),
        }
    }
}

#[test]
fn theorem4_succinct_reduction_pipeline() {
    // Succinct graph → π_SC → fixpoint existence ⟺ 3-colorability of the
    // expanded graph.
    let positives = [hypercube(2), from_explicit_graph(&DiGraph::cycle(5), 3)];
    for sg in positives {
        let g = sg.expand();
        assert!(is_3colorable_brute(&g));
        let red = succinct_coloring_reduction(&sg);
        let analyzer = FixpointAnalyzer::new(&red.program, &red.database).unwrap();
        assert!(analyzer.fixpoint_exists());
    }
    let negative = from_explicit_graph(&DiGraph::complete(4), 2);
    assert!(!is_3colorable_brute(&negative.expand()));
    let red = succinct_coloring_reduction(&negative);
    let analyzer = FixpointAnalyzer::new(&red.program, &red.database).unwrap();
    assert!(!analyzer.fixpoint_exists());
}

#[test]
fn lemma1_explicit_vs_succinct_agree() {
    // The same graph through π_COL directly and through the circuit route
    // must give the same verdict.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..4 {
        let g = DiGraph::random_undirected(5, 0.5, &mut rng);
        let explicit = FixpointAnalyzer::new(&pi_col(), &g.to_database("E"))
            .unwrap()
            .fixpoint_exists();
        let sg = from_explicit_graph(&g, 3);
        let red = succinct_coloring_reduction(&sg);
        let succinct = FixpointAnalyzer::new(&red.program, &red.database)
            .unwrap()
            .fixpoint_exists();
        assert_eq!(explicit, succinct, "graph {g}");
        assert_eq!(explicit, is_3colorable_brute(&g), "graph {g}");
    }
}

#[test]
fn data_complexity_vs_expression_complexity_shape() {
    // E10's observable, asserted qualitatively: for the fixed π_SAT the
    // grounding grows polynomially with data; for π_SC (program part of the
    // input) the tuple space grows exponentially with the circuit's bits.
    let mut rng = StdRng::seed_from_u64(3);
    let small = cnf_to_database(&random_ksat(3, 6, 2, &mut rng));
    let large = cnf_to_database(&random_ksat(6, 12, 2, &mut rng));
    let a_small = FixpointAnalyzer::new(&pi_sat(), &small).unwrap();
    let a_large = FixpointAnalyzer::new(&pi_sat(), &large).unwrap();
    let (s, l) = (a_small.ground.total_tuples, a_large.ground.total_tuples);
    // Data doubled => tuple space grows by at most the fixed-degree
    // polynomial (quadratic here: arities ≤ 2... π_SAT IDBs are unary, so
    // linear).
    assert!(l <= s * 4, "fixed program must stay polynomial: {s} -> {l}");

    let r2 = succinct_coloring_reduction(&hypercube(2));
    let r3 = succinct_coloring_reduction(&hypercube(3));
    let g2 = FixpointAnalyzer::new(&r2.program, &r2.database).unwrap();
    let g3 = FixpointAnalyzer::new(&r3.program, &r3.database).unwrap();
    // One extra bit ⇒ 4× per-gate tuple space (arity grows by 2).
    assert!(
        g3.ground.total_tuples > 2 * g2.ground.total_tuples,
        "succinct construction must blow up: {} -> {}",
        g2.ground.total_tuples,
        g3.ground.total_tuples
    );
}
