//! The negation-semantics landscape on one program: the win-move game
//! `Win(x) <- Move(x,y), !Win(y)` (structurally the paper's pi_1).
//!
//! Compares, per database: supported models (= fixpoints of Θ, the paper's
//! §2 object), the stratified semantics (rejects the program), the
//! well-founded model (3-valued), and Inflationary DATALOG (§4).
//!
//! Run with: `cargo run --example negation_semantics`

use inflog::core::graphs::DiGraph;
use inflog::eval::{inflationary, stratify, well_founded};
use inflog::fixpoint::{FixpointAnalyzer, LeastFixpointResult};
use inflog::syntax::parse_program;

fn main() {
    let program = parse_program("Win(x) :- Move(x, y), !Win(y).").expect("parses");
    println!("program (the win-move game):\n{program}");

    // Stratified semantics: not applicable (recursion through negation).
    match stratify(&program) {
        Err(e) => println!("stratified semantics: REJECTED — {e}"),
        Ok(_) => unreachable!("Win uses itself negatively"),
    }

    let boards: Vec<(&str, DiGraph)> = vec![
        ("path L_4 (forced game)", DiGraph::path(4)),
        ("odd cycle C_3 (drawn game)", DiGraph::cycle(3)),
        ("even cycle C_4 (two stable conventions)", DiGraph::cycle(4)),
        ("star (center wins)", DiGraph::star(4)),
    ];

    for (name, g) in boards {
        let db = g.to_database("Move");
        println!("\n=== {name} ===");

        // Fixpoints of Θ = supported models.
        let analyzer = FixpointAnalyzer::new(&program, &db).expect("compiles");
        let fps = analyzer.enumerate_fixpoints(16);
        println!("  fixpoints (supported models): {}", fps.len());
        for f in &fps {
            print!("{}", indent(&analyzer.compiled().display_interp(f, &db), 4));
        }
        match analyzer.least_fixpoint_fonp().0 {
            LeastFixpointResult::Least(_) => println!("    least fixpoint: yes"),
            LeastFixpointResult::NoLeast => println!("    least fixpoint: no"),
            LeastFixpointResult::NoFixpoint => {}
        }

        // Well-founded: the skeptical 3-valued view.
        let wf = well_founded(&program, &db).expect("total on programs");
        println!(
            "  well-founded: {} true, {} undefined{}",
            wf.true_facts.total_tuples(),
            wf.undefined.total_tuples(),
            if wf.is_total() { " (total)" } else { "" }
        );

        // Inflationary: the paper's proposal — always defined, one answer.
        let (inf, trace) = inflationary(&program, &db).expect("total");
        println!(
            "  inflationary: {} tuples in {} round(s): Win = every position with a move",
            inf.total_tuples(),
            trace.rounds
        );
    }

    println!(
        "\nreading: fixpoint semantics can give 0, 1 or many answers (the paper's\n\
         complexity obstruction); well-founded stays 3-valued; Inflationary\n\
         DATALOG always returns one PTIME-computable relation."
    );
}

fn indent(s: &str, n: usize) -> String {
    s.lines()
        .map(|l| format!("{}{l}\n", " ".repeat(n)))
        .collect()
}
