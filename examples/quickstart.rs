//! Quickstart: parse a DATALOG¬ program, load a database, evaluate it under
//! the paper's semantics, and ask the fixpoint questions of §§2–3.
//!
//! Run with: `cargo run --example quickstart`

use inflog::core::graphs::DiGraph;
use inflog::eval::{inflationary, CompiledProgram};
use inflog::fixpoint::{FixpointAnalyzer, LeastFixpointResult};
use inflog::syntax::parse_program;

fn main() {
    // The paper's pi_1: T(x) <- E(y,x), !T(y).
    let program = parse_program("T(x) :- E(y, x), !T(y).").expect("parses");
    println!("program:\n{program}");

    // A database: the directed path L_5 (v0 -> v1 -> ... -> v4).
    let graph = DiGraph::path(5);
    let db = graph.to_database("E");
    println!("database:\n{db}");

    // Inflationary DATALOG (§4): defined for every program, polynomial time.
    let (inf, trace) = inflationary(&program, &db).expect("compiles");
    let cp = CompiledProgram::compile(&program, &db).expect("compiles");
    println!("inflationary semantics ({trace}):");
    print!("{}", cp.display_interp(&inf, &db));

    // Fixpoint analysis (§§2-3): existence, counting, uniqueness, least.
    let analyzer = FixpointAnalyzer::new(&program, &db).expect("compiles");
    let fps = analyzer.enumerate_fixpoints(16);
    println!("\nfixpoints of (pi_1, L_5): {}", fps.len());
    for (i, f) in fps.iter().enumerate() {
        println!("  fixpoint {i}:");
        print!("{}", indent(&cp.display_interp(f, &db)));
    }
    println!("unique fixpoint? {}", analyzer.has_unique_fixpoint());
    match analyzer.least_fixpoint_fonp().0 {
        LeastFixpointResult::Least(s) => {
            println!("least fixpoint exists ({} tuples)", s.total_tuples());
        }
        LeastFixpointResult::NoLeast => println!("fixpoints exist but none is least"),
        LeastFixpointResult::NoFixpoint => println!("no fixpoint at all"),
    }

    // The same program on an odd cycle has NO fixpoint (the paper's C_n
    // example) - yet inflationary semantics still assigns it a meaning.
    let odd = DiGraph::cycle(5).to_database("E");
    let analyzer = FixpointAnalyzer::new(&program, &odd).expect("compiles");
    println!("\non the odd cycle C_5:");
    println!("  fixpoint exists? {}", analyzer.fixpoint_exists());
    let (inf, trace) = inflationary(&program, &odd).expect("compiles");
    println!(
        "  inflationary semantics: {} tuples in {} round(s)",
        inf.total_tuples(),
        trace.rounds
    );
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
