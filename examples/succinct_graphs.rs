//! Theorem 4: succinct graphs and the NEXP-hardness construction pi_SC.
//!
//! A small circuit presents an exponentially larger graph; the reduction
//! turns each gate into a 2n-ary relation over {0,1} and stacks pi_COL on
//! the output gate. Fixpoint existence of the resulting program decides
//! 3-colorability of the *presented* graph.
//!
//! Run with: `cargo run --example succinct_graphs`

use inflog::circuit::encode::{from_explicit_graph, hypercube, succinct_cycle};
use inflog::circuit::succinct_coloring_reduction;
use inflog::core::graphs::DiGraph;
use inflog::fixpoint::FixpointAnalyzer;
use inflog::reductions::coloring::is_3colorable_sat;

fn main() {
    println!("succinct family: cycles of length 2^n from a ripple-carry successor circuit\n");
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>12}",
        "bits", "gates", "vertices", "pi_SC rules", "ground tuples"
    );
    for bits in 1..=3usize {
        let sg = succinct_cycle(bits);
        let red = succinct_coloring_reduction(&sg);
        let analyzer = FixpointAnalyzer::new(&red.program, &red.database).expect("compiles");
        println!(
            "{:<8} {:>12} {:>12} {:>14} {:>12}",
            bits,
            sg.circuit().num_gates(),
            sg.num_vertices(),
            red.program.len(),
            analyzer.ground.total_tuples,
        );
    }

    println!("\ndeciding succinct 3-colorability through fixpoint existence:");
    let cases: Vec<(&str, inflog::circuit::SuccinctGraph)> = vec![
        ("cycle of length 4 (even, 2-colorable)", succinct_cycle(2)),
        ("hypercube Q_3 (bipartite)", hypercube(3)),
        (
            "K4 (not 3-colorable)",
            from_explicit_graph(&DiGraph::complete(4), 2),
        ),
        (
            "C5 (3-chromatic)",
            from_explicit_graph(&DiGraph::cycle(5), 3),
        ),
    ];
    for (name, sg) in cases {
        let explicit = sg.expand();
        let truth = is_3colorable_sat(&explicit).is_some();
        let red = succinct_coloring_reduction(&sg);
        let analyzer = FixpointAnalyzer::new(&red.program, &red.database).expect("compiles");
        let by_fixpoint = analyzer.fixpoint_exists();
        println!("  {name:<40} truth = {truth:<5} via pi_SC fixpoint = {by_fixpoint}");
        assert_eq!(truth, by_fixpoint, "Theorem 4 must hold");
    }

    // The expression-complexity blowup in one line: gates vs tuple space.
    let small = succinct_coloring_reduction(&succinct_cycle(2));
    let big = succinct_coloring_reduction(&succinct_cycle(3));
    let a = FixpointAnalyzer::new(&small.program, &small.database).expect("compiles");
    let b = FixpointAnalyzer::new(&big.program, &big.database).expect("compiles");
    println!(
        "\none extra address bit: rules {} -> {}, ground tuple space {} -> {} (exponential)",
        small.program.len(),
        big.program.len(),
        a.ground.total_tuples,
        b.ground.total_tuples,
    );
}
