//! SAT as fixpoints (Theorem 1 + Example 1 + Theorem 2): encode a CNF
//! instance as a database, run the paper's pi_SAT, and watch satisfying
//! assignments appear as fixpoints — in bijection.
//!
//! Run with: `cargo run --example sat_as_fixpoints`

use inflog::fixpoint::FixpointAnalyzer;
use inflog::reductions::programs::pi_sat;
use inflog::reductions::sat_db::{assignment_from_fixpoint, cnf_to_database};
use inflog::sat::{brute_force_count, Cnf, Solver, Var};

fn main() {
    // I = (x0 | x1) & (!x0 | x1) & (x0 | !x1): two satisfying assignments
    // (x0 x1 = TT and FT... let's see what the machinery says).
    let mut cnf = Cnf::with_vars(2);
    let (x0, x1) = (Var(0), Var(1));
    cnf.add_clause(vec![x0.pos(), x1.pos()]);
    cnf.add_clause(vec![x0.neg(), x1.pos()]);
    cnf.add_clause(vec![x0.pos(), x1.neg()]);

    println!("instance I:\n{cnf}");
    println!("CDCL verdict: {}", verdict(&cnf));
    println!("exact model count: {}", brute_force_count(&cnf));

    // Example 1: the database D(I) over vocabulary (V/1, P/2, N/2).
    let db = cnf_to_database(&cnf);
    println!("\nD(I):\n{db}");

    // pi_SAT has a fixpoint on D(I) iff I is satisfiable (Theorem 1),
    // and fixpoints correspond 1-1 to satisfying assignments (Theorem 2).
    let program = pi_sat();
    println!("pi_SAT:\n{program}");
    let analyzer = FixpointAnalyzer::new(&program, &db).expect("compiles");
    println!("fixpoint exists? {}", analyzer.fixpoint_exists());

    let fixpoints = analyzer.enumerate_fixpoints(64);
    println!("number of fixpoints: {}", fixpoints.len());
    for (i, f) in fixpoints.iter().enumerate() {
        let asg = assignment_from_fixpoint(analyzer.compiled(), &db, f, cnf.num_vars())
            .expect("S relation");
        let rendered: Vec<String> = asg
            .iter()
            .enumerate()
            .map(|(v, &b)| format!("x{v}={}", u8::from(b)))
            .collect();
        println!(
            "  fixpoint {i} decodes to assignment {{{}}} (satisfies I: {})",
            rendered.join(", "),
            cnf.eval(&asg)
        );
    }

    println!(
        "unique fixpoint (the US question of Theorem 2)? {}",
        analyzer.has_unique_fixpoint()
    );

    // An unsatisfiable instance: no fixpoints at all.
    let mut unsat = Cnf::with_vars(1);
    unsat.add_clause(vec![Var(0).pos()]);
    unsat.add_clause(vec![Var(0).neg()]);
    let db = cnf_to_database(&unsat);
    let analyzer = FixpointAnalyzer::new(&program, &db).expect("compiles");
    println!(
        "\nunsatisfiable instance (x0) & (!x0): fixpoint exists? {}",
        analyzer.fixpoint_exists()
    );
}

fn verdict(cnf: &Cnf) -> &'static str {
    if Solver::from_cnf(cnf).solve().is_sat() {
        "SAT"
    } else {
        "UNSAT"
    }
}
