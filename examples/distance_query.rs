//! Proposition 2: the distance query under inflationary semantics — and the
//! §4 punchline that the *same program* means something else when read as a
//! stratified program.
//!
//! Run with: `cargo run --example distance_query`

use inflog::core::graphs::DiGraph;
use inflog::eval::{inflationary, stratified_eval, stratify, CompiledProgram};
use inflog::reductions::distance::{distance_query_baseline, stratified_reading_baseline};
use inflog::reductions::programs::distance_program;

fn main() {
    let program = distance_program();
    println!("the paper's distance program (carrier S3):\n{program}");
    let strat = stratify(&program).expect("stratified");
    println!("stratification: {} strata", strat.num_strata);

    // A path with interesting distances: v0 -> v1 -> v2 -> v3.
    let g = DiGraph::path(4);
    let db = g.to_database("E");
    let cp = CompiledProgram::compile(&program, &db).expect("compiles");
    let s3 = cp.idb_id("S3").expect("carrier");

    let (inf, trace) = inflationary(&program, &db).expect("total semantics");
    let (st, _) = stratified_eval(&program, &db).expect("stratified");

    println!(
        "\non L_4: inflationary S3 has {} tuples (in {} rounds); stratified S3 has {}",
        inf.get(s3).len(),
        trace.rounds,
        st.get(s3).len()
    );

    // Spot-check against the independent BFS baselines.
    let dist_baseline = distance_query_baseline(&g);
    let strat_baseline = stratified_reading_baseline(&g);
    println!(
        "BFS distance-query baseline: {} tuples",
        dist_baseline.len()
    );
    println!(
        "TC∧¬TC baseline:             {} tuples",
        strat_baseline.len()
    );
    assert_eq!(inf.get(s3).len(), dist_baseline.len());
    assert_eq!(st.get(s3).len(), strat_baseline.len());

    // A concrete divergence witness.
    let witness = (0u32, 1u32, 0u32, 3u32); // dist(v0,v1)=1 <= dist(v0,v3)=3
    println!("\nwitness quadruple D(v0,v1,v0,v3) — \"is v0->v1 at most as far as v0->v3?\":");
    println!(
        "  inflationary (distance query): {}",
        dist_baseline.contains(&witness)
    );
    println!(
        "  stratified (TC ∧ ¬TC):          {} (because TC(v0,v3) holds)",
        strat_baseline.contains(&witness)
    );

    // Distance query answers on a graph with unreachable pairs.
    let mut g2 = DiGraph::new(4);
    g2.add_edge(0, 1);
    g2.add_edge(2, 3);
    let db2 = g2.to_database("E");
    let (inf2, _) = inflationary(&program, &db2).expect("total");
    let base2 = distance_query_baseline(&g2);
    println!(
        "\ntwo disjoint edges: D(v0,v1,v2,v0) (v2 cannot reach v0) = {}",
        base2.contains(&(0, 1, 2, 0))
    );
    assert_eq!(inf2.get(cp.idb_id("S3").unwrap()).len(), base2.len());
    println!("engine agrees with baseline on all {} tuples", base2.len());
}
