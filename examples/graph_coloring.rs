//! 3-coloring as fixpoint existence (Lemma 1): run the paper's pi_COL on
//! graphs with known chromatic numbers and extract colorings from the
//! fixpoints.
//!
//! Run with: `cargo run --example graph_coloring`

use inflog::core::graphs::DiGraph;
use inflog::fixpoint::FixpointAnalyzer;
use inflog::reductions::coloring::{is_3colorable_sat, valid_coloring};
use inflog::reductions::programs::pi_col;

fn main() {
    println!("pi_COL:\n{}", pi_col());

    let cases: Vec<(&str, DiGraph)> = vec![
        ("triangle C3 (3-chromatic)", DiGraph::cycle(3)),
        ("odd cycle C5 (3-chromatic)", DiGraph::cycle(5)),
        ("K4 (4-chromatic)", DiGraph::complete(4)),
        ("Petersen graph (3-chromatic)", DiGraph::petersen()),
        (
            "K33 bipartite (2-chromatic)",
            DiGraph::complete_bipartite(3, 3),
        ),
    ];

    for (name, g) in cases {
        let db = g.to_database("E");
        let analyzer = FixpointAnalyzer::new(&pi_col(), &db).expect("compiles");
        let fix = analyzer.find_fixpoint();
        let sat_says = is_3colorable_sat(&g).is_some();
        println!(
            "\n{name}: fixpoint exists = {}, independent SAT checker = {}",
            fix.is_some(),
            sat_says
        );
        assert_eq!(fix.is_some(), sat_says, "Lemma 1 must hold");

        if let Some(f) = fix {
            // Read the coloring out of the R/B/G guess relations.
            let cp = analyzer.compiled();
            let mut colors = vec![9u8; g.num_vertices()];
            for (ci, pred) in ["R", "B", "G"].iter().enumerate() {
                for t in f.get(cp.idb_id(pred).unwrap()).iter() {
                    colors[t[0].index()] = ci as u8;
                }
            }
            let names = ["red", "blue", "green"];
            let rendered: Vec<String> = colors
                .iter()
                .enumerate()
                .map(|(v, &c)| format!("v{v}:{}", names[c as usize]))
                .collect();
            println!("  coloring from the fixpoint: {}", rendered.join(" "));
            assert!(
                valid_coloring(&g, &colors),
                "fixpoint encodes a proper coloring"
            );
        }
    }
}
