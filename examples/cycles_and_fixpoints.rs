//! The §2 fixpoint-structure tour: one program, three behaviours.
//!
//! `pi_1 = T(x) <- E(y,x), !T(y)` has a unique fixpoint on paths, none on
//! odd cycles, two on even cycles, and exponentially many (with no least
//! one) on disjoint unions of even cycles — the paper's G_n family.
//!
//! Run with: `cargo run --example cycles_and_fixpoints`

use inflog::core::graphs::DiGraph;
use inflog::fixpoint::{FixpointAnalyzer, LeastFixpointResult};
use inflog::reductions::programs::pi1;

fn describe(name: &str, g: &DiGraph) {
    let db = g.to_database("E");
    let analyzer = FixpointAnalyzer::new(&pi1(), &db).expect("compiles");
    let fps = analyzer.enumerate_fixpoints(1 << 12);
    let least = match analyzer.least_fixpoint_fonp().0 {
        LeastFixpointResult::Least(_) => "yes",
        LeastFixpointResult::NoLeast => "no",
        LeastFixpointResult::NoFixpoint => "-",
    };
    let incomparable = fps.len() >= 2
        && fps
            .iter()
            .enumerate()
            .all(|(i, a)| fps[i + 1..].iter().all(|b| a.incomparable(b)));
    println!(
        "{name:<28} fixpoints = {:<5} least = {:<4} pairwise incomparable = {}",
        fps.len(),
        least,
        if fps.len() >= 2 {
            incomparable.to_string()
        } else {
            "-".into()
        },
    );
}

fn main() {
    println!("pi_1:\n{}", pi1());

    println!("paths L_n (unique fixpoint {{2, 4, ...}}):");
    for n in 2..=8 {
        describe(&format!("  L_{n}"), &DiGraph::path(n));
    }

    println!("\ncycles C_n (none when odd, two when even):");
    for n in 3..=8 {
        describe(&format!("  C_{n}"), &DiGraph::cycle(n));
    }

    println!("\nG_n = n disjoint copies of C_2 (2^n fixpoints, no least):");
    for n in 1..=6 {
        describe(&format!("  G_{n}"), &DiGraph::disjoint_cycles(n, 2));
    }

    // Show the two C_4 fixpoints explicitly.
    let db = DiGraph::cycle(4).to_database("E");
    let analyzer = FixpointAnalyzer::new(&pi1(), &db).expect("compiles");
    println!("\nthe two incomparable fixpoints on C_4:");
    for f in analyzer.enumerate_fixpoints(4) {
        print!("{}", analyzer.compiled().display_interp(&f, &db));
    }
}
