//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the 0.5 API the workspace's benches use
//! (`Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_with_input, bench_function, finish}`, `Bencher::iter`,
//! `BenchmarkId`, the `criterion_group!` / `criterion_main!` macros and
//! `black_box`). Instead of criterion's statistical machinery it runs a
//! short warm-up, then `sample_size` timed samples, and prints the mean,
//! min and max wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver. `Default` gives the configuration the macros use.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into(), sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!("{label:<50} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}");
}

/// Passed to the benchmark closure; `iter` records timed samples.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (untimed) so lazy initialisation doesn't pollute sample 0.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Identifies one benchmark within a group: a function name plus a parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(function: S) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: None,
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags cargo may pass (e.g. --bench).
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("noop", 1), &41u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            });
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
