//! The `Strategy` trait and the combinators the workspace uses.

use rand::prelude::*;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core (`sample`) plus `Sized`-gated combinators, so
/// `Box<dyn Strategy<Value = T>>` works for heterogeneous unions.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// `strategy.prop_flat_map(f)`: the drawn value picks the next strategy.
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Union<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = options.iter().map(|(w, _)| *w).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! requires at least one arm with positive weight"
        );
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.options {
            if pick < *weight {
                return strat.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
