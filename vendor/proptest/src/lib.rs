//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the `Strategy` trait with `prop_map` / `prop_flat_map`, `Just`,
//! integer-range and tuple strategies, `proptest::collection::vec`,
//! `proptest::bool::ANY`, the `prop_oneof!`, `proptest!`, `prop_assert!`
//! and `prop_assert_eq!` macros, and `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in two deliberate ways:
//! - **No shrinking.** A failing case reports the case number and panics;
//!   inputs are printed by the assertion itself.
//! - **Deterministic.** Every test function derives its RNG seed from its
//!   own name, so `cargo test` is reproducible run to run (a satellite
//!   requirement of this repo's CI).

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

use rand::prelude::*;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic seed derivation: FNV-1a over the test path so each test
/// gets a distinct but stable input stream.
pub fn rng_for_test(test_path: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Strategies over `bool` (`proptest::bool::ANY`).
pub mod bool {
    use super::strategy::Strategy;
    use rand::prelude::*;

    /// Uniform over `{true, false}`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Strategies over collections (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::prelude::*;
    use std::ops::Range;

    /// Accepted size specifications for [`vec`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive, as in `0..24`.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end,
            }
        }
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `proptest! { #![proptest_config(expr)] #[test] fn name(x in strat, ..) { body } .. }`
///
/// Each function expands to a plain `#[test]` that samples its strategies
/// `config.cases` times from a name-seeded deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let run = || {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest: {} failed at case {case}/{}",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Weighted or unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(usize),
        Pair(usize, bool),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            1 => Just(Shape::Dot),
            3 => (0..10usize).prop_map(Shape::Line),
            2 => ((0..4usize), crate::bool::ANY).prop_map(|(n, b)| Shape::Pair(n, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(n in 2..9usize, v in crate::collection::vec(0u32..5, 1..4)) {
            prop_assert!((2..9).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_flat_map_compose(shape in arb_shape(), len in 0..3usize) {
            // prop_flat_map: generate a vec whose length came from another draw.
            let nested = (0..5usize)
                .prop_flat_map(|k| crate::collection::vec(Just(k), k + 1))
                .sample(&mut crate::rng_for_test("nested"));
            prop_assert_eq!(nested.iter().filter(|&&x| x == nested[0]).count(), nested.len());
            prop_assert!(len < 3);
            match shape {
                Shape::Line(n) => prop_assert!(n < 10),
                Shape::Pair(n, _) => prop_assert!(n < 4),
                Shape::Dot => {}
            }
        }
    }

    #[test]
    fn zero_weight_arms_never_fire() {
        let strat = prop_oneof![
            0 => Just(true),
            1 => Just(false),
        ];
        let mut rng = crate::rng_for_test("zero_weight");
        for _ in 0..100 {
            assert!(!strat.sample(&mut rng));
        }
    }

    #[test]
    fn same_test_name_means_same_stream() {
        let mut a = crate::rng_for_test("x::y::z");
        let mut b = crate::rng_for_test("x::y::z");
        let s = crate::collection::vec(0u32..1000, 10);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
