//! Offline stand-in for the `rand` crate (0.8-era API).
//!
//! The build environment has no network access to crates.io, so this crate
//! implements exactly the surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::{from_seed, seed_from_u64}`, `Rng::{gen, gen_bool,
//! gen_range}` over integer ranges, and `seq::SliceRandom`. Everything is
//! deterministic given the seed; the generator is xoshiro256**, seeded via
//! SplitMix64 exactly like upstream `rand_core` seeds from a `u64`.

use std::ops::Range;

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 uniform mantissa bits, the same construction upstream uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                // Widen through i128 so spans larger than the type's max
                // (e.g. -100i8..100) don't wrap; the final wrapping_add is
                // exact arithmetic mod 2^bits.
                let span = ((range.end as i128).wrapping_sub(range.start as i128)) as u128;
                // Modulo bias is negligible for the small spans used in tests.
                range.start.wrapping_add((rng.next_u64() as u128 % span) as Self)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the u64 seed, as in rand_core.
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace only needs one generator quality tier.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::RngCore;

    /// Random-selection helpers on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher-Yates: the first `amount` slots end up as a
            // uniform sample without replacement.
            for i in 0..amount {
                let j = i + (rng.next_u64() % (indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Prelude in the spirit of `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs, (0..32).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_range_signed_span_wider_than_type_max() {
        // -100i8..100 has span 200 > i8::MAX: the widening through i128
        // must keep every draw inside the range.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: i8 = rng.gen_range(-100..100);
            assert!((-100..100).contains(&x), "out of range: {x}");
            let y: i64 = rng.gen_range(i64::MIN / 2..i64::MAX / 2);
            assert!((i64::MIN / 2..i64::MAX / 2).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn choose_multiple_is_sample_without_replacement() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = pool.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "duplicates in {picked:?}");
        // Over-asking clamps to the slice length.
        assert_eq!(pool.choose_multiple(&mut rng, 99).count(), 10);
    }
}
