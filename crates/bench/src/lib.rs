//! # inflog-bench
//!
//! Experiment runners and benches regenerating every "table and figure" of
//! the reproduction (the paper is theory; its evaluation artifacts are its
//! theorems, worked examples and complexity claims — see EXPERIMENTS.md for
//! the mapping).
//!
//! One binary per experiment:
//!
//! | binary | paper element |
//! |--------|----------------|
//! | `e1_fixpoint_structure` | §2 example: fixpoints of π₁ on L_n / C_n / G_n |
//! | `e2_np_normal_form` | Theorem 1 + Example 1 (SAT ⟺ fixpoint existence; generic ∃SO compiler) |
//! | `e3_unique_fixpoint` | Theorem 2 (US; assignment/fixpoint bijection) |
//! | `e4_least_fixpoint` | Theorem 3 (FONP algorithm vs enumeration) |
//! | `e5_succinct_coloring` | Lemma 1 + Theorem 4 (π_COL, π_SC) |
//! | `e6_inflationary` | §4 (iteration bounds, coincidence on DATALOG) |
//! | `e7_fo_ifp` | Proposition 1 (FO+IFP round trips) |
//! | `e8_distance_query` | Proposition 2 (+ stratified divergence) |
//! | `e9_hierarchy` | §5 picture (DATALOG ⊂ Stratified ⊂ Inflationary) |
//! | `e10_complexity_scaling` | data vs expression complexity |
//!
//! Criterion benches live in `benches/` (one per measurable claim) and use
//! reduced grids; the binaries accept `--full` for the larger tables
//! recorded in EXPERIMENTS.md.

pub mod report;

pub use report::Table;

/// Returns true when `--full` was passed (larger parameter grids).
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Standard experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_ref}");
    println!("================================================================");
}
