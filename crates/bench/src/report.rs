//! Minimal aligned-table reporting for the experiment binaries.

use std::fmt::Display;

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Convenience for all-string rows.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            parts.join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (for EXPERIMENTS.md appendices).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = Table::new(&["n", "fixpoints"]);
        t.row(&[&3, &"none"]);
        t.row(&[&100, &2]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("n  "));
        assert!(lines[2].starts_with("3  "));
        assert!(lines[3].starts_with("100"));
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["a", "b"]);
        t.row_strings(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&[&1]);
    }
}
