//! E5 — Lemma 1 + Theorem 4: 3-coloring as fixpoint existence, explicit and
//! succinct.
//!
//! Explicit track: π_COL vs an independent SAT-based colorability checker.
//! Succinct track: the π_SC construction on circuit-presented graphs, with
//! the exponential circuit → graph → grounding blowup measured.

use inflog::circuit::encode::{from_explicit_graph, hypercube, succinct_cycle};
use inflog::circuit::succinct_coloring_reduction;
use inflog::core::graphs::DiGraph;
use inflog::fixpoint::FixpointAnalyzer;
use inflog::reductions::coloring::is_3colorable_sat;
use inflog::reductions::programs::pi_col;
use inflog_bench::{banner, full_mode, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E5",
        "3-COLORING as fixpoint existence; the succinct construction",
        "Lemma 1, Lemma 2, Theorem 4",
    );
    let full = full_mode();
    let mut rng = StdRng::seed_from_u64(55);

    println!("\ntrack A: explicit pi_COL (Lemma 1)");
    let mut t = Table::new(&[
        "graph",
        "3-colorable (SAT)",
        "fixpoint exists",
        "agree",
        "ground tuples",
    ]);
    let mut graphs: Vec<(String, DiGraph)> = vec![
        ("C3".into(), DiGraph::cycle(3)),
        ("C5".into(), DiGraph::cycle(5)),
        ("K4".into(), DiGraph::complete(4)),
        ("Petersen".into(), DiGraph::petersen()),
        ("K33".into(), DiGraph::complete_bipartite(3, 3)),
        ("grid 3x3".into(), DiGraph::grid(3, 3)),
    ];
    let extra = if full { 8 } else { 4 };
    for i in 0..extra {
        graphs.push((
            format!("rand(7,.5)#{i}"),
            DiGraph::random_undirected(7, 0.5, &mut rng),
        ));
    }
    for (name, g) in graphs {
        let truth = is_3colorable_sat(&g).is_some();
        let db = g.to_database("E");
        let analyzer = FixpointAnalyzer::new(&pi_col(), &db).expect("compiles");
        let fix = analyzer.fixpoint_exists();
        assert_eq!(truth, fix, "Lemma 1 on {name}");
        t.row(&[&name, &truth, &fix, &true, &analyzer.ground.total_tuples]);
    }
    t.print();

    println!("\ntrack B: succinct graphs and pi_SC (Theorem 4)");
    let mut t = Table::new(&[
        "succinct graph",
        "circuit gates",
        "vertices (2^n)",
        "pi_SC rules",
        "ground tuples",
        "3-colorable",
        "fixpoint",
    ]);
    let max_bits = if full { 4 } else { 3 };
    let mut cases: Vec<(String, inflog::circuit::SuccinctGraph)> = Vec::new();
    for bits in 1..=max_bits {
        cases.push((format!("cycle 2^{bits}"), succinct_cycle(bits)));
    }
    for bits in 2..=max_bits.min(3) {
        cases.push((format!("hypercube Q_{bits}"), hypercube(bits)));
    }
    cases.push((
        "K4 explicit".into(),
        from_explicit_graph(&DiGraph::complete(4), 2),
    ));
    cases.push((
        "C5 explicit".into(),
        from_explicit_graph(&DiGraph::cycle(5), 3),
    ));

    for (name, sg) in cases {
        let truth = is_3colorable_sat(&sg.expand()).is_some();
        let red = succinct_coloring_reduction(&sg);
        let analyzer = FixpointAnalyzer::new(&red.program, &red.database).expect("compiles");
        let fix = analyzer.fixpoint_exists();
        assert_eq!(truth, fix, "Theorem 4 on {name}");
        t.row(&[
            &name,
            &sg.circuit().num_gates(),
            &sg.num_vertices(),
            &red.program.len(),
            &analyzer.ground.total_tuples,
            &truth,
            &fix,
        ]);
    }
    t.print();

    println!(
        "\nshape check: per address bit, the graph and the grounding grow\n\
         exponentially while the circuit and program grow polynomially —\n\
         the data-vs-expression-complexity gap behind NEXP-hardness."
    );
}
