//! E9 — the §5 expressiveness picture, executable:
//!
//! ```text
//! DATALOG ⊂ Stratified Logic Programs ⊂ Inflationary DATALOG (= FP)
//! ```
//!
//! Each inclusion/separation is witnessed by a concrete query evaluated by
//! the engines: TC (DATALOG), TC-complement (stratified; not DATALOG since
//! non-monotone), the distance query (inflationary; the natural stratified
//! reading of its program computes something else), and the well-founded
//! semantics as a side-by-side comparison point.

use inflog::core::graphs::DiGraph;
use inflog::eval::{
    inflationary, least_fixpoint_seminaive, stratified_eval, stratify, well_founded,
    CompiledProgram,
};
use inflog::reductions::programs::{distance_program, pi1, pi3_tc};
use inflog::syntax::parse_program;
use inflog_bench::{banner, Table};

fn main() {
    banner(
        "E9",
        "the expressiveness hierarchy, witnessed by engines",
        "Section 5 (with [Ko89], [AV88] as discussed in the paper)",
    );

    // 1. TC is DATALOG: all engines agree.
    println!("\n(1) TC on L_5: every semantics coincides on DATALOG programs");
    let g = DiGraph::path(5);
    let db = g.to_database("E");
    let tc = pi3_tc();
    let (lfp, _) = least_fixpoint_seminaive(&tc, &db).unwrap();
    let (inf, _) = inflationary(&tc, &db).unwrap();
    let (strat, _) = stratified_eval(&tc, &db).unwrap();
    let wf = well_founded(&tc, &db).unwrap();
    let mut t = Table::new(&["semantics", "tuples", "equal to lfp"]);
    t.row(&[&"least fixpoint (standard)", &lfp.total_tuples(), &true]);
    t.row(&[&"inflationary", &inf.total_tuples(), &(inf == lfp)]);
    t.row(&[&"stratified", &strat.total_tuples(), &(strat == lfp)]);
    t.row(&[
        &"well-founded (true part)",
        &wf.true_facts.total_tuples(),
        &(wf.true_facts == lfp),
    ]);
    assert!(inf == lfp && strat == lfp && wf.true_facts == lfp && wf.is_total());
    t.print();

    // 2. TC-complement: stratified but NOT DATALOG (non-monotone witness).
    println!("\n(2) TC-complement: stratified, not DATALOG (monotonicity violation)");
    let comp =
        parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y). C(x, y) :- !S(x, y).")
            .unwrap();
    assert_eq!(stratify(&comp).unwrap().num_strata, 2);
    let small = DiGraph::path(3);
    let mut larger = DiGraph::path(3);
    larger.add_edge(0, 2); // E grows
    let count_c = |g: &DiGraph| {
        let db = g.to_database("E");
        let (m, _) = stratified_eval(&comp, &db).unwrap();
        let cp = CompiledProgram::compile(&comp, &db).unwrap();
        m.get(cp.idb_id("C").unwrap()).len()
    };
    let (before, after) = (count_c(&small), count_c(&larger));
    let mut t = Table::new(&["database", "|C| (complement of TC)"]);
    t.row(&[&"L_3", &before]);
    t.row(&[&"L_3 + edge v0->v2", &after]);
    t.print();
    assert!(after <= before, "complement shrinks as E grows");
    println!(
        "  C shrank from {before} to {after} as E grew: no monotone (DATALOG)\n\
         program can express it."
    );

    // 3. pi_1 is not stratified at all; inflationary still gives it meaning.
    println!("\n(3) pi_1 is outside stratified semantics; Inflationary DATALOG is total");
    let err = stratify(&pi1()).unwrap_err();
    println!("  stratify(pi_1) = error: {err}");
    let (inf, _) = inflationary(&pi1(), &DiGraph::cycle(3).to_database("E")).unwrap();
    println!(
        "  inflationary meaning on C_3 (where NO fixpoint exists): {} tuples",
        inf.total_tuples()
    );

    // 4. Distance query: the same program under the two semantics.
    println!("\n(4) the distance program under both semantics (Prop. 2 divergence)");
    let dp = distance_program();
    let g = DiGraph::path(4);
    let db = g.to_database("E");
    let cp = CompiledProgram::compile(&dp, &db).unwrap();
    let s3 = cp.idb_id("S3").unwrap();
    let (inf, _) = inflationary(&dp, &db).unwrap();
    let (strat, _) = stratified_eval(&dp, &db).unwrap();
    let mut t = Table::new(&["reading", "S3 tuples", "computes"]);
    t.row(&[&"inflationary", &inf.get(s3).len(), &"the distance query"]);
    t.row(&[&"stratified", &strat.get(s3).len(), &"TC(x,y) & !TC(x*,y*)"]);
    t.print();
    assert_ne!(inf.get(s3), strat.get(s3));

    // 5. Closure under complement (Abiteboul-Vianu, discussed in §5):
    // the complement of TC, computed inside Inflationary DATALOG by a
    // stratified-as-inflationary program.
    println!("\n(5) Inflationary DATALOG expresses TC-complement (closure under complement)");
    let (inf_c, _) = inflationary(&comp, &DiGraph::path(4).to_database("E")).unwrap();
    let (strat_c, _) = stratified_eval(&comp, &DiGraph::path(4).to_database("E")).unwrap();
    let cp = CompiledProgram::compile(&comp, &DiGraph::path(4).to_database("E")).unwrap();
    let cid = cp.idb_id("C").unwrap();
    // Caveat the paper makes precise: inflationary evaluation of this
    // 2-stratum program does NOT equal its stratified meaning (C fires
    // early, against the not-yet-complete S) — expressing the complement
    // inflationarily needs a *different* program; the equality below
    // therefore generally FAILS, which we report rather than assert.
    println!(
        "  naive reuse of the stratified program inflationarily: C sizes {} (inflationary) vs {} (stratified)",
        inf_c.get(cid).len(),
        strat_c.get(cid).len()
    );
    println!(
        "  (the [AV88] closure theorem needs a stage-simulating rewrite, not rule reuse\n\
          — exactly why the paper distinguishes the semantics.)"
    );
}
