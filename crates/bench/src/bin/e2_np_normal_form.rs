//! E2 — Theorem 1 + Example 1: fixpoint existence is a normal form for NP.
//!
//! Track A: π_SAT on D(I) for random 3-SAT across the density spectrum;
//! the fixpoint verdict must coincide with an independent CDCL solver.
//! Track B: the generic ∃SO → DATALOG¬ compiler (Skolem normal form) on
//! fixed NP properties, validated against brute-force ∃SO checking.

use inflog::core::graphs::DiGraph;
use inflog::fixpoint::FixpointAnalyzer;
use inflog::logic::eso::{Eso, SkolemNf};
use inflog::logic::eso_to_datalog;
use inflog::logic::fo::Fo;
use inflog::reductions::programs::pi_sat;
use inflog::reductions::sat_db::cnf_to_database;
use inflog::sat::gen::random_ksat;
use inflog::sat::Solver;
use inflog::syntax::var;
use inflog_bench::{banner, full_mode, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E2",
        "NP as fixpoint existence (pi_SAT and the generic compiler)",
        "Theorem 1, Example 1",
    );
    let full = full_mode();
    let mut rng = StdRng::seed_from_u64(20_240_607);

    // Track A: pi_SAT across clause densities.
    println!("\ntrack A: pi_SAT on D(I), random 3-SAT, n = 5 variables");
    let trials = if full { 20 } else { 8 };
    let mut t = Table::new(&[
        "m/n ratio",
        "trials",
        "SAT (solver)",
        "fixpoint exists",
        "agree",
        "avg ground tuples",
        "avg cnf vars",
    ]);
    for ratio in [2.0f64, 3.0, 4.3, 5.5, 7.0] {
        let n_vars = 5usize;
        let m = (ratio * n_vars as f64).round() as usize;
        let mut sat = 0;
        let mut fix = 0;
        let mut agree = 0;
        let mut tuples = 0usize;
        let mut cnf_vars = 0usize;
        for _ in 0..trials {
            let cnf = random_ksat(n_vars, m, 3, &mut rng);
            let s = Solver::from_cnf(&cnf).solve().is_sat();
            let db = cnf_to_database(&cnf);
            let analyzer = FixpointAnalyzer::new(&pi_sat(), &db).expect("compiles");
            let f = analyzer.fixpoint_exists();
            sat += u32::from(s);
            fix += u32::from(f);
            agree += u32::from(s == f);
            tuples += analyzer.ground.total_tuples;
            cnf_vars += analyzer.encoding.cnf.num_vars();
        }
        assert_eq!(agree, trials, "Theorem 1 violated at ratio {ratio}");
        t.row(&[
            &ratio,
            &trials,
            &sat,
            &fix,
            &format!("{agree}/{trials}"),
            &(tuples / trials as usize),
            &(cnf_vars / trials as usize),
        ]);
    }
    t.print();

    // Track B: the generic compiler on NP properties of graphs.
    println!("\ntrack B: generic ESO -> DATALOG~ compiler (Skolem NF, Theorem 1 proof)");
    let e = |x: &str, y: &str| Fo::atom("E", vec![var(x), var(y)]);
    let s1 = |x: &str| Fo::atom("S", vec![var(x)]);
    let two_col = Eso::new(
        vec![("S", 1)],
        Fo::Or(vec![
            e("x", "y").negate(),
            Fo::And(vec![s1("x"), s1("y").negate()]),
            Fo::And(vec![s1("x").negate(), s1("y")]),
        ])
        .forall("y")
        .forall("x"),
    );
    let dominating = Eso::new(
        vec![("S", 1)],
        Fo::Or(vec![
            s1("x"),
            Fo::And(vec![e("y", "x"), s1("y")]).exists("y"),
        ])
        .forall("x"),
    );
    let sink_cover = Eso::new(
        vec![("S", 1)],
        Fo::And(vec![e("x", "y"), s1("y")]).exists("y").forall("x"),
    );

    let mut t = Table::new(&[
        "property",
        "graph",
        "ESO (brute)",
        "fixpoint",
        "agree",
        "program rules",
        "SO vars (w/ witnesses)",
    ]);
    let graphs: Vec<(&str, DiGraph)> = vec![
        ("C4 sym", symmetric_cycle(4)),
        ("C5 sym", symmetric_cycle(5)),
        ("path L4", DiGraph::path(4)),
        ("cycle C4", DiGraph::cycle(4)),
        ("star S4", DiGraph::star(4)),
    ];
    for (pname, eso) in [
        ("2-colorable", &two_col),
        ("in-dominating set = all", &dominating),
        ("all have out-nbr in S", &sink_cover),
    ] {
        let nf = SkolemNf::of(eso, 10_000);
        let red = eso_to_datalog(&nf);
        for (gname, g) in &graphs {
            let db = g.to_database("E");
            let brute = eso.eval_brute(&db);
            let analyzer = FixpointAnalyzer::new(&red.program, &db).expect("compiles");
            let fixpoint = analyzer.fixpoint_exists();
            assert_eq!(brute, fixpoint, "{pname} on {gname}");
            t.row(&[
                &pname,
                &gname,
                &brute,
                &fixpoint,
                &(brute == fixpoint),
                &red.program.len(),
                &nf.so_vars.len(),
            ]);
        }
    }
    t.print();
}

fn symmetric_cycle(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n {
        g.add_edge_undirected(i as u32, ((i + 1) % n) as u32);
    }
    g
}
