//! E7 — Proposition 1: Inflationary DATALOG ≡ existential FO+IFP.
//!
//! Both compiler directions are exercised and checked for query equivalence
//! on families of databases: Datalog programs re-expressed as simultaneous
//! inflationary inductions, and hand-built existential IFP systems compiled
//! to DATALOG¬.

use inflog::core::graphs::DiGraph;
use inflog::eval::{ensure_program_constants, inflationary, CompiledProgram};
use inflog::logic::fo::Fo;
use inflog::logic::IfpSystem;
use inflog::reductions::programs::{distance_program, pi1, pi3_tc};
use inflog::syntax::var;
use inflog_bench::{banner, full_mode, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E7",
        "Inflationary DATALOG == existential FO+IFP (both directions)",
        "Proposition 1",
    );
    let full = full_mode();
    let mut rng = StdRng::seed_from_u64(77);

    println!("\ndirection 1: DATALOG~ -> existential FO+IFP (from_datalog)");
    let mut t = Table::new(&[
        "program",
        "database",
        "IDB relations checked",
        "equal",
        "ifp rounds",
    ]);
    let programs = [
        ("pi_1", pi1()),
        ("pi_3 (TC)", pi3_tc()),
        ("distance", distance_program()),
    ];
    let mut dbs: Vec<(String, DiGraph)> = vec![
        ("L_4".into(), DiGraph::path(4)),
        ("C_4".into(), DiGraph::cycle(4)),
        ("tree_7".into(), DiGraph::binary_tree(7)),
    ];
    for i in 0..(if full { 5 } else { 2 }) {
        dbs.push((format!("rand#{i}"), DiGraph::random_gnp(4, 0.4, &mut rng)));
    }
    for (pname, program) in &programs {
        let system = IfpSystem::from_datalog(program);
        assert!(
            system.is_existential(),
            "{pname}: rule bodies are existential"
        );
        for (dbname, g) in &dbs {
            let db = g.to_database("E");
            let (ifp, rounds) = system.eval(&db);
            let (inf, _) = inflationary(program, &db).expect("total");
            let cp = CompiledProgram::compile(program, &db).expect("compiles");
            for (i, name) in cp.idb_names.iter().enumerate() {
                assert_eq!(&ifp[name], inf.get(i), "{pname}/{name} on {dbname}");
            }
            t.row(&[pname, dbname, &cp.idb_names.len(), &true, &rounds]);
        }
    }
    t.print();

    println!("\ndirection 2: existential FO+IFP -> DATALOG~ (to_datalog)");
    // R(p0) <- p0 = 'v0' or exists z (R(z) and E(z,p0)): reachability.
    let reach = IfpSystem::new(vec![(
        "R",
        vec!["p0"],
        Fo::Or(vec![
            Fo::Eq(var("p0"), inflog::syntax::cst("v0")),
            Fo::And(vec![
                Fo::atom("R", vec![var("z")]),
                Fo::atom("E", vec![var("z"), var("p0")]),
            ])
            .exists("z"),
        ]),
    )]);
    // U(p0) <- exists y (E(p0,y) and not U(y)): the unavoidable-win game.
    let win = IfpSystem::new(vec![(
        "U",
        vec!["p0"],
        Fo::And(vec![
            Fo::atom("E", vec![var("p0"), var("y")]),
            Fo::atom("U", vec![var("y")]).negate(),
        ])
        .exists("y"),
    )]);
    let mut t = Table::new(&["system", "database", "relation", "tuples", "equal"]);
    for (sname, system) in [("reach-from-v0", &reach), ("win-move", &win)] {
        let program = system.to_datalog(1000).expect("existential");
        for (dbname, g) in &dbs {
            let mut db = g.to_database("E");
            ensure_program_constants(&mut db, &program);
            let (ifp, _) = system.eval(&db);
            let (inf, _) = inflationary(&program, &db).expect("total");
            let cp = CompiledProgram::compile(&program, &db).expect("compiles");
            for def in &system.defs {
                let idx = cp.idb_id(&def.name).expect("idb");
                assert_eq!(&ifp[&def.name], inf.get(idx), "{sname} on {dbname}");
                t.row(&[&sname, dbname, &def.name, &ifp[&def.name].len(), &true]);
            }
        }
    }
    t.print();
}
