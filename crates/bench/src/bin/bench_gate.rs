//! `bench_gate` — fail CI on throughput regressions.
//!
//! Compares a freshly generated `BENCH_eval.json` against the committed
//! baseline and exits non-zero if any suite's `tuples_per_sec` regressed by
//! more than the allowed fraction (default 30%).
//!
//! ```text
//! cargo run --release -p inflog-bench --bin bench_gate -- \
//!     --baseline BENCH_eval.json --fresh BENCH_fresh.json [--min-ratio 0.7] \
//!     [--require suite1,suite2]
//! ```
//!
//! Suites present on only one side are reported but do not fail the gate
//! (new suites have no baseline yet; retired suites have no fresh number) —
//! except suites named by `--require`, which must be present on **both**
//! sides and actually compared: silently losing a required suite (e.g. the
//! point-query benches falling out of the grid) fails the gate instead of
//! passing vacuously.
//! Entries are keyed by `(name, threads)` — `bench_report --threads 1,4`
//! writes one entry per worker-thread count, and a single-thread baseline
//! must never be compared against a multi-thread fresh number (or vice
//! versa); entries without a `threads` field count as single-threaded.
//! The JSON is parsed with a purpose-built scanner for the report's own
//! schema — the workspace is dependency-free by design.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts `(name, threads) → (params, tuples_per_sec)` from a
/// `BENCH_eval.json` document. The params string identifies the workload:
/// two reports are only comparable suite-by-suite where the params agree
/// (the quick and standard grids measure different workload sizes), and
/// only at the same worker-thread count. Pre-threading reports carry no
/// `threads` field; they count as single-threaded.
fn parse_report(text: &str) -> BTreeMap<(String, u64), (String, f64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(params) = field_str(line, "params") else {
            continue;
        };
        let Some(tps) = field_num(line, "tuples_per_sec") else {
            continue;
        };
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let threads = field_num(line, "threads").map_or(1, |t| t as u64);
        out.insert((name, threads), (params, tps));
    }
    out
}

/// Reads a `"key": "value"` string field from a JSON object line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Reads a `"key": number` field from a JSON object line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = arg_value(&args, "--baseline").unwrap_or_else(|| "BENCH_eval.json".into());
    let fresh_path = arg_value(&args, "--fresh").unwrap_or_else(|| "BENCH_fresh.json".into());
    let min_ratio: f64 = arg_value(&args, "--min-ratio")
        .map(|v| v.parse().expect("--min-ratio takes a number"))
        .unwrap_or(0.7);
    let required: Vec<String> = arg_value(&args, "--require")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default();

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let baseline = parse_report(&read(&baseline_path));
    let fresh = parse_report(&read(&fresh_path));
    assert!(!fresh.is_empty(), "no suites found in {fresh_path}");

    // Thread honesty: a baseline recorded on a bigger machine has entries at
    // thread counts this host cannot genuinely run (threads > CPUs would
    // just timeslice). Comparing those would report a phantom regression, so
    // they are warned about and skipped — including in the thread-curve
    // completeness check below.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
    let honest = |threads: u64| threads <= cpus;

    println!(
        "{:<26} {:>3} {:>14} {:>14} {:>7}  verdict",
        "suite", "thr", "baseline t/s", "fresh t/s", "ratio"
    );
    let mut failed = false;
    let mut compared = 0usize;
    let mut compared_names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for ((name, threads), (base_params, base_tps)) in &baseline {
        if !honest(*threads) {
            println!(
                "{name:<26} {threads:>3} {base_tps:>14.0} {:>14} {:>7}  host has {cpus} CPU(s) (skip)",
                "-", "-"
            );
            continue;
        }
        let Some((fresh_params, fresh_tps)) = fresh.get(&(name.clone(), *threads)) else {
            println!(
                "{name:<26} {threads:>3} {base_tps:>14.0} {:>14} {:>7}  retired (skip)",
                "-", "-"
            );
            continue;
        };
        if fresh_params != base_params {
            println!(
                "{name:<26} {threads:>3} {base_tps:>14.0} {fresh_tps:>14.0} {:>7}  params differ (skip)",
                "-"
            );
            continue;
        }
        compared += 1;
        compared_names.insert(name);
        let ratio = fresh_tps / base_tps;
        let verdict = if ratio < min_ratio {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{name:<26} {threads:>3} {base_tps:>14.0} {fresh_tps:>14.0} {ratio:>6.2}x  {verdict}"
        );
    }
    for ((name, threads), (_, fresh_tps)) in &fresh {
        if !baseline.contains_key(&(name.clone(), *threads)) {
            println!(
                "{name:<26} {threads:>3} {:>14} {fresh_tps:>14.0} {:>7}  new (skip)",
                "-", "-"
            );
        }
    }

    if compared == 0 {
        // Every suite skipped would make the gate pass vacuously — e.g. a
        // workload-size bump in bench_report without a regenerated baseline
        // must not silently turn the regression check off.
        println!("\nbench gate FAILED: no suite was comparable (params/baseline out of date?)");
        return ExitCode::FAILURE;
    }
    // A whole thread-count curve disappearing from the fresh report (e.g.
    // the CI bench step losing its `--threads 1,4`) must fail, not pass
    // via the surviving curve: per-suite retirement is tolerated above, but
    // the baseline's thread grid is part of the contract.
    let curve = |m: &BTreeMap<(String, u64), (String, f64)>| -> std::collections::BTreeSet<u64> {
        m.keys().map(|(_, t)| *t).collect()
    };
    let missing: Vec<u64> = curve(&baseline)
        .difference(&curve(&fresh))
        .copied()
        .filter(|t| honest(*t))
        .collect();
    if !missing.is_empty() {
        println!(
            "\nbench gate FAILED: baseline has thread count(s) {missing:?} with no fresh entries \
             (bench_report missing --threads?)"
        );
        return ExitCode::FAILURE;
    }
    // Required suites must have been genuinely compared — their quiet
    // disappearance from either report (or a params drift that skips them)
    // must not let the gate pass.
    for name in &required {
        if !compared_names.contains(name.as_str()) {
            println!(
                "\nbench gate FAILED: required suite `{name}` was not compared \
                 (missing from a report, or params out of date?)"
            );
            return ExitCode::FAILURE;
        }
    }
    if failed {
        println!("\nbench gate FAILED: a suite regressed below {min_ratio:.2}x of baseline");
        ExitCode::FAILURE
    } else {
        println!("\nbench gate passed (threshold {min_ratio:.2}x, {compared} suites compared)");
        ExitCode::SUCCESS
    }
}
