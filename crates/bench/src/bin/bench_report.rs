//! `bench_report` — a machine-checkable performance snapshot.
//!
//! Runs fixed-seed benchmark suites over the evaluation hot paths (naive and
//! semi-naive fixpoints, inflationary iteration, stratified and well-founded
//! evaluation, program grounding) and writes `BENCH_eval.json` at the repo
//! root so the performance trajectory can be tracked PR over PR.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p inflog-bench --bin bench_report            # standard grid
//! cargo run --release -p inflog-bench --bin bench_report -- --quick # CI-sized grid
//! cargo run --release -p inflog-bench --bin bench_report -- --out path.json
//! cargo run --release -p inflog-bench --bin bench_report -- --threads 1,4
//! cargo run --release -p inflog-bench --bin bench_report -- --filter seminaive
//! ```
//!
//! Every suite derives its inputs from fixed seeds, so two runs on the same
//! machine measure the same workload. Timings are wall-clock (`Instant`),
//! with one untimed warm-up iteration per suite.
//!
//! `--threads` runs the grid once per listed worker-thread count (default
//! `1`) and records a `threads` field in every entry; `bench_gate` matches
//! entries on `(name, params, threads)`, so single- and multi-thread
//! baselines never get compared against each other. Engines without a
//! parallel path (naive iteration, grounding) are measured only at
//! `threads = 1`, as are the point-query suites (`query_*` and their
//! `full_filter_*` baselines — goal-directed evaluation vs full fixpoint
//! plus filter on identical inputs) and the incremental-maintenance suites
//! (`incr_*` vs their `full_reeval_*` baselines — single-fact updates on a
//! warm `Materialized` handle vs re-running the fixpoint from scratch).
//! The serving-layer suite (`serve_qps`) runs once per report regardless of
//! `--threads`, at 1, 4, and 8 *reader* threads against one live `Server`;
//! the reader count is what its `threads` field records, and its
//! `tuples_per_sec` is queries per second.
//!
//! `--filter <substr>` runs only the suites whose name contains the given
//! substring (e.g. `--filter wellfounded`) — handy when iterating on one
//! hot path. A filtered report is partial by construction: don't commit it
//! as the baseline, and expect `bench_gate` to report the missing suites.
//!
//! The report also records which Θ-application executor produced it (`exec`
//! field, top level): `vm` for the flat register-machine IR (the default)
//! or `tree` when `INFLOG_EXEC=tree` forces the oracle walker — so a
//! baseline measured on one executor is never mistaken for the other.
//!
//! Every entry is stamped with the git commit it ran on (`commit` field,
//! short hash, `-dirty` when the tree had uncommitted changes), so the
//! perf trajectory in the committed baselines stays reconstructable PR
//! over PR. Convention: a committed baseline is regenerated *just before*
//! the commit that ships it, so its stamp reads `<parent-commit>-dirty` —
//! i.e. "the state that grew out of `<parent-commit>`"; the child commit
//! is the one whose tree contains the baseline. CI-fresh reports (clean
//! checkouts) stamp the exact commit under test.

use inflog::core::graphs::DiGraph;
use inflog::core::Tuple;
use inflog::eval::ExecKind;
use inflog::eval::{
    inflationary_with, least_fixpoint_naive, least_fixpoint_seminaive_with, query,
    stratified_eval_with, well_founded_with, CompiledProgram, DurableMaterialized, DurableOpts,
    Engine, EvalOptions, MaterializeOpts, Materialized, QueryOpts,
};
use inflog::fixpoint::GroundProgram;
use inflog::reductions::programs::{distance_program, pi3_tc};
use inflog::serve::{ServeOptions, Server};
use inflog::syntax::{parse_atom, parse_program};
use inflog_bench::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The git commit the workload ran on (short hash, `-dirty` when the tree
/// has uncommitted changes, `unknown` outside a repository) — stamped into
/// every report entry so the performance trajectory stays reconstructable
/// across PRs. Committed baselines are generated pre-commit and therefore
/// read `<parent-commit>-dirty` (see the module docs); clean CI checkouts
/// stamp the commit under test exactly.
fn git_commit() -> String {
    let run = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
    };
    let hash = run(&["rev-parse", "--short", "HEAD"])
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .filter(|h| !h.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    let dirty = run(&["status", "--porcelain"]).is_some_and(|o| !o.stdout.is_empty());
    if dirty {
        format!("{hash}-dirty")
    } else {
        hash
    }
}

/// One suite's measurement: derived tuple throughput over `iters` runs.
struct BenchResult {
    name: &'static str,
    params: String,
    threads: usize,
    iters: u32,
    wall_ns: u128,
    tuples: usize,
}

impl BenchResult {
    fn tuples_per_sec(&self) -> f64 {
        let total = self.tuples as f64 * f64::from(self.iters);
        total / (self.wall_ns as f64 / 1e9)
    }
}

/// Times `iters` runs of `f` (after one warm-up); `f` returns the number of
/// tuples its engine derived, the throughput numerator. A suite whose name
/// does not contain the `--filter` substring is skipped entirely — not even
/// warmed up — and contributes no entry.
fn bench(
    filter: Option<&str>,
    name: &'static str,
    params: String,
    threads: usize,
    iters: u32,
    mut f: impl FnMut() -> usize,
) -> Option<BenchResult> {
    if filter.is_some_and(|pat| !name.contains(pat)) {
        return None;
    }
    let tuples = f(); // warm-up, untimed
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let wall_ns = start.elapsed().as_nanos();
    Some(BenchResult {
        name,
        params,
        threads,
        iters,
        wall_ns,
        tuples,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json").into());
    let filter: Option<String> = args.iter().position(|a| a == "--filter").map(|i| {
        args.get(i + 1)
            .expect("--filter requires a substring, e.g. --filter seminaive")
            .clone()
    });
    let thread_counts: Vec<usize> = match args.iter().position(|a| a == "--threads") {
        None => vec![1],
        // A dangling flag must fail loudly: silently falling back to the
        // single-thread grid would quietly disable the multi-thread gate.
        Some(i) => args
            .get(i + 1)
            .expect("--threads requires a value, e.g. --threads 1,4")
            .split(',')
            .map(|t| t.trim().parse().expect("--threads takes e.g. 1,4"))
            .collect(),
    };

    let (tc_n, tc_gnp_n, naive_n, dist_n, ground_n, wf_n, wf_gnp_n, infneg_n, strat_n, iters) =
        if quick {
            (200, 80, 80, 9, 6, 96, 64, 48, 64, 3)
        } else {
            (400, 120, 120, 11, 7, 160, 96, 72, 96, 5)
        };
    // Point-query workloads: goal-directed evaluation vs full-fixpoint-then-
    // filter on the same inputs (the `query_*` / `full_filter_*` suite pairs).
    let (q_reach_n, q_win_n) = if quick { (120, 192) } else { (160, 256) };
    // Incremental-maintenance workloads: single-fact updates on a warm
    // `Materialized` handle vs re-evaluating the fixpoint from scratch (the
    // `incr_*` / `full_reeval_*` suite pairs).
    let (incr_n, incr_wf_n) = if quick { (96, 96) } else { (160, 160) };

    let tc = pi3_tc();
    let dist = distance_program();
    let win = parse_program("Win(x) :- Move(x, y), !Win(y).").expect("valid program");
    // Win-move plus positive recursion guarded by the non-stratified
    // predicate: exercises the incremental engine's deletion cascade.
    let win_reach = parse_program(
        "Win(x) :- Move(x, y), !Win(y).
         Safe(x, y) :- Move(x, y), !Win(x).
         Safe(x, y) :- Safe(x, z), Move(z, y), !Win(y).",
    )
    .expect("valid program");
    // Inflationary semantics over a negation-heavy program: the asymmetric
    // closure keeps deriving through decaying negations round after round.
    let inf_neg = parse_program(
        "R(x, y) :- E(x, y).
         R(x, y) :- E(x, z), R(z, y).
         N(x, y) :- R(x, y), !R(y, x).
         D(x) :- E(x, y), !N(x, y).",
    )
    .expect("valid program");
    let tc_comp =
        parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y). C(x, y) :- !S(x, y).")
            .expect("valid program");

    let path_db = DiGraph::path(tc_n).to_database("E");
    let mut rng = StdRng::seed_from_u64(7);
    let gnp_db = DiGraph::random_gnp(tc_gnp_n, 0.08, &mut rng).to_database("E");
    let naive_db = DiGraph::path(naive_n).to_database("E");
    let dist_db = DiGraph::path(dist_n).to_database("E");
    let ground_db = DiGraph::path(ground_n).to_database("E");
    let wf_db = {
        // A long path plus a tail cycle: total and undefined regions.
        let mut g = DiGraph::path(wf_n);
        g.add_edge(0, (wf_n - 1) as u32);
        g.to_database("Move")
    };
    let wf_gnp_db = {
        let mut rng = StdRng::seed_from_u64(11);
        DiGraph::random_gnp(wf_gnp_n, 0.04, &mut rng).to_database("Move")
    };
    let inf_neg_db = {
        let mut rng = StdRng::seed_from_u64(13);
        DiGraph::random_gnp(infneg_n, 0.05, &mut rng).to_database("E")
    };
    let strat_db = DiGraph::path(strat_n).to_database("E");
    // Left-linear transitive closure: with the left-to-right binding
    // strategy, the recursive occurrence S(x, z) keeps the *source* bound,
    // so the magic rewrite of `S('v0', y)` demands exactly {v0} and derives
    // single-source reachability — the demand-friendly formulation from the
    // magic-sets literature. (Right-linear TC would re-demand every reached
    // vertex and degenerate to the reachable subgraph's full closure.)
    let tc_left =
        parse_program("S(x, y) :- E(x, y). S(x, y) :- S(x, z), E(z, y).").expect("valid program");
    let q_reach_db = {
        let mut rng = StdRng::seed_from_u64(19);
        DiGraph::random_gnp(q_reach_n, 0.03, &mut rng).to_database("E")
    };
    let q_win_db = DiGraph::path(q_win_n).to_database("Move");
    let reach_goal = parse_atom("S('v0', y)").expect("valid goal");
    // Point query against the win/move bench program (`win_reach`: Win plus
    // the quadratic Safe closure). Demand for a Win goal never reaches
    // Safe, and the goal sits 16 vertices from the sink, so the query's
    // cone is the 16-vertex path tail (odd distance to the sink — a
    // winning position) while full evaluation also materializes the
    // O(n^2) Safe relation the goal does not depend on.
    let win_goal = parse_atom(&format!("Win('v{}')", q_win_n - 16)).expect("valid goal");

    // Incremental view maintenance: a warm `Materialized` handle absorbing
    // single-fact updates. The TC/G(n,p) pair exercises the delete–rederive
    // repair path (semi-naive engine); the win/move pair is the honest
    // restart-fallback number (non-stratifiable program, well-founded
    // engine re-evaluates from scratch on every update).
    let incr_gnp_db = {
        let mut rng = StdRng::seed_from_u64(23);
        DiGraph::random_gnp(incr_n, 0.08, &mut rng).to_database("E")
    };
    // A pool of vertex pairs with no edge — facts genuinely absent from
    // the EDB, so every timed iteration inserts a fact the handle has
    // never seen (the pool is larger than any grid's iteration count).
    let fresh_edges: Vec<Tuple> = {
        let e = incr_gnp_db.relation("E").expect("edges interned");
        let n = incr_n as u32;
        (0..n)
            .flat_map(|u| (0..n).map(move |v| (u, v)))
            .filter(|&(u, v)| u != v)
            .map(|(u, v)| Tuple::from_ids(&[u, v]))
            .filter(|t| !e.contains(t))
            .take(1024)
            .collect()
    };
    let incr_wf_db = {
        let mut g = DiGraph::path(incr_wf_n);
        g.add_edge(0, (incr_wf_n - 1) as u32);
        g.to_database("Move")
    };
    let moved_edge = incr_wf_db
        .relation("Move")
        .expect("edges interned")
        .sorted()[0]
        .clone();

    let mut results = Vec::new();
    for &threads in &thread_counts {
        let opts = EvalOptions::with_threads(threads);
        results.extend(bench(
            filter.as_deref(),
            "seminaive_tc_path",
            format!("n={tc_n}"),
            threads,
            iters,
            || {
                least_fixpoint_seminaive_with(&tc, &path_db, &opts)
                    .expect("positive")
                    .1
                    .final_tuples
            },
        ));
        results.extend(bench(
            filter.as_deref(),
            "seminaive_tc_gnp",
            format!("n={tc_gnp_n},p=0.08,seed=7"),
            threads,
            iters,
            || {
                least_fixpoint_seminaive_with(&tc, &gnp_db, &opts)
                    .expect("positive")
                    .1
                    .final_tuples
            },
        ));
        if threads == 1 {
            // The naive engine and the grounder have no parallel path.
            results.extend(bench(
                filter.as_deref(),
                "naive_tc_path",
                format!("n={naive_n}"),
                threads,
                iters,
                || {
                    least_fixpoint_naive(&tc, &naive_db)
                        .expect("positive")
                        .1
                        .final_tuples
                },
            ));
            results.extend(bench(
                filter.as_deref(),
                "grounding_distance",
                format!("n={ground_n}"),
                threads,
                iters,
                || {
                    GroundProgram::build(&dist, &ground_db)
                        .expect("compiles")
                        .num_bodies()
                },
            ));
            // Goal-directed point queries and their full-fixpoint-then-
            // filter baselines, on identical inputs. Measured single-thread
            // (the demand cones are far below the parallel threshold).
            let qopts = QueryOpts {
                eval: opts.clone(),
                ..QueryOpts::default()
            };
            results.extend(bench(
                filter.as_deref(),
                "query_reachable_src",
                format!("n={q_reach_n},p=0.03,seed=19,goal=v0"),
                threads,
                iters,
                || {
                    query(&tc_left, &reach_goal, &q_reach_db, &qopts)
                        .expect("stratified query")
                        .tuples
                        .len()
                },
            ));
            results.extend(bench(
                filter.as_deref(),
                "full_filter_reachable_src",
                format!("n={q_reach_n},p=0.03,seed=19,goal=v0"),
                threads,
                iters,
                || {
                    let cp = CompiledProgram::compile(&tc_left, &q_reach_db).expect("compiles");
                    let (m, _) =
                        stratified_eval_with(&tc_left, &q_reach_db, &opts).expect("stratified");
                    let sid = cp.idb_id("S").expect("S is IDB");
                    let v0 = q_reach_db.universe().lookup("v0").expect("interned");
                    m.get(sid).iter().filter(|t| t[0] == v0).count()
                },
            ));
            results.extend(bench(
                filter.as_deref(),
                "query_win_point",
                format!("n={q_win_n},goal=v{}", q_win_n - 16),
                threads,
                iters,
                || {
                    let a = query(&win_reach, &win_goal, &q_win_db, &qopts).expect("cone query");
                    a.tuples.len() + a.undefined.len()
                },
            ));
            results.extend(bench(
                filter.as_deref(),
                "full_filter_win_point",
                format!("n={q_win_n},goal=v{}", q_win_n - 16),
                threads,
                iters,
                || {
                    let cp = CompiledProgram::compile(&win_reach, &q_win_db).expect("compiles");
                    let m = well_founded_with(&win_reach, &q_win_db, &opts).expect("total");
                    let wid = cp.idb_id("Win").expect("Win is IDB");
                    let vk = q_win_db
                        .universe()
                        .lookup(&format!("v{}", q_win_n - 16))
                        .expect("interned");
                    m.true_facts.get(wid).iter().filter(|t| t[0] == vk).count()
                        + m.undefined.get(wid).iter().filter(|t| t[0] == vk).count()
                },
            ));
            // Incremental maintenance vs full re-evaluation, single-thread
            // (a single-fact repair cone is far below the fork threshold).
            results.extend(bench(
                filter.as_deref(),
                "full_reeval_tc_gnp",
                format!("n={incr_n},p=0.08,seed=23"),
                threads,
                iters,
                || {
                    least_fixpoint_seminaive_with(&tc, &incr_gnp_db, &opts)
                        .expect("positive")
                        .1
                        .final_tuples
                },
            ));
            let mopts = MaterializeOpts {
                engine: Engine::Seminaive,
                eval: opts.clone(),
            };
            let mut m_tc = Materialized::new(&tc, &incr_gnp_db, &mopts).expect("positive program");
            let mut next_edge = 0usize;
            results.extend(bench(
                filter.as_deref(),
                "incr_insert_tc_gnp",
                format!("n={incr_n},p=0.08,seed=23"),
                threads,
                iters * 40,
                || {
                    // One single-fact insert per iteration, each a fact the
                    // handle has never seen: the delete–rederive insert path
                    // costs work proportional to the *newly derivable*
                    // tuples, not the database (the warm closure absorbs
                    // most inserts with a handful of index probes).
                    let e = fresh_edges[next_edge % fresh_edges.len()].clone();
                    next_edge += 1;
                    m_tc.insert(&[("E", e)]).expect("valid fact");
                    m_tc.interp().total_tuples()
                },
            ));
            results.extend(bench(
                filter.as_deref(),
                "full_reeval_win_move",
                format!("n={incr_wf_n}"),
                threads,
                iters,
                || {
                    let m = well_founded_with(&win, &incr_wf_db, &opts).expect("total");
                    m.true_facts.total_tuples() + m.undefined.total_tuples()
                },
            ));
            let wf_mopts = MaterializeOpts {
                engine: Engine::WellFounded,
                eval: opts.clone(),
            };
            let mut m_wf =
                Materialized::new(&win, &incr_wf_db, &wf_mopts).expect("well-founded is total");
            results.extend(bench(
                filter.as_deref(),
                "incr_retract_win_move",
                format!("n={incr_wf_n}"),
                threads,
                iters,
                || {
                    // Non-stratifiable program: each update re-evaluates via
                    // the documented restart fallback, so this pair records
                    // the honest ~2-restarts-per-iteration cost rather than
                    // a repair win.
                    m_wf.retract(&[("Move", moved_edge.clone())])
                        .expect("valid fact");
                    m_wf.insert(&[("Move", moved_edge.clone())])
                        .expect("valid fact");
                    m_wf.interp().total_tuples() + m_wf.undefined().total_tuples()
                },
            ));
            // Crash recovery vs full re-evaluation: open a durable store
            // directory (newest snapshot + a 32-record WAL replay through
            // the delete–rederive repair path) instead of recomputing the
            // fixpoint from scratch. The store lives under the workspace
            // `target/` so benches never touch system temp.
            let store_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/tmp/bench_recover_tc_gnp");
            let _ = std::fs::remove_dir_all(&store_dir);
            let dopts = DurableOpts {
                engine: Engine::Seminaive,
                eval: opts.clone(),
                ..DurableOpts::default()
            };
            let mut dm = DurableMaterialized::create(&tc, &incr_gnp_db, &store_dir, &dopts)
                .expect("store dir writable");
            for e in fresh_edges.iter().take(32) {
                dm.insert(&[("E", e.clone())]).expect("valid fact");
            }
            drop(dm);
            results.extend(bench(
                filter.as_deref(),
                "recover_tc_gnp",
                format!("n={incr_n},p=0.08,seed=23,wal=32"),
                threads,
                iters,
                || {
                    let dm = DurableMaterialized::open(&tc, &store_dir, &dopts)
                        .expect("healthy store recovers");
                    dm.interp().total_tuples()
                },
            ));
            // Serving-layer query throughput: R concurrent reader threads
            // issuing point selects against a live `Server` (epoch pin +
            // admission + indexed select per request). The numerator is
            // *queries*, so `tuples_per_sec` reads as queries/sec. Each
            // reader count is recorded with `threads = R` — the committed
            // baseline carries the 1/4/8-reader curve, and `bench_gate`
            // skips counts the host cannot honestly run.
            let serve_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/tmp/bench_serve_qps");
            let _ = std::fs::remove_dir_all(&serve_dir);
            let sopts = ServeOptions {
                engine: Engine::Seminaive,
                eval: opts.clone(),
                ..ServeOptions::quiet()
            };
            let server = std::sync::Arc::new(
                Server::create(&tc_left, &q_reach_db, &serve_dir, &sopts)
                    .expect("store dir writable"),
            );
            let goals: std::sync::Arc<Vec<_>> = std::sync::Arc::new(
                (0..q_reach_n)
                    .map(|i| parse_atom(&format!("S('v{i}', y)")).expect("valid goal"))
                    .collect(),
            );
            let serve_q: usize = if quick { 256 } else { 1024 };
            for readers in [1usize, 4, 8] {
                results.extend(bench(
                    filter.as_deref(),
                    "serve_qps",
                    format!("n={q_reach_n},p=0.03,seed=19,q={serve_q}"),
                    readers,
                    iters,
                    || {
                        let handles: Vec<_> = (0..readers)
                            .map(|r| {
                                let server = std::sync::Arc::clone(&server);
                                let goals = std::sync::Arc::clone(&goals);
                                std::thread::spawn(move || {
                                    for i in 0..serve_q {
                                        // Deterministic per-thread goal walk.
                                        let g = &goals[(r * 131 + i * 7) % goals.len()];
                                        let reply =
                                            server.query(g, None).expect("no deadline, no shed");
                                        std::hint::black_box(reply.answer.tuples.len());
                                    }
                                    serve_q
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("reader")).sum()
                    },
                ));
            }
        }
        results.extend(bench(
            filter.as_deref(),
            "inflationary_distance",
            format!("n={dist_n}"),
            threads,
            iters,
            || {
                inflationary_with(&dist, &dist_db, &opts)
                    .expect("total")
                    .1
                    .final_tuples
            },
        ));
        results.extend(bench(
            filter.as_deref(),
            "wellfounded_win_move",
            format!("n={wf_n}"),
            threads,
            iters,
            || {
                let m = well_founded_with(&win, &wf_db, &opts).expect("total semantics");
                m.true_facts.total_tuples() + m.undefined.total_tuples()
            },
        ));
        results.extend(bench(
            filter.as_deref(),
            "wellfounded_win_move_gnp",
            format!("n={wf_gnp_n},p=0.04,seed=11"),
            threads,
            iters,
            || {
                let m = well_founded_with(&win_reach, &wf_gnp_db, &opts)
                    .expect("well-founded is total");
                m.true_facts.total_tuples() + m.undefined.total_tuples()
            },
        ));
        results.extend(bench(
            filter.as_deref(),
            "inflationary_negation_gnp",
            format!("n={infneg_n},p=0.05,seed=13"),
            threads,
            iters,
            || {
                inflationary_with(&inf_neg, &inf_neg_db, &opts)
                    .expect("total")
                    .1
                    .final_tuples
            },
        ));
        results.extend(bench(
            filter.as_deref(),
            "stratified_tc_complement",
            format!("n={strat_n}"),
            threads,
            iters,
            || {
                stratified_eval_with(&tc_comp, &strat_db, &opts)
                    .expect("stratified")
                    .1
                    .final_tuples
            },
        ));
    }

    let mut table = Table::new(&[
        "bench",
        "params",
        "threads",
        "iters",
        "wall_ms",
        "tuples",
        "tuples/sec",
    ]);
    for r in &results {
        table.row_strings(vec![
            r.name.to_owned(),
            r.params.clone(),
            r.threads.to_string(),
            r.iters.to_string(),
            format!("{:.2}", r.wall_ns as f64 / 1e6),
            r.tuples.to_string(),
            format!("{:.0}", r.tuples_per_sec()),
        ]);
    }
    table.print();

    // Point-query speedups over full-fixpoint-then-filter, and incremental
    // update latency over full re-evaluation (same inputs): the
    // goal-directed acceptance bar is ≥ 5× wall time, the delete–rederive
    // one ≥ 10× (the restart-fallback win/move pair is expected ~0.5×:
    // two restarts per iteration).
    for (q, full) in [
        ("query_reachable_src", "full_filter_reachable_src"),
        ("query_win_point", "full_filter_win_point"),
        ("incr_insert_tc_gnp", "full_reeval_tc_gnp"),
        ("incr_retract_win_move", "full_reeval_win_move"),
        ("recover_tc_gnp", "full_reeval_tc_gnp"),
    ] {
        let wall = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.wall_ns as f64 / f64::from(r.iters))
        };
        if let (Some(qw), Some(fw)) = (wall(q), wall(full)) {
            println!(
                "{q}: {:.1}x faster than {full} ({:.3} ms vs {:.3} ms per query)",
                fw / qw,
                qw / 1e6,
                fw / 1e6
            );
        }
    }

    // Which executor actually ran the suites: every suite builds its options
    // with `exec: None`, so the per-process `INFLOG_EXEC` resolution that
    // `exec_kind` performs is exactly what the measurements saw.
    let exec = match EvalOptions::sequential().exec_kind() {
        ExecKind::Vm => "vm",
        ExecKind::Tree => "tree",
    };
    if exec != "vm" {
        println!("note: measured with the {exec} executor (INFLOG_EXEC)");
    }

    let json = render_json(&results, quick, exec, &git_commit());
    std::fs::write(&out_path, json).expect("write BENCH_eval.json");
    println!("\nwrote {out_path}");
}

/// Renders the report as JSON by hand (the workspace is dependency-free).
/// The `exec` stamp is a **top-level** field, not part of each entry's
/// params, so `bench_gate`'s `(name, params, threads)` matching is
/// unaffected — the stamp is for humans auditing a committed baseline.
fn render_json(results: &[BenchResult], quick: bool, exec: &str, commit: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "standard" }
    ));
    out.push_str(&format!("  \"exec\": \"{exec}\",\n"));
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"params\": \"{}\", \"threads\": {}, \"commit\": \"{commit}\", \"ops\": {}, \"wall_ns\": {}, \"tuples\": {}, \"tuples_per_sec\": {:.1}}}{}\n",
            r.name,
            r.params,
            r.threads,
            r.iters,
            r.wall_ns,
            r.tuples,
            r.tuples_per_sec(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
