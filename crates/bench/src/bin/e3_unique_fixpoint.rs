//! E3 — Theorem 2: π-UNIQUE-FIXPOINT and the class US.
//!
//! The proof rests on a bijection between satisfying assignments of `I` and
//! fixpoints of `(π_SAT, D(I))`; this experiment tabulates exact model
//! counts against exact fixpoint counts, flags the unique cases, and also
//! reports the paper's other US illustration (unique Hamilton circuits).

use inflog::core::graphs::DiGraph;
use inflog::fixpoint::FixpointAnalyzer;
use inflog::reductions::hamilton::count_hamilton_circuits;
use inflog::reductions::programs::pi_sat;
use inflog::reductions::sat_db::cnf_to_database;
use inflog::sat::gen::{planted_ksat, random_ksat};
use inflog::sat::{brute_force_count, Cnf, Lit, Var};
use inflog_bench::{banner, full_mode, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn crafted_unique(n: usize) -> Cnf {
    // x0 ∧ x1 ∧ ... ∧ x_{n-1}: exactly one model.
    let mut cnf = Cnf::with_vars(n);
    for i in 0..n {
        cnf.add_clause(vec![Lit::new(Var(i as u32), true)]);
    }
    cnf
}

fn main() {
    banner(
        "E3",
        "unique fixpoints, model/fixpoint bijection, US illustrations",
        "Theorem 2 (+ the unique-Hamilton-circuit US example)",
    );
    let full = full_mode();
    let mut rng = StdRng::seed_from_u64(33);
    let trials = if full { 24 } else { 10 };

    let mut t = Table::new(&[
        "instance",
        "#models",
        "#fixpoints",
        "bijection",
        "unique SAT",
        "unique fixpoint",
    ]);
    let mut cases: Vec<(String, Cnf)> = vec![
        ("crafted unique (n=4)".into(), crafted_unique(4)),
        ("unsat (x & !x)".into(), {
            let mut c = Cnf::with_vars(1);
            c.add_clause(vec![Var(0).pos()]);
            c.add_clause(vec![Var(0).neg()]);
            c
        }),
    ];
    for i in 0..trials {
        cases.push((
            format!("random 3-SAT #{i}"),
            random_ksat(4, 6 + (i as usize % 8), 3, &mut rng),
        ));
    }
    for i in 0..3 {
        let (cnf, _) = planted_ksat(4, 10, 3, &mut rng);
        cases.push((format!("planted SAT #{i}"), cnf));
    }

    let mut unique_cases = 0;
    for (name, cnf) in cases {
        let models = brute_force_count(&cnf);
        let db = cnf_to_database(&cnf);
        let analyzer = FixpointAnalyzer::new(&pi_sat(), &db).expect("compiles");
        let (fps, complete) = analyzer.count_fixpoints(1 << 14);
        assert!(complete);
        assert_eq!(models, fps, "Theorem 2 bijection violated on {name}");
        let unique = analyzer.has_unique_fixpoint();
        assert_eq!(unique, models == 1);
        unique_cases += u32::from(unique);
        t.row(&[&name, &models, &fps, &"1:1", &(models == 1), &unique]);
    }
    t.print();
    println!("unique-fixpoint cases observed: {unique_cases}");

    println!("\nUS companion: unique Hamilton circuits");
    let mut t2 = Table::new(&["graph", "#hamilton circuits (cap 10)", "unique?"]);
    let graphs: Vec<(&str, DiGraph)> = vec![
        ("directed C6", DiGraph::cycle(6)),
        ("K4 (both directions)", DiGraph::complete(4)),
        ("path L5", DiGraph::path(5)),
        ("2 x C3 disjoint", DiGraph::disjoint_cycles(2, 3)),
    ];
    for (name, g) in graphs {
        let c = count_hamilton_circuits(&g, 10);
        t2.row(&[&name, &c, &(c == 1)]);
    }
    t2.print();
}
