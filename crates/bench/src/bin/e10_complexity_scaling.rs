//! E10 — data complexity vs expression complexity (§3 intro + Theorem 4 +
//! the \[Va82\] contrast the paper cites).
//!
//! Fixed program, growing data: grounding size, completion-CNF size and
//! inflationary runtime grow polynomially. Growing program (succinct
//! circuits): the tuple space grows exponentially in the address width.

use inflog::circuit::encode::succinct_cycle;
use inflog::circuit::succinct_coloring_reduction;
use inflog::core::graphs::DiGraph;
use inflog::eval::inflationary;
use inflog::fixpoint::FixpointAnalyzer;
use inflog::reductions::programs::{pi1, pi_sat};
use inflog::reductions::sat_db::cnf_to_database;
use inflog::sat::gen::random_ksat;
use inflog_bench::{banner, full_mode, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    banner(
        "E10",
        "data complexity (poly) vs expression complexity (exponential)",
        "Section 3 (NP upper bound), Theorem 4, [Va82] contrast",
    );
    let full = full_mode();
    let mut rng = StdRng::seed_from_u64(1010);

    println!("\n(a) fixed program pi_SAT, growing data (random 3-SAT, m = 4n)");
    let mut t = Table::new(&[
        "n vars",
        "|A|",
        "ground tuples",
        "ground bodies",
        "cnf vars",
        "cnf clauses",
        "exists? (ms)",
    ]);
    // The toggle rule T(z) <- !Q(u), !T(w) grounds to |A|^3 bodies, so the
    // grid stops where that stays in memory (|A| = 5n for these instances).
    let sizes: Vec<usize> = if full {
        vec![4, 8, 12, 16, 20]
    } else {
        vec![4, 8, 12, 16]
    };
    let mut last_tuples = 0usize;
    for &n in &sizes {
        let cnf = random_ksat(n, 4 * n, 3, &mut rng);
        let db = cnf_to_database(&cnf);
        let start = Instant::now();
        let analyzer = FixpointAnalyzer::new(&pi_sat(), &db).expect("compiles");
        let exists = analyzer.fixpoint_exists();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let g = &analyzer.ground;
        // Polynomial shape: |A| = 5n, IDBs unary ⇒ tuples = 3·|A| exactly.
        assert_eq!(g.total_tuples, 3 * db.universe_size());
        assert!(g.total_tuples >= last_tuples);
        last_tuples = g.total_tuples;
        t.row(&[
            &n,
            &db.universe_size(),
            &g.total_tuples,
            &g.num_bodies(),
            &analyzer.encoding.cnf.num_vars(),
            &analyzer.encoding.cnf.num_clauses(),
            &format!("{exists} ({ms:.1})"),
        ]);
    }
    t.print();

    println!("\n(b) fixed program pi_1, growing data: inflationary evaluation is polynomial");
    let mut t = Table::new(&["|A| (cycle)", "rounds", "tuples", "time (ms)"]);
    let sizes: Vec<usize> = if full {
        vec![50, 100, 200, 400, 800]
    } else {
        vec![25, 50, 100, 200]
    };
    for &n in &sizes {
        let db = DiGraph::cycle(n).to_database("E");
        let start = Instant::now();
        let (inf, trace) = inflationary(&pi1(), &db).expect("total");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        t.row(&[&n, &trace.rounds, &inf.total_tuples(), &format!("{ms:.2}")]);
    }
    t.print();

    println!("\n(c) program part of the input: succinct cycles, exponential tuple space");
    let mut t = Table::new(&[
        "address bits",
        "circuit gates",
        "program rules",
        "vertices",
        "ground tuples",
        "cnf vars",
        "build+solve (ms)",
    ]);
    let max_bits = if full { 4 } else { 3 };
    let mut prev = 0usize;
    for bits in 1..=max_bits {
        let sg = succinct_cycle(bits);
        let red = succinct_coloring_reduction(&sg);
        let start = Instant::now();
        let analyzer = FixpointAnalyzer::new(&red.program, &red.database).expect("compiles");
        let _ = analyzer.fixpoint_exists();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let tuples = analyzer.ground.total_tuples;
        assert!(tuples > 2 * prev, "exponential growth expected");
        prev = tuples;
        t.row(&[
            &bits,
            &sg.circuit().num_gates(),
            &red.program.len(),
            &sg.num_vertices(),
            &tuples,
            &analyzer.encoding.cnf.num_vars(),
            &format!("{ms:.1}"),
        ]);
    }
    t.print();

    println!(
        "\nshape summary: (a)+(b) polynomial in the data for fixed programs —\n\
         the paper's NP membership / PTIME inflationary claims; (c) exponential\n\
         in the program — the NEXP-hardness side (Theorem 4)."
    );
}
