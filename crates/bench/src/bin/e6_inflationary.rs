//! E6 — §4: Inflationary DATALOG is total, conservative over DATALOG, and
//! polynomially bounded.
//!
//! Tables: (a) iteration counts vs the |A|^k bound across programs and
//! databases; (b) coincidence with the standard least-fixpoint semantics on
//! negation-free programs; (c) the paper's two §4 mini-examples
//! (the toggle and π₁ stabilize after one round).

use inflog::core::graphs::DiGraph;
use inflog::eval::{inflationary, least_fixpoint_seminaive};
use inflog::reductions::programs::{distance_program, pi1, pi2, pi3_tc, toggle};
use inflog_bench::{banner, full_mode, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    banner(
        "E6",
        "Inflationary DATALOG: totality, conservativity, polynomial bound",
        "Section 4 (definition, remarks, examples)",
    );
    let full = full_mode();
    let mut rng = StdRng::seed_from_u64(66);

    println!("\n(a) iteration counts vs the Σ|A|^k bound");
    let mut t = Table::new(&[
        "program",
        "database",
        "|A|",
        "rounds",
        "bound Σ|A|^k",
        "tuples",
        "time (ms)",
    ]);
    let sizes: Vec<usize> = if full {
        vec![4, 8, 16, 32, 64]
    } else {
        vec![4, 8, 16]
    };
    let programs: Vec<(&str, inflog::syntax::Program, Vec<usize>)> = vec![
        ("toggle", toggle(), vec![1]),
        ("pi_1", pi1(), vec![1]),
        ("pi_2", pi2(), vec![2, 4]),
        ("pi_3 (TC)", pi3_tc(), vec![2]),
        ("distance", distance_program(), vec![2, 2, 4]),
    ];
    for &n in &sizes {
        let g = DiGraph::cycle(n);
        let db = g.to_database("E");
        for (name, program, arities) in &programs {
            let start = Instant::now();
            let (result, trace) = inflationary(program, &db).expect("total");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let bound: usize = arities.iter().map(|&k| n.pow(k as u32)).sum();
            assert!(trace.rounds <= bound, "{name} exceeded the paper's bound");
            t.row(&[
                name,
                &format!("C_{n}"),
                &n,
                &trace.rounds,
                &bound,
                &result.total_tuples(),
                &format!("{ms:.2}"),
            ]);
        }
    }
    t.print();

    println!("\n(b) coincidence with least-fixpoint semantics on DATALOG programs");
    let mut t = Table::new(&["database", "lfp tuples", "inflationary tuples", "equal"]);
    for _ in 0..(if full { 8 } else { 4 }) {
        let g = DiGraph::random_gnp(10, 0.2, &mut rng);
        let db = g.to_database("E");
        let (lfp, _) = least_fixpoint_seminaive(&pi3_tc(), &db).expect("positive");
        let (inf, _) = inflationary(&pi3_tc(), &db).expect("total");
        assert_eq!(lfp, inf);
        t.row(&[
            &format!("G(10,0.2) m={}", g.num_edges()),
            &lfp.total_tuples(),
            &inf.total_tuples(),
            &true,
        ]);
    }
    t.print();

    println!("\n(c) the paper's Section 4 mini-examples");
    let mut t = Table::new(&["program", "database", "Theta^inf", "rounds", "paper says"]);
    let mut db = inflog::core::Database::new();
    for c in ["a", "b", "c"] {
        db.universe_mut().intern(c);
    }
    let (inf, trace) = inflationary(&toggle(), &db).expect("total");
    t.row(&[
        &"T(x) <- !T(y)",
        &"A = {a,b,c}",
        &format!("{} tuples (= A)", inf.total_tuples()),
        &trace.rounds,
        &"Theta^inf = Theta^1 = A",
    ]);
    let g = DiGraph::path(5);
    let (inf, trace) = inflationary(&pi1(), &g.to_database("E")).expect("total");
    t.row(&[
        &"pi_1",
        &"L_5",
        &format!("{} tuples", inf.total_tuples()),
        &trace.rounds,
        &"Theta^inf = {x : ∃y E(y,x)}",
    ]);
    t.print();
}
