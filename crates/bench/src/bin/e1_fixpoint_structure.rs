//! E1 — §2's worked example: the fixpoint structure of π₁ on paths, cycles
//! and disjoint unions of even cycles.
//!
//! Expected shape (the paper's claims): L_n has exactly one fixpoint (the
//! even positions, ⌊n/2⌋ tuples); C_n has none when n is odd and exactly
//! two incomparable ones when n is even; G_n (n copies of C₂) has 2^n
//! pairwise incomparable fixpoints and therefore no least fixpoint.

use inflog::core::graphs::DiGraph;
use inflog::fixpoint::{FixpointAnalyzer, LeastFixpointResult};
use inflog::reductions::programs::pi1;
use inflog_bench::{banner, full_mode, Table};

fn analyze(g: &DiGraph, limit: u64) -> (u64, bool, &'static str, bool) {
    let db = g.to_database("E");
    let analyzer = FixpointAnalyzer::new(&pi1(), &db).expect("compiles");
    let fps = analyzer.enumerate_fixpoints(limit);
    let complete = (fps.len() as u64) < limit;
    let least = match analyzer.least_fixpoint_fonp().0 {
        LeastFixpointResult::Least(_) => "yes",
        LeastFixpointResult::NoLeast => "no",
        LeastFixpointResult::NoFixpoint => "-",
    };
    let incomparable = fps.len() >= 2
        && fps
            .iter()
            .enumerate()
            .all(|(i, a)| fps[i + 1..].iter().all(|b| a.incomparable(b)));
    (fps.len() as u64, complete, least, incomparable)
}

fn main() {
    banner(
        "E1",
        "fixpoint structure of pi_1 = T(x) <- E(y,x), !T(y)",
        "Section 2, p.129 (L_n / C_n / G_n example)",
    );
    let full = full_mode();
    let max_n = if full { 14 } else { 9 };
    let max_copies = if full { 10 } else { 6 };

    let mut t = Table::new(&[
        "family",
        "n",
        "vertices",
        "#fixpoints",
        "expected",
        "least?",
        "pairwise incomparable",
    ]);
    for n in 2..=max_n {
        let (count, complete, least, inc) = analyze(&DiGraph::path(n), 1 << 16);
        assert!(complete);
        t.row(&[
            &"L_n (path)",
            &n,
            &n,
            &count,
            &1,
            &least,
            &(if count >= 2 {
                inc.to_string()
            } else {
                "-".into()
            }),
        ]);
    }
    for n in 2..=max_n {
        let (count, complete, least, inc) = analyze(&DiGraph::cycle(n), 1 << 16);
        assert!(complete);
        let expected = if n % 2 == 0 { 2 } else { 0 };
        t.row(&[
            &"C_n (cycle)",
            &n,
            &n,
            &count,
            &expected,
            &least,
            &(if count >= 2 {
                inc.to_string()
            } else {
                "-".into()
            }),
        ]);
    }
    for copies in 1..=max_copies {
        let (count, complete, least, inc) = analyze(&DiGraph::disjoint_cycles(copies, 2), 1 << 16);
        assert!(complete);
        t.row(&[
            &"G_n (n x C_2)",
            &copies,
            &(2 * copies),
            &count,
            &(1u64 << copies),
            &least,
            &(if count >= 2 {
                inc.to_string()
            } else {
                "-".into()
            }),
        ]);
    }
    t.print();

    println!("\nodd-length disjoint cycles (no fixpoint at all):");
    let mut t2 = Table::new(&["copies x C_3", "#fixpoints"]);
    for copies in 1..=3 {
        let (count, _, _, _) = analyze(&DiGraph::disjoint_cycles(copies, 3), 4);
        t2.row(&[&copies, &count]);
    }
    t2.print();
}
