//! E8 — Proposition 2: the distance query, and the inflationary/stratified
//! divergence on the very same program.

use inflog::core::graphs::DiGraph;
use inflog::eval::{inflationary, stratified_eval, CompiledProgram};
use inflog::reductions::distance::{distance_query_baseline, stratified_reading_baseline};
use inflog::reductions::programs::distance_program;
use inflog_bench::{banner, full_mode, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    banner(
        "E8",
        "the distance query: inflationary vs stratified vs BFS baselines",
        "Proposition 2 + Section 4 closing remark",
    );
    let full = full_mode();
    let mut rng = StdRng::seed_from_u64(88);
    let program = distance_program();

    let mut t = Table::new(&[
        "database",
        "S3 inflationary",
        "= BFS distance query",
        "S3 stratified",
        "= TC & !TC",
        "diverge",
        "inf rounds",
        "time (ms)",
    ]);
    let mut dbs: Vec<(String, DiGraph)> = vec![
        ("L_5".into(), DiGraph::path(5)),
        ("C_5".into(), DiGraph::cycle(5)),
        ("grid 2x4".into(), DiGraph::grid(2, 4)),
        ("tree_7".into(), DiGraph::binary_tree(7)),
        ("2 components".into(), {
            DiGraph::path(3).disjoint_union(&DiGraph::cycle(3))
        }),
    ];
    let extra = if full { 6 } else { 3 };
    for i in 0..extra {
        dbs.push((
            format!("rand(6,.3)#{i}"),
            DiGraph::random_gnp(6, 0.3, &mut rng),
        ));
    }
    if full {
        dbs.push(("L_10".into(), DiGraph::path(10)));
        dbs.push(("grid 3x4".into(), DiGraph::grid(3, 4)));
    }

    for (name, g) in &dbs {
        let db = g.to_database("E");
        let cp = CompiledProgram::compile(&program, &db).expect("compiles");
        let s3 = cp.idb_id("S3").expect("carrier");
        let start = Instant::now();
        let (inf, trace) = inflationary(&program, &db).expect("total");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let (strat, _) = stratified_eval(&program, &db).expect("stratified");

        let to_quads = |interp: &inflog::eval::Interp| {
            interp
                .get(s3)
                .iter()
                .map(|t| {
                    let v = |i: usize| {
                        db.universe()
                            .name(t[i])
                            .and_then(|n| n.strip_prefix('v'))
                            .and_then(|n| n.parse::<u32>().ok())
                            .expect("vertex name")
                    };
                    (v(0), v(1), v(2), v(3))
                })
                .collect::<std::collections::BTreeSet<_>>()
        };
        let qi = to_quads(&inf);
        let qs = to_quads(&strat);
        let base_d = distance_query_baseline(g);
        let base_s = stratified_reading_baseline(g);
        assert_eq!(qi, base_d, "Proposition 2 on {name}");
        assert_eq!(qs, base_s, "stratified reading on {name}");
        t.row(&[
            name,
            &qi.len(),
            &true,
            &qs.len(),
            &true,
            &(qi != qs),
            &trace.rounds,
            &format!("{ms:.2}"),
        ]);
    }
    t.print();

    println!(
        "\nnon-monotonicity witness (why no DATALOG program computes this):\n\
         on L_4, D(v0,v2,v1,v3) holds (2 <= 2); adding the edge v1->v3 makes\n\
         dist(v1,v3) = 1 while dist(v0,v2) stays 2, so the tuple is LOST as\n\
         E grows — monotone (DATALOG) queries never lose tuples:"
    );
    let g1 = DiGraph::path(4);
    let mut g2 = DiGraph::path(4);
    g2.add_edge(1, 3);
    let before = distance_query_baseline(&g1);
    let after = distance_query_baseline(&g2);
    let lost: Vec<_> = before.difference(&after).take(5).collect();
    println!(
        "  tuples lost when E grows: {} (e.g. {:?})",
        before.difference(&after).count(),
        lost
    );
    assert!(before.contains(&(0, 2, 1, 3)) && !after.contains(&(0, 2, 1, 3)));
    assert!(
        before.difference(&after).count() > 0,
        "distance query must be non-monotone"
    );
}
