//! E4 — Theorem 3: least fixpoints via the FONP oracle algorithm.
//!
//! A least fixpoint exists iff the intersection of all fixpoints is itself
//! a fixpoint. The FONP decider asks one NP-oracle (SAT) query per
//! potential tuple ("is there a fixpoint excluding t?") plus one final
//! polynomial Θ check; this table reports its verdicts, oracle budgets and
//! agreement with full enumeration.

use inflog::core::graphs::DiGraph;
use inflog::fixpoint::{FixpointAnalyzer, LeastFixpointResult};
use inflog::reductions::programs::{pi1, pi3_tc};
use inflog::syntax::parse_program;
use inflog_bench::{banner, full_mode, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn outcome(r: &LeastFixpointResult) -> String {
    match r {
        LeastFixpointResult::NoFixpoint => "no fixpoint".into(),
        LeastFixpointResult::NoLeast => "no least".into(),
        LeastFixpointResult::Least(s) => format!("least ({} tuples)", s.total_tuples()),
    }
}

fn main() {
    banner(
        "E4",
        "least-fixpoint existence by the FONP oracle algorithm",
        "Theorem 3 (US-hard; in FONP = first-order closure of NP)",
    );
    let full = full_mode();
    let max_n = if full { 12 } else { 8 };
    let mut rng = StdRng::seed_from_u64(44);

    let mut t = Table::new(&[
        "program",
        "database",
        "FONP verdict",
        "oracle calls",
        "core size",
        "agrees with enumeration",
    ]);

    let mut run = |pname: &str, program: &inflog::syntax::Program, dbname: String, g: &DiGraph| {
        let db = g.to_database("E");
        let analyzer = FixpointAnalyzer::new(program, &db).expect("compiles");
        let (fonp, stats) = analyzer.least_fixpoint_fonp();
        let by_enum = analyzer
            .least_fixpoint_by_enumeration(1 << 14)
            .expect("within limit");
        assert_eq!(fonp, by_enum, "{pname} on {dbname}");
        t.row(&[
            &pname,
            &dbname,
            &outcome(&fonp),
            &stats.oracle_calls,
            &stats.core_size,
            &true,
        ]);
    };

    for n in (3..=max_n).step_by(1) {
        run("pi_1", &pi1(), format!("L_{n}"), &DiGraph::path(n));
    }
    for n in 3..=max_n {
        run("pi_1", &pi1(), format!("C_{n}"), &DiGraph::cycle(n));
    }
    for copies in 1..=(max_n / 2) {
        run(
            "pi_1",
            &pi1(),
            format!("G_{copies}"),
            &DiGraph::disjoint_cycles(copies, 2),
        );
    }
    // Positive programs always have a least fixpoint (= standard semantics).
    for n in [4usize, 6] {
        run("pi_3 (TC)", &pi3_tc(), format!("L_{n}"), &DiGraph::path(n));
    }
    // A mixed program with data-dependent behaviour.
    let mixed = parse_program("A(x) :- E(x, y), !B(y). B(x) :- E(y, x), !A(x).").unwrap();
    for i in 0..3 {
        let g = DiGraph::random_gnp(4, 0.4, &mut rng);
        run("mutual-neg", &mixed, format!("G(4,.4)#{i}"), &g);
    }
    t.print();

    println!(
        "\nnote: oracle calls = 1 existence query + one per potential tuple;\n\
         the FONP shape of Theorem 3 (first-order evaluation with NP oracles)."
    );
}
