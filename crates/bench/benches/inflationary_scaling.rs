//! Bench: polynomial data complexity of inflationary evaluation (E6/E10).
//!
//! Fixed programs (TC, π₁, the distance program), growing databases. The
//! paper's claim is a polynomial bound `Σ|A|^k` on rounds and PTIME overall;
//! the series here should grow polynomially, not exponentially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inflog::core::graphs::DiGraph;
use inflog::eval::inflationary;
use inflog::reductions::programs::{distance_program, pi1, pi3_tc};

fn bench_inflationary(c: &mut Criterion) {
    let mut group = c.benchmark_group("inflationary_scaling");
    group.sample_size(10);

    for n in [20usize, 40, 80] {
        let db = DiGraph::cycle(n).to_database("E");
        group.bench_with_input(BenchmarkId::new("tc_on_cycle", n), &db, |b, db| {
            b.iter(|| inflationary(&pi3_tc(), db).unwrap());
        });
    }
    for n in [50usize, 100, 200] {
        let db = DiGraph::cycle(n).to_database("E");
        group.bench_with_input(BenchmarkId::new("pi1_on_cycle", n), &db, |b, db| {
            b.iter(|| inflationary(&pi1(), db).unwrap());
        });
    }
    for n in [6usize, 9, 12] {
        let db = DiGraph::path(n).to_database("E");
        group.bench_with_input(BenchmarkId::new("distance_on_path", n), &db, |b, db| {
            b.iter(|| inflationary(&distance_program(), db).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inflationary);
criterion_main!(benches);
