//! Substrate bench: the CDCL solver vs the DPLL baseline on random 3-SAT
//! around the phase transition, plus pigeonhole stress.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inflog::sat::gen::{pigeonhole, random_ksat};
use inflog::sat::{dpll_sat, Solver};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_solver");
    group.sample_size(10);

    for n in [20usize, 40, 60] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let cnf = random_ksat(n, (4.2 * n as f64) as usize, 3, &mut rng);
        group.bench_with_input(BenchmarkId::new("cdcl_random3sat", n), &cnf, |b, cnf| {
            b.iter(|| Solver::from_cnf(cnf).solve());
        });
    }
    for n in [12usize, 16] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let cnf = random_ksat(n, (4.2 * n as f64) as usize, 3, &mut rng);
        group.bench_with_input(BenchmarkId::new("dpll_random3sat", n), &cnf, |b, cnf| {
            b.iter(|| dpll_sat(cnf));
        });
    }
    for holes in [4usize, 5, 6] {
        let cnf = pigeonhole(holes);
        group.bench_with_input(
            BenchmarkId::new("cdcl_pigeonhole", holes),
            &cnf,
            |b, cnf| {
                b.iter(|| Solver::from_cnf(cnf).solve());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sat);
criterion_main!(benches);
