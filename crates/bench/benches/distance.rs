//! Bench: the distance program (E8) — inflationary vs stratified engine
//! cost, against the direct BFS baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inflog::core::graphs::DiGraph;
use inflog::eval::{inflationary, stratified_eval};
use inflog::reductions::distance::distance_query_baseline;
use inflog::reductions::programs::distance_program;

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_query");
    group.sample_size(10);

    for n in [6usize, 9, 12] {
        let g = DiGraph::path(n);
        let db = g.to_database("E");
        group.bench_with_input(BenchmarkId::new("inflationary", n), &db, |b, db| {
            b.iter(|| inflationary(&distance_program(), db).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("stratified", n), &db, |b, db| {
            b.iter(|| stratified_eval(&distance_program(), db).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("bfs_baseline", n), &g, |b, g| {
            b.iter(|| distance_query_baseline(g));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
