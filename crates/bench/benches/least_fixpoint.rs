//! Bench: the two least-fixpoint deciders of E4 — the FONP oracle algorithm
//! (one SAT call per tuple) vs enumerate-then-intersect (explodes with the
//! fixpoint count, e.g. on G_n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inflog::core::graphs::DiGraph;
use inflog::fixpoint::FixpointAnalyzer;
use inflog::reductions::programs::pi1;

fn bench_least_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("least_fixpoint");
    group.sample_size(10);

    for n in [8usize, 16, 32] {
        let db = DiGraph::path(n).to_database("E");
        let analyzer = FixpointAnalyzer::new(&pi1(), &db).unwrap();
        group.bench_with_input(BenchmarkId::new("fonp_on_path", n), &analyzer, |b, a| {
            b.iter(|| a.least_fixpoint_fonp());
        });
    }
    // G_n: 2^n fixpoints — enumeration pays per fixpoint, FONP per tuple.
    for copies in [3usize, 5, 7] {
        let db = DiGraph::disjoint_cycles(copies, 2).to_database("E");
        let analyzer = FixpointAnalyzer::new(&pi1(), &db).unwrap();
        group.bench_with_input(BenchmarkId::new("fonp_on_gn", copies), &analyzer, |b, a| {
            b.iter(|| a.least_fixpoint_fonp());
        });
        group.bench_with_input(
            BenchmarkId::new("enumeration_on_gn", copies),
            &analyzer,
            |b, a| {
                b.iter(|| a.least_fixpoint_by_enumeration(1 << 12).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_least_fixpoint);
criterion_main!(benches);
