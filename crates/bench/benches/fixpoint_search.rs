//! Bench: fixpoint existence — CDCL-backed completion search vs exhaustive
//! enumeration (the E1 machinery; brute force is exponential in `Σ|A|^k`,
//! the SAT path is not).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inflog::core::graphs::DiGraph;
use inflog::fixpoint::{enumerate_fixpoints_brute, FixpointAnalyzer};
use inflog::reductions::programs::pi1;

fn bench_fixpoint_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixpoint_search");
    group.sample_size(10);

    // Brute force: feasible only on tiny universes.
    for n in [6usize, 10, 14] {
        let db = DiGraph::cycle(n).to_database("E");
        group.bench_with_input(BenchmarkId::new("brute_enumerate", n), &db, |b, db| {
            b.iter(|| enumerate_fixpoints_brute(&pi1(), db, 20).unwrap());
        });
    }
    // SAT-based existence scales much further.
    for n in [14usize, 30, 60] {
        let db = DiGraph::cycle(n).to_database("E");
        group.bench_with_input(BenchmarkId::new("sat_exists", n), &db, |b, db| {
            b.iter(|| FixpointAnalyzer::new(&pi1(), db).unwrap().fixpoint_exists());
        });
    }
    // Counting the exponentially many G_n fixpoints via blocking clauses.
    for copies in [2usize, 4, 6] {
        let db = DiGraph::disjoint_cycles(copies, 2).to_database("E");
        group.bench_with_input(BenchmarkId::new("sat_count_gn", copies), &db, |b, db| {
            b.iter(|| {
                FixpointAnalyzer::new(&pi1(), db)
                    .unwrap()
                    .count_fixpoints(1 << 10)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixpoint_search);
criterion_main!(benches);
