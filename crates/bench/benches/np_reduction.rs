//! Bench: the Theorem 1 pipeline (E2) — deciding SAT through the fixpoint
//! machinery (D(I) + π_SAT + completion + CDCL) vs handing the instance to
//! CDCL directly. The overhead factor is the cost of the normal form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inflog::fixpoint::FixpointAnalyzer;
use inflog::reductions::programs::pi_sat;
use inflog::reductions::sat_db::cnf_to_database;
use inflog::sat::gen::random_ksat;
use inflog::sat::Solver;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_np_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("np_reduction");
    group.sample_size(10);

    for n in [6usize, 10, 14] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let cnf = random_ksat(n, 4 * n, 3, &mut rng);
        group.bench_with_input(BenchmarkId::new("direct_cdcl", n), &cnf, |b, cnf| {
            b.iter(|| Solver::from_cnf(cnf).solve());
        });
        let db = cnf_to_database(&cnf);
        group.bench_with_input(
            BenchmarkId::new("via_fixpoint_existence", n),
            &db,
            |b, db| {
                b.iter(|| {
                    FixpointAnalyzer::new(&pi_sat(), db)
                        .unwrap()
                        .fixpoint_exists()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_np_reduction);
criterion_main!(benches);
