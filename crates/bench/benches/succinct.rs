//! Bench: the Theorem 4 pipeline (E5/E10) — succinct-graph expansion and
//! the π_SC build/solve cost as the address width grows (the exponential
//! side of expression complexity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inflog::circuit::encode::succinct_cycle;
use inflog::circuit::succinct_coloring_reduction;
use inflog::fixpoint::FixpointAnalyzer;

fn bench_succinct(c: &mut Criterion) {
    let mut group = c.benchmark_group("succinct");
    group.sample_size(10);

    for bits in [4usize, 6, 8] {
        let sg = succinct_cycle(bits);
        group.bench_with_input(BenchmarkId::new("expand", bits), &sg, |b, sg| {
            b.iter(|| sg.expand());
        });
    }
    for bits in [1usize, 2, 3] {
        let sg = succinct_cycle(bits);
        group.bench_with_input(
            BenchmarkId::new("pi_sc_build_and_solve", bits),
            &sg,
            |b, sg| {
                b.iter(|| {
                    let red = succinct_coloring_reduction(sg);
                    FixpointAnalyzer::new(&red.program, &red.database)
                        .unwrap()
                        .fixpoint_exists()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_succinct);
criterion_main!(benches);
