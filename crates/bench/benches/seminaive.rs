//! Ablation bench: naive vs semi-naive least-fixpoint evaluation (the
//! DESIGN.md §5 evaluation-strategy choice), and naive vs semi-naive
//! inflationary iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inflog::core::graphs::DiGraph;
use inflog::eval::{
    inflationary, inflationary_naive, least_fixpoint_naive, least_fixpoint_seminaive,
};
use inflog::reductions::programs::{distance_program, pi3_tc};

fn bench_seminaive(c: &mut Criterion) {
    let mut group = c.benchmark_group("seminaive_vs_naive");
    group.sample_size(10);

    for n in [20usize, 40, 80] {
        let db = DiGraph::path(n).to_database("E");
        group.bench_with_input(BenchmarkId::new("tc_naive", n), &db, |b, db| {
            b.iter(|| least_fixpoint_naive(&pi3_tc(), db).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("tc_seminaive", n), &db, |b, db| {
            b.iter(|| least_fixpoint_seminaive(&pi3_tc(), db).unwrap());
        });
    }

    for n in [6usize, 10] {
        let db = DiGraph::path(n).to_database("E");
        group.bench_with_input(
            BenchmarkId::new("distance_inflationary_naive", n),
            &db,
            |b, db| {
                b.iter(|| inflationary_naive(&distance_program(), db).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("distance_inflationary_seminaive", n),
            &db,
            |b, db| {
                b.iter(|| inflationary(&distance_program(), db).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_seminaive);
criterion_main!(benches);
