//! Bench: grounding + completion-encoding cost for a fixed program as data
//! grows (the polynomial side of E10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inflog::fixpoint::{CompletionEncoding, GroundProgram};
use inflog::reductions::programs::pi_sat;
use inflog::reductions::sat_db::cnf_to_database;
use inflog::sat::gen::random_ksat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_grounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding");
    group.sample_size(10);

    for n in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let cnf = random_ksat(n, 4 * n, 3, &mut rng);
        let db = cnf_to_database(&cnf);
        group.bench_with_input(BenchmarkId::new("ground_pi_sat", n), &db, |b, db| {
            b.iter(|| GroundProgram::build(&pi_sat(), db).unwrap());
        });
        let ground = GroundProgram::build(&pi_sat(), &db).unwrap();
        group.bench_with_input(BenchmarkId::new("encode_completion", n), &ground, |b, g| {
            b.iter(|| CompletionEncoding::build(g));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grounding);
criterion_main!(benches);
