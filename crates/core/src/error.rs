//! Error types shared across the workspace foundation.

use std::fmt;

/// Errors raised by the core data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A tuple of the wrong arity was inserted into or looked up in a relation.
    ArityMismatch {
        /// Name of the relation involved, when known.
        relation: String,
        /// Arity the relation declares.
        expected: usize,
        /// Arity of the offending tuple.
        found: usize,
    },
    /// A relation name was looked up but is not present in the database.
    UnknownRelation(String),
    /// A relation was defined twice with conflicting arities.
    ConflictingArity {
        /// Relation name.
        relation: String,
        /// Previously declared arity.
        existing: usize,
        /// Newly requested arity.
        requested: usize,
    },
    /// A constant id does not belong to the universe it was used with.
    UnknownConstant(u32),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch on relation `{relation}`: expected {expected}, found {found}"
            ),
            CoreError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            CoreError::ConflictingArity {
                relation,
                existing,
                requested,
            } => write!(
                f,
                "relation `{relation}` already declared with arity {existing}, \
                 cannot redeclare with arity {requested}"
            ),
            CoreError::UnknownConstant(id) => {
                write!(f, "constant id {id} is not part of the universe")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_arity_mismatch() {
        let e = CoreError::ArityMismatch {
            relation: "E".into(),
            expected: 2,
            found: 3,
        };
        assert_eq!(
            e.to_string(),
            "arity mismatch on relation `E`: expected 2, found 3"
        );
    }

    #[test]
    fn display_unknown_relation() {
        assert_eq!(
            CoreError::UnknownRelation("T".into()).to_string(),
            "unknown relation `T`"
        );
    }

    #[test]
    fn display_conflicting_arity() {
        let e = CoreError::ConflictingArity {
            relation: "S".into(),
            existing: 1,
            requested: 2,
        };
        assert!(e.to_string().contains("already declared with arity 1"));
    }

    #[test]
    fn display_unknown_constant() {
        assert_eq!(
            CoreError::UnknownConstant(7).to_string(),
            "constant id 7 is not part of the universe"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::UnknownRelation("X".into()));
        assert!(e.to_string().contains("X"));
    }
}
