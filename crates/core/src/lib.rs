//! # inflog-core
//!
//! Foundation data model for the **inflog** reproduction of Kolaitis &
//! Papadimitriou, *"Why Not Negation by Fixpoint?"* (PODS 1988 / JCSS 1991).
//!
//! The paper works with finite databases `D = (A, R_1, ..., R_l)` over a fixed
//! vocabulary: a finite universe `A` and finitely many finite relations on
//! `A`. This crate provides exactly those objects:
//!
//! * [`Universe`] — the finite set `A`, with interned, printable constants;
//! * [`Const`] / [`Tuple`] — elements of `A` and of `A^k`;
//! * [`Relation`] — a finite `k`-ary relation on `A` with set algebra and
//!   join-friendly indexing;
//! * [`Database`] — a named collection of relations over one universe;
//! * [`Schema`] — the vocabulary `(R_1/m_1, ..., R_l/m_l)`;
//! * [`graphs`] — directed-graph workloads used throughout the paper
//!   (paths `L_n`, cycles `C_n`, disjoint unions `G_n`, random graphs, ...).
//!
//! Everything else in the workspace (syntax, evaluation, fixpoint analysis,
//! logic, circuits, reductions) builds on these types.

pub mod database;
pub mod error;
pub mod fxhash;
pub mod graphs;
pub mod relation;
pub mod tuple;
pub mod universe;

pub use database::{Database, Schema};
pub use error::CoreError;
pub use fxhash::{FxBuildHasher, FxHasher};
pub use relation::Relation;
pub use tuple::{Const, Tuple};
pub use universe::Universe;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
