//! Constants and tuples: elements of `A` and of `A^k`.

use std::fmt;

/// An element of the universe `A`, represented as an interned id.
///
/// `Const` is `Copy` and order/hash-compatible with its id, so relations can
/// index and sort tuples cheaply. Printable names live in
/// [`Universe`](crate::Universe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Const(pub u32);

impl Const {
    /// The raw interned id.
    pub fn id(self) -> u32 {
        self.0
    }

    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Const {
    /// Displays as the raw id (printable names require a universe).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A `k`-tuple over the universe: an element of `A^k`.
///
/// Stored as a boxed slice (two words on the stack; no spare capacity), since
/// tuples are immutable once created and relations hold very many of them.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Const]>);

impl Tuple {
    /// Creates a tuple from constants.
    pub fn new(items: impl Into<Box<[Const]>>) -> Self {
        Tuple(items.into())
    }

    /// The empty (0-ary) tuple — used by propositional (arity-0) relations.
    pub fn empty() -> Self {
        Tuple(Box::from([]))
    }

    /// Creates a tuple directly from raw ids.
    pub fn from_ids(ids: &[u32]) -> Self {
        Tuple(ids.iter().map(|&i| Const(i)).collect())
    }

    /// Tuple arity `k`.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Component access.
    pub fn get(&self, i: usize) -> Option<Const> {
        self.0.get(i).copied()
    }

    /// The components as a slice.
    pub fn items(&self) -> &[Const] {
        &self.0
    }

    /// Projects the tuple onto the given column indices.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c]).collect())
    }

    /// Concatenates two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).copied().collect())
    }

    /// Renders the tuple with names from a display function.
    pub fn display_with(&self, mut name: impl FnMut(Const) -> String) -> String {
        let parts: Vec<String> = self.0.iter().map(|&c| name(c)).collect();
        format!("({})", parts.join(","))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.0)?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Const>> for Tuple {
    fn from(v: Vec<Const>) -> Self {
        Tuple(v.into_boxed_slice())
    }
}

impl From<&[Const]> for Tuple {
    fn from(v: &[Const]) -> Self {
        Tuple(v.into())
    }
}

impl<const N: usize> From<[Const; N]> for Tuple {
    fn from(v: [Const; N]) -> Self {
        Tuple(Box::from(v.as_slice()))
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Const;
    fn index(&self, i: usize) -> &Const {
        &self.0[i]
    }
}

/// Enumerates all tuples in `A^k` for a universe of size `n`, in
/// lexicographic id order.
///
/// This is the search space `n^k` that the paper's NP upper bound "guess a
/// relation of size `n^s`" quantifies over; exhaustive analyses (brute-force
/// fixpoint enumeration, ESO checking) iterate it directly.
pub fn all_tuples(universe_size: usize, arity: usize) -> AllTuples {
    AllTuples {
        n: universe_size as u32,
        current: vec![0; arity],
        done: universe_size == 0 && arity > 0,
    }
}

/// Iterator over `A^k`; see [`all_tuples`].
#[derive(Debug, Clone)]
pub struct AllTuples {
    n: u32,
    current: Vec<u32>,
    done: bool,
}

impl Iterator for AllTuples {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        let out = Tuple::from_ids(&self.current);
        // Advance odometer (most significant digit first => lexicographic).
        let mut i = self.current.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.current[i] += 1;
            if self.current[i] < self.n {
                break;
            }
            self.current[i] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u32]) -> Tuple {
        Tuple::from_ids(ids)
    }

    #[test]
    fn tuple_basics() {
        let x = t(&[1, 2, 3]);
        assert_eq!(x.arity(), 3);
        assert_eq!(x.get(0), Some(Const(1)));
        assert_eq!(x.get(3), None);
        assert_eq!(x[2], Const(3));
        assert_eq!(x.to_string(), "(1,2,3)");
    }

    #[test]
    fn empty_tuple() {
        let e = Tuple::empty();
        assert_eq!(e.arity(), 0);
        assert_eq!(e.to_string(), "()");
    }

    #[test]
    fn project_and_concat() {
        let x = t(&[5, 6, 7]);
        assert_eq!(x.project(&[2, 0]), t(&[7, 5]));
        assert_eq!(x.project(&[]), Tuple::empty());
        assert_eq!(x.concat(&t(&[8])), t(&[5, 6, 7, 8]));
    }

    #[test]
    fn tuple_ordering_is_lexicographic() {
        assert!(t(&[0, 1]) < t(&[0, 2]));
        assert!(t(&[0, 9]) < t(&[1, 0]));
    }

    #[test]
    fn all_tuples_counts() {
        assert_eq!(all_tuples(3, 2).count(), 9);
        assert_eq!(all_tuples(2, 3).count(), 8);
        assert_eq!(all_tuples(5, 1).count(), 5);
        // arity 0: exactly one (empty) tuple, regardless of universe size.
        assert_eq!(all_tuples(4, 0).count(), 1);
        assert_eq!(all_tuples(0, 0).count(), 1);
        // empty universe, positive arity: no tuples.
        assert_eq!(all_tuples(0, 2).count(), 0);
    }

    #[test]
    fn all_tuples_lexicographic_order() {
        let v: Vec<Tuple> = all_tuples(2, 2).collect();
        assert_eq!(v, vec![t(&[0, 0]), t(&[0, 1]), t(&[1, 0]), t(&[1, 1])],);
    }

    #[test]
    fn all_tuples_no_duplicates() {
        let v: Vec<Tuple> = all_tuples(3, 3).collect();
        let s: std::collections::HashSet<_> = v.iter().cloned().collect();
        assert_eq!(v.len(), s.len());
        assert_eq!(v.len(), 27);
    }

    #[test]
    fn display_with_names() {
        let x = t(&[0, 1]);
        let s = x.display_with(|c| format!("v{}", c.id()));
        assert_eq!(s, "(v0,v1)");
    }

    #[test]
    fn from_array_and_slice() {
        let a = Tuple::from([Const(1), Const(2)]);
        let b = Tuple::from(vec![Const(1), Const(2)]);
        let c = Tuple::from(&[Const(1), Const(2)][..]);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
