//! Constants and tuples: elements of `A` and of `A^k`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An element of the universe `A`, represented as an interned id.
///
/// `Const` is `Copy` and order/hash-compatible with its id, so relations can
/// index and sort tuples cheaply. Printable names live in
/// [`Universe`](crate::Universe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Const(pub u32);

impl Const {
    /// The raw interned id.
    pub fn id(self) -> u32 {
        self.0
    }

    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Const {
    /// Displays as the raw id (printable names require a universe).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Largest arity stored inline (without heap allocation).
const INLINE_CAP: usize = 4;

/// Storage for a tuple: packed inline for arities up to [`INLINE_CAP`],
/// spilling to a boxed slice beyond that.
///
/// Invariant: tuples of arity ≤ `INLINE_CAP` are *always* `Inline` and their
/// unused slots are zeroed, so the two variants never overlap and derived
/// comparisons within a variant are well-defined (all comparison traits are
/// nevertheless implemented over [`Tuple::items`] for robustness).
#[derive(Clone)]
enum Repr {
    Inline { len: u8, items: [Const; INLINE_CAP] },
    Boxed(Box<[Const]>),
}

/// A `k`-tuple over the universe: an element of `A^k`.
///
/// Relations hold very many tuples and the evaluator constructs them in its
/// innermost loops, so tuples of arity ≤ 4 (every tuple the paper's programs
/// mention, and all hash-join keys) are stored inline in a fixed `[Const; 4]`
/// — constructing, cloning, hashing and comparing them never touches the
/// heap. Larger arities spill to an immutable boxed slice.
#[derive(Clone)]
pub struct Tuple(Repr);

impl Tuple {
    /// Creates a tuple from a slice of constants.
    pub fn from_slice(items: &[Const]) -> Self {
        if items.len() <= INLINE_CAP {
            let mut buf = [Const(0); INLINE_CAP];
            buf[..items.len()].copy_from_slice(items);
            Tuple(Repr::Inline {
                len: items.len() as u8,
                items: buf,
            })
        } else {
            Tuple(Repr::Boxed(items.into()))
        }
    }

    /// Creates a tuple from constants.
    pub fn new(items: impl AsRef<[Const]>) -> Self {
        Tuple::from_slice(items.as_ref())
    }

    /// The empty (0-ary) tuple — used by propositional (arity-0) relations.
    pub fn empty() -> Self {
        Tuple(Repr::Inline {
            len: 0,
            items: [Const(0); INLINE_CAP],
        })
    }

    /// Creates a tuple directly from raw ids.
    pub fn from_ids(ids: &[u32]) -> Self {
        ids.iter().map(|&i| Const(i)).collect()
    }

    /// Tuple arity `k`.
    pub fn arity(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Boxed(b) => b.len(),
        }
    }

    /// Component access.
    pub fn get(&self, i: usize) -> Option<Const> {
        self.items().get(i).copied()
    }

    /// The components as a slice.
    pub fn items(&self) -> &[Const] {
        match &self.0 {
            Repr::Inline { len, items } => &items[..*len as usize],
            Repr::Boxed(b) => b,
        }
    }

    /// Projects the tuple onto the given column indices.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        let items = self.items();
        cols.iter().map(|&c| items[c]).collect()
    }

    /// Concatenates two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        self.items()
            .iter()
            .chain(other.items().iter())
            .copied()
            .collect()
    }

    /// Renders the tuple with names from a display function.
    pub fn display_with(&self, mut name: impl FnMut(Const) -> String) -> String {
        let parts: Vec<String> = self.items().iter().map(|&c| name(c)).collect();
        format!("({})", parts.join(","))
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.items() == other.items()
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    /// Lexicographic componentwise order (shorter tuples sort first on
    /// shared prefixes), as with the previous boxed-slice representation.
    fn cmp(&self, other: &Self) -> Ordering {
        self.items().cmp(other.items())
    }
}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.items().hash(state);
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Tuple").field(&self.items()).finish()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.items().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.0)?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Const> for Tuple {
    /// Collects constants without heap allocation for arities ≤ 4 — the
    /// evaluator's head-tuple and key-tuple construction path.
    fn from_iter<I: IntoIterator<Item = Const>>(iter: I) -> Self {
        let mut it = iter.into_iter();
        let mut buf = [Const(0); INLINE_CAP];
        let mut len = 0usize;
        for c in it.by_ref() {
            if len == INLINE_CAP {
                // Spill: gather everything into a boxed slice.
                let spilled: Vec<Const> = buf.iter().copied().chain(Some(c)).chain(it).collect();
                return Tuple(Repr::Boxed(spilled.into_boxed_slice()));
            }
            buf[len] = c;
            len += 1;
        }
        Tuple(Repr::Inline {
            len: len as u8,
            items: buf,
        })
    }
}

impl From<Vec<Const>> for Tuple {
    fn from(v: Vec<Const>) -> Self {
        Tuple::from_slice(&v)
    }
}

impl From<&[Const]> for Tuple {
    fn from(v: &[Const]) -> Self {
        Tuple::from_slice(v)
    }
}

impl<const N: usize> From<[Const; N]> for Tuple {
    fn from(v: [Const; N]) -> Self {
        Tuple::from_slice(&v)
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Const;
    fn index(&self, i: usize) -> &Const {
        &self.items()[i]
    }
}

/// Enumerates all tuples in `A^k` for a universe of size `n`, in
/// lexicographic id order.
///
/// This is the search space `n^k` that the paper's NP upper bound "guess a
/// relation of size `n^s`" quantifies over; exhaustive analyses (brute-force
/// fixpoint enumeration, ESO checking) iterate it directly.
pub fn all_tuples(universe_size: usize, arity: usize) -> AllTuples {
    AllTuples {
        n: universe_size as u32,
        current: vec![0; arity],
        done: universe_size == 0 && arity > 0,
    }
}

/// Iterator over `A^k`; see [`all_tuples`].
#[derive(Debug, Clone)]
pub struct AllTuples {
    n: u32,
    current: Vec<u32>,
    done: bool,
}

impl Iterator for AllTuples {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        let out = Tuple::from_ids(&self.current);
        // Advance odometer (most significant digit first => lexicographic).
        let mut i = self.current.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.current[i] += 1;
            if self.current[i] < self.n {
                break;
            }
            self.current[i] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u32]) -> Tuple {
        Tuple::from_ids(ids)
    }

    #[test]
    fn tuple_basics() {
        let x = t(&[1, 2, 3]);
        assert_eq!(x.arity(), 3);
        assert_eq!(x.get(0), Some(Const(1)));
        assert_eq!(x.get(3), None);
        assert_eq!(x[2], Const(3));
        assert_eq!(x.to_string(), "(1,2,3)");
    }

    #[test]
    fn empty_tuple() {
        let e = Tuple::empty();
        assert_eq!(e.arity(), 0);
        assert_eq!(e.to_string(), "()");
    }

    #[test]
    fn project_and_concat() {
        let x = t(&[5, 6, 7]);
        assert_eq!(x.project(&[2, 0]), t(&[7, 5]));
        assert_eq!(x.project(&[]), Tuple::empty());
        assert_eq!(x.concat(&t(&[8])), t(&[5, 6, 7, 8]));
    }

    #[test]
    fn tuple_ordering_is_lexicographic() {
        assert!(t(&[0, 1]) < t(&[0, 2]));
        assert!(t(&[0, 9]) < t(&[1, 0]));
        // Across the inline/boxed boundary, prefixes still sort first.
        assert!(t(&[0, 1, 2, 3]) < t(&[0, 1, 2, 3, 0]));
        assert!(t(&[9, 0, 0, 0, 0]) > t(&[8, 9, 9, 9]));
    }

    #[test]
    fn inline_and_boxed_representations_agree() {
        use std::collections::hash_map::DefaultHasher;
        // Arity 4 is the last inline size; arity 5 spills to the heap. The
        // behavioral surface (eq, ord, hash of equal values, items) must not
        // change across the boundary.
        for k in 0..=6usize {
            let ids: Vec<u32> = (0..k as u32).collect();
            let a = Tuple::from_ids(&ids);
            let b: Tuple = ids.iter().map(|&i| Const(i)).collect();
            let c = Tuple::from(ids.iter().map(|&i| Const(i)).collect::<Vec<_>>());
            assert_eq!(a, b);
            assert_eq!(b, c);
            assert_eq!(a.arity(), k);
            assert_eq!(a.items().len(), k);
            let hash = |t: &Tuple| {
                let mut h = DefaultHasher::new();
                t.hash(&mut h);
                h.finish()
            };
            assert_eq!(hash(&a), hash(&b));
        }
    }

    #[test]
    fn large_arity_spills_to_heap() {
        let ids: Vec<u32> = (0..10).collect();
        let x = t(&ids);
        assert_eq!(x.arity(), 10);
        assert_eq!(x.get(9), Some(Const(9)));
        assert_eq!(x.project(&[9, 0]), t(&[9, 0]));
        let y = x.concat(&t(&[99]));
        assert_eq!(y.arity(), 11);
        assert_eq!(y[10], Const(99));
    }

    #[test]
    fn all_tuples_counts() {
        assert_eq!(all_tuples(3, 2).count(), 9);
        assert_eq!(all_tuples(2, 3).count(), 8);
        assert_eq!(all_tuples(5, 1).count(), 5);
        // arity 0: exactly one (empty) tuple, regardless of universe size.
        assert_eq!(all_tuples(4, 0).count(), 1);
        assert_eq!(all_tuples(0, 0).count(), 1);
        // empty universe, positive arity: no tuples.
        assert_eq!(all_tuples(0, 2).count(), 0);
    }

    #[test]
    fn all_tuples_lexicographic_order() {
        let v: Vec<Tuple> = all_tuples(2, 2).collect();
        assert_eq!(v, vec![t(&[0, 0]), t(&[0, 1]), t(&[1, 0]), t(&[1, 1])],);
    }

    #[test]
    fn all_tuples_no_duplicates() {
        let v: Vec<Tuple> = all_tuples(3, 3).collect();
        let s: std::collections::HashSet<_> = v.iter().cloned().collect();
        assert_eq!(v.len(), s.len());
        assert_eq!(v.len(), 27);
    }

    #[test]
    fn display_with_names() {
        let x = t(&[0, 1]);
        let s = x.display_with(|c| format!("v{}", c.id()));
        assert_eq!(s, "(v0,v1)");
    }

    #[test]
    fn from_array_and_slice() {
        let a = Tuple::from([Const(1), Const(2)]);
        let b = Tuple::from(vec![Const(1), Const(2)]);
        let c = Tuple::from(&[Const(1), Const(2)][..]);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
