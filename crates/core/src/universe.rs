//! The finite universe `A` of a database: an interner for constants.
//!
//! The paper fixes a finite universe `A` per database; rule variables range
//! over `A` (this matters: the paper's flagship programs contain *unsafe*
//! rules such as `T(z) <- !Q(u), !T(w)` whose variables appear only under
//! negation, and their semantics is domain-grounded).

use crate::tuple::Const;
use std::collections::HashMap;
use std::fmt;

/// The finite universe `A`: a bijection between constant ids `0..len` and
/// printable names.
///
/// Constants are interned: the same name always maps to the same [`Const`].
/// Universes are append-only; constants are never removed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Universe {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a universe with constants named `"0"`, `"1"`, ..., `"n-1"`.
    ///
    /// This is the convenient form for graph vertices and for the binary
    /// domain `{0, 1}` used in the paper's Theorem 4 construction.
    pub fn range(n: usize) -> Self {
        let mut u = Self::new();
        for i in 0..n {
            u.intern(&i.to_string());
        }
        u
    }

    /// Creates a universe from a list of names (deduplicated, in order).
    pub fn range_named(names: &[&str]) -> Self {
        let mut u = Self::new();
        for n in names {
            u.intern(n);
        }
        u
    }

    /// Interns `name`, returning its constant. Idempotent.
    pub fn intern(&mut self, name: &str) -> Const {
        if let Some(&id) = self.index.get(name) {
            return Const(id);
        }
        let id = u32::try_from(self.names.len()).expect("universe exceeds u32 capacity");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        Const(id)
    }

    /// Looks up a constant by name without interning.
    pub fn lookup(&self, name: &str) -> Option<Const> {
        self.index.get(name).copied().map(Const)
    }

    /// Returns the printable name of `c`, if `c` belongs to this universe.
    pub fn name(&self, c: Const) -> Option<&str> {
        self.names.get(c.0 as usize).map(String::as_str)
    }

    /// Returns the printable name of `c`, or `"?<id>"` for foreign constants.
    pub fn display(&self, c: Const) -> String {
        match self.name(c) {
            Some(s) => s.to_owned(),
            None => format!("?{}", c.0),
        }
    }

    /// Number of constants in the universe (`|A|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Whether `c` is a member of this universe.
    pub fn contains(&self, c: Const) -> bool {
        (c.0 as usize) < self.names.len()
    }

    /// Iterates over all constants in id order.
    pub fn iter(&self) -> impl Iterator<Item = Const> + '_ {
        (0..self.names.len() as u32).map(Const)
    }

    /// Iterates over `(constant, name)` pairs in id order.
    pub fn iter_named(&self) -> impl Iterator<Item = (Const, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Const(i as u32), n.as_str()))
    }
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut u = Universe::new();
        let a = u.intern("a");
        let b = u.intern("b");
        let a2 = u.intern("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn range_universe_names() {
        let u = Universe::range(3);
        assert_eq!(u.len(), 3);
        assert_eq!(u.lookup("0"), Some(Const(0)));
        assert_eq!(u.lookup("2"), Some(Const(2)));
        assert_eq!(u.lookup("3"), None);
        assert_eq!(u.name(Const(1)), Some("1"));
    }

    #[test]
    fn display_foreign_constant() {
        let u = Universe::range(1);
        assert_eq!(u.display(Const(0)), "0");
        assert_eq!(u.display(Const(42)), "?42");
    }

    #[test]
    fn iter_covers_all() {
        let u = Universe::range(5);
        let all: Vec<Const> = u.iter().collect();
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|&c| u.contains(c)));
        assert!(!u.contains(Const(5)));
    }

    #[test]
    fn iter_named_pairs() {
        let mut u = Universe::new();
        u.intern("x");
        u.intern("y");
        let pairs: Vec<(Const, &str)> = u.iter_named().collect();
        assert_eq!(pairs, vec![(Const(0), "x"), (Const(1), "y")]);
    }

    #[test]
    fn display_universe() {
        let mut u = Universe::new();
        u.intern("a");
        u.intern("b");
        assert_eq!(u.to_string(), "{a, b}");
        assert_eq!(Universe::new().to_string(), "{}");
    }

    #[test]
    fn empty_universe() {
        let u = Universe::new();
        assert!(u.is_empty());
        assert_eq!(u.iter().count(), 0);
    }
}
