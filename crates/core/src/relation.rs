//! Finite `k`-ary relations on the universe, with set algebra and indexing.

use crate::tuple::{Const, Tuple};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Mutex;

/// Slot marker: never occupied.
const EMPTY: u32 = u32::MAX;
/// Slot marker: previously occupied, freed by a removal.
const TOMBSTONE: u32 = u32::MAX - 1;

/// Fresh identity token for a [`Relation`] instance (see [`Relation::id`]).
fn next_relation_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, AtomicOrdering::Relaxed)
}

/// Multiply-mix hash over a tuple's components (FxHash-style). Cheaper than
/// SipHash on the 1–4 word tuples the evaluator probes in its inner loops;
/// HashDoS resistance is irrelevant for interned ids.
fn hash_tuple(t: &Tuple) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h: u64 = t.arity() as u64;
    for c in t.items() {
        h = (h.rotate_left(5) ^ u64::from(c.id())).wrapping_mul(K);
    }
    h
}

/// A finite `k`-ary relation: a set of [`Tuple`]s of fixed arity.
///
/// Relations are the values the paper's operator Θ maps between; evaluation
/// engines need fast membership (`contains`), fast insertion with dedup, set
/// algebra (union / intersection / difference / subset — the lattice on which
/// *least* fixpoints are defined), and hash-join indexing.
///
/// # Layout
///
/// Tuples live in an insertion-ordered dense `Vec<Tuple>` — iteration is a
/// linear walk, and the suffix `dense()[w..]` is exactly the set of tuples
/// added since watermark `w`, which external incremental indexes exploit.
/// Membership goes through an open-addressing table of indices into the
/// dense vector, so each tuple is stored once.
#[derive(Debug)]
pub struct Relation {
    arity: usize,
    /// Dense storage in insertion order (append-only except for `remove`).
    tuples: Vec<Tuple>,
    /// Open-addressing slots: indices into `tuples`, `EMPTY` or `TOMBSTONE`.
    /// Length is a power of two (or zero while the relation is empty).
    slots: Vec<u32>,
    /// Occupied slots including tombstones (load-factor accounting).
    used: usize,
    /// Identity token: fresh on construction, clone and removal; stable
    /// across insertions. External index caches use it to decide whether a
    /// cached index may be extended incrementally or must be rebuilt.
    id: u64,
    /// Bumped by every [`truncate`](Self::truncate) (rollback to a
    /// watermark). Unlike `remove`, truncation preserves the dense *prefix*,
    /// so external positional indexes stay valid up to the cut — they
    /// resynchronize by comparing epochs instead of discarding everything.
    shrink_epoch: u64,
    /// The length of the most recent truncation's surviving prefix. Together
    /// with `shrink_epoch` (each truncate bumps it exactly once) an external
    /// index that is exactly one epoch behind knows how far to roll back.
    last_truncate_len: usize,
    /// Cached lexicographic order (indices into `tuples`); cleared on
    /// mutation so `sorted()` only re-sorts relations that changed.
    ///
    /// A `Mutex` rather than a `RefCell` so that `Relation` is [`Sync`]:
    /// parallel evaluation rounds share relations read-only across worker
    /// threads. Every mutation path holds `&mut self` and clears the cache
    /// through the lock-free [`Mutex::get_mut`]; only [`sorted`](Self::sorted)
    /// (display/tests, never an evaluation hot path) actually locks.
    sorted_cache: Mutex<Option<Vec<u32>>>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Vec::new(),
            slots: Vec::new(),
            used: 0,
            id: next_relation_id(),
            shrink_epoch: 0,
            last_truncate_len: 0,
            sorted_cache: Mutex::new(None),
        }
    }

    /// Creates an empty relation with pre-reserved capacity.
    pub fn with_capacity(arity: usize, cap: usize) -> Self {
        let mut r = Relation::new(arity);
        r.reserve(cap);
        r
    }

    /// Builds a relation from an iterator of tuples.
    ///
    /// # Panics
    /// Panics if any tuple's arity differs from `arity`.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Builds a relation of an explicit arity from an iterator — unlike the
    /// `FromIterator` impl, an empty iterator yields an empty relation of
    /// the *requested* arity instead of inferring arity 0.
    ///
    /// # Panics
    /// Panics if any tuple's arity differs from `arity`.
    pub fn from_iter_with_arity(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Relation::from_tuples(arity, tuples)
    }

    /// The full relation `A^k` over a universe of the given size.
    pub fn full(universe_size: usize, arity: usize) -> Self {
        Relation::from_tuples(arity, crate::tuple::all_tuples(universe_size, arity))
    }

    /// Declared arity `k`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Identity token for external index caches: stable while the relation
    /// only grows, refreshed whenever cached positional indexes over it
    /// would go stale (construction, clone, removal).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tuples in insertion order. `dense()[w..]` is exactly the set of
    /// tuples inserted after the relation had `w` tuples — the delta that
    /// incremental index maintenance consumes.
    pub fn dense(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Truncation epoch: bumped exactly once per [`truncate`](Self::truncate).
    ///
    /// An external positional index synchronized at epoch `e` with watermark
    /// `w` remains valid on the prefix `min(w, last_truncate_len())` when the
    /// relation is at epoch `e + 1`, and must rebuild when further behind.
    pub fn shrink_epoch(&self) -> u64 {
        self.shrink_epoch
    }

    /// Surviving prefix length of the most recent truncation (0 if the
    /// relation has never been truncated).
    pub fn last_truncate_len(&self) -> usize {
        self.last_truncate_len
    }

    /// Rolls the relation back to its first `len` tuples in insertion order
    /// — the snapshot/rollback primitive for restartable fixpoints.
    ///
    /// Because insertion is append-only, `truncate(w)` restores exactly the
    /// state the relation had when `len() == w`. The dense prefix keeps its
    /// positions and the [`id`](Self::id) is preserved, so external
    /// positional indexes stay valid up to `len` and resynchronize via
    /// [`shrink_epoch`](Self::shrink_epoch) instead of rebuilding. No-op if
    /// `len >= self.len()`.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.tuples.len() {
            return;
        }
        self.shrink_epoch += 1;
        self.last_truncate_len = len;
        self.clear_sorted_cache();
        if len == 0 {
            self.tuples.clear();
            self.slots.fill(EMPTY);
            self.used = 0;
            return;
        }
        let removed = self.tuples.len() - len;
        if removed * 4 >= len {
            // Large cut: rebuilding the probe table (also clears tombstones)
            // beats tombstoning each removed tuple.
            self.tuples.truncate(len);
            self.rebuild_slots(self.tuples.len());
        } else {
            let mask = self.slots.len() as u64 - 1;
            for i in len..self.tuples.len() {
                let mut slot = (hash_tuple(&self.tuples[i]) & mask) as usize;
                while self.slots[slot] != i as u32 {
                    debug_assert!(self.slots[slot] != EMPTY, "truncated tuple must be indexed");
                    slot = (slot + 1) & mask as usize;
                }
                self.slots[slot] = TOMBSTONE;
            }
            self.tuples.truncate(len);
        }
    }

    /// Removes every tuple while keeping the allocated storage (and the
    /// relation [`id`](Self::id)) — `truncate(0)`. Scratch relations that
    /// are refilled every round reuse their dense vector and probe table.
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Like [`truncate`](Self::truncate), but returns the removed suffix (in
    /// insertion order) instead of dropping it. Same epoch/index semantics.
    pub fn split_off(&mut self, len: usize) -> Vec<Tuple> {
        if len >= self.tuples.len() {
            return Vec::new();
        }
        self.shrink_epoch += 1;
        self.last_truncate_len = len;
        self.clear_sorted_cache();
        let suffix = self.tuples.split_off(len);
        if len == 0 {
            self.slots.fill(EMPTY);
            self.used = 0;
        } else if suffix.len() * 4 >= len {
            self.rebuild_slots(self.tuples.len());
        } else {
            let mask = self.slots.len() as u64 - 1;
            for (off, t) in suffix.iter().enumerate() {
                let dense_idx = (len + off) as u32;
                let mut slot = (hash_tuple(t) & mask) as usize;
                while self.slots[slot] != dense_idx {
                    debug_assert!(self.slots[slot] != EMPTY, "split tuple must be indexed");
                    slot = (slot + 1) & mask as usize;
                }
                self.slots[slot] = TOMBSTONE;
            }
        }
        suffix
    }

    /// Pre-reserves capacity for `extra` additional tuples.
    pub fn reserve(&mut self, extra: usize) {
        self.tuples.reserve(extra);
        let needed = self.tuples.len() + extra;
        if needed * 4 >= self.slots.len() * 3 {
            self.rebuild_slots(needed);
        }
    }

    /// Rebuilds the probe table with room for `cap` live entries, clearing
    /// tombstones.
    fn rebuild_slots(&mut self, cap: usize) {
        let target = (cap.max(4) * 2).next_power_of_two();
        self.slots.clear();
        self.slots.resize(target, EMPTY);
        let mask = target as u64 - 1;
        for (i, t) in self.tuples.iter().enumerate() {
            let mut slot = (hash_tuple(t) & mask) as usize;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) & mask as usize;
            }
            self.slots[slot] = i as u32;
        }
        self.used = self.tuples.len();
    }

    /// Probes for `t`: `Ok(slot)` if present (slot holds its dense index),
    /// `Err(slot)` with the insertion slot otherwise.
    fn probe(&self, t: &Tuple) -> Result<usize, usize> {
        debug_assert!(!self.slots.is_empty());
        let mask = self.slots.len() as u64 - 1;
        let mut slot = (hash_tuple(t) & mask) as usize;
        let mut insert_at: Option<usize> = None;
        loop {
            match self.slots[slot] {
                EMPTY => return Err(insert_at.unwrap_or(slot)),
                TOMBSTONE => insert_at = insert_at.or(Some(slot)),
                idx => {
                    if &self.tuples[idx as usize] == t {
                        return Ok(slot);
                    }
                }
            }
            slot = (slot + 1) & mask as usize;
        }
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple arity differs from the relation arity (an internal
    /// invariant; user-facing paths validate arities up front).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            t.arity(),
            self.arity
        );
        self.insert_unchecked(t)
    }

    /// Inserts without the arity assertion (hot paths that already
    /// validated the arity structurally, e.g. bulk union).
    fn insert_unchecked(&mut self, t: Tuple) -> bool {
        if (self.used + 1) * 4 >= self.slots.len() * 3 {
            self.rebuild_slots(self.tuples.len() + 1);
        }
        match self.probe(&t) {
            Ok(_) => false,
            Err(slot) => {
                if self.slots[slot] == EMPTY {
                    self.used += 1;
                }
                self.slots[slot] = self.tuples.len() as u32;
                self.tuples.push(t);
                self.clear_sorted_cache();
                true
            }
        }
    }

    /// Removes a tuple; returns `true` if it was present.
    ///
    /// Removal reorders the dense storage (swap-remove) and refreshes the
    /// relation's [`id`](Self::id), invalidating external index caches.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let Ok(slot) = self.probe(t) else {
            return false;
        };
        let idx = self.slots[slot] as usize;
        self.slots[slot] = TOMBSTONE;
        self.tuples.swap_remove(idx);
        if idx < self.tuples.len() {
            // The previous last tuple moved to `idx`: redirect its slot.
            let moved_from = self.tuples.len() as u32;
            let mask = self.slots.len() as u64 - 1;
            let mut s = (hash_tuple(&self.tuples[idx]) & mask) as usize;
            while self.slots[s] != moved_from {
                debug_assert!(self.slots[s] != EMPTY, "moved tuple must be indexed");
                s = (s + 1) & mask as usize;
            }
            self.slots[s] = idx as u32;
        }
        self.id = next_relation_id();
        self.clear_sorted_cache();
        true
    }

    /// Removes a tuple **without refreshing the relation's identity**,
    /// returning the dense positions the swap-remove touched:
    /// `(removed_pos, moved_from_pos)` — the tuple previously at
    /// `moved_from_pos` (the last position) now sits at `removed_pos`
    /// (the two are equal when the last tuple itself was removed).
    ///
    /// External positional indexes over the relation become stale at exactly
    /// those two positions; the caller **must** patch or discard them
    /// synchronously (see `IndexSet::patch_swap_remove` in the evaluator) —
    /// this is the one mutation the identity token does not guard. The
    /// incremental well-founded engine uses it to delete the handful of
    /// tuples that leave the decreasing side each alternation while keeping
    /// its indexes warm.
    pub fn remove_tracked(&mut self, t: &Tuple) -> Option<(usize, usize)> {
        if self.slots.is_empty() {
            return None;
        }
        let Ok(slot) = self.probe(t) else {
            return None;
        };
        let idx = self.slots[slot] as usize;
        self.slots[slot] = TOMBSTONE;
        self.tuples.swap_remove(idx);
        let moved_from = self.tuples.len();
        if idx < self.tuples.len() {
            // The previous last tuple moved to `idx`: redirect its slot.
            let mask = self.slots.len() as u64 - 1;
            let mut s = (hash_tuple(&self.tuples[idx]) & mask) as usize;
            while self.slots[s] != moved_from as u32 {
                debug_assert!(self.slots[s] != EMPTY, "moved tuple must be indexed");
                s = (s + 1) & mask as usize;
            }
            self.slots[s] = idx as u32;
        }
        self.clear_sorted_cache();
        Some((idx, moved_from))
    }

    /// Reverses a [`remove_tracked`](Self::remove_tracked): re-inserts `t`
    /// and moves it back to dense position `pos`, restoring the dense order
    /// the relation had before the removal. The tuple that swap-remove moved
    /// into `pos` returns to the end (its original position).
    ///
    /// The probe-table *layout* may differ from the pre-removal table (the
    /// removal left a tombstone), but probe semantics are equivalent; the
    /// observable state — `dense()` order and membership — is restored
    /// exactly. Like `remove_tracked`, this does **not** refresh the
    /// relation [`id`](Self::id): callers that patched external positional
    /// indexes around the removal must patch or invalidate them around the
    /// restore too (the transactional rollback in the evaluator calls
    /// [`refresh_id`](Self::refresh_id) once at the end instead).
    ///
    /// # Panics
    /// Panics if `t` is already present or `pos` is out of bounds after the
    /// insertion — both indicate the call does not mirror a prior
    /// `remove_tracked(&t) == Some((pos, _))`.
    pub fn restore_swap_removed(&mut self, pos: usize, t: Tuple) {
        let inserted = self.insert(t);
        assert!(inserted, "restored tuple must have been absent");
        let last = self.tuples.len() - 1;
        assert!(pos <= last, "restore position {pos} out of bounds");
        if pos == last {
            return;
        }
        // Locate both probe slots *before* swapping (probe matches tuples
        // through their current dense positions), then swap the dense
        // entries and redirect the two slots.
        let slot_moved = self
            .probe(&self.tuples[pos])
            .expect("tuple at restore position must be indexed");
        let slot_restored = self
            .probe(&self.tuples[last])
            .expect("freshly inserted tuple must be indexed");
        self.tuples.swap(pos, last);
        self.slots[slot_moved] = last as u32;
        self.slots[slot_restored] = pos as u32;
        self.clear_sorted_cache();
    }

    /// Refreshes the identity token without touching the tuples, forcing
    /// external index caches keyed on [`id`](Self::id) to rebuild instead of
    /// serving possibly-stale positional data. The transactional rollback in
    /// the evaluator calls this on every relation it restored: indexes
    /// patched during the failed update cannot be un-patched, so they are
    /// invalidated wholesale.
    pub fn refresh_id(&mut self) {
        self.id = next_relation_id();
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        !self.slots.is_empty() && self.probe(t).is_ok()
    }

    /// Iterates over tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Drops the cached sort order (every mutation path calls this). Holding
    /// `&mut self` means no other thread can be probing the cache, so the
    /// uncontended [`Mutex::get_mut`] access compiles to a plain store.
    fn clear_sorted_cache(&mut self) {
        *self
            .sorted_cache
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// Returns the tuples sorted lexicographically (deterministic output for
    /// display, hashing into SAT variables, and tests).
    ///
    /// The sort order is cached and reused until the relation changes.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut cache = match self.sorted_cache.lock() {
            Ok(guard) => guard,
            // A thread panicked while holding the cache lock. The cache is
            // pure derived data, so recovery is trivial: drop whatever
            // (possibly torn) order is in there and re-sort from the dense
            // storage, which the lock never guards.
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = None;
                self.sorted_cache.clear_poison();
                guard
            }
        };
        let order = cache.get_or_insert_with(|| {
            let mut idx: Vec<u32> = (0..self.tuples.len() as u32).collect();
            idx.sort_unstable_by(|&a, &b| self.tuples[a as usize].cmp(&self.tuples[b as usize]));
            idx
        });
        order
            .iter()
            .map(|&i| self.tuples[i as usize].clone())
            .collect()
    }

    /// In-place union; returns the number of newly added tuples.
    ///
    /// The arity is checked once up front and capacity for the incoming
    /// tuples is pre-reserved; the new tuples are appended to the dense
    /// suffix, so `dense()[len_before..]` afterwards is exactly the delta.
    ///
    /// # Panics
    /// Panics if the relations' arities differ.
    pub fn union_with(&mut self, other: &Relation) -> usize {
        assert_eq!(
            other.arity, self.arity,
            "relation arity {} does not match relation arity {}",
            other.arity, self.arity
        );
        let before = self.tuples.len();
        self.reserve(other.len());
        for t in other.iter() {
            self.insert_unchecked(t.clone());
        }
        self.tuples.len() - before
    }

    /// Set union.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut r = self.clone();
        r.union_with(other);
        r
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Relation) -> Relation {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        Relation::from_tuples(
            self.arity,
            small.iter().filter(|t| large.contains(t)).cloned(),
        )
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Relation) -> Relation {
        Relation::from_tuples(
            self.arity,
            self.iter().filter(|t| !other.contains(t)).cloned(),
        )
    }

    /// Complement within `A^k` for a universe of the given size.
    pub fn complement(&self, universe_size: usize) -> Relation {
        let mut r = Relation::new(self.arity);
        for t in crate::tuple::all_tuples(universe_size, self.arity) {
            if !self.contains(&t) {
                r.insert(t);
            }
        }
        r
    }

    /// Subset test (the componentwise order ⊆ used to define least fixpoints).
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.len() <= other.len() && self.iter().all(|t| other.contains(t))
    }

    /// Whether the two relations are ⊆-incomparable (neither contains the
    /// other). The paper's G_n example produces exponentially many *pairwise
    /// incomparable* fixpoints.
    pub fn incomparable(&self, other: &Relation) -> bool {
        !self.is_subset(other) && !other.is_subset(self)
    }

    /// Builds a hash index on the given key columns: key projection ↦ tuples.
    ///
    /// One-shot convenience; the evaluator maintains persistent positional
    /// indexes over [`dense`](Self::dense) instead.
    pub fn index_on(&self, cols: &[usize]) -> HashMap<Tuple, Vec<Tuple>> {
        let mut idx: HashMap<Tuple, Vec<Tuple>> = HashMap::new();
        for t in self.iter() {
            idx.entry(t.project(cols)).or_default().push(t.clone());
        }
        idx
    }

    /// Projects the relation onto the given columns (with dedup).
    pub fn project(&self, cols: &[usize]) -> Relation {
        let mut r = Relation::new(cols.len());
        for t in self.iter() {
            r.insert(t.project(cols));
        }
        r
    }

    /// Selects tuples where column `col` equals `value`.
    pub fn select_eq(&self, col: usize, value: Const) -> Relation {
        let mut r = Relation::new(self.arity);
        for t in self.iter() {
            if t[col] == value {
                r.insert(t.clone());
            }
        }
        r
    }

    /// The set of constants appearing anywhere in the relation (its active
    /// domain contribution).
    pub fn active_domain(&self) -> BTreeSet<Const> {
        self.iter()
            .flat_map(|t| t.items().iter().copied())
            .collect()
    }
}

impl Clone for Relation {
    /// Clones get a fresh [`id`](Self::id): the clone diverges from the
    /// original, so indexes cached against the original must not serve it.
    fn clone(&self) -> Self {
        Relation {
            arity: self.arity,
            tuples: self.tuples.clone(),
            slots: self.slots.clone(),
            used: self.used,
            id: next_relation_id(),
            shrink_epoch: 0,
            last_truncate_len: 0,
            sorted_cache: Mutex::new(
                self.sorted_cache
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.len() == other.len()
            && self.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.sorted().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collects tuples into a relation, inferring arity from the first tuple.
    ///
    /// Empty iterators produce an arity-0 relation — if the arity is known,
    /// prefer [`Relation::from_iter_with_arity`], which cannot mis-infer.
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map_or(0, Tuple::arity);
        Relation::from_tuples(arity, it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u32]) -> Tuple {
        Tuple::from_ids(ids)
    }

    fn rel(arity: usize, ts: &[&[u32]]) -> Relation {
        Relation::from_tuples(arity, ts.iter().map(|ids| t(ids)))
    }

    #[test]
    fn relation_is_send_and_sync() {
        // Parallel evaluation rounds share relations read-only across
        // worker threads; this fails to compile if an interior-mutability
        // change ever takes `Sync` away again.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Relation>();
        assert_send_sync::<Tuple>();
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[0, 1])));
        assert!(!r.insert(t(&[0, 1])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn insert_wrong_arity_panics() {
        let mut r = Relation::new(2);
        r.insert(t(&[0]));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn union_with_wrong_arity_panics() {
        let mut r = Relation::new(2);
        r.union_with(&Relation::new(1));
    }

    #[test]
    fn set_algebra() {
        let a = rel(1, &[&[0], &[1]]);
        let b = rel(1, &[&[1], &[2]]);
        assert_eq!(a.union(&b), rel(1, &[&[0], &[1], &[2]]));
        assert_eq!(a.intersection(&b), rel(1, &[&[1]]));
        assert_eq!(a.difference(&b), rel(1, &[&[0]]));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.incomparable(&b));
        assert!(!a.incomparable(&a));
    }

    #[test]
    fn union_with_counts_new() {
        let mut a = rel(1, &[&[0]]);
        let b = rel(1, &[&[0], &[1], &[2]]);
        assert_eq!(a.union_with(&b), 2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn dense_suffix_is_the_union_delta() {
        let mut a = rel(1, &[&[0], &[1]]);
        let before = a.len();
        let b = rel(1, &[&[1], &[2], &[3]]);
        let added = a.union_with(&b);
        assert_eq!(added, 2);
        let delta: BTreeSet<&Tuple> = a.dense()[before..].iter().collect();
        assert_eq!(delta, [t(&[2]), t(&[3])].iter().collect());
    }

    #[test]
    fn id_stable_under_growth_fresh_on_clone_and_remove() {
        let mut a = rel(1, &[&[0]]);
        let id0 = a.id();
        a.insert(t(&[1]));
        a.union_with(&rel(1, &[&[2]]));
        assert_eq!(a.id(), id0, "append-only growth keeps the id");
        let b = a.clone();
        assert_ne!(b.id(), id0, "clones diverge");
        a.remove(&t(&[1]));
        assert_ne!(a.id(), id0, "removal reorders dense storage");
    }

    #[test]
    fn complement_in_universe() {
        let a = rel(1, &[&[0], &[2]]);
        let c = a.complement(4);
        assert_eq!(c, rel(1, &[&[1], &[3]]));
        // Complement twice = identity.
        assert_eq!(c.complement(4), a);
    }

    #[test]
    fn full_relation() {
        let f = Relation::full(3, 2);
        assert_eq!(f.len(), 9);
        assert!(f.contains(&t(&[2, 2])));
        // arity-0 full relation: the single empty tuple.
        let p = Relation::full(3, 0);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&Tuple::empty()));
    }

    #[test]
    fn index_groups_by_key() {
        let r = rel(2, &[&[0, 1], &[0, 2], &[1, 2]]);
        let idx = r.index_on(&[0]);
        assert_eq!(idx.get(&t(&[0])).map(Vec::len), Some(2));
        assert_eq!(idx.get(&t(&[1])).map(Vec::len), Some(1));
        assert_eq!(idx.get(&t(&[2])), None);
    }

    #[test]
    fn project_and_select() {
        let r = rel(2, &[&[0, 1], &[0, 2], &[1, 1]]);
        assert_eq!(r.project(&[0]), rel(1, &[&[0], &[1]]));
        assert_eq!(r.select_eq(0, Const(0)).len(), 2);
        assert_eq!(r.select_eq(1, Const(1)).len(), 2);
    }

    #[test]
    fn sorted_is_deterministic() {
        let r = rel(2, &[&[1, 0], &[0, 1], &[0, 0]]);
        let s = r.sorted();
        assert_eq!(s, vec![t(&[0, 0]), t(&[0, 1]), t(&[1, 0])]);
        // Cached: a second call returns the same order.
        assert_eq!(r.sorted(), s);
    }

    #[test]
    fn sorted_cache_invalidated_by_mutation() {
        let mut r = rel(1, &[&[2], &[0]]);
        assert_eq!(r.sorted(), vec![t(&[0]), t(&[2])]);
        r.insert(t(&[1]));
        assert_eq!(r.sorted(), vec![t(&[0]), t(&[1]), t(&[2])]);
        r.remove(&t(&[0]));
        assert_eq!(r.sorted(), vec![t(&[1]), t(&[2])]);
    }

    #[test]
    fn display_sorted() {
        let r = rel(1, &[&[2], &[0]]);
        assert_eq!(r.to_string(), "{(0), (2)}");
    }

    #[test]
    fn active_domain() {
        let r = rel(2, &[&[0, 3], &[3, 5]]);
        let dom: Vec<u32> = r.active_domain().iter().map(|c| c.id()).collect();
        assert_eq!(dom, vec![0, 3, 5]);
    }

    #[test]
    fn from_iterator_infers_arity() {
        let r: Relation = vec![t(&[1, 2]), t(&[3, 4])].into_iter().collect();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        let empty: Relation = Vec::<Tuple>::new().into_iter().collect();
        assert_eq!(empty.arity(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn from_iter_with_arity_keeps_arity_when_empty() {
        let r = Relation::from_iter_with_arity(3, Vec::<Tuple>::new());
        assert_eq!(r.arity(), 3);
        assert!(r.is_empty());
        let r = Relation::from_iter_with_arity(2, vec![t(&[1, 2])]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_tuples() {
        let mut r = rel(1, &[&[0], &[1]]);
        assert!(r.remove(&t(&[0])));
        assert!(!r.remove(&t(&[0])));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&t(&[1])));
        assert!(!Relation::new(1).remove(&t(&[5])));
    }

    #[test]
    fn truncate_restores_previous_state() {
        let mut r = rel(1, &[&[0], &[1]]);
        let id0 = r.id();
        let snapshot = r.len();
        r.insert(t(&[2]));
        r.insert(t(&[3]));
        r.truncate(snapshot);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[0])) && r.contains(&t(&[1])));
        assert!(!r.contains(&t(&[2])) && !r.contains(&t(&[3])));
        assert_eq!(r.id(), id0, "truncation preserves the identity token");
        assert_eq!(r.last_truncate_len(), snapshot);
        // The dense prefix is untouched, and re-growth works.
        assert_eq!(r.dense(), &[t(&[0]), t(&[1])]);
        assert!(r.insert(t(&[3])));
        assert_eq!(r.dense()[2], t(&[3]));
    }

    #[test]
    fn truncate_epoch_bumps_once_per_cut() {
        let mut r = rel(1, &[&[0], &[1], &[2]]);
        assert_eq!(r.shrink_epoch(), 0);
        r.truncate(3); // no-op: nothing removed
        assert_eq!(r.shrink_epoch(), 0);
        r.truncate(2);
        assert_eq!(r.shrink_epoch(), 1);
        r.insert(t(&[9]));
        assert_eq!(r.shrink_epoch(), 1, "growth does not bump the epoch");
        r.truncate(0);
        assert_eq!(r.shrink_epoch(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn clear_keeps_identity_and_reuses_storage() {
        let mut r = rel(2, &[&[0, 1], &[2, 3]]);
        let id0 = r.id();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.id(), id0);
        assert!(!r.contains(&t(&[0, 1])));
        assert!(r.insert(t(&[4, 5])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_tracked_reports_swap_positions() {
        let mut r = rel(1, &[&[0], &[1], &[2], &[3]]);
        let id0 = r.id();
        // Remove an interior tuple: the last one moves into its slot.
        assert_eq!(r.remove_tracked(&t(&[1])), Some((1, 3)));
        assert_eq!(r.dense(), &[t(&[0]), t(&[3]), t(&[2])]);
        // Remove the (current) last tuple: nothing moves.
        assert_eq!(r.remove_tracked(&t(&[2])), Some((2, 2)));
        assert_eq!(r.dense(), &[t(&[0]), t(&[3])]);
        assert_eq!(r.remove_tracked(&t(&[9])), None);
        assert_eq!(r.id(), id0, "tracked removal preserves the identity");
        assert!(r.contains(&t(&[0])) && r.contains(&t(&[3])));
        assert!(!r.contains(&t(&[1])) && !r.contains(&t(&[2])));
        assert!(r.insert(t(&[1])));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn restore_swap_removed_round_trips() {
        let mut r = rel(1, &[&[0], &[1], &[2], &[3]]);
        let id0 = r.id();
        let before: Vec<Tuple> = r.dense().to_vec();
        // Interior removal: the last tuple moves into the hole; the restore
        // must send it back and put the removed tuple where it was.
        let (pos, moved) = r.remove_tracked(&t(&[1])).unwrap();
        assert_ne!(pos, moved);
        r.restore_swap_removed(pos, t(&[1]));
        assert_eq!(r.dense(), &before[..]);
        // Last-position removal: nothing moved, the restore is a plain append.
        let (pos, moved) = r.remove_tracked(&t(&[3])).unwrap();
        assert_eq!(pos, moved);
        r.restore_swap_removed(pos, t(&[3]));
        assert_eq!(r.dense(), &before[..]);
        assert_eq!(r.id(), id0, "restore preserves the identity token");
        // The probe table is still consistent after the dance.
        for tup in &before {
            assert!(r.contains(tup));
        }
        assert!(r.insert(t(&[9])));
        assert!(r.remove(&t(&[9])));
    }

    #[test]
    fn restore_swap_removed_stress_against_model() {
        let mut x: u64 = 0x5151_5151;
        let mut next = move |m: u32| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u32 % m
        };
        let mut r = Relation::new(1);
        for i in 0..40 {
            r.insert(t(&[i]));
        }
        let before: Vec<Tuple> = r.dense().to_vec();
        for _ in 0..200 {
            // Remove a random batch in random order, then undo it in exact
            // reverse order (the rollback discipline) and check the dense
            // order is restored bit-for-bit.
            let mut undo: Vec<(usize, Tuple)> = Vec::new();
            for _ in 0..(1 + next(5)) {
                let victim = r.dense()[next(r.len() as u32) as usize].clone();
                let (pos, _) = r.remove_tracked(&victim).unwrap();
                undo.push((pos, victim));
            }
            for (pos, tup) in undo.into_iter().rev() {
                r.restore_swap_removed(pos, tup);
            }
            assert_eq!(r.dense(), &before[..]);
            for tup in &before {
                assert!(r.contains(tup));
            }
        }
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn restore_swap_removed_rejects_present_tuple() {
        let mut r = rel(1, &[&[0], &[1]]);
        r.restore_swap_removed(0, t(&[1]));
    }

    #[test]
    fn refresh_id_invalidates_without_mutation() {
        let mut r = rel(1, &[&[0], &[1]]);
        let id0 = r.id();
        let before: Vec<Tuple> = r.dense().to_vec();
        r.refresh_id();
        assert_ne!(r.id(), id0);
        assert_eq!(r.dense(), &before[..], "tuples untouched");
    }

    #[test]
    fn sorted_recovers_from_poisoned_cache() {
        let r = rel(1, &[&[2], &[0], &[1]]);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = r.sorted_cache.lock().unwrap();
            panic!("poison the sorted cache");
        }));
        assert!(caught.is_err());
        assert!(r.sorted_cache.is_poisoned());
        // The cache is derived data: sorted() clears it and re-sorts.
        assert_eq!(r.sorted(), vec![t(&[0]), t(&[1]), t(&[2])]);
        assert!(!r.sorted_cache.is_poisoned(), "poison cleared on recovery");
        assert_eq!(r.sorted(), vec![t(&[0]), t(&[1]), t(&[2])]);
    }

    #[test]
    fn split_off_returns_suffix_in_insertion_order() {
        let mut r = rel(1, &[&[5], &[3], &[8], &[1]]);
        let id0 = r.id();
        let suffix = r.split_off(2);
        assert_eq!(suffix, vec![t(&[8]), t(&[1])]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[5])) && r.contains(&t(&[3])));
        assert!(!r.contains(&t(&[8])) && !r.contains(&t(&[1])));
        assert_eq!(r.id(), id0);
        assert_eq!(r.shrink_epoch(), 1);
        assert_eq!(r.last_truncate_len(), 2);
        assert!(r.split_off(2).is_empty());
    }

    #[test]
    fn truncate_large_and_small_cuts_against_model() {
        // Exercise both the tombstone path (small suffix) and the
        // rebuild path (large suffix) against a replayed model.
        let mut x: u64 = 0xdead_beef;
        let mut next = move |m: u32| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u32 % m
        };
        let mut r = Relation::new(1);
        let mut log: Vec<Tuple> = Vec::new(); // dense insertion order
        for step in 0..500 {
            if step % 7 == 6 {
                let cut = next(log.len().max(1) as u32) as usize;
                r.truncate(cut);
                log.truncate(cut);
            } else {
                let tup = t(&[next(97)]);
                let fresh = !log.contains(&tup);
                assert_eq!(r.insert(tup.clone()), fresh, "step {step}");
                if fresh {
                    log.push(tup);
                }
            }
            assert_eq!(r.len(), log.len(), "step {step}");
            assert_eq!(r.dense(), &log[..], "step {step}");
        }
        for tup in &log {
            assert!(r.contains(tup));
        }
        assert!(!r.contains(&t(&[97])));
    }

    #[test]
    fn insert_remove_stress_consistency() {
        // Exercise tombstones, swap-remove redirects and table growth
        // against a model HashSet.
        let mut r = Relation::new(2);
        let mut model = std::collections::HashSet::new();
        let mut x: u64 = 0x9e37_79b9;
        for step in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) as u32 % 17;
            let b = (x >> 11) as u32 % 17;
            let tup = t(&[a, b]);
            if step % 3 == 0 {
                assert_eq!(r.remove(&tup), model.remove(&tup), "step {step}");
            } else {
                assert_eq!(r.insert(tup.clone()), model.insert(tup), "step {step}");
            }
            assert_eq!(r.len(), model.len(), "step {step}");
        }
        for tup in &model {
            assert!(r.contains(tup));
        }
        assert_eq!(r.sorted().len(), model.len());
    }
}
