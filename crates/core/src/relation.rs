//! Finite `k`-ary relations on the universe, with set algebra and indexing.

use crate::tuple::{Const, Tuple};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A finite `k`-ary relation: a set of [`Tuple`]s of fixed arity.
///
/// Relations are the values the paper's operator Θ maps between; evaluation
/// engines need fast membership (`contains`), fast insertion with dedup, set
/// algebra (union / intersection / difference / subset — the lattice on which
/// *least* fixpoints are defined), and hash-join indexing.
#[derive(Debug, Clone)]
pub struct Relation {
    arity: usize,
    tuples: HashSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: HashSet::new(),
        }
    }

    /// Creates an empty relation with pre-reserved capacity.
    pub fn with_capacity(arity: usize, cap: usize) -> Self {
        Relation {
            arity,
            tuples: HashSet::with_capacity(cap),
        }
    }

    /// Builds a relation from an iterator of tuples.
    ///
    /// # Panics
    /// Panics if any tuple's arity differs from `arity`.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// The full relation `A^k` over a universe of the given size.
    pub fn full(universe_size: usize, arity: usize) -> Self {
        Relation::from_tuples(arity, crate::tuple::all_tuples(universe_size, arity))
    }

    /// Declared arity `k`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple arity differs from the relation arity (an internal
    /// invariant; user-facing paths validate arities up front).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            t.arity(),
            self.arity
        );
        self.tuples.insert(t)
    }

    /// Removes a tuple; returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterates over tuples in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Returns the tuples sorted lexicographically (deterministic output for
    /// display, hashing into SAT variables, and tests).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// In-place union; returns the number of newly added tuples.
    pub fn union_with(&mut self, other: &Relation) -> usize {
        let before = self.tuples.len();
        for t in other.iter() {
            self.insert(t.clone());
        }
        self.tuples.len() - before
    }

    /// Set union.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut r = self.clone();
        r.union_with(other);
        r
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Relation) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Relation) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        }
    }

    /// Complement within `A^k` for a universe of the given size.
    pub fn complement(&self, universe_size: usize) -> Relation {
        let mut r = Relation::new(self.arity);
        for t in crate::tuple::all_tuples(universe_size, self.arity) {
            if !self.contains(&t) {
                r.insert(t);
            }
        }
        r
    }

    /// Subset test (the componentwise order ⊆ used to define least fixpoints).
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.tuples.is_subset(&other.tuples)
    }

    /// Whether the two relations are ⊆-incomparable (neither contains the
    /// other). The paper's G_n example produces exponentially many *pairwise
    /// incomparable* fixpoints.
    pub fn incomparable(&self, other: &Relation) -> bool {
        !self.is_subset(other) && !other.is_subset(self)
    }

    /// Builds a hash index on the given key columns: key projection ↦ tuples.
    pub fn index_on(&self, cols: &[usize]) -> HashMap<Tuple, Vec<Tuple>> {
        let mut idx: HashMap<Tuple, Vec<Tuple>> = HashMap::new();
        for t in self.iter() {
            idx.entry(t.project(cols)).or_default().push(t.clone());
        }
        idx
    }

    /// Projects the relation onto the given columns (with dedup).
    pub fn project(&self, cols: &[usize]) -> Relation {
        let mut r = Relation::new(cols.len());
        for t in self.iter() {
            r.insert(t.project(cols));
        }
        r
    }

    /// Selects tuples where column `col` equals `value`.
    pub fn select_eq(&self, col: usize, value: Const) -> Relation {
        let mut r = Relation::new(self.arity);
        for t in self.iter() {
            if t[col] == value {
                r.insert(t.clone());
            }
        }
        r
    }

    /// The set of constants appearing anywhere in the relation (its active
    /// domain contribution).
    pub fn active_domain(&self) -> BTreeSet<Const> {
        self.iter()
            .flat_map(|t| t.items().iter().copied())
            .collect()
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.sorted().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collects tuples into a relation, inferring arity from the first tuple
    /// (empty iterators produce an arity-0 relation).
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map_or(0, Tuple::arity);
        Relation::from_tuples(arity, it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u32]) -> Tuple {
        Tuple::from_ids(ids)
    }

    fn rel(arity: usize, ts: &[&[u32]]) -> Relation {
        Relation::from_tuples(arity, ts.iter().map(|ids| t(ids)))
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[0, 1])));
        assert!(!r.insert(t(&[0, 1])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn insert_wrong_arity_panics() {
        let mut r = Relation::new(2);
        r.insert(t(&[0]));
    }

    #[test]
    fn set_algebra() {
        let a = rel(1, &[&[0], &[1]]);
        let b = rel(1, &[&[1], &[2]]);
        assert_eq!(a.union(&b), rel(1, &[&[0], &[1], &[2]]));
        assert_eq!(a.intersection(&b), rel(1, &[&[1]]));
        assert_eq!(a.difference(&b), rel(1, &[&[0]]));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.incomparable(&b));
        assert!(!a.incomparable(&a));
    }

    #[test]
    fn union_with_counts_new() {
        let mut a = rel(1, &[&[0]]);
        let b = rel(1, &[&[0], &[1], &[2]]);
        assert_eq!(a.union_with(&b), 2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn complement_in_universe() {
        let a = rel(1, &[&[0], &[2]]);
        let c = a.complement(4);
        assert_eq!(c, rel(1, &[&[1], &[3]]));
        // Complement twice = identity.
        assert_eq!(c.complement(4), a);
    }

    #[test]
    fn full_relation() {
        let f = Relation::full(3, 2);
        assert_eq!(f.len(), 9);
        assert!(f.contains(&t(&[2, 2])));
        // arity-0 full relation: the single empty tuple.
        let p = Relation::full(3, 0);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&Tuple::empty()));
    }

    #[test]
    fn index_groups_by_key() {
        let r = rel(2, &[&[0, 1], &[0, 2], &[1, 2]]);
        let idx = r.index_on(&[0]);
        assert_eq!(idx.get(&t(&[0])).map(Vec::len), Some(2));
        assert_eq!(idx.get(&t(&[1])).map(Vec::len), Some(1));
        assert_eq!(idx.get(&t(&[2])), None);
    }

    #[test]
    fn project_and_select() {
        let r = rel(2, &[&[0, 1], &[0, 2], &[1, 1]]);
        assert_eq!(r.project(&[0]), rel(1, &[&[0], &[1]]));
        assert_eq!(r.select_eq(0, Const(0)).len(), 2);
        assert_eq!(r.select_eq(1, Const(1)).len(), 2);
    }

    #[test]
    fn sorted_is_deterministic() {
        let r = rel(2, &[&[1, 0], &[0, 1], &[0, 0]]);
        let s = r.sorted();
        assert_eq!(s, vec![t(&[0, 0]), t(&[0, 1]), t(&[1, 0])]);
    }

    #[test]
    fn display_sorted() {
        let r = rel(1, &[&[2], &[0]]);
        assert_eq!(r.to_string(), "{(0), (2)}");
    }

    #[test]
    fn active_domain() {
        let r = rel(2, &[&[0, 3], &[3, 5]]);
        let dom: Vec<u32> = r.active_domain().iter().map(|c| c.id()).collect();
        assert_eq!(dom, vec![0, 3, 5]);
    }

    #[test]
    fn from_iterator_infers_arity() {
        let r: Relation = vec![t(&[1, 2]), t(&[3, 4])].into_iter().collect();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        let empty: Relation = Vec::<Tuple>::new().into_iter().collect();
        assert_eq!(empty.arity(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn remove_tuples() {
        let mut r = rel(1, &[&[0], &[1]]);
        assert!(r.remove(&t(&[0])));
        assert!(!r.remove(&t(&[0])));
        assert_eq!(r.len(), 1);
    }
}
