//! Databases `D = (A, R_1, ..., R_l)` and vocabularies (schemas).

use crate::error::CoreError;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::universe::Universe;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;

/// A vocabulary σ: relation names with arities, in deterministic order.
///
/// The paper fixes "an arbitrary but fixed finite vocabulary σ"; programs are
/// classified against it (database vs. non-database relations) and the
/// operator Θ maps tuples of relations whose arities match it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    arities: BTreeMap<String, usize>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a schema from `(name, arity)` pairs.
    ///
    /// # Errors
    /// Fails if the same name appears with two different arities.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, usize)>) -> Result<Self> {
        let mut s = Schema::new();
        for (name, arity) in pairs {
            s.declare(name, arity)?;
        }
        Ok(s)
    }

    /// Declares a relation; redeclaring with the same arity is a no-op.
    ///
    /// # Errors
    /// Fails with [`CoreError::ConflictingArity`] on an arity conflict.
    pub fn declare(&mut self, name: &str, arity: usize) -> Result<()> {
        match self.arities.get(name) {
            Some(&a) if a != arity => Err(CoreError::ConflictingArity {
                relation: name.to_owned(),
                existing: a,
                requested: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.arities.insert(name.to_owned(), arity);
                Ok(())
            }
        }
    }

    /// Arity of `name`, if declared.
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.arities.get(name).copied()
    }

    /// Whether `name` is declared.
    pub fn contains(&self, name: &str) -> bool {
        self.arities.contains_key(name)
    }

    /// Iterates `(name, arity)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> + '_ {
        self.arities.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.iter().map(|(n, a)| format!("{n}/{a}")).collect();
        write!(f, "({})", parts.join(", "))
    }
}

/// A finite database `D = (A, R_1, ..., R_l)`: a universe plus named
/// relations over it.
///
/// Relations are stored in a `BTreeMap` so iteration order (and therefore all
/// derived output: displays, SAT variable numbering, experiment tables) is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    universe: Universe,
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates a database with an empty universe and no relations.
    pub fn new() -> Self {
        Database {
            universe: Universe::new(),
            relations: BTreeMap::new(),
        }
    }

    /// Creates a database over the given universe.
    pub fn with_universe(universe: Universe) -> Self {
        Database {
            universe,
            relations: BTreeMap::new(),
        }
    }

    /// The universe `A`.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Mutable access to the universe (for interning additional constants).
    pub fn universe_mut(&mut self) -> &mut Universe {
        &mut self.universe
    }

    /// `|A|`.
    pub fn universe_size(&self) -> usize {
        self.universe.len()
    }

    /// Declares an empty relation if absent; errors on arity conflict.
    pub fn declare_relation(&mut self, name: &str, arity: usize) -> Result<()> {
        match self.relations.get(name) {
            Some(r) if r.arity() != arity => Err(CoreError::ConflictingArity {
                relation: name.to_owned(),
                existing: r.arity(),
                requested: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.relations.insert(name.to_owned(), Relation::new(arity));
                Ok(())
            }
        }
    }

    /// Inserts (replaces) a whole relation.
    pub fn set_relation(&mut self, name: &str, rel: Relation) {
        self.relations.insert(name.to_owned(), rel);
    }

    /// Gets a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Gets a relation by name, erroring if absent.
    ///
    /// # Errors
    /// Fails with [`CoreError::UnknownRelation`].
    pub fn relation_required(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| CoreError::UnknownRelation(name.to_owned()))
    }

    /// Mutable relation access.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Whether the database has a relation called `name`.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Inserts a fact, declaring the relation on first use.
    ///
    /// Constants in the tuple must already belong to the universe.
    ///
    /// # Errors
    /// Fails on arity mismatch with an existing relation or on a foreign
    /// constant.
    pub fn insert_fact(&mut self, name: &str, tuple: Tuple) -> Result<bool> {
        for &c in tuple.items() {
            if !self.universe.contains(c) {
                return Err(CoreError::UnknownConstant(c.id()));
            }
        }
        match self.relations.get_mut(name) {
            Some(r) => {
                if r.arity() != tuple.arity() {
                    return Err(CoreError::ArityMismatch {
                        relation: name.to_owned(),
                        expected: r.arity(),
                        found: tuple.arity(),
                    });
                }
                Ok(r.insert(tuple))
            }
            None => {
                let mut r = Relation::new(tuple.arity());
                r.insert(tuple);
                self.relations.insert(name.to_owned(), r);
                Ok(true)
            }
        }
    }

    /// Convenience: interns the named constants and inserts the fact.
    ///
    /// # Errors
    /// Fails on arity mismatch with an existing relation.
    pub fn insert_named_fact(&mut self, name: &str, consts: &[&str]) -> Result<bool> {
        let tuple: Tuple = consts
            .iter()
            .map(|s| self.universe.intern(s))
            .collect::<Vec<_>>()
            .into();
        self.insert_fact(name, tuple)
    }

    /// Iterates `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> + '_ {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// The schema induced by the stored relations.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for (n, r) in self.iter() {
            s.declare(n, r.arity()).expect("names are unique in a map");
        }
        s
    }

    /// Total number of stored tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Renders one relation with constant names from the universe.
    pub fn display_relation(&self, name: &str) -> String {
        match self.relation(name) {
            None => format!("{name} = <absent>"),
            Some(r) => {
                let rows: Vec<String> = r
                    .sorted()
                    .iter()
                    .map(|t| t.display_with(|c| self.universe.display(c)))
                    .collect();
                format!("{name} = {{{}}}", rows.join(", "))
            }
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "universe ({}): {}", self.universe.len(), self.universe)?;
        for (name, _) in self.iter() {
            writeln!(f, "{}", self.display_relation(name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Const;

    #[test]
    fn schema_declare_and_conflict() {
        let mut s = Schema::new();
        s.declare("E", 2).unwrap();
        s.declare("E", 2).unwrap(); // idempotent
        assert!(matches!(
            s.declare("E", 3),
            Err(CoreError::ConflictingArity { .. })
        ));
        assert_eq!(s.arity("E"), Some(2));
        assert_eq!(s.arity("T"), None);
    }

    #[test]
    fn schema_from_pairs_and_display() {
        let s = Schema::from_pairs([("E", 2), ("V", 1)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "(E/2, V/1)");
        assert!(Schema::from_pairs([("E", 2), ("E", 1)]).is_err());
    }

    #[test]
    fn insert_named_facts() {
        let mut db = Database::new();
        assert!(db.insert_named_fact("E", &["a", "b"]).unwrap());
        assert!(!db.insert_named_fact("E", &["a", "b"]).unwrap());
        assert!(db.insert_named_fact("E", &["b", "c"]).unwrap());
        assert_eq!(db.universe_size(), 3);
        assert_eq!(db.relation("E").unwrap().len(), 2);
    }

    #[test]
    fn insert_fact_arity_mismatch() {
        let mut db = Database::new();
        db.insert_named_fact("E", &["a", "b"]).unwrap();
        let a = db.universe_mut().intern("a");
        let err = db.insert_fact("E", Tuple::from([a])).unwrap_err();
        assert!(matches!(err, CoreError::ArityMismatch { .. }));
    }

    #[test]
    fn insert_fact_foreign_constant() {
        let mut db = Database::with_universe(Universe::range(2));
        let err = db.insert_fact("P", Tuple::from([Const(9)])).unwrap_err();
        assert_eq!(err, CoreError::UnknownConstant(9));
    }

    #[test]
    fn relation_required_error() {
        let db = Database::new();
        assert!(matches!(
            db.relation_required("missing"),
            Err(CoreError::UnknownRelation(_))
        ));
    }

    #[test]
    fn declare_relation_conflicts() {
        let mut db = Database::new();
        db.declare_relation("T", 1).unwrap();
        db.declare_relation("T", 1).unwrap();
        assert!(db.declare_relation("T", 2).is_err());
        assert!(db.relation("T").unwrap().is_empty());
    }

    #[test]
    fn schema_of_database() {
        let mut db = Database::new();
        db.insert_named_fact("E", &["a", "b"]).unwrap();
        db.declare_relation("V", 1).unwrap();
        let s = db.schema();
        assert_eq!(s.arity("E"), Some(2));
        assert_eq!(s.arity("V"), Some(1));
    }

    #[test]
    fn display_relation_with_names() {
        let mut db = Database::new();
        db.insert_named_fact("E", &["a", "b"]).unwrap();
        db.insert_named_fact("E", &["b", "a"]).unwrap();
        let s = db.display_relation("E");
        assert_eq!(s, "E = {(a,b), (b,a)}");
        assert_eq!(db.display_relation("Z"), "Z = <absent>");
    }

    #[test]
    fn total_tuples() {
        let mut db = Database::new();
        db.insert_named_fact("E", &["a", "b"]).unwrap();
        db.insert_named_fact("V", &["a"]).unwrap();
        db.insert_named_fact("V", &["b"]).unwrap();
        assert_eq!(db.total_tuples(), 3);
    }
}
