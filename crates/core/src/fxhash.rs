//! A multiply-mix [`BuildHasher`] for the evaluator's hot hash maps.
//!
//! [`Relation`](crate::Relation)'s open-addressing table already hashes
//! tuples with a multiply-mix function instead of the standard library's
//! SipHash — on 1–4-word keys the SipHash rounds dominate the lookup. The
//! join *indexes* (key projection ↦ postings) sit on exactly the same hot
//! path: one probe per outer candidate of every keyed scan. [`FxBuildHasher`]
//! gives those `HashMap`s the same treatment — the FxHash construction
//! (rotate, xor, multiply per word) used throughout rustc, implemented here
//! because the workspace is dependency-free.
//!
//! Not DoS-resistant, exactly like the relation table: evaluation inputs
//! are programs and databases the caller already controls, not untrusted
//! network data.

use std::hash::{BuildHasher, Hasher};

/// Multiplier from the FxHash construction (a large prime close to the
/// golden ratio times 2^64).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One multiply-mix hash state. Word-sized writes fold directly; byte
/// slices fold a word at a time.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// Plugs [`FxHasher`] into `HashMap`/`HashSet` via the `S` type parameter:
/// `HashMap<K, V, FxBuildHasher>`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_inputs_hash_distinctly() {
        let h = |f: &dyn Fn(&mut FxHasher)| {
            let mut s = FxHasher::default();
            f(&mut s);
            s.finish()
        };
        assert_ne!(h(&|s| s.write_u32(1)), h(&|s| s.write_u32(2)));
        assert_ne!(
            h(&|s| {
                s.write_u32(1);
                s.write_u32(2);
            }),
            h(&|s| {
                s.write_u32(2);
                s.write_u32(1);
            }),
            "hash must be order-sensitive"
        );
        // Byte-slice folding agrees with itself across chunk boundaries.
        assert_ne!(h(&|s| s.write(&[1u8; 9])), h(&|s| s.write(&[1u8; 10])));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: HashMap<crate::Tuple, u32, FxBuildHasher> = HashMap::default();
        for i in 0..100u32 {
            m.insert(crate::Tuple::from_ids(&[i, i + 1]), i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&crate::Tuple::from_ids(&[i, i + 1])), Some(&i));
        }
    }
}
