//! Directed-graph workloads and algorithms.
//!
//! The paper's running examples are all graph-shaped:
//!
//! * the path `L_n` and cycle `C_n` families on which the program
//!   `T(x) <- E(y,x), !T(y)` has one / zero / two fixpoints (§2);
//! * `G_n`, the disjoint union of `n` even cycles, with `2^n` pairwise
//!   incomparable fixpoints and no least fixpoint (§2);
//! * transitive closure and the distance query (§4, Proposition 2);
//! * 3-COLORING inputs (Lemma 1, Theorem 4).
//!
//! [`DiGraph`] is a simple edge-set digraph with deterministic iteration,
//! generators for every family the experiments need, and the baseline
//! algorithms (BFS distances, transitive closure) used to validate the
//! Datalog engines independently.

use crate::database::Database;
use crate::universe::Universe;
use rand::Rng;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// A directed graph on vertices `0..n` with a deterministic edge set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    edges: BTreeSet<(u32, u32)>,
}

impl DiGraph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Creates a graph from an edge list; `n` must bound all endpoints.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds edge `u -> v`; returns `true` if new.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for {} vertices",
            self.n
        );
        self.edges.insert((u, v))
    }

    /// Adds both `u -> v` and `v -> u` (undirected-style edge).
    pub fn add_edge_undirected(&mut self, u: u32, v: u32) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Edge membership.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.edges.contains(&(u, v))
    }

    /// Iterates edges in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.edges.iter().copied()
    }

    /// Out-neighbours of `u`, in increasing order.
    pub fn successors(&self, u: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges.range((u, 0)..=(u, u32::MAX)).map(|&(_, v)| v)
    }

    /// In-neighbours of `v` (linear scan; fine for the workload sizes here).
    pub fn predecessors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges
            .iter()
            .filter(move |&&(_, w)| w == v)
            .map(|&(u, _)| u)
    }

    // ----- generators -------------------------------------------------------

    /// The directed path `L_n`: vertices `1..=n` (0-indexed here as
    /// `0..n`), edges `i -> i+1`. The paper's `L_n` has `n` vertices and
    /// `n-1` edges.
    pub fn path(n: usize) -> Self {
        let mut g = DiGraph::new(n);
        for i in 1..n {
            g.add_edge((i - 1) as u32, i as u32);
        }
        g
    }

    /// The directed cycle `C_n`: edges `i -> i+1 (mod n)`. Requires `n >= 1`;
    /// `C_1` is a self-loop.
    pub fn cycle(n: usize) -> Self {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(i as u32, ((i + 1) % n) as u32);
        }
        g
    }

    /// `copies` disjoint copies of the directed cycle `C_len`.
    ///
    /// With `len` even this is the paper's `G_n` family: the program π₁ has
    /// exactly `2^copies` pairwise incomparable fixpoints on it.
    pub fn disjoint_cycles(copies: usize, len: usize) -> Self {
        let mut g = DiGraph::new(copies * len);
        for c in 0..copies {
            let base = c * len;
            for i in 0..len {
                g.add_edge((base + i) as u32, (base + (i + 1) % len) as u32);
            }
        }
        g
    }

    /// Complete digraph on `n` vertices (no self-loops), both directions.
    pub fn complete(n: usize) -> Self {
        let mut g = DiGraph::new(n);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Complete bipartite digraph `K_{a,b}` with edges in both directions
    /// between the two sides (vertices `0..a` and `a..a+b`).
    pub fn complete_bipartite(a: usize, b: usize) -> Self {
        let mut g = DiGraph::new(a + b);
        for u in 0..a as u32 {
            for v in a as u32..(a + b) as u32 {
                g.add_edge_undirected(u, v);
            }
        }
        g
    }

    /// The Petersen graph (undirected, as symmetric edges): 10 vertices,
    /// 3-chromatic — a classic YES instance for 3-COLORING that is not
    /// bipartite.
    pub fn petersen() -> Self {
        let mut g = DiGraph::new(10);
        for i in 0..5u32 {
            g.add_edge_undirected(i, (i + 1) % 5); // outer cycle
            g.add_edge_undirected(i, i + 5); // spokes
            g.add_edge_undirected(i + 5, (i + 2) % 5 + 5); // inner pentagram
        }
        g
    }

    /// Directed 2D grid: vertex `(r, c)` is `r*cols + c`; edges go right and
    /// down. A DAG with long shortest paths — good distance-query workload.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut g = DiGraph::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = (r * cols + c) as u32;
                if c + 1 < cols {
                    g.add_edge(v, v + 1);
                }
                if r + 1 < rows {
                    g.add_edge(v, v + cols as u32);
                }
            }
        }
        g
    }

    /// A star: edges from center `0` to each of `1..n`.
    pub fn star(n: usize) -> Self {
        let mut g = DiGraph::new(n);
        for v in 1..n as u32 {
            g.add_edge(0, v);
        }
        g
    }

    /// Complete binary tree with `n` vertices, edges parent -> child.
    pub fn binary_tree(n: usize) -> Self {
        let mut g = DiGraph::new(n);
        for v in 1..n {
            g.add_edge(((v - 1) / 2) as u32, v as u32);
        }
        g
    }

    /// Erdős–Rényi digraph `G(n, p)`: each ordered pair `(u, v)`, `u != v`,
    /// is an edge independently with probability `p`.
    pub fn random_gnp(n: usize, p: f64, rng: &mut impl Rng) -> Self {
        let mut g = DiGraph::new(n);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v && rng.gen_bool(p.clamp(0.0, 1.0)) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Random DAG: edges only from lower to higher vertex ids, each present
    /// with probability `p`.
    pub fn random_dag(n: usize, p: f64, rng: &mut impl Rng) -> Self {
        let mut g = DiGraph::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Random symmetric graph (undirected as symmetric digraph).
    pub fn random_undirected(n: usize, p: f64, rng: &mut impl Rng) -> Self {
        let mut g = DiGraph::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    g.add_edge_undirected(u, v);
                }
            }
        }
        g
    }

    /// Disjoint union of two graphs (vertices of `other` are shifted).
    pub fn disjoint_union(&self, other: &DiGraph) -> DiGraph {
        let mut g = DiGraph::new(self.n + other.n);
        for (u, v) in self.edges() {
            g.add_edge(u, v);
        }
        let off = self.n as u32;
        for (u, v) in other.edges() {
            g.add_edge(u + off, v + off);
        }
        g
    }

    // ----- algorithms (independent baselines) -------------------------------

    /// BFS shortest-path distances from `src`; `None` = unreachable.
    /// Distances count edges; `dist[src] = 0`.
    pub fn distances_from(&self, src: u32) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.n];
        if (src as usize) >= self.n {
            return dist;
        }
        dist[src as usize] = Some(0);
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            let du = dist[u as usize].expect("queued vertices have distances");
            for v in self.successors(u) {
                if dist[v as usize].is_none() {
                    dist[v as usize] = Some(du + 1);
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// All-pairs shortest-path distances (edge counts); `dist[u][v]`.
    pub fn all_pairs_distances(&self) -> Vec<Vec<Option<usize>>> {
        (0..self.n as u32).map(|u| self.distances_from(u)).collect()
    }

    /// Transitive closure as an edge set: `(u, v)` iff there is a *nonempty*
    /// path `u -> v` (matching the Datalog TC program's semantics).
    pub fn transitive_closure(&self) -> BTreeSet<(u32, u32)> {
        let mut tc = BTreeSet::new();
        for u in 0..self.n as u32 {
            // BFS from each successor level: nonempty paths only.
            let mut seen = vec![false; self.n];
            let mut q: VecDeque<u32> = self.successors(u).collect();
            for &v in &q {
                seen[v as usize] = true;
            }
            while let Some(v) = q.pop_front() {
                tc.insert((u, v));
                for w in self.successors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        q.push_back(w);
                    }
                }
            }
        }
        tc
    }

    // ----- conversion --------------------------------------------------------

    /// Converts to a database with universe `{v0..}` named by
    /// [`vertex_name`](Self::vertex_name) and a binary edge relation.
    ///
    /// Every vertex is interned into the universe even if isolated — the
    /// paper's semantics ranges variables over the whole universe `A`.
    pub fn to_database(&self, edge_relation: &str) -> Database {
        let mut universe = Universe::new();
        for v in 0..self.n {
            universe.intern(&Self::vertex_name(v as u32));
        }
        let mut db = Database::with_universe(universe);
        db.declare_relation(edge_relation, 2)
            .expect("fresh database");
        for (u, v) in self.edges() {
            db.insert_named_fact(
                edge_relation,
                &[&Self::vertex_name(u), &Self::vertex_name(v)],
            )
            .expect("interned vertices");
        }
        db
    }

    /// Canonical vertex name used by [`to_database`](Self::to_database).
    pub fn vertex_name(v: u32) -> String {
        format!("v{v}")
    }
}

impl fmt::Display for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DiGraph(n={}, m={})", self.n, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_structure() {
        let g = DiGraph::path(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3));
        assert!(!g.has_edge(3, 0));
        assert_eq!(DiGraph::path(1).num_edges(), 0);
        assert_eq!(DiGraph::path(0).num_edges(), 0);
    }

    #[test]
    fn cycle_structure() {
        let g = DiGraph::cycle(5);
        assert_eq!(g.num_edges(), 5);
        assert!(g.has_edge(4, 0));
        let loop1 = DiGraph::cycle(1);
        assert!(loop1.has_edge(0, 0));
    }

    #[test]
    fn disjoint_cycles_structure() {
        let g = DiGraph::disjoint_cycles(3, 2);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(4, 5) && g.has_edge(5, 4));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn complete_and_bipartite() {
        assert_eq!(DiGraph::complete(4).num_edges(), 12);
        let kb = DiGraph::complete_bipartite(2, 3);
        assert_eq!(kb.num_edges(), 12);
        assert!(kb.has_edge(0, 2) && kb.has_edge(2, 0));
        assert!(!kb.has_edge(0, 1));
    }

    #[test]
    fn petersen_is_cubic() {
        let g = DiGraph::petersen();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 30); // 15 undirected edges
        for v in 0..10u32 {
            assert_eq!(g.successors(v).count(), 3, "vertex {v} degree");
        }
    }

    #[test]
    fn grid_distances() {
        let g = DiGraph::grid(3, 4);
        let d = g.distances_from(0);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[11], Some(5)); // bottom-right: 2 down + 3 right
                                    // No edges back to the origin.
        assert_eq!(g.distances_from(11)[0], None);
    }

    #[test]
    fn star_and_tree() {
        let s = DiGraph::star(5);
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.successors(0).count(), 4);
        let t = DiGraph::binary_tree(7);
        assert_eq!(t.num_edges(), 6);
        assert!(t.has_edge(0, 1) && t.has_edge(0, 2) && t.has_edge(2, 6));
    }

    #[test]
    fn successors_and_predecessors() {
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (3, 1)]);
        assert_eq!(g.successors(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g.predecessors(1).collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(g.predecessors(3).count(), 0);
    }

    #[test]
    fn bfs_on_cycle() {
        let g = DiGraph::cycle(4);
        let d = g.distances_from(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn transitive_closure_of_path() {
        let g = DiGraph::path(4);
        let tc = g.transitive_closure();
        assert_eq!(tc.len(), 6); // (0,1)(0,2)(0,3)(1,2)(1,3)(2,3)
        assert!(tc.contains(&(0, 3)));
        assert!(!tc.contains(&(0, 0)));
    }

    #[test]
    fn transitive_closure_nonempty_paths_on_cycle() {
        let g = DiGraph::cycle(3);
        let tc = g.transitive_closure();
        // Every pair including self-reachability via the full loop.
        assert_eq!(tc.len(), 9);
        assert!(tc.contains(&(0, 0)));
    }

    #[test]
    fn random_generators_are_seeded_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = DiGraph::random_gnp(10, 0.3, &mut r1);
        let b = DiGraph::random_gnp(10, 0.3, &mut r2);
        assert_eq!(a, b);
        let d = DiGraph::random_dag(10, 0.5, &mut r1);
        for (u, v) in d.edges() {
            assert!(u < v, "DAG edge must ascend");
        }
        let u = DiGraph::random_undirected(8, 0.4, &mut r1);
        for (x, y) in u.edges() {
            assert!(u.has_edge(y, x), "undirected must be symmetric");
        }
    }

    #[test]
    fn disjoint_union_shifts() {
        let g = DiGraph::path(2).disjoint_union(&DiGraph::cycle(2));
        assert_eq!(g.num_vertices(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3) && g.has_edge(3, 2));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn to_database_includes_isolated_vertices() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1); // vertex 2 isolated
        let db = g.to_database("E");
        assert_eq!(db.universe_size(), 3);
        assert_eq!(db.relation("E").unwrap().len(), 1);
        assert!(db.universe().lookup("v2").is_some());
    }

    #[test]
    fn all_pairs_matches_single_source() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = DiGraph::random_gnp(12, 0.2, &mut rng);
        let ap = g.all_pairs_distances();
        for u in 0..12u32 {
            assert_eq!(ap[u as usize], g.distances_from(u));
        }
    }
}
