//! Committed on-disk fixtures: a healthy store directory and a byte-flipped
//! copy of it, checked into `tests/fixtures/`. They pin the binary format
//! (a change that can no longer read them is a breaking format change) and
//! give CI a stable target for the `store_fsck` binary: the corrupt fixture
//! must be reported with its exact first corrupt offset.
//!
//! Regenerate after a deliberate format-version bump with
//! `INFLOG_REGEN_FIXTURES=1 cargo test -p inflog-store --test fixtures`.
//! Everything the store serializes is deterministic (names, arities, dense
//! tuple order — never hashes or ids), so regeneration is reproducible.

use inflog_core::{Database, Relation, Tuple};
use inflog_store::wal::WAL_FILE;
use inflog_store::{fsck, SnapshotState, Store, StoreError, StoreOptions, WalOp, WalRecord};
use std::fs;
use std::path::{Path, PathBuf};

/// WAL layout: 8-byte magic + 4-byte format version, then frames. The flip
/// lands a few bytes into the first record's payload, so fsck must report
/// the first frame — at the end of the 12-byte header.
const WAL_HEADER: u64 = 12;
const FLIP_AT: u64 = WAL_HEADER + 8 + 4;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_state() -> SnapshotState {
    let mut db = Database::new();
    for name in ["a", "b", "c", "d"] {
        db.universe_mut().intern(name);
    }
    db.insert_named_fact("E", &["a", "b"]).unwrap();
    db.insert_named_fact("E", &["b", "c"]).unwrap();
    db.insert_named_fact("E", &["c", "d"]).unwrap();
    let mut idb = Relation::new(2);
    idb.insert(Tuple::from_ids(&[0, 1]));
    idb.insert(Tuple::from_ids(&[0, 2]));
    idb.insert(Tuple::from_ids(&[0, 3]));
    SnapshotState {
        epoch: 0,
        db,
        idb: vec![idb],
        undefined: vec![Relation::new(2)],
    }
}

fn regenerate(root: &Path) {
    let valid = root.join("valid");
    let _ = fs::remove_dir_all(&valid);
    let mut store = Store::create(&valid, &fixture_state(), &StoreOptions::default()).unwrap();
    store
        .append(&WalRecord {
            epoch: 1,
            op: WalOp::Insert,
            facts: vec![("E".to_string(), Tuple::from_ids(&[0, 2]))],
        })
        .unwrap();
    store
        .append(&WalRecord {
            epoch: 2,
            op: WalOp::Retract,
            facts: vec![("E".to_string(), Tuple::from_ids(&[1, 2]))],
        })
        .unwrap();
    drop(store);

    let corrupt = root.join("corrupt");
    let _ = fs::remove_dir_all(&corrupt);
    fs::create_dir_all(&corrupt).unwrap();
    for entry in fs::read_dir(&valid).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), corrupt.join(entry.file_name())).unwrap();
    }
    let wal = corrupt.join(WAL_FILE);
    let mut bytes = fs::read(&wal).unwrap();
    bytes[FLIP_AT as usize] ^= 0x04;
    fs::write(&wal, bytes).unwrap();
}

#[test]
fn committed_fixtures_validate() {
    let root = fixture_root();
    if std::env::var("INFLOG_REGEN_FIXTURES").is_ok() {
        regenerate(&root);
    }

    // The healthy fixture loads end to end: fsck clean, snapshot + both WAL
    // records readable, content as written.
    let valid = root.join("valid");
    let report = fsck(&valid).unwrap();
    assert!(report.all_clean(), "valid fixture not clean: {report:?}");
    let (_store, state, records) = Store::open(&valid, &StoreOptions::default()).unwrap();
    assert_eq!(state, fixture_state(), "snapshot content drifted");
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].epoch, 1);
    assert_eq!(records[0].op, WalOp::Insert);
    assert_eq!(records[1].epoch, 2);
    assert_eq!(records[1].op, WalOp::Retract);

    // The corrupted copy is refused — by recovery and by fsck — with the
    // first frame's exact offset.
    let corrupt = root.join("corrupt");
    let err = Store::open(&corrupt, &StoreOptions::default()).unwrap_err();
    assert!(
        matches!(&err, StoreError::CorruptFrame { offset, .. } if *offset == WAL_HEADER),
        "expected CorruptFrame at {WAL_HEADER}, got {err:?}"
    );
    let report = fsck(&corrupt).unwrap();
    match report.first_error() {
        Some(StoreError::CorruptFrame { offset, .. }) => assert_eq!(*offset, WAL_HEADER),
        other => panic!("fsck on corrupt fixture saw {other:?}"),
    }
}
