//! Committed on-disk fixtures: a healthy store directory and a byte-flipped
//! copy of it, checked into `tests/fixtures/`. They pin the binary format
//! (a change that can no longer read them is a breaking format change) and
//! give CI a stable target for the `store_fsck` binary: the corrupt fixture
//! must be reported with its exact first corrupt offset.
//!
//! Regenerate after a deliberate format-version bump with
//! `INFLOG_REGEN_FIXTURES=1 cargo test -p inflog-store --test fixtures`.
//! Everything the store serializes is deterministic (names, arities, dense
//! tuple order — never hashes or ids), so regeneration is reproducible.

use inflog_core::{Database, Relation, Tuple};
use inflog_store::wal::WAL_FILE;
use inflog_store::{
    fsck, truncate_repair, SnapshotState, Store, StoreError, StoreOptions, TruncateOutcome, WalOp,
    WalRecord,
};
use std::fs;
use std::path::{Path, PathBuf};

/// WAL layout: 8-byte magic + 4-byte format version, then frames. The flip
/// lands a few bytes into the first record's payload, so fsck must report
/// the first frame — at the end of the 12-byte header.
const WAL_HEADER: u64 = 12;
const FLIP_AT: u64 = WAL_HEADER + 8 + 4;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_state() -> SnapshotState {
    let mut db = Database::new();
    for name in ["a", "b", "c", "d"] {
        db.universe_mut().intern(name);
    }
    db.insert_named_fact("E", &["a", "b"]).unwrap();
    db.insert_named_fact("E", &["b", "c"]).unwrap();
    db.insert_named_fact("E", &["c", "d"]).unwrap();
    let mut idb = Relation::new(2);
    idb.insert(Tuple::from_ids(&[0, 1]));
    idb.insert(Tuple::from_ids(&[0, 2]));
    idb.insert(Tuple::from_ids(&[0, 3]));
    SnapshotState {
        epoch: 0,
        db,
        idb: vec![idb],
        undefined: vec![Relation::new(2)],
    }
}

fn regenerate(root: &Path) {
    let valid = root.join("valid");
    let _ = fs::remove_dir_all(&valid);
    let mut store = Store::create(&valid, &fixture_state(), &StoreOptions::default()).unwrap();
    store
        .append(&WalRecord {
            epoch: 1,
            op: WalOp::Insert,
            facts: vec![("E".to_string(), Tuple::from_ids(&[0, 2]))],
        })
        .unwrap();
    store
        .append(&WalRecord {
            epoch: 2,
            op: WalOp::Retract,
            facts: vec![("E".to_string(), Tuple::from_ids(&[1, 2]))],
        })
        .unwrap();
    drop(store);

    let corrupt = root.join("corrupt");
    let _ = fs::remove_dir_all(&corrupt);
    fs::create_dir_all(&corrupt).unwrap();
    for entry in fs::read_dir(&valid).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), corrupt.join(entry.file_name())).unwrap();
    }
    let wal = corrupt.join(WAL_FILE);
    let mut bytes = fs::read(&wal).unwrap();
    bytes[FLIP_AT as usize] ^= 0x04;
    fs::write(&wal, bytes).unwrap();
}

#[test]
fn committed_fixtures_validate() {
    let root = fixture_root();
    if std::env::var("INFLOG_REGEN_FIXTURES").is_ok() {
        regenerate(&root);
    }

    // The healthy fixture loads end to end: fsck clean, snapshot + both WAL
    // records readable, content as written.
    let valid = root.join("valid");
    let report = fsck(&valid).unwrap();
    assert!(report.all_clean(), "valid fixture not clean: {report:?}");
    let (_store, state, records) = Store::open(&valid, &StoreOptions::default()).unwrap();
    assert_eq!(state, fixture_state(), "snapshot content drifted");
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].epoch, 1);
    assert_eq!(records[0].op, WalOp::Insert);
    assert_eq!(records[1].epoch, 2);
    assert_eq!(records[1].op, WalOp::Retract);

    // The corrupted copy is refused — by recovery and by fsck — with the
    // first frame's exact offset.
    let corrupt = root.join("corrupt");
    let err = Store::open(&corrupt, &StoreOptions::default()).unwrap_err();
    assert!(
        matches!(&err, StoreError::CorruptFrame { offset, .. } if *offset == WAL_HEADER),
        "expected CorruptFrame at {WAL_HEADER}, got {err:?}"
    );
    let report = fsck(&corrupt).unwrap();
    match report.first_error() {
        Some(StoreError::CorruptFrame { offset, .. }) => assert_eq!(*offset, WAL_HEADER),
        other => panic!("fsck on corrupt fixture saw {other:?}"),
    }
}

/// Copies a committed fixture into a scratch directory (fixtures are never
/// modified in place — `--truncate` is destructive).
fn scratch_copy(fixture: &str, name: &str) -> PathBuf {
    let dst = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dst);
    fs::create_dir_all(&dst).unwrap();
    for entry in fs::read_dir(fixture_root().join(fixture)).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    dst
}

#[test]
fn truncate_repair_recovers_the_corrupt_fixture() {
    // The corrupt fixture's flip lands in the FIRST record: repair keeps
    // only the 12-byte header, and the store recovers to the bare snapshot.
    let dir = scratch_copy("corrupt", "truncate_corrupt");
    match truncate_repair(&dir).unwrap() {
        TruncateOutcome::Truncated {
            at,
            dropped_bytes,
            kept_records,
            kept_last_epoch,
        } => {
            assert_eq!(at, WAL_HEADER);
            assert!(dropped_bytes > 0);
            assert_eq!(kept_records, 0);
            assert_eq!(kept_last_epoch, None);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    assert!(fsck(&dir).unwrap().all_clean(), "repair did not converge");
    let (_store, state, records) = Store::open(&dir, &StoreOptions::default()).unwrap();
    assert_eq!(state, fixture_state(), "repair touched the snapshot");
    assert!(records.is_empty(), "phantom records after truncation");
    // Idempotent: a second pass finds nothing to do.
    assert!(matches!(
        truncate_repair(&dir).unwrap(),
        TruncateOutcome::Clean
    ));
}

#[test]
fn truncate_repair_preserves_a_valid_prefix() {
    // Flip a byte in the SECOND record instead: the first must survive.
    let dir = scratch_copy("valid", "truncate_prefix");
    let report = fsck(&dir).unwrap();
    let wal = report.wal.as_ref().unwrap();
    assert_eq!(wal.records, 2);
    let first_record_end = {
        // Re-derive the cut point by scanning: corrupt the byte right after
        // the first record's frame header.
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&wal_path).unwrap();
        let target = wal.valid_len as usize - 8; // inside the final record
        bytes[target] ^= 0xff;
        fs::write(&wal_path, bytes).unwrap();
        fsck(&dir).unwrap().wal.unwrap().valid_len
    };
    assert!(first_record_end > WAL_HEADER);
    match truncate_repair(&dir).unwrap() {
        TruncateOutcome::Truncated {
            at,
            kept_records,
            kept_last_epoch,
            ..
        } => {
            assert_eq!(at, first_record_end);
            assert_eq!(kept_records, 1);
            assert_eq!(kept_last_epoch, Some(1));
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    let (_store, state, records) = Store::open(&dir, &StoreOptions::default()).unwrap();
    assert_eq!(state, fixture_state());
    assert_eq!(records.len(), 1, "the valid first record must survive");
    assert_eq!(records[0].epoch, 1);
    assert_eq!(records[0].op, WalOp::Insert);
}

#[test]
fn truncate_repair_refuses_snapshot_damage() {
    // Corrupt the snapshot, not the WAL: truncation cannot help and must
    // say so without touching anything.
    let dir = scratch_copy("valid", "truncate_snapshot_damage");
    let snap = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.file_name().unwrap() != WAL_FILE)
        .unwrap();
    let mut bytes = fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    fs::write(&snap, bytes).unwrap();
    let wal_before = fs::read(dir.join(WAL_FILE)).unwrap();
    match truncate_repair(&dir).unwrap() {
        TruncateOutcome::Unrepairable { reason } => {
            assert!(reason.contains("snapshot"), "{reason}");
        }
        other => panic!("expected Unrepairable, got {other:?}"),
    }
    assert_eq!(
        fs::read(dir.join(WAL_FILE)).unwrap(),
        wal_before,
        "an unrepairable pass must leave the WAL untouched"
    );
}

/// The CLI contract: exit 0 after a successful repair (re-checked clean),
/// 1 on unrepairable damage, 2 on usage errors.
#[test]
fn store_fsck_truncate_exit_codes() {
    let exe = env!("CARGO_BIN_EXE_store_fsck");
    let run =
        |args: &[&std::ffi::OsStr]| std::process::Command::new(exe).args(args).output().unwrap();
    // Corrupt fixture copy: fsck alone fails (1)...
    let dir = scratch_copy("corrupt", "truncate_cli");
    let out = run(&[dir.as_os_str()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // ...--truncate repairs it (0)...
    let out = run(&["--truncate".as_ref(), dir.as_os_str()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("truncate: cut at offset 12"),
        "{out:?}"
    );
    // ...and the repaired directory now passes a plain check (0).
    let out = run(&[dir.as_os_str()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Snapshot damage is unrepairable (1).
    let dir = scratch_copy("valid", "truncate_cli_unrepairable");
    let snap = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.file_name().unwrap() != WAL_FILE)
        .unwrap();
    let mut bytes = fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    fs::write(&snap, bytes).unwrap();
    let out = run(&["--truncate".as_ref(), dir.as_os_str()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    // Usage errors (2).
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&["--truncate".as_ref()]);
    // A single arg named --truncate parses as a directory; missing dir
    // fails at fsck time with 1 — both non-zero is the contract here.
    assert_ne!(out.status.code(), Some(0), "{out:?}");
    let out = run(&["a".as_ref(), "b".as_ref(), "c".as_ref()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
