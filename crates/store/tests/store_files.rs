//! File-level tests for the store: atomic snapshot commit, WAL scan/truncate
//! policies, compaction crash windows, and fsck classification.

use inflog_core::{Database, Relation, Tuple};
use inflog_store::snapshot::{list_snapshots, load_snapshot, write_snapshot};
use inflog_store::{
    fsck, Failpoints, SnapshotState, Store, StoreError, StoreOptions, WalOp, WalRecord,
    SITE_COMPACT_TRUNCATE, SITE_SNAPSHOT_RENAME, SITE_WAL_BIT_FLIP, SITE_WAL_TORN_WRITE,
    SITE_WAL_TRUNCATED_TAIL,
};
use std::fs;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn t(ids: &[u32]) -> Tuple {
    Tuple::from_ids(ids)
}

fn sample_state(epoch: u64) -> SnapshotState {
    let mut db = Database::new();
    for name in ["a", "b", "c", "d"] {
        db.universe_mut().intern(name);
    }
    db.insert_named_fact("E", &["a", "b"]).unwrap();
    db.insert_named_fact("E", &["b", "c"]).unwrap();
    let mut idb0 = Relation::new(2);
    idb0.insert(t(&[0, 1]));
    idb0.insert(t(&[0, 2]));
    SnapshotState {
        epoch,
        db,
        idb: vec![idb0, Relation::new(1)],
        undefined: vec![Relation::new(2), Relation::new(1)],
    }
}

fn rec(epoch: u64, op: WalOp, facts: &[(&str, &[u32])]) -> WalRecord {
    WalRecord {
        epoch,
        op,
        facts: facts
            .iter()
            .map(|(n, ids)| (n.to_string(), t(ids)))
            .collect(),
    }
}

#[test]
fn snapshot_write_load_round_trip() {
    let dir = tmp_dir("snap_round_trip");
    let state = sample_state(7);
    let path = write_snapshot(&dir, &state, &Failpoints::none()).unwrap();
    let back = load_snapshot(&path).unwrap();
    assert_eq!(back, state);
    // Dense order is preserved bit-for-bit.
    assert_eq!(back.idb[0].dense(), state.idb[0].dense());
}

#[test]
fn snapshot_rename_failpoint_leaves_old_world() {
    let dir = tmp_dir("snap_rename_crash");
    let old = sample_state(1);
    write_snapshot(&dir, &old, &Failpoints::none()).unwrap();
    let fp = Failpoints::armed(SITE_SNAPSHOT_RENAME, 1);
    let err = write_snapshot(&dir, &sample_state(2), &fp).unwrap_err();
    assert!(matches!(err, StoreError::FaultInjected { .. }));
    // The tmp file exists; the committed snapshot list still shows only
    // epoch 1, and it loads.
    let snaps = list_snapshots(&dir).unwrap();
    assert_eq!(snaps.iter().map(|(e, _)| *e).collect::<Vec<_>>(), vec![1]);
    assert_eq!(load_snapshot(&snaps[0].1).unwrap().epoch, 1);
    assert!(fs::read_dir(&dir).unwrap().any(|e| e
        .unwrap()
        .path()
        .extension()
        .is_some_and(|x| x == "tmp")));
}

#[test]
fn store_round_trip_with_wal_replay() {
    let dir = tmp_dir("store_round_trip");
    let opts = StoreOptions::default();
    let mut store = Store::create(&dir, &sample_state(0), &opts).unwrap();
    store
        .append(&rec(1, WalOp::Insert, &[("E", &[2, 3])]))
        .unwrap();
    store
        .append(&rec(2, WalOp::Retract, &[("E", &[0, 1]), ("E", &[1, 2])]))
        .unwrap();
    drop(store);

    let (store, state, replay) = Store::open(&dir, &opts).unwrap();
    assert_eq!(state.epoch, 0);
    assert_eq!(replay.len(), 2);
    assert_eq!(replay[0], rec(1, WalOp::Insert, &[("E", &[2, 3])]));
    assert_eq!(
        replay[1],
        rec(2, WalOp::Retract, &[("E", &[0, 1]), ("E", &[1, 2])])
    );
    assert_eq!(store.snapshot_epoch(), 0);
}

#[test]
fn torn_write_is_truncated_on_reopen() {
    for site in [SITE_WAL_TORN_WRITE, SITE_WAL_TRUNCATED_TAIL] {
        let dir = tmp_dir(&format!("torn_{site}"));
        let mut opts = StoreOptions::default();
        let mut store = Store::create(&dir, &sample_state(0), &opts).unwrap();
        store
            .append(&rec(1, WalOp::Insert, &[("E", &[2, 3])]))
            .unwrap();
        opts.failpoints = Failpoints::armed(site, 1);
        let mut store = {
            drop(store);
            let (s, _, _) = Store::open(&dir, &opts).unwrap();
            s
        };
        let err = store
            .append(&rec(2, WalOp::Insert, &[("E", &[3, 0])]))
            .unwrap_err();
        assert!(matches!(err, StoreError::FaultInjected { .. }), "{site}");
        assert!(store.is_poisoned());
        // Poisoned: further appends refuse.
        assert!(matches!(
            store.append(&rec(3, WalOp::Insert, &[("E", &[3, 1])])),
            Err(StoreError::Poisoned { .. })
        ));
        drop(store);

        // fsck sees a benign torn tail, not corruption.
        let report = fsck(&dir).unwrap();
        assert!(report.first_error().is_none(), "{site}");
        assert!(report.wal.as_ref().unwrap().torn_tail.is_some(), "{site}");

        // Recovery truncates the tail and replays only epoch 1.
        let (mut store, state, replay) = Store::open(&dir, &StoreOptions::default()).unwrap();
        assert_eq!(state.epoch, 0);
        assert_eq!(replay.len(), 1, "{site}");
        assert_eq!(replay[0].epoch, 1);
        // The log is usable again.
        store
            .append(&rec(2, WalOp::Insert, &[("E", &[3, 0])]))
            .unwrap();
    }
}

#[test]
fn bit_flip_is_a_typed_corrupt_frame_with_offset() {
    let dir = tmp_dir("bit_flip");
    let mut opts = StoreOptions::default();
    let mut store = Store::create(&dir, &sample_state(0), &opts).unwrap();
    store
        .append(&rec(1, WalOp::Insert, &[("E", &[2, 3])]))
        .unwrap();
    let clean_len = store.wal_len();
    opts.failpoints = Failpoints::armed(SITE_WAL_BIT_FLIP, 1);
    let mut store = {
        drop(store);
        let (s, _, _) = Store::open(&dir, &opts).unwrap();
        s
    };
    // The flip is silent: the append "succeeds".
    store
        .append(&rec(2, WalOp::Insert, &[("E", &[3, 0])]))
        .unwrap();
    // Later appends land after the corrupt frame and are themselves valid.
    store
        .append(&rec(3, WalOp::Insert, &[("E", &[3, 1])]))
        .unwrap();
    drop(store);

    // Recovery refuses with the corrupt frame's offset — never a wrong
    // answer built on a bad record.
    let err = Store::open(&dir, &StoreOptions::default()).unwrap_err();
    match &err {
        StoreError::CorruptFrame { offset, .. } => assert_eq!(*offset, clean_len),
        other => panic!("expected CorruptFrame, got {other:?}"),
    }
    // fsck reports the same first corrupt offset.
    let report = fsck(&dir).unwrap();
    match report.first_error() {
        Some(StoreError::CorruptFrame { offset, .. }) => assert_eq!(*offset, clean_len),
        other => panic!("expected CorruptFrame, got {other:?}"),
    }
}

#[test]
fn compaction_resets_wal_and_prunes_snapshots() {
    let dir = tmp_dir("compact");
    let opts = StoreOptions::default();
    let mut store = Store::create(&dir, &sample_state(0), &opts).unwrap();
    for e in 1..=3 {
        store
            .append(&rec(e, WalOp::Insert, &[("E", &[e as u32, 0])]))
            .unwrap();
    }
    store.compact(&sample_state(3)).unwrap();
    assert_eq!(store.snapshot_epoch(), 3);
    // WAL is empty; replay from disk yields nothing.
    drop(store);
    let (mut store, state, replay) = Store::open(&dir, &opts).unwrap();
    assert_eq!(state.epoch, 3);
    assert!(replay.is_empty());
    // Another round of churn + compaction prunes down to two snapshots.
    store
        .append(&rec(4, WalOp::Insert, &[("E", &[0, 3])]))
        .unwrap();
    store.compact(&sample_state(4)).unwrap();
    let snaps = list_snapshots(&dir).unwrap();
    assert_eq!(
        snaps.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
        vec![3, 4]
    );
}

#[test]
fn compact_truncate_failpoint_keeps_old_wal_records_skippable() {
    let dir = tmp_dir("compact_crash");
    let mut opts = StoreOptions::default();
    let mut store = Store::create(&dir, &sample_state(0), &opts).unwrap();
    for e in 1..=2 {
        store
            .append(&rec(e, WalOp::Insert, &[("E", &[e as u32, 0])]))
            .unwrap();
    }
    opts.failpoints = Failpoints::armed(SITE_COMPACT_TRUNCATE, 1);
    let mut store = {
        drop(store);
        let (s, _, _) = Store::open(&dir, &opts).unwrap();
        s
    };
    let err = store.compact(&sample_state(2)).unwrap_err();
    assert!(matches!(err, StoreError::FaultInjected { .. }));
    drop(store);

    // The new snapshot is in place; the stale WAL records (epochs 1..=2) are
    // at or below its epoch and are skipped, not replayed.
    let (_, state, replay) = Store::open(&dir, &StoreOptions::default()).unwrap();
    assert_eq!(state.epoch, 2);
    assert!(replay.is_empty());
    let report = fsck(&dir).unwrap();
    assert!(report.first_error().is_none());
}

#[test]
fn epoch_gap_is_refused() {
    let dir = tmp_dir("epoch_gap");
    let opts = StoreOptions::default();
    let mut store = Store::create(&dir, &sample_state(0), &opts).unwrap();
    store
        .append(&rec(1, WalOp::Insert, &[("E", &[2, 3])]))
        .unwrap();
    // Simulate a buggy writer: epoch 3 follows epoch 1.
    store
        .append(&rec(3, WalOp::Insert, &[("E", &[3, 0])]))
        .unwrap();
    drop(store);
    let err = Store::open(&dir, &opts).unwrap_err();
    assert!(
        matches!(
            &err,
            StoreError::MissingEpochs {
                expected: 2,
                found: 3,
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn fallback_to_previous_snapshot_detects_missing_epochs() {
    // If the newest snapshot is destroyed after a compaction reset the WAL,
    // falling back to the previous snapshot must NOT silently lose the
    // updates that only the newest snapshot contained.
    let dir = tmp_dir("fallback_gap");
    let opts = StoreOptions::default();
    let mut store = Store::create(&dir, &sample_state(0), &opts).unwrap();
    for e in 1..=2 {
        store
            .append(&rec(e, WalOp::Insert, &[("E", &[e as u32, 0])]))
            .unwrap();
    }
    store.compact(&sample_state(2)).unwrap();
    store
        .append(&rec(3, WalOp::Insert, &[("E", &[0, 3])]))
        .unwrap();
    drop(store);

    // Corrupt the newest snapshot (epoch 2) in place.
    let snaps = list_snapshots(&dir).unwrap();
    let newest = snaps.last().unwrap().1.clone();
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&newest, &bytes).unwrap();

    // Recovery falls back to snapshot 0, but the WAL only holds epoch 3:
    // epochs 1..=2 are gone with the corrupt snapshot. Refuse loudly.
    let err = Store::open(&dir, &opts).unwrap_err();
    assert!(
        matches!(
            &err,
            StoreError::MissingEpochs {
                expected: 1,
                found: 3,
                ..
            }
        ),
        "{err:?}"
    );
    // fsck flags the snapshot too.
    let report = fsck(&dir).unwrap();
    assert!(report.first_error().is_some());
}

#[test]
fn fsck_clean_on_healthy_store() {
    let dir = tmp_dir("fsck_clean");
    let opts = StoreOptions::default();
    let mut store = Store::create(&dir, &sample_state(0), &opts).unwrap();
    store
        .append(&rec(1, WalOp::Insert, &[("E", &[2, 3])]))
        .unwrap();
    drop(store);
    let report = fsck(&dir).unwrap();
    assert!(report.all_clean(), "{report:?}");
    let wal = report.wal.unwrap();
    assert_eq!(wal.records, 1);
    assert_eq!(wal.first_epoch, Some(1));
    assert!(wal.torn_tail.is_none());
}

#[test]
fn undo_append_restores_wal_length() {
    let dir = tmp_dir("undo_append");
    let opts = StoreOptions::default();
    let mut store = Store::create(&dir, &sample_state(0), &opts).unwrap();
    store
        .append(&rec(1, WalOp::Insert, &[("E", &[2, 3])]))
        .unwrap();
    let pre = store
        .append(&rec(2, WalOp::Insert, &[("E", &[3, 0])]))
        .unwrap();
    store.undo_append(pre).unwrap();
    assert_eq!(store.wal_len(), pre);
    drop(store);
    let (_, _, replay) = Store::open(&dir, &opts).unwrap();
    assert_eq!(replay.len(), 1);
    assert_eq!(replay[0].epoch, 1);
}
