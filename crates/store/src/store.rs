//! Directory-level orchestration: snapshots + WAL + recovery + compaction.
//!
//! Layout of a store directory:
//!
//! ```text
//! snapshot-<epoch:016x>.bin   committed snapshots (current + one previous)
//! wal.bin                     records past the newest snapshot's epoch
//! *.tmp                       in-flight atomic writes; ignored and cleaned
//! ```
//!
//! Recovery contract: [`Store::open`] returns the newest loadable snapshot
//! plus exactly the WAL records that commit epochs past it, in order, with a
//! contiguity check — a gap in the epoch sequence means committed updates
//! would be silently skipped, so recovery refuses with
//! [`StoreError::MissingEpochs`] instead of returning a wrong answer.

use crate::failpoints::{Failpoints, SITE_COMPACT_TRUNCATE};
use crate::snapshot::{
    clean_tmp_files, list_snapshots, load_snapshot, write_snapshot, SnapshotState,
};
use crate::wal::{Durability, Wal, WalRecord, WAL_FILE};
use crate::StoreError;
use std::fs;
use std::path::{Path, PathBuf};

/// Configuration for opening or creating a store.
#[derive(Debug, Clone, Default)]
pub struct StoreOptions {
    pub durability: Durability,
    pub failpoints: Failpoints,
}

impl StoreOptions {
    /// Default durability with failpoints armed from `INFLOG_FAILPOINT`
    /// (non-store sites are ignored).
    pub fn from_env() -> Self {
        StoreOptions {
            durability: Durability::Sync,
            failpoints: Failpoints::from_env(),
        }
    }
}

/// A store directory with an open WAL.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    wal: Wal,
    snapshot_epoch: u64,
}

impl Store {
    /// Initializes `dir` with the given base snapshot and a fresh WAL.
    ///
    /// `dir` is created if missing; any existing snapshot/WAL files are
    /// replaced (the caller owns the directory).
    pub fn create(
        dir: &Path,
        state: &SnapshotState,
        opts: &StoreOptions,
    ) -> Result<Store, StoreError> {
        StoreError::ctx(dir, "create dir", fs::create_dir_all(dir))?;
        write_snapshot(dir, state, &opts.failpoints)?;
        let wal = Wal::create(
            &dir.join(WAL_FILE),
            opts.durability,
            opts.failpoints.clone(),
        )?;
        Ok(Store {
            dir: dir.to_path_buf(),
            opts: opts.clone(),
            wal,
            snapshot_epoch: state.epoch,
        })
    }

    /// Recovers a store directory: newest loadable snapshot, then the WAL
    /// records that commit epochs past it (contiguous, ascending).
    pub fn open(
        dir: &Path,
        opts: &StoreOptions,
    ) -> Result<(Store, SnapshotState, Vec<WalRecord>), StoreError> {
        let snaps = list_snapshots(dir)?;
        if snaps.is_empty() {
            return Err(StoreError::NoSnapshot {
                dir: dir.display().to_string(),
            });
        }
        // Newest first; fall back to older snapshots on corruption, but if
        // nothing loads, surface the *newest* failure (it names the file the
        // operator should look at first).
        let mut first_err: Option<StoreError> = None;
        let mut loaded: Option<SnapshotState> = None;
        for (_, path) in snaps.iter().rev() {
            match load_snapshot(path) {
                Ok(state) => {
                    loaded = Some(state);
                    break;
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        let state = match loaded {
            Some(s) => s,
            None => return Err(first_err.expect("at least one snapshot failed")),
        };

        let wal_path = dir.join(WAL_FILE);
        let (wal, records) = if wal_path.exists() {
            Wal::open(&wal_path, opts.durability, opts.failpoints.clone())?
        } else {
            // Crash between snapshot creation and WAL creation during
            // `Store::create`: an empty log is the correct state.
            (
                Wal::create(&wal_path, opts.durability, opts.failpoints.clone())?,
                Vec::new(),
            )
        };

        // Records must be strictly consecutive; records at or below the
        // snapshot epoch are already folded into it (they survive a crash
        // between compaction's snapshot write and its WAL reset) and are
        // skipped.
        let wal_shown = wal_path.display().to_string();
        let mut replay = Vec::new();
        let mut prev: Option<u64> = None;
        for rec in records {
            if let Some(p) = prev {
                if rec.epoch != p + 1 {
                    return Err(StoreError::MissingEpochs {
                        path: wal_shown,
                        expected: p + 1,
                        found: rec.epoch,
                    });
                }
            }
            prev = Some(rec.epoch);
            if rec.epoch > state.epoch {
                replay.push(rec);
            }
        }
        if let Some(first) = replay.first() {
            if first.epoch != state.epoch + 1 {
                return Err(StoreError::MissingEpochs {
                    path: wal_shown,
                    expected: state.epoch + 1,
                    found: first.epoch,
                });
            }
        }

        clean_tmp_files(dir)?;
        Ok((
            Store {
                dir: dir.to_path_buf(),
                opts: opts.clone(),
                wal,
                snapshot_epoch: state.epoch,
            },
            state,
            replay,
        ))
    }

    /// Appends one record (log-first); returns the pre-append WAL length for
    /// [`Store::undo_append`].
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, StoreError> {
        self.wal.append(rec)
    }

    /// Un-logs the most recent append after its in-memory apply failed.
    pub fn undo_append(&mut self, pre_len: u64) -> Result<(), StoreError> {
        self.wal.truncate_to(pre_len)
    }

    /// Rewrites a fresh snapshot at `state.epoch` and truncates the log, both
    /// behind the atomic-rename protocol; prunes all but the two newest
    /// snapshots.
    ///
    /// Crash windows: [`SITE_SNAPSHOT_RENAME`](crate::SITE_SNAPSHOT_RENAME)
    /// dies before the snapshot rename (old world intact);
    /// [`SITE_COMPACT_TRUNCATE`] dies after the snapshot is in place but
    /// before the WAL reset — recovery then skips the WAL records the new
    /// snapshot already contains.
    pub fn compact(&mut self, state: &SnapshotState) -> Result<(), StoreError> {
        write_snapshot(&self.dir, state, &self.opts.failpoints)?;
        if self.opts.failpoints.fire(SITE_COMPACT_TRUNCATE) {
            return Err(StoreError::FaultInjected {
                site: SITE_COMPACT_TRUNCATE.to_string(),
            });
        }
        self.wal = Wal::reset_atomic(
            &self.dir.join(WAL_FILE),
            self.opts.durability,
            self.opts.failpoints.clone(),
        )?;
        self.snapshot_epoch = state.epoch;
        self.prune_snapshots()?;
        Ok(())
    }

    /// Keeps the two newest snapshots (current + previous), removes the rest.
    fn prune_snapshots(&self) -> Result<(), StoreError> {
        let snaps = list_snapshots(&self.dir)?;
        if snaps.len() > 2 {
            for (_, path) in &snaps[..snaps.len() - 2] {
                StoreError::ctx(path, "remove old snapshot", fs::remove_file(path))?;
            }
        }
        Ok(())
    }

    /// Epoch of the snapshot this store's WAL is relative to.
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// Byte length of the acknowledged WAL prefix.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    pub fn is_poisoned(&self) -> bool {
        self.wal.is_poisoned()
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
