//! Crash-injection sites for the durable store.
//!
//! This mirrors the evaluation layer's `Failpoints` (crates/eval/src/govern.rs)
//! but owns its own site registry: both layers read the same
//! `INFLOG_FAILPOINT=<site>[:<n>]` variable and each silently ignores the
//! other layer's sites, so one environment setting drives a fault anywhere in
//! the stack.
//!
//! Store sites model the crash windows of the durability protocol:
//!
//! - [`SITE_SNAPSHOT_RENAME`]: the process dies after the snapshot tmp file is
//!   written and fsynced but before the atomic rename — a stray `.tmp` is left
//!   and the previous snapshot must still win.
//! - [`SITE_COMPACT_TRUNCATE`]: the new compaction snapshot has been renamed
//!   into place but the WAL has not yet been reset — replay must skip records
//!   at or below the new snapshot epoch.
//! - [`SITE_WAL_TORN_WRITE`]: an append dies mid-frame, leaving roughly half a
//!   record on disk — a benign torn tail.
//! - [`SITE_WAL_TRUNCATED_TAIL`]: an append dies after only the 8-byte frame
//!   header — also a benign torn tail.
//! - [`SITE_WAL_BIT_FLIP`]: the frame is written "successfully" but one payload
//!   bit is flipped — silent media corruption that checksum verification must
//!   turn into a typed [`CorruptFrame`](crate::StoreError::CorruptFrame).
//! - [`SITE_WAL_APPEND_SYNC`]: the frame is fully written but the process dies
//!   before fsync — the record may or may not survive; recovery must accept
//!   either outcome without diverging from a recompute.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub const SITE_SNAPSHOT_RENAME: &str = "store-snapshot-tmp-rename";
pub const SITE_COMPACT_TRUNCATE: &str = "store-compact-truncate";
pub const SITE_WAL_TORN_WRITE: &str = "store-wal-torn-write";
pub const SITE_WAL_TRUNCATED_TAIL: &str = "store-wal-truncated-tail";
pub const SITE_WAL_BIT_FLIP: &str = "store-wal-bit-flip";
pub const SITE_WAL_APPEND_SYNC: &str = "store-wal-append-sync";

/// All registered store failpoint sites, for sweeps and for the evaluation
/// layer's unknown-site warning.
pub const STORE_FAILPOINT_SITES: &[&str] = &[
    SITE_SNAPSHOT_RENAME,
    SITE_COMPACT_TRUNCATE,
    SITE_WAL_TORN_WRITE,
    SITE_WAL_TRUNCATED_TAIL,
    SITE_WAL_BIT_FLIP,
    SITE_WAL_APPEND_SYNC,
];

#[derive(Debug)]
struct Armed {
    site: String,
    /// Fires on exactly the `trigger`-th hit of the site (1-based), once.
    trigger: u64,
    hits: AtomicU64,
}

/// A handle that is either inert or armed at one store site.
///
/// Cloning shares the hit counter, so the same arming observed from several
/// components (store, WAL, snapshot writer) still fires exactly once.
#[derive(Debug, Clone, Default)]
pub struct Failpoints(Option<Arc<Armed>>);

impl Failpoints {
    /// No failpoint armed; every `fire` returns false.
    pub fn none() -> Self {
        Failpoints(None)
    }

    /// Arms `site` to fire on its `trigger`-th hit (1-based).
    ///
    /// Panics if `site` is not a registered store site — tests should fail
    /// loudly on typos rather than silently never fire.
    pub fn armed(site: &str, trigger: u64) -> Self {
        assert!(
            STORE_FAILPOINT_SITES.contains(&site),
            "unknown store failpoint site {site:?} (registered: {STORE_FAILPOINT_SITES:?})"
        );
        assert!(trigger >= 1, "failpoint trigger is 1-based");
        Failpoints(Some(Arc::new(Armed {
            site: site.to_string(),
            trigger,
            hits: AtomicU64::new(0),
        })))
    }

    /// Parses `INFLOG_FAILPOINT` from the environment.
    ///
    /// Sites not in the store registry (for example the evaluation layer's
    /// `round` or `worker-panic`) are ignored without a warning: the layer
    /// that owns them arms them itself, and the eval-side parser owns the
    /// unknown-site diagnostic.
    pub fn from_env() -> Self {
        match std::env::var("INFLOG_FAILPOINT") {
            Ok(raw) => Self::from_env_value(&raw),
            Err(_) => Failpoints::none(),
        }
    }

    /// Parses a `<site>[:<n>]` arming string; non-store sites yield `none()`.
    pub fn from_env_value(raw: &str) -> Self {
        let (site, trigger) = match raw.split_once(':') {
            Some((s, n)) => match n.parse::<u64>() {
                Ok(n) if n >= 1 => (s, n),
                _ => return Failpoints::none(),
            },
            None => (raw, 1),
        };
        if STORE_FAILPOINT_SITES.contains(&site) {
            Failpoints::armed(site, trigger)
        } else {
            Failpoints::none()
        }
    }

    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// The armed site name, if any.
    pub fn site(&self) -> Option<&str> {
        self.0.as_deref().map(|a| a.site.as_str())
    }

    /// Records a hit of `site`; returns true exactly when this hit is the
    /// armed trigger (one-shot: later hits return false again).
    pub fn fire(&self, site: &str) -> bool {
        match &self.0 {
            Some(a) if a.site == site => {
                let hit = a.hits.fetch_add(1, Ordering::Relaxed) + 1;
                hit == a.trigger
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_never_fires() {
        let fp = Failpoints::none();
        assert!(!fp.is_armed());
        assert!(!fp.fire(SITE_WAL_TORN_WRITE));
    }

    #[test]
    fn fires_exactly_on_trigger_once() {
        let fp = Failpoints::armed(SITE_WAL_BIT_FLIP, 2);
        assert!(!fp.fire(SITE_WAL_BIT_FLIP)); // hit 1
        assert!(!fp.fire(SITE_WAL_TORN_WRITE)); // different site
        assert!(fp.fire(SITE_WAL_BIT_FLIP)); // hit 2: trigger
        assert!(!fp.fire(SITE_WAL_BIT_FLIP)); // one-shot
    }

    #[test]
    fn clones_share_the_hit_counter() {
        let fp = Failpoints::armed(SITE_WAL_APPEND_SYNC, 2);
        let other = fp.clone();
        assert!(!fp.fire(SITE_WAL_APPEND_SYNC));
        assert!(other.fire(SITE_WAL_APPEND_SYNC));
    }

    #[test]
    fn env_parsing_ignores_foreign_sites() {
        assert!(Failpoints::from_env_value("store-wal-torn-write").is_armed());
        assert!(Failpoints::from_env_value("store-wal-torn-write:3").is_armed());
        // Evaluation-layer site: silently inert here.
        assert!(!Failpoints::from_env_value("round").is_armed());
        assert!(!Failpoints::from_env_value("no-such-site").is_armed());
        assert!(!Failpoints::from_env_value("store-wal-torn-write:0").is_armed());
    }

    #[test]
    #[should_panic(expected = "unknown store failpoint site")]
    fn arming_unknown_site_panics() {
        let _ = Failpoints::armed("typo-site", 1);
    }
}
