//! Epoch-stamped snapshots of a materialized fixpoint.
//!
//! A snapshot file is:
//!
//! ```text
//! [8-byte magic "INFLOGSN"] [u32 version] [one frame: SnapshotState payload]
//! ```
//!
//! and is committed atomically: write `snapshot-<epoch>.bin.tmp`, fsync the
//! file, rename onto the final name, fsync the directory. A crash anywhere in
//! that sequence leaves either the old world (stray `.tmp` files are ignored
//! and cleaned on open) or the new world — never a half-written snapshot under
//! the final name.

use crate::encode::{Reader, Writer};
use crate::failpoints::{Failpoints, SITE_SNAPSHOT_RENAME};
use crate::frame::{frame_bytes, read_frame, FrameOutcome};
use crate::StoreError;
use inflog_core::{Database, Relation};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

pub const SNAPSHOT_MAGIC: &[u8; 8] = b"INFLOGSN";
pub const FORMAT_VERSION: u32 = 1;

/// Everything needed to rebuild a warm `Materialized` handle: the EDB, the
/// epoch it was committed at, and the engine's output (IDB relations plus, for
/// the well-founded engine, the undefined stratum) in IDB index order.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotState {
    pub epoch: u64,
    pub db: Database,
    pub idb: Vec<Relation>,
    pub undefined: Vec<Relation>,
}

impl SnapshotState {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.epoch);
        w.put_database(&self.db);
        w.put_u32(self.idb.len() as u32);
        for r in &self.idb {
            w.put_relation(r);
        }
        w.put_u32(self.undefined.len() as u32);
        for r in &self.undefined {
            w.put_relation(r);
        }
        w.into_bytes()
    }

    pub fn decode(mut r: Reader<'_>) -> Result<SnapshotState, StoreError> {
        let epoch = r.take_u64()?;
        let db = r.take_database()?;
        let n = r.take_u32()? as usize;
        let mut idb = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            idb.push(r.take_relation()?);
        }
        let n = r.take_u32()? as usize;
        let mut undefined = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            undefined.push(r.take_relation()?);
        }
        r.finish()?;
        Ok(SnapshotState {
            epoch,
            db,
            idb,
            undefined,
        })
    }
}

/// File name of the snapshot for `epoch`.
pub fn snapshot_file_name(epoch: u64) -> String {
    format!("snapshot-{epoch:016x}.bin")
}

/// Parses a snapshot file name back to its epoch.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snapshot-")?.strip_suffix(".bin")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Lists `(epoch, path)` for every snapshot in `dir`, ascending by epoch.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in StoreError::ctx(dir, "read_dir", fs::read_dir(dir))? {
        let entry = StoreError::ctx(dir, "read_dir", entry)?;
        let name = entry.file_name();
        if let Some(epoch) = name.to_str().and_then(parse_snapshot_name) {
            out.push((epoch, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(e, _)| *e);
    Ok(out)
}

/// Fsyncs a directory so a just-completed rename is durable.
pub fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    let d = StoreError::ctx(dir, "open dir", fs::File::open(dir))?;
    StoreError::ctx(dir, "fsync dir", d.sync_all())
}

/// Atomically writes the snapshot for `state.epoch` into `dir`.
///
/// Crash window (exercised by [`SITE_SNAPSHOT_RENAME`]): the tmp file is fully
/// written and fsynced, but the rename has not happened — recovery ignores
/// `.tmp` files, so the previous snapshot still wins.
pub fn write_snapshot(
    dir: &Path,
    state: &SnapshotState,
    fp: &Failpoints,
) -> Result<PathBuf, StoreError> {
    let final_path = dir.join(snapshot_file_name(state.epoch));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(state.epoch)));
    let mut bytes = Vec::new();
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&frame_bytes(&state.encode()));

    let mut f = StoreError::ctx(&tmp_path, "create", fs::File::create(&tmp_path))?;
    StoreError::ctx(&tmp_path, "write", f.write_all(&bytes))?;
    StoreError::ctx(&tmp_path, "fsync", f.sync_all())?;
    drop(f);

    if fp.fire(SITE_SNAPSHOT_RENAME) {
        // Simulated crash between tmp-write and rename: the tmp file stays on
        // disk, the final name does not change.
        return Err(StoreError::FaultInjected {
            site: SITE_SNAPSHOT_RENAME.to_string(),
        });
    }

    StoreError::ctx(&final_path, "rename", fs::rename(&tmp_path, &final_path))?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// Loads and verifies one snapshot file.
pub fn load_snapshot(path: &Path) -> Result<SnapshotState, StoreError> {
    let bytes = StoreError::ctx(path, "read", fs::read(path))?;
    let shown = path.display().to_string();
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StoreError::BadHeader {
            path: shown,
            detail: "missing snapshot magic".to_string(),
        });
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(StoreError::BadHeader {
            path: shown,
            detail: format!("unsupported version {version} (expected {FORMAT_VERSION})"),
        });
    }
    let body_off = SNAPSHOT_MAGIC.len() + 4;
    match read_frame(&bytes, body_off, &shown)? {
        FrameOutcome::Ok { payload, next } => {
            if next != bytes.len() {
                return Err(StoreError::CorruptFrame {
                    path: shown,
                    offset: next as u64,
                    detail: format!("{} trailing bytes after snapshot frame", bytes.len() - next),
                });
            }
            let reader = Reader::new(
                payload,
                (body_off + crate::frame::FRAME_HEADER) as u64,
                &shown,
            );
            SnapshotState::decode(reader)
        }
        // A snapshot is all-or-nothing: an incomplete frame means this file
        // never finished its atomic commit and is not a valid candidate.
        FrameOutcome::TornTail { offset } => Err(StoreError::CorruptFrame {
            path: shown,
            offset: offset as u64,
            detail: "truncated snapshot frame".to_string(),
        }),
        FrameOutcome::Eof => Err(StoreError::CorruptFrame {
            path: shown,
            offset: body_off as u64,
            detail: "snapshot file has no frame".to_string(),
        }),
    }
}

/// Removes stray `.tmp` files left by crashed snapshot commits.
pub fn clean_tmp_files(dir: &Path) -> Result<(), StoreError> {
    for entry in StoreError::ctx(dir, "read_dir", fs::read_dir(dir))? {
        let entry = StoreError::ctx(dir, "read_dir", entry)?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            StoreError::ctx(&path, "remove tmp", fs::remove_file(&path))?;
        }
    }
    Ok(())
}
