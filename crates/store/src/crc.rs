//! Hand-rolled CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//!
//! The vendored dependency tree has no checksum crate, and the format needs
//! exactly one well-known, stable checksum — so we build the classic 256-entry
//! table at compile time. This matches the `crc32` of zlib/gzip/PNG, which
//! makes frames verifiable with standard external tools.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII string "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"length-prefixed, checksummed frames";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"some frame payload bytes".to_vec();
        let before = crc32(&data);
        data[5] ^= 0x10;
        assert_ne!(crc32(&data), before);
    }
}
