//! The write-ahead log.
//!
//! A WAL file is:
//!
//! ```text
//! [8-byte magic "INFLOGWL"] [u32 version] [frame]*
//! ```
//!
//! with one frame per committed insert/retract batch. Records are written
//! log-first: the durable layer appends (and, under [`Durability::Sync`],
//! fsyncs) the record *before* applying the batch in memory, so an
//! acknowledged update is always on disk.
//!
//! Failure discipline: if an append does not complete cleanly, the handle
//! **poisons** itself — it refuses further appends instead of attempting any
//! in-place repair, because repairing would destroy exactly the crash-shaped
//! disk state that recovery (and the crash tests) must handle. The only way
//! past a poisoned log is to re-open the directory through recovery, which
//! truncates a torn tail and replays the survivors.

use crate::encode::{Reader, Writer};
use crate::failpoints::{
    Failpoints, SITE_WAL_APPEND_SYNC, SITE_WAL_BIT_FLIP, SITE_WAL_TORN_WRITE,
    SITE_WAL_TRUNCATED_TAIL,
};
use crate::frame::{frame_bytes, read_frame, FrameOutcome, FRAME_HEADER};
use crate::StoreError;
use inflog_core::Tuple;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

pub const WAL_MAGIC: &[u8; 8] = b"INFLOGWL";
pub const WAL_FILE: &str = "wal.bin";

/// How hard an append must be on disk before it is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// fsync every record before the update returns: an acknowledged update
    /// survives power loss.
    #[default]
    Sync,
    /// Leave flushing to the OS: faster, and an acknowledged update survives
    /// a process kill but not necessarily power loss.
    Buffered,
}

/// The operation a WAL record replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    Insert,
    Retract,
}

/// One committed batch: the epoch it creates, the operation, and the facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub epoch: u64,
    pub op: WalOp,
    pub facts: Vec<(String, Tuple)>,
}

impl WalRecord {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.epoch);
        w.put_u8(match self.op {
            WalOp::Insert => 1,
            WalOp::Retract => 2,
        });
        w.put_u32(self.facts.len() as u32);
        for (name, t) in &self.facts {
            w.put_str(name);
            w.put_tuple(t);
        }
        w.into_bytes()
    }

    pub fn decode(mut r: Reader<'_>) -> Result<WalRecord, StoreError> {
        let epoch = r.take_u64()?;
        let op = match r.take_u8()? {
            1 => WalOp::Insert,
            2 => WalOp::Retract,
            other => {
                return Err(StoreError::CorruptFrame {
                    path: String::new(),
                    offset: r.offset().saturating_sub(1),
                    detail: format!("unknown WAL op tag {other}"),
                })
            }
        };
        let n = r.take_u32()? as usize;
        let mut facts = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let name = r.take_str()?;
            let t = r.take_tuple()?;
            facts.push((name, t));
        }
        r.finish()?;
        Ok(WalRecord { epoch, op, facts })
    }
}

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Length of the valid prefix; appends write at this offset.
    len: u64,
    poisoned: bool,
    durability: Durability,
    failpoints: Failpoints,
}

fn header_bytes() -> Vec<u8> {
    let mut bytes = Vec::with_capacity(12);
    bytes.extend_from_slice(WAL_MAGIC);
    bytes.extend_from_slice(&crate::snapshot::FORMAT_VERSION.to_le_bytes());
    bytes
}

impl Wal {
    /// Creates a fresh, empty log at `path` (truncating any existing file).
    pub fn create(
        path: &Path,
        durability: Durability,
        failpoints: Failpoints,
    ) -> Result<Wal, StoreError> {
        let mut file = StoreError::ctx(
            path,
            "create",
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path),
        )?;
        let header = header_bytes();
        StoreError::ctx(path, "write header", file.write_all(&header))?;
        StoreError::ctx(path, "fsync", file.sync_all())?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            len: header.len() as u64,
            poisoned: false,
            durability,
            failpoints,
        })
    }

    /// Opens an existing log, scanning every record.
    ///
    /// A torn tail (incomplete final frame) is truncated away — under the
    /// log-first protocol it can only be an unacknowledged append. A checksum
    /// failure anywhere is a hard [`StoreError::CorruptFrame`].
    pub fn open(
        path: &Path,
        durability: Durability,
        failpoints: Failpoints,
    ) -> Result<(Wal, Vec<WalRecord>), StoreError> {
        let bytes = StoreError::ctx(path, "read", fs::read(path))?;
        let shown = path.display().to_string();
        let header = header_bytes();
        if bytes.len() < header.len() || bytes[..8] != header[..8] {
            return Err(StoreError::BadHeader {
                path: shown,
                detail: "missing WAL magic".to_string(),
            });
        }
        if bytes[8..12] != header[8..12] {
            return Err(StoreError::BadHeader {
                path: shown,
                detail: "unsupported WAL version".to_string(),
            });
        }
        let mut records = Vec::new();
        let mut off = header.len();
        let valid_len = loop {
            match read_frame(&bytes, off, &shown)? {
                FrameOutcome::Ok { payload, next } => {
                    let reader = Reader::new(payload, (off + FRAME_HEADER) as u64, &shown);
                    let rec = WalRecord::decode(reader).map_err(|e| match e {
                        // decode() errors carry an empty path for op tags.
                        StoreError::CorruptFrame { offset, detail, .. } => {
                            StoreError::CorruptFrame {
                                path: shown.clone(),
                                offset,
                                detail,
                            }
                        }
                        other => other,
                    })?;
                    records.push(rec);
                    off = next;
                }
                FrameOutcome::Eof => break off as u64,
                FrameOutcome::TornTail { offset } => break offset as u64,
            }
        };
        let file = StoreError::ctx(
            path,
            "open",
            OpenOptions::new().read(true).write(true).open(path),
        )?;
        if valid_len < bytes.len() as u64 {
            // Drop the torn tail so the next append starts on a frame
            // boundary.
            StoreError::ctx(path, "truncate torn tail", file.set_len(valid_len))?;
            StoreError::ctx(path, "fsync", file.sync_all())?;
        }
        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
                len: valid_len,
                poisoned: false,
                durability,
                failpoints,
            },
            records,
        ))
    }

    /// Atomically replaces the log at `path` with a fresh empty one
    /// (tmp-write + rename), used by compaction. Returns the new handle.
    pub fn reset_atomic(
        path: &Path,
        durability: Durability,
        failpoints: Failpoints,
    ) -> Result<Wal, StoreError> {
        let tmp = path.with_extension("bin.tmp");
        {
            let mut f = StoreError::ctx(&tmp, "create", File::create(&tmp))?;
            StoreError::ctx(&tmp, "write header", f.write_all(&header_bytes()))?;
            StoreError::ctx(&tmp, "fsync", f.sync_all())?;
        }
        StoreError::ctx(path, "rename", fs::rename(&tmp, path))?;
        if let Some(dir) = path.parent() {
            crate::snapshot::sync_dir(dir)?;
        }
        let file = StoreError::ctx(
            path,
            "open",
            OpenOptions::new().read(true).write(true).open(path),
        )?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            len: header_bytes().len() as u64,
            poisoned: false,
            durability,
            failpoints,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Length of the valid (acknowledged) prefix in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == header_bytes().len() as u64
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn poisoned_err(&self) -> StoreError {
        StoreError::Poisoned {
            path: self.path.display().to_string(),
        }
    }

    fn write_at_end(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        StoreError::ctx(
            &self.path,
            "seek",
            self.file.seek(SeekFrom::Start(self.len)),
        )?;
        StoreError::ctx(&self.path, "write", self.file.write_all(bytes))
    }

    /// Appends one record; returns the pre-append length (pass it to
    /// [`Wal::truncate_to`] to un-log the record if the in-memory apply
    /// fails).
    ///
    /// Crash injection: the four WAL failpoint sites each leave the exact
    /// disk state of a process dying at that instant (see the site docs in
    /// [`crate::failpoints`]); all but the bit-flip poison the handle and
    /// return [`StoreError::FaultInjected`]. The bit-flip site returns `Ok`
    /// with a silently corrupted frame, modelling bad media.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, StoreError> {
        if self.poisoned {
            return Err(self.poisoned_err());
        }
        let pre = self.len;
        let payload = rec.encode();
        let frame = frame_bytes(&payload);

        if self.failpoints.fire(SITE_WAL_TORN_WRITE) {
            // Die mid-record: roughly half the frame reaches the file.
            let cut = FRAME_HEADER + payload.len() / 2;
            self.poisoned = true;
            self.write_at_end(&frame[..cut])?;
            let _ = self.file.sync_data();
            return Err(StoreError::FaultInjected {
                site: SITE_WAL_TORN_WRITE.to_string(),
            });
        }
        if self.failpoints.fire(SITE_WAL_TRUNCATED_TAIL) {
            // Die right after the frame header.
            self.poisoned = true;
            self.write_at_end(&frame[..FRAME_HEADER])?;
            let _ = self.file.sync_data();
            return Err(StoreError::FaultInjected {
                site: SITE_WAL_TRUNCATED_TAIL.to_string(),
            });
        }
        if self.failpoints.fire(SITE_WAL_BIT_FLIP) {
            // Bad media: the write "succeeds" but one payload bit is wrong.
            // Flip inside the payload (not the length) so the damage is a
            // checksum failure, not a frame-boundary ambiguity.
            let mut bad = frame.clone();
            let idx = FRAME_HEADER + payload.len() / 2;
            bad[idx] ^= 0x10;
            self.write_at_end(&bad)?;
            if self.durability == Durability::Sync {
                StoreError::ctx(&self.path, "fsync", self.file.sync_data())?;
            }
            self.len += frame.len() as u64;
            return Ok(pre);
        }
        if self.failpoints.fire(SITE_WAL_APPEND_SYNC) {
            // Die between the full write and the fsync: the record is intact
            // in the file but was never acknowledged. Recovery may replay it.
            self.poisoned = true;
            self.write_at_end(&frame)?;
            return Err(StoreError::FaultInjected {
                site: SITE_WAL_APPEND_SYNC.to_string(),
            });
        }

        self.write_at_end(&frame)?;
        if self.durability == Durability::Sync {
            StoreError::ctx(&self.path, "fsync", self.file.sync_data())?;
        }
        self.len += frame.len() as u64;
        Ok(pre)
    }

    /// Truncates the log back to `len` (a value previously returned by
    /// [`Wal::append`]): un-logs a record whose in-memory apply failed, so
    /// the log never runs ahead of acknowledged state. Poisons the handle if
    /// the truncate itself fails.
    pub fn truncate_to(&mut self, len: u64) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(self.poisoned_err());
        }
        if let Err(e) = self.file.set_len(len).and_then(|()| self.file.sync_all()) {
            self.poisoned = true;
            return Err(StoreError::Io {
                path: self.path.display().to_string(),
                op: "truncate",
                message: e.to_string(),
            });
        }
        self.len = len;
        Ok(())
    }

    /// Flushes buffered records to disk.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        StoreError::ctx(&self.path, "fsync", self.file.sync_data())
    }
}
