//! Offline consistency check for a store directory.
//!
//! Walks every snapshot and every WAL frame, verifying frame checksums,
//! decode consistency, and epoch monotonicity/contiguity, without building
//! any evaluation state. The report distinguishes a benign torn tail (the
//! final, unacknowledged append of a crashed process) from hard corruption,
//! and names the first corrupt byte offset so an operator can inspect it.

use crate::encode::Reader;
use crate::frame::{read_frame, FrameOutcome, FRAME_HEADER};
use crate::snapshot::{list_snapshots, load_snapshot};
use crate::wal::{WalRecord, WAL_FILE, WAL_MAGIC};
use crate::StoreError;
use std::fs;
use std::path::{Path, PathBuf};

/// Verification result for one snapshot file.
#[derive(Debug)]
pub struct SnapshotCheck {
    pub path: PathBuf,
    pub name_epoch: u64,
    /// `Ok(total tuple count)` or the load error.
    pub result: Result<usize, StoreError>,
}

/// Verification result for the WAL.
#[derive(Debug)]
pub struct WalCheck {
    pub path: PathBuf,
    pub records: usize,
    pub first_epoch: Option<u64>,
    pub last_epoch: Option<u64>,
    /// Offset of a benign incomplete final frame, if any.
    pub torn_tail: Option<u64>,
    /// First hard error (checksum failure, bad epoch sequence, ...).
    pub error: Option<StoreError>,
    /// End offset of the last fully-valid record (the file header alone
    /// counts as 12 bytes) — the byte the `--truncate` repair cuts at.
    /// Zero when even the header is unusable.
    pub valid_len: u64,
}

/// Full report for a store directory.
#[derive(Debug)]
pub struct FsckReport {
    pub snapshots: Vec<SnapshotCheck>,
    pub wal: Option<WalCheck>,
    /// Cross-file check: WAL records must continue contiguously from the
    /// newest loadable snapshot's epoch.
    pub continuity: Option<StoreError>,
}

impl FsckReport {
    /// The first hard error anywhere in the directory, if any. A directory
    /// passes fsck when the newest snapshot loads, the WAL scans clean, and
    /// the epochs line up; an older corrupt snapshot alone is reported but is
    /// not fatal (recovery never needs it once a newer one is valid).
    pub fn first_error(&self) -> Option<&StoreError> {
        if let Some(w) = &self.wal {
            if let Some(e) = &w.error {
                return Some(e);
            }
        }
        if let Some(e) = &self.continuity {
            return Some(e);
        }
        // Newest snapshot must be valid.
        if let Some(check) = self.snapshots.last() {
            if let Err(e) = &check.result {
                return Some(e);
            }
        }
        None
    }

    /// Whether any file in the directory (including older snapshots) has a
    /// problem worth reporting.
    pub fn all_clean(&self) -> bool {
        self.first_error().is_none() && self.snapshots.iter().all(|s| s.result.is_ok())
    }
}

/// Scans the WAL file without interpreting record contents beyond their
/// epoch, checking checksums and the strictly-consecutive epoch invariant.
fn check_wal(path: &Path) -> WalCheck {
    let mut check = WalCheck {
        path: path.to_path_buf(),
        records: 0,
        first_epoch: None,
        last_epoch: None,
        torn_tail: None,
        error: None,
        valid_len: 0,
    };
    let bytes = match StoreError::ctx(path, "read", fs::read(path)) {
        Ok(b) => b,
        Err(e) => {
            check.error = Some(e);
            return check;
        }
    };
    let shown = path.display().to_string();
    if bytes.len() < 12 || &bytes[..8] != WAL_MAGIC {
        check.error = Some(StoreError::BadHeader {
            path: shown,
            detail: "missing WAL magic".to_string(),
        });
        return check;
    }
    let mut off = 12;
    check.valid_len = 12;
    loop {
        match read_frame(&bytes, off, &shown) {
            Ok(FrameOutcome::Ok { payload, next }) => {
                let reader = Reader::new(payload, (off + FRAME_HEADER) as u64, &shown);
                match WalRecord::decode(reader) {
                    Ok(rec) => {
                        if let Some(prev) = check.last_epoch {
                            if rec.epoch != prev + 1 {
                                check.error = Some(StoreError::MissingEpochs {
                                    path: shown,
                                    expected: prev + 1,
                                    found: rec.epoch,
                                });
                                return check;
                            }
                        }
                        if check.first_epoch.is_none() {
                            check.first_epoch = Some(rec.epoch);
                        }
                        check.last_epoch = Some(rec.epoch);
                        check.records += 1;
                        off = next;
                        check.valid_len = next as u64;
                    }
                    Err(e) => {
                        check.error = Some(e);
                        return check;
                    }
                }
            }
            Ok(FrameOutcome::Eof) => return check,
            Ok(FrameOutcome::TornTail { offset }) => {
                check.torn_tail = Some(offset as u64);
                return check;
            }
            Err(e) => {
                check.error = Some(e);
                return check;
            }
        }
    }
}

/// Verifies every snapshot and the WAL in `dir`.
pub fn fsck(dir: &Path) -> Result<FsckReport, StoreError> {
    let snaps = list_snapshots(dir)?;
    let mut snapshots = Vec::new();
    let mut newest_valid_epoch: Option<u64> = None;
    for (name_epoch, path) in snaps {
        let result = load_snapshot(&path).map(|state| {
            let tuples: usize = state
                .idb
                .iter()
                .chain(&state.undefined)
                .map(|r| r.len())
                .sum::<usize>()
                + state.db.iter().map(|(_, r)| r.len()).sum::<usize>();
            debug_assert_eq!(state.epoch, name_epoch);
            newest_valid_epoch = Some(state.epoch);
            tuples
        });
        snapshots.push(SnapshotCheck {
            path,
            name_epoch,
            result,
        });
    }

    let wal_path = dir.join(WAL_FILE);
    let wal = wal_path.exists().then(|| check_wal(&wal_path));

    // Continuity: the first WAL record past the newest valid snapshot's
    // epoch must be exactly the next epoch. (Records at or below it are
    // leftovers of an interrupted compaction and are fine.)
    let mut continuity = None;
    if let (Some(snap_epoch), Some(w)) = (newest_valid_epoch, wal.as_ref()) {
        if w.error.is_none() {
            // Records are strictly consecutive (checked above), so a gap can
            // only be between the snapshot and the first record.
            if let Some(first) = w.first_epoch {
                if first > snap_epoch + 1 {
                    continuity = Some(StoreError::MissingEpochs {
                        path: w.path.display().to_string(),
                        expected: snap_epoch + 1,
                        found: first,
                    });
                }
            }
        }
    }

    Ok(FsckReport {
        snapshots,
        wal,
        continuity,
    })
}

/// Result of a [`truncate_repair`] pass.
#[derive(Debug)]
pub enum TruncateOutcome {
    /// Nothing to repair: the directory already recovers cleanly.
    Clean,
    /// The WAL was cut back to its last fully-valid record.
    Truncated {
        /// Byte offset the file was truncated at.
        at: u64,
        /// Bytes dropped from the tail.
        dropped_bytes: u64,
        /// Records surviving the cut.
        kept_records: usize,
        /// Epoch of the last surviving record, if any survive.
        kept_last_epoch: Option<u64>,
    },
    /// Truncation cannot fix this directory (corrupt newest snapshot,
    /// unusable WAL header, or damage that survives the cut).
    Unrepairable {
        /// Why.
        reason: String,
    },
}

/// Destructive WAL repair: cuts the log back to its last fully-valid
/// record, dropping the corrupt or torn tail, then re-runs [`fsck`] to
/// confirm the directory recovers. Only tail damage in the WAL is
/// repairable this way — a corrupt newest snapshot, a missing WAL header,
/// or an epoch gap at the log's *head* is reported as
/// [`TruncateOutcome::Unrepairable`] and the directory is left untouched.
///
/// Records past the cut are lost (they were never recoverable); everything
/// up to the cut recovers exactly as before.
///
/// # Errors
/// Only I/O errors reading or truncating the files; every diagnosis
/// outcome is a [`TruncateOutcome`].
pub fn truncate_repair(dir: &Path) -> Result<TruncateOutcome, StoreError> {
    let report = fsck(dir)?;
    // Snapshot-side damage: truncating the log cannot help.
    if let Some(check) = report.snapshots.last() {
        if let Err(e) = &check.result {
            return Ok(TruncateOutcome::Unrepairable {
                reason: format!("newest snapshot is unreadable: {e}"),
            });
        }
    }
    let Some(wal) = &report.wal else {
        return Ok(TruncateOutcome::Clean);
    };
    if wal.error.is_none() && wal.torn_tail.is_none() && report.continuity.is_none() {
        return Ok(TruncateOutcome::Clean);
    }
    if let Some(e) = &report.continuity {
        return Ok(TruncateOutcome::Unrepairable {
            reason: format!("epoch gap at the log head: {e}"),
        });
    }
    if wal.valid_len < 12 {
        let detail = match &wal.error {
            Some(e) => e.to_string(),
            None => "unusable WAL header".to_string(),
        };
        return Ok(TruncateOutcome::Unrepairable {
            reason: format!("no valid WAL prefix to keep: {detail}"),
        });
    }
    let len = StoreError::ctx(&wal.path, "stat", fs::metadata(&wal.path))?.len();
    debug_assert!(wal.valid_len <= len);
    let file = StoreError::ctx(
        &wal.path,
        "open",
        fs::OpenOptions::new().write(true).open(&wal.path),
    )?;
    StoreError::ctx(&wal.path, "truncate", file.set_len(wal.valid_len))?;
    StoreError::ctx(&wal.path, "sync", file.sync_all())?;
    let outcome = TruncateOutcome::Truncated {
        at: wal.valid_len,
        dropped_bytes: len.saturating_sub(wal.valid_len),
        kept_records: wal.records,
        kept_last_epoch: wal.last_epoch,
    };
    // Confirm: the repaired directory must now pass fsck.
    let confirm = fsck(dir)?;
    match confirm.first_error() {
        None => Ok(outcome),
        Some(e) => Ok(TruncateOutcome::Unrepairable {
            reason: format!("damage survives the tail cut: {e}"),
        }),
    }
}
