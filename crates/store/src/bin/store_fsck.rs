//! Offline store checker and WAL repairer.
//!
//! ```text
//! cargo run -p inflog-store --bin store_fsck -- [--truncate] <store-dir>
//! ```
//!
//! Walks every snapshot and WAL frame in the directory, verifies checksums
//! and epoch monotonicity/contiguity, and prints the first corrupt offset.
//! With `--truncate`, additionally cuts the WAL back to its last
//! fully-valid record when the damage is confined to the tail — the only
//! kind of damage truncation can fix — and re-checks.
//!
//! Exit status: 0 if the directory recovers cleanly (or was repaired so it
//! does), 1 if not (including unrepairable damage under `--truncate`),
//! 2 on usage errors.

use inflog_store::{fsck, truncate_repair, StoreError, TruncateOutcome};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (truncate, dir) = match args.as_slice() {
        [d] => (false, Path::new(d)),
        [flag, d] if flag == "--truncate" => (true, Path::new(d)),
        [d, flag] if flag == "--truncate" => (true, Path::new(d)),
        _ => {
            eprintln!("usage: store_fsck [--truncate] <store-dir>");
            return ExitCode::from(2);
        }
    };

    if truncate {
        match truncate_repair(dir) {
            Ok(TruncateOutcome::Clean) => {
                println!("truncate: nothing to repair");
            }
            Ok(TruncateOutcome::Truncated {
                at,
                dropped_bytes,
                kept_records,
                kept_last_epoch,
            }) => {
                let kept = match kept_last_epoch {
                    Some(e) => format!("{kept_records} record(s), last epoch {e}"),
                    None => "no records".to_string(),
                };
                println!(
                    "truncate: cut at offset {at} ({dropped_bytes} byte(s) dropped), kept {kept}"
                );
            }
            Ok(TruncateOutcome::Unrepairable { reason }) => {
                println!("truncate: UNREPAIRABLE — {reason}");
                return ExitCode::from(1);
            }
            Err(e) => {
                eprintln!("store_fsck: {e}");
                return ExitCode::from(1);
            }
        }
    }

    let report = match fsck(dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("store_fsck: {e}");
            return ExitCode::from(1);
        }
    };

    for s in &report.snapshots {
        match &s.result {
            Ok(tuples) => println!(
                "snapshot {} (epoch {}): ok, {tuples} tuples",
                s.path.display(),
                s.name_epoch
            ),
            Err(e) => println!(
                "snapshot {} (epoch {}): {e}",
                s.path.display(),
                s.name_epoch
            ),
        }
    }
    match &report.wal {
        Some(w) => {
            let range = match (w.first_epoch, w.last_epoch) {
                (Some(a), Some(b)) => format!("epochs {a}..={b}"),
                _ => "no epochs".to_string(),
            };
            print!("wal {}: {} record(s), {range}", w.path.display(), w.records);
            if let Some(off) = w.torn_tail {
                print!(", torn tail at offset {off} (benign: truncated on recovery)");
            }
            match &w.error {
                Some(e) => println!(", ERROR: {e}"),
                None => println!(", ok"),
            }
        }
        None => println!("wal: missing (treated as empty on recovery)"),
    }
    if let Some(e) = &report.continuity {
        println!("continuity: ERROR: {e}");
    }

    match report.first_error() {
        None => {
            if report.all_clean() {
                println!("fsck: clean");
            } else {
                println!("fsck: recoverable (an older snapshot is damaged but unused)");
            }
            ExitCode::SUCCESS
        }
        Some(e) => {
            if let StoreError::CorruptFrame { path, offset, .. } = e {
                println!("fsck: FAILED — first corrupt offset: {offset} in {path}");
            } else {
                println!("fsck: FAILED — {e}");
            }
            ExitCode::from(1)
        }
    }
}
