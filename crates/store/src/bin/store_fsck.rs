//! Offline store checker.
//!
//! ```text
//! cargo run -p inflog-store --bin store_fsck -- <store-dir>
//! ```
//!
//! Walks every snapshot and WAL frame in the directory, verifies checksums
//! and epoch monotonicity/contiguity, and prints the first corrupt offset.
//! Exit status: 0 if the directory would recover cleanly, 1 if not, 2 on
//! usage errors.

use inflog_store::{fsck, StoreError};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = match args.as_slice() {
        [d] => Path::new(d),
        _ => {
            eprintln!("usage: store_fsck <store-dir>");
            return ExitCode::from(2);
        }
    };

    let report = match fsck(dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("store_fsck: {e}");
            return ExitCode::from(1);
        }
    };

    for s in &report.snapshots {
        match &s.result {
            Ok(tuples) => println!(
                "snapshot {} (epoch {}): ok, {tuples} tuples",
                s.path.display(),
                s.name_epoch
            ),
            Err(e) => println!(
                "snapshot {} (epoch {}): {e}",
                s.path.display(),
                s.name_epoch
            ),
        }
    }
    match &report.wal {
        Some(w) => {
            let range = match (w.first_epoch, w.last_epoch) {
                (Some(a), Some(b)) => format!("epochs {a}..={b}"),
                _ => "no epochs".to_string(),
            };
            print!("wal {}: {} record(s), {range}", w.path.display(), w.records);
            if let Some(off) = w.torn_tail {
                print!(", torn tail at offset {off} (benign: truncated on recovery)");
            }
            match &w.error {
                Some(e) => println!(", ERROR: {e}"),
                None => println!(", ok"),
            }
        }
        None => println!("wal: missing (treated as empty on recovery)"),
    }
    if let Some(e) = &report.continuity {
        println!("continuity: ERROR: {e}");
    }

    match report.first_error() {
        None => {
            if report.all_clean() {
                println!("fsck: clean");
            } else {
                println!("fsck: recoverable (an older snapshot is damaged but unused)");
            }
            ExitCode::SUCCESS
        }
        Some(e) => {
            if let StoreError::CorruptFrame { path, offset, .. } = e {
                println!("fsck: FAILED — first corrupt offset: {offset} in {path}");
            } else {
                println!("fsck: FAILED — {e}");
            }
            ExitCode::from(1)
        }
    }
}
