//! Typed store errors.
//!
//! Every corruption error names the file and the absolute byte offset of the
//! first bad frame, so a failed recovery tells the operator exactly where the
//! log went wrong — "never a wrong answer" also means never a vague one.

use std::fmt;

/// Errors from the durable store.
///
/// Derives `Clone + PartialEq + Eq` so it can be embedded in `EvalError`
/// (which tests compare structurally).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure (message is the `io::Error` rendering; the
    /// original error is not kept because `io::Error` is neither `Clone` nor
    /// `Eq`).
    Io {
        path: String,
        op: &'static str,
        message: String,
    },
    /// A file exists but does not start with the expected magic/version.
    BadHeader { path: String, detail: String },
    /// A frame failed its CRC or decoded inconsistently. `offset` is the
    /// absolute byte offset of the frame header within the file.
    CorruptFrame {
        path: String,
        offset: u64,
        detail: String,
    },
    /// WAL record epochs are not contiguous past the snapshot epoch: replay
    /// would silently skip committed updates, so recovery refuses.
    MissingEpochs {
        path: String,
        expected: u64,
        found: u64,
    },
    /// The directory holds no loadable snapshot.
    NoSnapshot { dir: String },
    /// Recovered state does not fit the program it is being restored under
    /// (wrong relation count or arities).
    Mismatch { detail: String },
    /// A previous append failed partway; the log handle refuses further
    /// writes until the directory is re-opened through recovery.
    Poisoned { path: String },
    /// An armed failpoint fired (crash injection for tests).
    FaultInjected { site: String },
}

impl StoreError {
    fn io(path: &std::path::Path, op: &'static str, e: &std::io::Error) -> StoreError {
        StoreError::Io {
            path: path.display().to_string(),
            op,
            message: e.to_string(),
        }
    }

    /// Wraps a closure's `io::Result`, attaching path and operation context.
    pub(crate) fn ctx<T>(
        path: &std::path::Path,
        op: &'static str,
        r: std::io::Result<T>,
    ) -> Result<T, StoreError> {
        r.map_err(|e| StoreError::io(path, op, &e))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, op, message } => {
                write!(f, "i/o error during {op} on {path}: {message}")
            }
            StoreError::BadHeader { path, detail } => {
                write!(f, "bad file header in {path}: {detail}")
            }
            StoreError::CorruptFrame {
                path,
                offset,
                detail,
            } => write!(f, "corrupt frame in {path} at offset {offset}: {detail}"),
            StoreError::MissingEpochs {
                path,
                expected,
                found,
            } => write!(
                f,
                "missing epochs in {path}: expected epoch {expected} next, found {found}"
            ),
            StoreError::NoSnapshot { dir } => {
                write!(f, "no loadable snapshot in {dir}")
            }
            StoreError::Mismatch { detail } => {
                write!(f, "recovered state does not match the program: {detail}")
            }
            StoreError::Poisoned { path } => write!(
                f,
                "write-ahead log {path} is poisoned by an earlier failed append; \
                 re-open the store to recover"
            ),
            StoreError::FaultInjected { site } => {
                write!(f, "fault injected at store site {site:?}")
            }
        }
    }
}

impl std::error::Error for StoreError {}
