//! Stable binary encoding for core values.
//!
//! Everything is little-endian and length-prefixed; no serde, no varint
//! cleverness. The encoding is a pure function of logical state:
//!
//! - `u32`/`u64`: little-endian fixed width.
//! - string: `u32` byte length + UTF-8 bytes.
//! - tuple: `u32` arity + that many `u32` constant ids.
//! - relation: `u32` arity + `u64` tuple count + tuples as flat `u32` ids, in
//!   **`dense()` (insertion) order** — decoding re-inserts in that order, so a
//!   round trip reproduces dense order bit-for-bit, which is what lets
//!   recovered handles stay bit-identical to the pre-crash process.
//! - universe: `u64` count + constant names in id order (decoding re-interns
//!   in order and checks the ids come back out identical).
//! - database: universe + `u32` relation count + `(name, relation)` pairs in
//!   `BTreeMap` name order.
//!
//! Decoding is fully bounds-checked; any inconsistency surfaces as a
//! [`StoreError::CorruptFrame`] carrying the absolute file offset at which the
//! cursor stopped.

use crate::StoreError;
use inflog_core::{Database, Relation, Tuple, Universe};

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_tuple(&mut self, t: &Tuple) {
        self.put_u32(t.arity() as u32);
        for c in t.items() {
            self.put_u32(c.id());
        }
    }

    pub fn put_relation(&mut self, r: &Relation) {
        self.put_u32(r.arity() as u32);
        self.put_u64(r.len() as u64);
        for t in r.dense() {
            for c in t.items() {
                self.put_u32(c.id());
            }
        }
    }

    pub fn put_universe(&mut self, u: &Universe) {
        self.put_u64(u.len() as u64);
        for (_, name) in u.iter_named() {
            self.put_str(name);
        }
    }

    pub fn put_database(&mut self, db: &Database) {
        self.put_universe(db.universe());
        let rels: Vec<_> = db.iter().collect();
        self.put_u32(rels.len() as u32);
        for (name, rel) in rels {
            self.put_str(name);
            self.put_relation(rel);
        }
    }
}

/// Bounds-checked decoder over a payload slice.
///
/// `base` is the absolute file offset of the payload's first byte, so decode
/// errors report the position in the *file*, not in the frame.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
    path: String,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8], base: u64, path: &str) -> Self {
        Reader {
            buf,
            pos: 0,
            base,
            path: path.to_string(),
        }
    }

    /// Absolute file offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::CorruptFrame {
            path: self.path.clone(),
            offset: self.offset(),
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "need {n} more bytes, frame has {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn take_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn take_str(&mut self) -> Result<String, StoreError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(e) => Err(self.corrupt(format!("invalid UTF-8 in string: {e}"))),
        }
    }

    pub fn take_tuple(&mut self) -> Result<Tuple, StoreError> {
        let arity = self.take_u32()? as usize;
        if arity > MAX_ARITY {
            return Err(self.corrupt(format!("implausible tuple arity {arity}")));
        }
        let mut ids = Vec::with_capacity(arity);
        for _ in 0..arity {
            ids.push(self.take_u32()?);
        }
        Ok(Tuple::from_ids(&ids))
    }

    pub fn take_relation(&mut self) -> Result<Relation, StoreError> {
        let arity = self.take_u32()? as usize;
        if arity > MAX_ARITY {
            return Err(self.corrupt(format!("implausible relation arity {arity}")));
        }
        let count = self.take_u64()? as usize;
        // Every tuple costs 4*arity bytes: reject counts the frame cannot hold
        // before allocating.
        if count
            .checked_mul(arity.max(1) * 4)
            .is_none_or(|need| need > self.remaining() + 8)
        {
            return Err(self.corrupt(format!(
                "relation claims {count} tuples of arity {arity}, frame too small"
            )));
        }
        let mut r = Relation::new(arity);
        let mut ids = vec![0u32; arity];
        for i in 0..count {
            for id in ids.iter_mut() {
                *id = self.take_u32()?;
            }
            if !r.insert(Tuple::from_ids(&ids)) {
                return Err(self.corrupt(format!("duplicate tuple at index {i} in relation")));
            }
        }
        Ok(r)
    }

    pub fn take_universe(&mut self) -> Result<Universe, StoreError> {
        let count = self.take_u64()? as usize;
        let mut u = Universe::new();
        for i in 0..count {
            let name = self.take_str()?;
            let c = u.intern(&name);
            if c.id() as usize != i {
                return Err(self.corrupt(format!(
                    "duplicate constant name {name:?} at id {i} in universe"
                )));
            }
        }
        Ok(u)
    }

    pub fn take_database(&mut self) -> Result<Database, StoreError> {
        let universe = self.take_universe()?;
        let mut db = Database::with_universe(universe);
        let rels = self.take_u32()? as usize;
        let mut prev: Option<String> = None;
        for _ in 0..rels {
            let name = self.take_str()?;
            if prev.as_deref().is_some_and(|p| p >= name.as_str()) {
                return Err(self.corrupt(format!("relation names out of order at {name:?}")));
            }
            let rel = self.take_relation()?;
            db.set_relation(&name, rel);
            prev = Some(name);
        }
        Ok(db)
    }

    /// Fails unless the whole payload was consumed — trailing garbage in a
    /// checksummed frame means the encoder and decoder disagree.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes after payload", self.remaining())));
        }
        Ok(())
    }
}

/// Upper bound on plausible arities, used to reject corrupt headers before
/// they turn into huge allocations.
const MAX_ARITY: usize = 1 << 16;

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::Const;

    fn t(ids: &[u32]) -> Tuple {
        Tuple::from_ids(ids)
    }

    #[test]
    fn primitive_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, 0, "test");
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn relation_round_trip_preserves_dense_order() {
        let mut rel = Relation::new(2);
        rel.insert(t(&[3, 1]));
        rel.insert(t(&[0, 2]));
        rel.insert(t(&[1, 1]));
        let mut w = Writer::new();
        w.put_relation(&rel);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, 0, "test");
        let back = r.take_relation().unwrap();
        r.finish().unwrap();
        assert_eq!(back.dense(), rel.dense());
    }

    #[test]
    fn database_round_trip() {
        let mut db = Database::new();
        for name in ["a", "b", "c"] {
            db.universe_mut().intern(name);
        }
        db.insert_named_fact("E", &["a", "b"]).unwrap();
        db.insert_named_fact("E", &["b", "c"]).unwrap();
        db.insert_named_fact("Start", &["a"]).unwrap();
        let mut w = Writer::new();
        w.put_database(&db);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, 0, "test");
        let back = r.take_database().unwrap();
        r.finish().unwrap();
        assert_eq!(back, db);
        // Dense order inside each relation survives too.
        assert_eq!(
            back.relation("E").unwrap().dense(),
            db.relation("E").unwrap().dense()
        );
        // Universe ids are stable.
        assert_eq!(back.universe().lookup("c"), db.universe().lookup("c"));
    }

    #[test]
    fn truncated_payload_reports_offset() {
        let mut w = Writer::new();
        w.put_str("truncate me");
        let mut bytes = w.into_bytes();
        bytes.truncate(6);
        let mut r = Reader::new(&bytes, 100, "test");
        match r.take_str() {
            Err(StoreError::CorruptFrame { offset, .. }) => assert_eq!(offset, 104),
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
    }

    #[test]
    fn implausible_arity_rejected() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX); // arity
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, 0, "test");
        assert!(matches!(
            r.take_relation(),
            Err(StoreError::CorruptFrame { .. })
        ));
    }

    #[test]
    fn oversized_count_rejected_without_allocating() {
        let mut w = Writer::new();
        w.put_u32(2); // arity
        w.put_u64(u64::MAX / 2); // tuple count far beyond the frame
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, 0, "test");
        assert!(matches!(
            r.take_relation(),
            Err(StoreError::CorruptFrame { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new();
        w.put_u32(5);
        w.put_u8(9);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, 0, "test");
        assert_eq!(r.take_u32().unwrap(), 5);
        assert!(matches!(r.finish(), Err(StoreError::CorruptFrame { .. })));
    }

    #[test]
    fn tuple_round_trip() {
        for ids in [&[][..], &[4][..], &[1, 2, 3, 4, 5, 6][..]] {
            let mut w = Writer::new();
            w.put_tuple(&t(ids));
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes, 0, "test");
            let back = r.take_tuple().unwrap();
            r.finish().unwrap();
            assert_eq!(
                back.items(),
                ids.iter().map(|&i| Const(i)).collect::<Vec<_>>()
            );
        }
    }
}
