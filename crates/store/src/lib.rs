//! Durable snapshots + write-ahead log for materialized fixpoints.
//!
//! Every negation semantics this workspace evaluates (inflationary,
//! semi-naive least fixpoint, stratified, well-founded) is a *deterministic
//! function of the EDB* — the central observation of Kolaitis &
//! Papadimitriou's paper. That determinism is an unusually strong recovery
//! oracle: a handle rebuilt from a snapshot plus replayed WAL records must be
//! **bit-identical** to recomputing from scratch over the recovered EDB, and
//! the crash tests assert exactly that instead of trusting the format.
//!
//! The crate is deliberately low-level and dependency-free (the vendored tree
//! has no serde): a hand-rolled little-endian encoding ([`encode`]), CRC-32
//! checksummed frames ([`frame`]), epoch-stamped snapshots committed by
//! tmp-write + rename + directory fsync ([`snapshot`]), a log-first WAL
//! ([`wal`]), directory-level recovery and compaction ([`store`]), an offline
//! checker ([`fsck`]), and crash-injection sites ([`failpoints`]) that the
//! test harness drives through the same `INFLOG_FAILPOINT` variable as the
//! evaluation layer's failpoints.
//!
//! The evaluation-facing wrapper that pairs a live `Materialized` handle with
//! a [`Store`] lives in `inflog-eval` (`DurableMaterialized`), keeping this
//! crate's dependency edge pointing only at `inflog-core`.

pub mod crc;
pub mod encode;
pub mod error;
pub mod failpoints;
pub mod frame;
pub mod fsck;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use crc::crc32;
pub use error::StoreError;
pub use failpoints::{
    Failpoints, SITE_COMPACT_TRUNCATE, SITE_SNAPSHOT_RENAME, SITE_WAL_APPEND_SYNC,
    SITE_WAL_BIT_FLIP, SITE_WAL_TORN_WRITE, SITE_WAL_TRUNCATED_TAIL, STORE_FAILPOINT_SITES,
};
pub use fsck::{fsck, truncate_repair, FsckReport, TruncateOutcome};
pub use snapshot::SnapshotState;
pub use store::{Store, StoreOptions};
pub use wal::{Durability, WalOp, WalRecord};
