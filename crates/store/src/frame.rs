//! Length-prefixed, CRC-checksummed frames.
//!
//! Every durable payload travels in one frame:
//!
//! ```text
//! [u32 len (LE)] [u32 crc (LE)] [payload: len bytes]
//! ```
//!
//! The CRC-32 covers the length bytes *and* the payload, so a corrupted
//! length that still lands inside the file is caught by the checksum rather
//! than by luck. A frame whose declared extent runs past end-of-file is
//! classified as a **torn tail**: in `Durability::Sync` mode every earlier
//! frame was fsynced before its append returned, so an incomplete frame can
//! only be the final, unacknowledged write of a crashed process — it is safe
//! (and required) to truncate it away rather than fail recovery.

use crate::StoreError;

/// Frames larger than this are rejected as corrupt rather than allocated.
pub const MAX_FRAME: u32 = 1 << 30;

/// Size of the `[len][crc]` frame header.
pub const FRAME_HEADER: usize = 8;

/// Encodes `payload` as one frame.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let len_bytes = len.to_le_bytes();
    let mut h = crate::crc::Crc32::new();
    h.update(&len_bytes);
    h.update(payload);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of reading one frame at `offset` within `buf`.
#[derive(Debug)]
pub enum FrameOutcome<'a> {
    /// A complete, checksum-valid frame; `next` is the offset just past it.
    Ok { payload: &'a [u8], next: usize },
    /// No more bytes: clean end of file.
    Eof,
    /// An incomplete final frame starting at `offset` (header short, or the
    /// declared payload extends past end-of-file). Benign: truncate here.
    TornTail { offset: usize },
}

/// Reads the frame starting at `offset`; checksum failures are hard errors.
pub fn read_frame<'a>(
    buf: &'a [u8],
    offset: usize,
    path: &str,
) -> Result<FrameOutcome<'a>, StoreError> {
    let rest = &buf[offset.min(buf.len())..];
    if rest.is_empty() {
        return Ok(FrameOutcome::Eof);
    }
    if rest.len() < FRAME_HEADER {
        return Ok(FrameOutcome::TornTail { offset });
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    let stored_crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    if len > MAX_FRAME {
        return Err(StoreError::CorruptFrame {
            path: path.to_string(),
            offset: offset as u64,
            detail: format!("frame length {len} exceeds maximum {MAX_FRAME}"),
        });
    }
    let body = &rest[FRAME_HEADER..];
    if body.len() < len as usize {
        return Ok(FrameOutcome::TornTail { offset });
    }
    let payload = &body[..len as usize];
    let mut h = crate::crc::Crc32::new();
    h.update(&len.to_le_bytes());
    h.update(payload);
    let actual = h.finish();
    if actual != stored_crc {
        return Err(StoreError::CorruptFrame {
            path: path.to_string(),
            offset: offset as u64,
            detail: format!(
                "checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
            ),
        });
    }
    Ok(FrameOutcome::Ok {
        payload,
        next: offset + FRAME_HEADER + len as usize,
    })
}

/// Convenience: one-shot checksum of a frame's logical content, used by tests.
pub fn payload_crc(payload: &[u8]) -> u32 {
    let mut h = crate::crc::Crc32::new();
    h.update(&(payload.len() as u32).to_le_bytes());
    h.update(payload);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let bytes = frame_bytes(b"hello frames");
        match read_frame(&bytes, 0, "t").unwrap() {
            FrameOutcome::Ok { payload, next } => {
                assert_eq!(payload, b"hello frames");
                assert_eq!(next, bytes.len());
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        match read_frame(&bytes, bytes.len(), "t").unwrap() {
            FrameOutcome::Eof => {}
            other => panic!("expected Eof, got {other:?}"),
        }
    }

    #[test]
    fn torn_header_and_torn_payload() {
        let bytes = frame_bytes(b"abcdef");
        for cut in [1, FRAME_HEADER - 1, FRAME_HEADER + 2, bytes.len() - 1] {
            match read_frame(&bytes[..cut], 0, "t").unwrap() {
                FrameOutcome::TornTail { offset } => assert_eq!(offset, 0),
                other => panic!("cut at {cut}: expected TornTail, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_bit_flip_is_corrupt() {
        let mut bytes = frame_bytes(b"abcdef");
        bytes[FRAME_HEADER + 3] ^= 0x01;
        match read_frame(&bytes, 0, "t") {
            Err(StoreError::CorruptFrame { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
    }

    #[test]
    fn length_bit_flip_within_file_is_corrupt() {
        // Two frames back to back; flip a low bit of the first length so the
        // declared extent still lands inside the file: the checksum covers the
        // length bytes, so this is detected as corruption, not misparsed.
        let mut bytes = frame_bytes(b"first payload!");
        bytes.extend_from_slice(&frame_bytes(b"second"));
        bytes[0] ^= 0x02;
        assert!(matches!(
            read_frame(&bytes, 0, "t"),
            Err(StoreError::CorruptFrame { .. })
        ));
    }

    #[test]
    fn absurd_length_is_corrupt_not_torn() {
        let mut bytes = frame_bytes(b"x");
        bytes[3] = 0xFF; // length becomes > MAX_FRAME
        assert!(matches!(
            read_frame(&bytes, 0, "t"),
            Err(StoreError::CorruptFrame { .. })
        ));
    }
}
