//! Fixpoint-analysis errors.

use inflog_eval::EvalError;
use std::fmt;

/// Errors raised by fixpoint analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixpointError {
    /// An underlying compilation/evaluation error.
    Eval(EvalError),
    /// A brute-force search space exceeded the caller's cap.
    SearchSpaceTooLarge {
        /// Number of potential IDB tuples (search space is `2^tuples`).
        tuples: usize,
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for FixpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixpointError::Eval(e) => write!(f, "{e}"),
            FixpointError::SearchSpaceTooLarge { tuples, cap } => write!(
                f,
                "brute-force search space 2^{tuples} exceeds cap 2^{cap} \
                 (use the SAT-based analyzer instead)"
            ),
        }
    }
}

impl std::error::Error for FixpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FixpointError::Eval(e) => Some(e),
            FixpointError::SearchSpaceTooLarge { .. } => None,
        }
    }
}

impl From<EvalError> for FixpointError {
    fn from(e: EvalError) -> Self {
        FixpointError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FixpointError::SearchSpaceTooLarge {
            tuples: 40,
            cap: 24,
        };
        assert!(e.to_string().contains("2^40"));
        let wrapped: FixpointError = EvalError::IterationLimit { limit: 3 }.into();
        assert!(wrapped.to_string().contains("3"));
        use std::error::Error;
        assert!(wrapped.source().is_some());
    }
}
