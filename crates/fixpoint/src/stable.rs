//! Stable models (Gelfond–Lifschitz), connecting the paper's fixpoints to
//! the semantics that later "won" in answer-set programming (XSB, Smodels,
//! clingo, DLV — the lineage the paper's negation-as-failure discussion
//! anticipates).
//!
//! The paper's fixpoints of Θ are the **supported models** (models of the
//! grounded Clark completion). A *stable* model additionally requires every
//! atom to have a non-circular derivation: `S` is stable iff `S` is the
//! least model of its **reduct** — the ground program with negative
//! literals evaluated against `S` and removed:
//!
//! ```text
//! reduct_S = { head <- pos(b)  :  body b, neg(b) ∩ S = ∅ }
//! ```
//!
//! Facts used here (and tested):
//! * every stable model is a fixpoint of Θ (stable ⊆ supported), but not
//!   conversely — `P(x) <- P(x)` has the supported model `{a}` whose
//!   support is circular;
//! * the well-founded true facts are contained in every stable model, and
//!   a *total* well-founded model is the unique stable model;
//! * for stratified programs the perfect model is the unique stable model.

use crate::ground::GroundProgram;
use crate::Result;
use inflog_core::Database;
use inflog_eval::{CompiledProgram, EvalContext, Interp};
use inflog_syntax::Program;

/// Stable-model analysis over a grounded program.
#[derive(Debug, Clone)]
pub struct StableAnalyzer {
    ground: GroundProgram,
}

impl StableAnalyzer {
    /// Grounds `(program, db)` for stable-model queries.
    ///
    /// # Errors
    /// Compilation errors.
    pub fn new(program: &Program, db: &Database) -> Result<Self> {
        let cp = CompiledProgram::compile(program, db)?;
        let ctx = EvalContext::new(&cp, db)?;
        Ok(StableAnalyzer {
            ground: GroundProgram::build_compiled(&cp, &ctx),
        })
    }

    /// Builds from an existing grounding.
    pub fn from_ground(ground: GroundProgram) -> Self {
        StableAnalyzer { ground }
    }

    /// The underlying grounding.
    pub fn ground(&self) -> &GroundProgram {
        &self.ground
    }

    /// Computes the least model of the reduct of the grounded program with
    /// respect to `candidate` (as a bit vector over tuple ids).
    pub fn reduct_least_model(&self, candidate: &[bool]) -> Vec<bool> {
        let g = &self.ground;
        let mut model = vec![false; g.total_tuples];
        // Naive positive iteration to the least fixpoint; the reduct is a
        // definite (negation-free) program so this is Tarski's climb.
        loop {
            let mut changed = false;
            for id in 0..g.total_tuples {
                if model[id] {
                    continue;
                }
                let derivable = g.bodies[id].iter().any(|b| {
                    b.neg.iter().all(|&q| !candidate[q]) && b.pos.iter().all(|&p| model[p])
                });
                if derivable {
                    model[id] = true;
                    changed = true;
                }
            }
            if !changed {
                return model;
            }
        }
    }

    /// Whether `s` is a stable model of the program.
    pub fn is_stable(&self, s: &Interp) -> bool {
        let bits = self.ground.interp_to_bits(s);
        self.reduct_least_model(&bits) == bits
    }

    /// Enumerates all stable models by exhaustive search over the candidate
    /// space (ground truth; exponential).
    ///
    /// # Errors
    /// [`crate::FixpointError::SearchSpaceTooLarge`] beyond `cap_bits`.
    pub fn enumerate_stable_brute(&self, cap_bits: usize) -> Result<Vec<Interp>> {
        let g = &self.ground;
        if g.total_tuples > cap_bits {
            return Err(crate::FixpointError::SearchSpaceTooLarge {
                tuples: g.total_tuples,
                cap: cap_bits,
            });
        }
        let mut out = Vec::new();
        for mask in 0u64..(1u64 << g.total_tuples) {
            let bits: Vec<bool> = (0..g.total_tuples).map(|i| mask >> i & 1 == 1).collect();
            if self.reduct_least_model(&bits) == bits {
                out.push(g.bits_to_interp(&bits));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FixpointAnalyzer;
    use crate::brute::enumerate_fixpoints_brute;
    use inflog_core::graphs::DiGraph;
    use inflog_eval::{stratified_eval, well_founded};
    use inflog_syntax::parse_program;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const PI1: &str = "T(x) :- E(y, x), !T(y).";

    fn analyzer(src: &str, db: &Database) -> StableAnalyzer {
        StableAnalyzer::new(&parse_program(src).unwrap(), db).unwrap()
    }

    #[test]
    fn self_support_is_supported_but_not_stable() {
        // P(x) <- P(x) over A = {a}: {a} is a fixpoint of Θ (supported)
        // but not stable (its support is circular); ∅ is both.
        let mut db = Database::new();
        db.universe_mut().intern("a");
        let p = parse_program("P(x) :- P(x).").unwrap();
        let fps = enumerate_fixpoints_brute(&p, &db, 20).unwrap();
        assert_eq!(fps.len(), 2, "∅ and {{a}} are supported");
        let st = analyzer("P(x) :- P(x).", &db);
        let stable = st.enumerate_stable_brute(20).unwrap();
        assert_eq!(stable.len(), 1, "only ∅ is stable");
        assert!(stable[0].all_empty());
    }

    #[test]
    fn stable_models_are_fixpoints() {
        let cases = [
            (PI1, DiGraph::path(4)),
            (PI1, DiGraph::cycle(4)),
            (PI1, DiGraph::cycle(3)),
            (
                "A(x) :- E(x, y), !B(y). B(x) :- E(y, x), !A(x).",
                DiGraph::cycle(3),
            ),
        ];
        for (src, g) in cases {
            let db = g.to_database("E");
            let program = parse_program(src).unwrap();
            let st = analyzer(src, &db);
            let stable = st.enumerate_stable_brute(20).unwrap();
            let fps = enumerate_fixpoints_brute(&program, &db, 20).unwrap();
            for s in &stable {
                assert!(fps.contains(s), "stable ⊆ supported on {src} / {g}");
            }
        }
    }

    #[test]
    fn pi1_stable_equals_supported_on_cycles() {
        // On even cycles the two alternating fixpoints are non-circular:
        // each T(v) is supported by the *absence* of its predecessor, so
        // both are stable. Odd cycles have neither.
        let st = analyzer(PI1, &DiGraph::cycle(4).to_database("E"));
        assert_eq!(st.enumerate_stable_brute(20).unwrap().len(), 2);
        let st = analyzer(PI1, &DiGraph::cycle(5).to_database("E"));
        assert!(st.enumerate_stable_brute(20).unwrap().is_empty());
    }

    #[test]
    fn total_wfs_is_the_unique_stable_model() {
        let src = "Win(x) :- Move(x, y), !Win(y).";
        for g in [DiGraph::path(4), DiGraph::star(4), DiGraph::binary_tree(7)] {
            let db = g.to_database("Move");
            let program = parse_program(src).unwrap();
            let wf = well_founded(&program, &db).unwrap();
            assert!(wf.is_total(), "{g}");
            let st = analyzer(src, &db);
            let stable = st.enumerate_stable_brute(20).unwrap();
            assert_eq!(stable.len(), 1, "{g}");
            assert_eq!(stable[0], wf.true_facts, "{g}");
        }
    }

    #[test]
    fn wfs_true_facts_below_every_stable_model() {
        let src = PI1;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..6 {
            let g = DiGraph::random_gnp(4, 0.35, &mut rng);
            let db = g.to_database("E");
            let program = parse_program(src).unwrap();
            let wf = well_founded(&program, &db).unwrap();
            let st = analyzer(src, &db);
            for s in st.enumerate_stable_brute(20).unwrap() {
                assert!(wf.true_facts.is_subset(&s), "graph {g}");
            }
        }
    }

    #[test]
    fn stratified_perfect_model_is_unique_stable() {
        let src = "
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            C(x, y) :- !S(x, y).
        ";
        let g = DiGraph::path(3);
        let db = g.to_database("E");
        let program = parse_program(src).unwrap();
        let (perfect, _) = stratified_eval(&program, &db).unwrap();
        let st = analyzer(src, &db);
        assert!(st.is_stable(&perfect));
        let stable = st.enumerate_stable_brute(20).unwrap();
        assert_eq!(stable, vec![perfect]);
    }

    #[test]
    fn is_stable_agrees_with_enumeration() {
        let db = DiGraph::cycle(4).to_database("E");
        let st = analyzer(PI1, &db);
        let program = parse_program(PI1).unwrap();
        let fa = FixpointAnalyzer::new(&program, &db).unwrap();
        let stable = st.enumerate_stable_brute(20).unwrap();
        for f in fa.enumerate_fixpoints(32) {
            assert_eq!(st.is_stable(&f), stable.contains(&f));
        }
    }

    #[test]
    fn positive_program_unique_stable_is_lfp() {
        let src = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
        let db = DiGraph::path(3).to_database("E");
        let program = parse_program(src).unwrap();
        let (lfp, _) = inflog_eval::least_fixpoint_naive(&program, &db).unwrap();
        let st = analyzer(src, &db);
        let stable = st.enumerate_stable_brute(20).unwrap();
        assert_eq!(stable, vec![lfp]);
    }
}
