//! # inflog-fixpoint
//!
//! Fixpoint analysis for DATALOG¬ programs — the executable content of §§2–3
//! of *"Why Not Negation by Fixpoint?"*.
//!
//! A sequence `S` of IDB relations is a **fixpoint** of `(π, D)` when
//! `Θ(S) = S`. These are exactly the *supported models* of π on D (models of
//! the grounded Clark completion), which is what makes the NP machinery
//! concrete:
//!
//! * [`check`] — is a given `S` a fixpoint? (one Θ application);
//! * [`ground`] — ground the program over the universe: for every potential
//!   IDB tuple, the set of rule-instantiation bodies that can derive it,
//!   with the extensional part already evaluated away;
//! * [`encode`] — the grounded completion as CNF: one Boolean per potential
//!   tuple, `v_t ↔ ⋁ bodies(t)` via Tseitin gates — "guess relations of size
//!   n^s and verify" (the paper's NP upper bound) handed to a CDCL solver;
//! * [`analysis`] — [`FixpointAnalyzer`]: existence, enumeration/counting
//!   (Theorem 2's US machinery), uniqueness, and the **least fixpoint** both
//!   by enumeration-and-intersection and by the FONP oracle algorithm of
//!   Theorem 3 (one SAT call per tuple under an assumption, then a single
//!   final Θ check on the intersection);
//! * [`brute`] — exhaustive fixpoint enumeration over the `2^(Σ|A|^k)`
//!   candidate space, fully independent of the SAT path (tests compare the
//!   two);
//! * [`stable`] — Gelfond–Lifschitz stable models as an extension: the
//!   paper's fixpoints are the *supported* models, and stable ⊆ supported
//!   (the containment, and its strictness, are tested).

pub mod analysis;
pub mod brute;
pub mod check;
pub mod encode;
pub mod error;
pub mod ground;
pub mod stable;

pub use analysis::{FixpointAnalyzer, FonpStats, LeastFixpointResult};
pub use brute::enumerate_fixpoints_brute;
pub use check::{is_fixpoint, is_fixpoint_compiled};
pub use encode::CompletionEncoding;
pub use error::FixpointError;
pub use ground::{GroundBody, GroundProgram};
pub use stable::StableAnalyzer;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FixpointError>;
