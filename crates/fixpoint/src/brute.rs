//! Exhaustive fixpoint enumeration — the SAT-free ground truth.
//!
//! Iterates every subset of the potential-tuple space and checks `Θ(S) = S`
//! with the relational operator. Exponential (`2^{Σ|A|^k}` candidates), so a
//! hard cap guards against accidental blowups; experiments use it only on
//! the paper's small worked examples (L_n, C_n, G_n with few copies) and
//! property tests compare it against the SAT-based analyzer.

use crate::error::FixpointError;
use crate::ground::GroundProgram;
use crate::Result;
use inflog_core::Database;
use inflog_eval::{apply, CompiledProgram, EvalContext, Interp};
use inflog_syntax::Program;

/// Enumerates **all** fixpoints of `(program, db)` by exhaustive search.
///
/// `cap_bits` bounds the search-space exponent; the default analyzer
/// experiments pass 20 (≈ one million candidates).
///
/// # Errors
/// * [`FixpointError::SearchSpaceTooLarge`] if `Σ|A|^k > cap_bits`;
/// * compilation errors.
pub fn enumerate_fixpoints_brute(
    program: &Program,
    db: &Database,
    cap_bits: usize,
) -> Result<Vec<Interp>> {
    let cp = CompiledProgram::compile(program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    let g = GroundProgram::build_compiled(&cp, &ctx);
    if g.total_tuples > cap_bits {
        return Err(FixpointError::SearchSpaceTooLarge {
            tuples: g.total_tuples,
            cap: cap_bits,
        });
    }
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << g.total_tuples) {
        let bits: Vec<bool> = (0..g.total_tuples).map(|i| mask >> i & 1 == 1).collect();
        let s = g.bits_to_interp(&bits);
        if apply(&cp, &ctx, &s) == s {
            out.push(s);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::parse_program;

    const PI1: &str = "T(x) :- E(y, x), !T(y).";

    #[test]
    fn paper_table_paths() {
        // L_n: exactly one fixpoint, the even-position set.
        for n in 1..=6usize {
            let db = DiGraph::path(n).to_database("E");
            let p = parse_program(PI1).unwrap();
            let fps = enumerate_fixpoints_brute(&p, &db, 20).unwrap();
            assert_eq!(fps.len(), 1, "L_{n}");
            assert_eq!(fps[0].total_tuples(), n / 2, "L_{n} fixpoint size");
        }
    }

    #[test]
    fn paper_table_cycles() {
        // C_n: no fixpoint for odd n, exactly two (incomparable) for even n.
        for n in 2..=7usize {
            let db = DiGraph::cycle(n).to_database("E");
            let p = parse_program(PI1).unwrap();
            let fps = enumerate_fixpoints_brute(&p, &db, 20).unwrap();
            if n % 2 == 1 {
                assert!(fps.is_empty(), "C_{n} must have no fixpoint");
            } else {
                assert_eq!(fps.len(), 2, "C_{n} must have two fixpoints");
                assert!(fps[0].incomparable(&fps[1]), "C_{n}: incomparable");
            }
        }
    }

    #[test]
    fn paper_table_gn() {
        // G_n = n disjoint copies of C_2: exactly 2^n pairwise incomparable
        // fixpoints, hence no least fixpoint.
        for copies in 1..=3usize {
            let db = DiGraph::disjoint_cycles(copies, 2).to_database("E");
            let p = parse_program(PI1).unwrap();
            let fps = enumerate_fixpoints_brute(&p, &db, 20).unwrap();
            assert_eq!(fps.len(), 1 << copies, "G_{copies}");
            for i in 0..fps.len() {
                for j in (i + 1)..fps.len() {
                    assert!(fps[i].incomparable(&fps[j]), "G_{copies}: {i} vs {j}");
                }
            }
        }
    }

    #[test]
    fn cap_is_enforced() {
        let db = DiGraph::cycle(25).to_database("E");
        let p = parse_program(PI1).unwrap();
        assert!(matches!(
            enumerate_fixpoints_brute(&p, &db, 20),
            Err(FixpointError::SearchSpaceTooLarge {
                tuples: 25,
                cap: 20
            })
        ));
    }

    #[test]
    fn positive_program_fixpoints_contain_least() {
        let src = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
        let p = parse_program(src).unwrap();
        let db = DiGraph::path(3).to_database("E");
        let fps = enumerate_fixpoints_brute(&p, &db, 20).unwrap();
        assert!(!fps.is_empty());
        let (lfp, _) = inflog_eval::least_fixpoint_naive(&p, &db).unwrap();
        assert!(fps.contains(&lfp));
        for f in &fps {
            assert!(lfp.is_subset(f), "least fixpoint below all fixpoints");
        }
    }
}
