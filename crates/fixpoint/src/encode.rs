//! The grounded completion as CNF: fixpoints of Θ are exactly the models.
//!
//! One Boolean variable `v_t` per potential IDB tuple, plus Tseitin
//! auxiliaries per multi-literal body. The fixpoint condition `S = Θ(S)`
//! becomes, per tuple,
//!
//! ```text
//! v_t ↔ ⋁_{b ∈ bodies(t)} ( ⋀_{p ∈ pos(b)} v_p  ∧  ⋀_{q ∈ neg(b)} ¬v_q )
//! ```
//!
//! — the grounded **Clark completion**; its models are the supported models
//! of π on D, i.e. the paper's fixpoints. The CDCL solver then realizes the
//! paper's NP upper bound for fixpoint existence; blocking clauses realize
//! Theorem 2's US machinery; assumption queries realize Theorem 3's NP
//! oracle.

use crate::ground::GroundProgram;
use inflog_eval::Interp;
use inflog_sat::{Cnf, Lit, Var};

/// The completion encoding of a grounded program.
#[derive(Debug, Clone)]
pub struct CompletionEncoding {
    /// The CNF formula.
    pub cnf: Cnf,
    /// Variables for the tuple-id space: `tuple_vars[id]` is `v_id`.
    /// (Auxiliary Tseitin variables are allocated after these.)
    pub tuple_vars: Vec<Var>,
}

impl CompletionEncoding {
    /// Builds the completion CNF from a grounding.
    pub fn build(g: &GroundProgram) -> Self {
        let mut cnf = Cnf::new();
        let tuple_vars = cnf.new_vars(g.total_tuples);

        for (id, bodies) in g.bodies.iter().enumerate() {
            let v = tuple_vars[id].pos();
            // Literal for each body (aux var unless the body is a single
            // literal or empty).
            let mut body_lits: Vec<Lit> = Vec::with_capacity(bodies.len());
            let mut always_derivable = false;
            for b in bodies {
                let lits: Vec<Lit> = b
                    .pos
                    .iter()
                    .map(|&p| tuple_vars[p].pos())
                    .chain(b.neg.iter().map(|&q| tuple_vars[q].neg()))
                    .collect();
                match lits.len() {
                    0 => {
                        // Empty body: t is unconditionally derivable.
                        always_derivable = true;
                        break;
                    }
                    1 => body_lits.push(lits[0]),
                    _ => {
                        let aux = cnf.new_var().pos();
                        cnf.add_and_gate_n(aux, &lits);
                        body_lits.push(aux);
                    }
                }
            }
            if always_derivable {
                cnf.add_unit(v);
            } else {
                cnf.add_or_gate_n(v, &body_lits);
            }
        }

        CompletionEncoding { cnf, tuple_vars }
    }

    /// Extracts the interpretation from a SAT model.
    pub fn interp_from_model(&self, g: &GroundProgram, model: &[bool]) -> Interp {
        let bits: Vec<bool> = self.tuple_vars.iter().map(|v| model[v.index()]).collect();
        g.bits_to_interp(&bits)
    }

    /// The assumption literal asserting `t ∈ S` (`positive`) or `t ∉ S`.
    pub fn tuple_assumption(&self, id: usize, positive: bool) -> Lit {
        if positive {
            self.tuple_vars[id].pos()
        } else {
            self.tuple_vars[id].neg()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_core::Database;
    use inflog_eval::{apply, CompiledProgram, EvalContext};
    use inflog_sat::{brute_force_count, Solver};
    use inflog_syntax::parse_program;

    const PI1: &str = "T(x) :- E(y, x), !T(y).";

    fn encode(src: &str, db: &Database) -> (CompletionEncoding, GroundProgram) {
        let g = GroundProgram::build(&parse_program(src).unwrap(), db).unwrap();
        let e = CompletionEncoding::build(&g);
        (e, g)
    }

    #[test]
    fn path_encoding_sat_and_model_is_fixpoint() {
        let db = DiGraph::path(4).to_database("E");
        let (e, g) = encode(PI1, &db);
        let mut s = Solver::from_cnf(&e.cnf);
        let model = s.solve().model().expect("L_4 has a fixpoint").to_vec();
        let interp = e.interp_from_model(&g, &model);
        let p = parse_program(PI1).unwrap();
        assert!(crate::check::is_fixpoint(&p, &db, &interp).unwrap());
        // And it is the known unique fixpoint {v1, v3}.
        assert_eq!(interp.total_tuples(), 2);
    }

    #[test]
    fn odd_cycle_unsat() {
        for n in [3usize, 5, 7] {
            let db = DiGraph::cycle(n).to_database("E");
            let (e, _) = encode(PI1, &db);
            assert!(
                !Solver::from_cnf(&e.cnf).solve().is_sat(),
                "C_{n} must have no fixpoint"
            );
        }
    }

    #[test]
    fn even_cycle_sat() {
        for n in [2usize, 4, 6] {
            let db = DiGraph::cycle(n).to_database("E");
            let (e, _) = encode(PI1, &db);
            assert!(Solver::from_cnf(&e.cnf).solve().is_sat());
        }
    }

    #[test]
    fn model_count_matches_exhaustive_fixpoint_count() {
        // On C_4 (4 tuple vars + auxes) the models projected to tuple vars
        // must number exactly 2. Since every aux is functionally determined,
        // total model count equals projected count here.
        let db = DiGraph::cycle(4).to_database("E");
        let (e, g) = encode(PI1, &db);
        assert!(e.cnf.num_vars() <= 20);
        let count = brute_force_count(&e.cnf);
        assert_eq!(count, 2);
        assert_eq!(g.total_tuples, 4);
    }

    #[test]
    fn toggle_rule_encoding_unsat() {
        let mut db = Database::new();
        db.universe_mut().intern("a");
        let (e, _) = encode("T(z) :- !T(w).", &db);
        assert!(!Solver::from_cnf(&e.cnf).solve().is_sat());
    }

    #[test]
    fn positive_program_models_contain_least_fixpoint() {
        let src = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
        let db = DiGraph::path(3).to_database("E");
        let (e, g) = encode(src, &db);
        let p = parse_program(src).unwrap();
        let (lfp, _) = inflog_eval::least_fixpoint_naive(&p, &db).unwrap();
        let mut s = Solver::from_cnf(&e.cnf);
        let model = s.solve().model().expect("positive: lfp exists").to_vec();
        let interp = e.interp_from_model(&g, &model);
        // The found model is a fixpoint and contains the least fixpoint.
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let ctx = EvalContext::new(&cp, &db).unwrap();
        assert_eq!(apply(&cp, &ctx, &interp), interp);
        assert!(lfp.is_subset(&interp));
    }

    #[test]
    fn assumption_literals() {
        let db = DiGraph::cycle(4).to_database("E");
        let (e, g) = encode(PI1, &db);
        // Assume T(v0): forces the {v0, v2} fixpoint.
        let id0 = g.tuple_id(0, &inflog_core::Tuple::from_ids(&[0]));
        let mut s = Solver::from_cnf(&e.cnf);
        let model = s
            .solve_with_assumptions(&[e.tuple_assumption(id0, true)])
            .model()
            .expect("fixpoint with T(v0) exists")
            .to_vec();
        let interp = e.interp_from_model(&g, &model);
        assert!(interp.contains(0, &inflog_core::Tuple::from_ids(&[0])));
        assert!(interp.contains(0, &inflog_core::Tuple::from_ids(&[2])));
        assert_eq!(interp.total_tuples(), 2);
    }
}
