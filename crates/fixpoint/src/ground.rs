//! Program grounding: the propositional view of `(π, D)`.
//!
//! For every potential IDB tuple `t ∈ A^k` (one per IDB predicate/tuple
//! pair, densely numbered), the grounding collects the **bodies** that can
//! derive it: one per rule instantiation whose extensional part (EDB atoms,
//! equalities, inequalities) already holds in `D`. What remains of a body is
//! purely intensional — positive and negated IDB tuple ids — so that
//!
//! ```text
//! t ∈ Θ(S)  ⟺  some body b of t has  pos(b) ⊆ S  and  neg(b) ∩ S = ∅.
//! ```
//!
//! This is the object Theorem 1's "guess and verify" argument works over,
//! and the direct input to the completion CNF of [`encode`](crate::encode).
//!
//! Grounding enumerates, per rule, the variable bindings that satisfy the
//! extensional part (reusing the evaluator's planner, with unconstrained
//! variables ranging over `A` — the paper's domain-grounded semantics), so
//! its cost is `O(|A|^vars)` per rule: polynomial for a fixed program, and
//! the precise source of the exponential *expression* complexity (Theorem 4)
//! measured in experiment E10.

use crate::Result;
use inflog_core::{Database, Tuple};
use inflog_eval::plan::{plan_rule, CTerm, CardSnapshot, PredRef, RLit};
use inflog_eval::{enumerate_bindings, CompiledProgram, EvalContext, Interp};
use inflog_syntax::Program;
use std::collections::HashSet;

/// A ground rule body, reduced to its intensional part.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundBody {
    /// Tuple ids that must be in `S`.
    pub pos: Vec<usize>,
    /// Tuple ids that must not be in `S`.
    pub neg: Vec<usize>,
}

/// The grounded program: dense tuple-id space plus per-tuple bodies.
#[derive(Debug, Clone)]
pub struct GroundProgram {
    /// `|A|`.
    pub universe_size: usize,
    /// IDB arities by IDB id (mirrors the compiled program).
    pub idb_arities: Vec<usize>,
    /// Tuple-id offset per IDB predicate: the ids of predicate `i` occupy
    /// `offsets[i] .. offsets[i] + |A|^{arity_i}`.
    pub offsets: Vec<usize>,
    /// Total number of potential tuples (`Σ_i |A|^{k_i}` — the paper's
    /// `n^s` guess size).
    pub total_tuples: usize,
    /// Bodies that can derive each tuple id (possibly empty).
    pub bodies: Vec<Vec<GroundBody>>,
}

impl GroundProgram {
    /// Grounds `program` against `db`.
    ///
    /// # Errors
    /// Compilation errors from resolving the program against the database.
    pub fn build(program: &Program, db: &Database) -> Result<Self> {
        let cp = CompiledProgram::compile(program, db)?;
        let ctx = EvalContext::new(&cp, db)?;
        Ok(Self::build_compiled(&cp, &ctx))
    }

    /// Grounds an already-compiled program.
    pub fn build_compiled(cp: &CompiledProgram, ctx: &EvalContext) -> Self {
        let n = ctx.universe_size;
        let mut offsets = Vec::with_capacity(cp.idb_arities.len());
        let mut total = 0usize;
        for &k in &cp.idb_arities {
            offsets.push(total);
            total += n.checked_pow(k as u32).expect("tuple space overflow");
        }
        let mut g = GroundProgram {
            universe_size: n,
            idb_arities: cp.idb_arities.clone(),
            offsets,
            total_tuples: total,
            bodies: vec![Vec::new(); total],
        };

        for rule in &cp.rules {
            // Split the body: extensional part drives enumeration,
            // intensional part is collected symbolically.
            let ext: Vec<RLit> = rule
                .body
                .iter()
                .filter(|l| match l {
                    RLit::Pos { pred, .. } | RLit::Neg { pred, .. } => {
                        matches!(pred, PredRef::Edb(_))
                    }
                    RLit::Eq(_, _) | RLit::Neq(_, _) => true,
                })
                .cloned()
                .collect();
            let idb_lits: Vec<(&RLit, bool)> = rule
                .body
                .iter()
                .filter_map(|l| match l {
                    RLit::Pos {
                        pred: PredRef::Idb(_),
                        ..
                    } => Some((l, true)),
                    RLit::Neg {
                        pred: PredRef::Idb(_),
                        ..
                    } => Some((l, false)),
                    _ => None,
                })
                .collect();

            // Identity head: the emitted tuples are the full bindings. The
            // planner Domain-grounds every variable the extensional part
            // does not bind.
            let identity: Vec<CTerm> = (0..rule.num_vars).map(CTerm::Var).collect();
            let gplan = plan_rule(
                identity,
                &ext,
                rule.num_vars,
                None,
                &CardSnapshot::unknown(),
            );
            let bindings = enumerate_bindings(&gplan, ctx);

            let mut seen: HashSet<(usize, GroundBody)> = HashSet::new();
            for binding in bindings {
                let value = |t: &CTerm| match t {
                    CTerm::Var(v) => binding[*v],
                    CTerm::Const(c) => *c,
                };
                let head_tuple: Tuple = rule
                    .head_terms
                    .iter()
                    .map(&value)
                    .collect::<Vec<_>>()
                    .into();
                let head_id = g.tuple_id(rule.head_pred, &head_tuple);

                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for (lit, positive) in &idb_lits {
                    let (pred, terms) = match lit {
                        RLit::Pos { pred, terms } | RLit::Neg { pred, terms } => (pred, terms),
                        _ => unreachable!("filtered to atoms"),
                    };
                    let PredRef::Idb(idb) = pred else {
                        unreachable!("filtered to IDB")
                    };
                    let t: Tuple = terms.iter().map(&value).collect::<Vec<_>>().into();
                    let id = g.tuple_id(*idb, &t);
                    if *positive {
                        pos.push(id);
                    } else {
                        neg.push(id);
                    }
                }
                pos.sort_unstable();
                pos.dedup();
                neg.sort_unstable();
                neg.dedup();
                // A body demanding t ∈ S and t ∉ S is unsatisfiable: drop.
                if pos.iter().any(|p| neg.binary_search(p).is_ok()) {
                    continue;
                }
                let body = GroundBody { pos, neg };
                if seen.insert((head_id, body.clone())) {
                    g.bodies[head_id].push(body);
                }
            }
        }
        g
    }

    /// Dense id of `(idb, tuple)`: offset plus the tuple's mixed-radix rank.
    pub fn tuple_id(&self, idb: usize, t: &Tuple) -> usize {
        let n = self.universe_size;
        let mut rank = 0usize;
        for c in t.items() {
            rank = rank * n + c.index();
        }
        self.offsets[idb] + rank
    }

    /// Inverse of [`tuple_id`](Self::tuple_id).
    pub fn id_to_tuple(&self, id: usize) -> (usize, Tuple) {
        let idb = match self.offsets.binary_search(&id) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let mut rank = id - self.offsets[idb];
        let k = self.idb_arities[idb];
        let n = self.universe_size;
        let mut digits = vec![0u32; k];
        for d in (0..k).rev() {
            digits[d] = (rank % n) as u32;
            rank /= n;
        }
        (idb, Tuple::from_ids(&digits))
    }

    /// Converts an interpretation to its characteristic bit vector over the
    /// tuple-id space.
    pub fn interp_to_bits(&self, s: &Interp) -> Vec<bool> {
        let mut bits = vec![false; self.total_tuples];
        for (idb, rel) in s.relations().iter().enumerate() {
            for t in rel.iter() {
                bits[self.tuple_id(idb, t)] = true;
            }
        }
        bits
    }

    /// Converts a bit vector over the tuple-id space to an interpretation.
    pub fn bits_to_interp(&self, bits: &[bool]) -> Interp {
        let mut s = Interp::empty(&self.idb_arities);
        for (id, &b) in bits.iter().enumerate() {
            if b {
                let (idb, t) = self.id_to_tuple(id);
                s.insert(idb, t);
            }
        }
        s
    }

    /// Evaluates `t ∈ Θ(S)` propositionally from the grounding, given `S`
    /// as a bit vector. Used to cross-check the grounding against the
    /// relational operator.
    pub fn derivable(&self, id: usize, bits: &[bool]) -> bool {
        self.bodies[id]
            .iter()
            .any(|b| b.pos.iter().all(|&p| bits[p]) && b.neg.iter().all(|&q| !bits[q]))
    }

    /// Total number of ground bodies (a size measure for E10's tables).
    pub fn num_bodies(&self) -> usize {
        self.bodies.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_eval::apply;
    use inflog_syntax::parse_program;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const PI1: &str = "T(x) :- E(y, x), !T(y).";

    fn build(src: &str, db: &Database) -> (GroundProgram, CompiledProgram, EvalContext) {
        let p = parse_program(src).unwrap();
        let cp = CompiledProgram::compile(&p, db).unwrap();
        let ctx = EvalContext::new(&cp, db).unwrap();
        let g = GroundProgram::build_compiled(&cp, &ctx);
        (g, cp, ctx)
    }

    #[test]
    fn tuple_id_roundtrip() {
        let db = DiGraph::path(3).to_database("E");
        let (g, _, _) = build("A(x) :- E(x, y). B(x, y) :- E(x, y).", &db);
        assert_eq!(g.total_tuples, 3 + 9);
        for id in 0..g.total_tuples {
            let (idb, t) = g.id_to_tuple(id);
            assert_eq!(g.tuple_id(idb, &t), id);
        }
    }

    #[test]
    fn pi1_grounding_on_path() {
        // On L_3 (v0->v1->v2): T(v1) derivable via body {¬T(v0)},
        // T(v2) via {¬T(v1)}, T(v0) has no bodies.
        let db = DiGraph::path(3).to_database("E");
        let (g, _, _) = build(PI1, &db);
        assert_eq!(g.total_tuples, 3);
        assert!(g.bodies[0].is_empty());
        assert_eq!(
            g.bodies[1],
            vec![GroundBody {
                pos: vec![],
                neg: vec![0]
            }]
        );
        assert_eq!(
            g.bodies[2],
            vec![GroundBody {
                pos: vec![],
                neg: vec![1]
            }]
        );
    }

    #[test]
    fn derivable_matches_theta_exhaustively() {
        // Cross-check the propositional view against the relational Θ on
        // all 2^|space| interpretations for small instances.
        let cases = [
            (PI1, DiGraph::cycle(3).to_database("E")),
            (PI1, DiGraph::path(3).to_database("E")),
            (
                "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).",
                DiGraph::path(2).to_database("E"),
            ),
            (
                "A(x) :- E(x, y), !B(y). B(x) :- E(y, x), !A(x).",
                DiGraph::cycle(2).to_database("E"),
            ),
        ];
        for (src, db) in cases {
            let (g, cp, ctx) = build(src, &db);
            assert!(g.total_tuples <= 8, "keep the exhaustive check small");
            for mask in 0u32..(1 << g.total_tuples) {
                let bits: Vec<bool> = (0..g.total_tuples).map(|i| mask >> i & 1 == 1).collect();
                let s = g.bits_to_interp(&bits);
                let theta = apply(&cp, &ctx, &s);
                let theta_bits = g.interp_to_bits(&theta);
                for (id, &theta_bit) in theta_bits.iter().enumerate() {
                    assert_eq!(
                        g.derivable(id, &bits),
                        theta_bit,
                        "src={src} mask={mask:b} id={id}"
                    );
                }
            }
        }
    }

    #[test]
    fn toggle_rule_grounding() {
        // T(z) <- !Q(u), !T(w) over |A| = 2: every T tuple has bodies; the
        // bodies pair each ¬Q(u) with each ¬T(w).
        let mut db = Database::new();
        db.universe_mut().intern("a");
        db.universe_mut().intern("b");
        let (g, cp, _) = build("T(z) :- !Q(u), !T(w). Q(x) :- Q(x).", &db);
        let t0 = g.tuple_id(cp.idb_id("T").unwrap(), &Tuple::from_ids(&[0]));
        assert_eq!(g.bodies[t0].len(), 4, "2 choices of u × 2 choices of w");
    }

    #[test]
    fn contradictory_bodies_dropped() {
        // P(x) <- Q(x), !Q(x) can never fire.
        let mut db = Database::new();
        db.universe_mut().intern("a");
        let (g, _, _) = build("P(x) :- Q(x), !Q(x). Q(x) :- Q(x).", &db);
        let pid = 0; // P sorts before Q
        assert!(g.bodies[pid].is_empty());
    }

    #[test]
    fn head_constants_restrict_heads() {
        let mut db = Database::new();
        db.universe_mut().intern("0");
        db.universe_mut().intern("1");
        let (g, cp, _) = build("G(z, 1).", &db);
        let gid = cp.idb_id("G").unwrap();
        // Exactly (0,1) and (1,1) have (empty) bodies.
        let derivable: Vec<usize> = (0..g.total_tuples)
            .filter(|&id| !g.bodies[id].is_empty())
            .collect();
        assert_eq!(
            derivable,
            vec![
                g.tuple_id(gid, &Tuple::from_ids(&[0, 1])),
                g.tuple_id(gid, &Tuple::from_ids(&[1, 1]))
            ]
        );
        // And their bodies are the always-true empty body.
        assert_eq!(
            g.bodies[derivable[0]],
            vec![GroundBody {
                pos: vec![],
                neg: vec![]
            }]
        );
    }

    #[test]
    fn interp_bits_roundtrip_random() {
        let db = DiGraph::cycle(3).to_database("E");
        let (g, _, _) = build("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let bits: Vec<bool> = (0..g.total_tuples).map(|_| rng.gen_bool(0.4)).collect();
            let s = g.bits_to_interp(&bits);
            assert_eq!(g.interp_to_bits(&s), bits);
        }
    }

    #[test]
    fn body_count_grows_with_universe() {
        // E10's observable: grounding size grows polynomially in |A| for a
        // fixed program.
        let p = PI1;
        let g3 = build(p, &DiGraph::cycle(3).to_database("E")).0;
        let g6 = build(p, &DiGraph::cycle(6).to_database("E")).0;
        assert!(g6.num_bodies() > g3.num_bodies());
        assert_eq!(g3.num_bodies(), 3); // one body per edge
        assert_eq!(g6.num_bodies(), 6);
    }
}
