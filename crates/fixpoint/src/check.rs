//! Fixpoint checking: is `Θ(S) = S`?
//!
//! This is the polynomial-time "verify" half of the paper's NP upper bound
//! for fixpoint existence.

use crate::Result;
use inflog_core::Database;
use inflog_eval::{apply, CompiledProgram, EvalContext, Interp};
use inflog_syntax::Program;

/// Checks whether `s` is a fixpoint of `(program, db)`.
///
/// # Errors
/// Compilation errors from resolving the program against the database.
pub fn is_fixpoint(program: &Program, db: &Database, s: &Interp) -> Result<bool> {
    let cp = CompiledProgram::compile(program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    Ok(is_fixpoint_compiled(&cp, &ctx, s))
}

/// Checks whether `s` is a fixpoint, over a compiled program.
pub fn is_fixpoint_compiled(cp: &CompiledProgram, ctx: &EvalContext, s: &Interp) -> bool {
    apply(cp, ctx, s) == *s
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_core::Tuple;
    use inflog_syntax::parse_program;

    const PI1: &str = "T(x) :- E(y, x), !T(y).";

    fn interp_with(cp: &CompiledProgram, pred: &str, ids: &[&[u32]]) -> Interp {
        let mut s = cp.empty_interp();
        let idx = cp.idb_id(pred).unwrap();
        for t in ids {
            s.insert(idx, Tuple::from_ids(t));
        }
        s
    }

    #[test]
    fn path_unique_fixpoint() {
        // L_4 = v0 -> v1 -> v2 -> v3: fixpoint is {v1, v3} ("{2,4}" 1-based).
        let db = DiGraph::path(4).to_database("E");
        let p = parse_program(PI1).unwrap();
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let fix = interp_with(&cp, "T", &[&[1], &[3]]);
        assert!(is_fixpoint(&p, &db, &fix).unwrap());
        let not_fix = interp_with(&cp, "T", &[&[0], &[2]]);
        assert!(!is_fixpoint(&p, &db, &not_fix).unwrap());
    }

    #[test]
    fn even_cycle_two_fixpoints() {
        // C_4: exactly the two alternating sets are fixpoints.
        let db = DiGraph::cycle(4).to_database("E");
        let p = parse_program(PI1).unwrap();
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        assert!(is_fixpoint(&p, &db, &interp_with(&cp, "T", &[&[0], &[2]])).unwrap());
        assert!(is_fixpoint(&p, &db, &interp_with(&cp, "T", &[&[1], &[3]])).unwrap());
        assert!(!is_fixpoint(&p, &db, &interp_with(&cp, "T", &[&[0], &[1]])).unwrap());
        assert!(!is_fixpoint(&p, &db, &cp.empty_interp()).unwrap());
    }

    #[test]
    fn odd_cycle_candidates_all_fail() {
        // C_3: the paper proves no fixpoint exists; spot-check all 8 subsets.
        let db = DiGraph::cycle(3).to_database("E");
        let p = parse_program(PI1).unwrap();
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        for bits in 0u32..8 {
            let mut s = cp.empty_interp();
            for v in 0..3u32 {
                if bits >> v & 1 == 1 {
                    s.insert(0, Tuple::from_ids(&[v]));
                }
            }
            assert!(!is_fixpoint(&p, &db, &s).unwrap(), "bits = {bits:03b}");
        }
    }

    #[test]
    fn positive_program_least_fixpoint_is_fixpoint() {
        let db = DiGraph::path(4).to_database("E");
        let p = parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).").unwrap();
        let (lfp, _) = inflog_eval::least_fixpoint_naive(&p, &db).unwrap();
        assert!(is_fixpoint(&p, &db, &lfp).unwrap());
    }
}
