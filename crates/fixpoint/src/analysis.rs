//! The [`FixpointAnalyzer`]: existence, enumeration, uniqueness and least
//! fixpoints over one shared grounding + completion encoding.
//!
//! This is the experiment-facing API for the paper's §3:
//!
//! * **Existence** (Theorem 1 direction): one CDCL solve on the completion —
//!   the NP "guess and verify" made concrete;
//! * **Enumeration / counting / uniqueness** (Theorem 2): blocking-clause
//!   enumeration projected onto the tuple variables — the US-class
//!   machinery;
//! * **Least fixpoint** (Theorem 3): the paper observes a least fixpoint
//!   exists iff the coordinatewise intersection of all fixpoints is itself a
//!   fixpoint. [`least_fixpoint_fonp`](FixpointAnalyzer::least_fixpoint_fonp)
//!   computes the intersection with one NP-oracle query per tuple
//!   (`solve_with_assumptions([v_t = false])`: UNSAT ⟺ `t` is in every
//!   fixpoint) and then performs a single polynomial Θ check — precisely the
//!   "first-order formula with NP-oracle predicates" shape of the FONP upper
//!   bound. [`least_fixpoint_by_enumeration`](FixpointAnalyzer::least_fixpoint_by_enumeration)
//!   is the independent cross-check.

use crate::check::is_fixpoint_compiled;
use crate::encode::CompletionEncoding;
use crate::ground::GroundProgram;
use crate::Result;
use inflog_core::Database;
use inflog_eval::{CompiledProgram, EvalContext, Interp};
use inflog_sat::{SolveResult, Solver};
use inflog_syntax::Program;

/// Outcome of a least-fixpoint query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeastFixpointResult {
    /// `(π, D)` has no fixpoint at all.
    NoFixpoint,
    /// Fixpoints exist but no least one (e.g. the paper's G_n family).
    NoLeast,
    /// The least fixpoint.
    Least(Interp),
}

/// Statistics from the FONP least-fixpoint algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FonpStats {
    /// NP-oracle (SAT) calls made — one per tuple plus one existence check.
    pub oracle_calls: u64,
    /// Size of the intersection-of-all-fixpoints ("core").
    pub core_size: usize,
}

/// Fixpoint analysis over one program/database pair.
#[derive(Debug, Clone)]
pub struct FixpointAnalyzer {
    cp: CompiledProgram,
    ctx: EvalContext,
    /// The grounding (exposed for size measurements in E10).
    pub ground: GroundProgram,
    /// The completion encoding (exposed for SAT-size measurements).
    pub encoding: CompletionEncoding,
}

impl FixpointAnalyzer {
    /// Compiles, grounds and encodes `(program, db)`.
    ///
    /// # Errors
    /// Compilation errors.
    pub fn new(program: &Program, db: &Database) -> Result<Self> {
        let cp = CompiledProgram::compile(program, db)?;
        let ctx = EvalContext::new(&cp, db)?;
        let ground = GroundProgram::build_compiled(&cp, &ctx);
        let encoding = CompletionEncoding::build(&ground);
        Ok(FixpointAnalyzer {
            cp,
            ctx,
            ground,
            encoding,
        })
    }

    /// The compiled program (for id lookups and display).
    pub fn compiled(&self) -> &CompiledProgram {
        &self.cp
    }

    /// Checks `Θ(S) = S` relationally.
    pub fn is_fixpoint(&self, s: &Interp) -> bool {
        is_fixpoint_compiled(&self.cp, &self.ctx, s)
    }

    /// Finds some fixpoint, if one exists (Theorem 1's decision problem,
    /// answered by CDCL search). The returned interpretation is re-verified
    /// against the relational Θ before being returned.
    pub fn find_fixpoint(&self) -> Option<Interp> {
        let mut solver = Solver::from_cnf(&self.encoding.cnf);
        match solver.solve() {
            SolveResult::Unsat => None,
            SolveResult::Sat(model) => {
                let s = self.encoding.interp_from_model(&self.ground, &model);
                debug_assert!(self.is_fixpoint(&s), "encoding produced a non-fixpoint");
                Some(s)
            }
        }
    }

    /// Whether any fixpoint exists.
    pub fn fixpoint_exists(&self) -> bool {
        self.find_fixpoint().is_some()
    }

    /// Enumerates fixpoints (up to `limit`), via blocking clauses on the
    /// tuple variables.
    pub fn enumerate_fixpoints(&self, limit: u64) -> Vec<Interp> {
        let mut solver = Solver::from_cnf(&self.encoding.cnf);
        let mut out = Vec::new();
        while (out.len() as u64) < limit {
            match solver.solve() {
                SolveResult::Unsat => break,
                SolveResult::Sat(model) => {
                    let s = self.encoding.interp_from_model(&self.ground, &model);
                    let blocking: Vec<inflog_sat::Lit> = self
                        .encoding
                        .tuple_vars
                        .iter()
                        .map(|&v| if model[v.index()] { v.neg() } else { v.pos() })
                        .collect();
                    debug_assert!(self.is_fixpoint(&s));
                    out.push(s);
                    if blocking.is_empty() || !solver.add_clause(&blocking) {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Counts fixpoints up to `limit`; `(count, complete?)`.
    pub fn count_fixpoints(&self, limit: u64) -> (u64, bool) {
        let fps = self.enumerate_fixpoints(limit);
        let complete = (fps.len() as u64) < limit;
        (fps.len() as u64, complete)
    }

    /// Whether exactly one fixpoint exists — the π-UNIQUE-FIXPOINT problem
    /// of Theorem 2.
    pub fn has_unique_fixpoint(&self) -> bool {
        let (count, complete) = self.count_fixpoints(2);
        count == 1 && complete
    }

    /// The FONP least-fixpoint algorithm of Theorem 3.
    ///
    /// 1. One oracle call decides whether any fixpoint exists.
    /// 2. For each tuple `t`, the oracle query "is the completion plus
    ///    `¬v_t` satisfiable?" decides whether some fixpoint *excludes* `t`;
    ///    UNSAT means `t` lies in the intersection of all fixpoints.
    /// 3. A least fixpoint exists iff that intersection is itself a fixpoint
    ///    (single polynomial Θ check), in which case it *is* the least one.
    pub fn least_fixpoint_fonp(&self) -> (LeastFixpointResult, FonpStats) {
        let mut stats = FonpStats::default();
        let mut solver = Solver::from_cnf(&self.encoding.cnf);

        stats.oracle_calls += 1;
        if !solver.solve().is_sat() {
            return (LeastFixpointResult::NoFixpoint, stats);
        }

        let mut core_bits = vec![false; self.ground.total_tuples];
        // The loop index *is* the tuple id being queried, so a range loop
        // states the algorithm more directly than iterator adapters.
        #[allow(clippy::needless_range_loop)]
        for id in 0..self.ground.total_tuples {
            stats.oracle_calls += 1;
            let excluded_somewhere = solver
                .solve_with_assumptions(&[self.encoding.tuple_assumption(id, false)])
                .is_sat();
            if !excluded_somewhere {
                core_bits[id] = true;
            }
        }
        let core = self.ground.bits_to_interp(&core_bits);
        stats.core_size = core.total_tuples();

        if self.is_fixpoint(&core) {
            (LeastFixpointResult::Least(core), stats)
        } else {
            (LeastFixpointResult::NoLeast, stats)
        }
    }

    /// Least fixpoint by full enumeration + intersection (cross-check for
    /// the FONP path). Returns `None` when enumeration exceeds `limit`.
    pub fn least_fixpoint_by_enumeration(&self, limit: u64) -> Option<LeastFixpointResult> {
        let fps = self.enumerate_fixpoints(limit);
        if fps.len() as u64 >= limit {
            return None;
        }
        if fps.is_empty() {
            return Some(LeastFixpointResult::NoFixpoint);
        }
        let mut inter = fps[0].clone();
        for f in &fps[1..] {
            inter = inter.intersection(f);
        }
        if fps.contains(&inter) {
            Some(LeastFixpointResult::Least(inter))
        } else {
            Some(LeastFixpointResult::NoLeast)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::enumerate_fixpoints_brute;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::parse_program;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const PI1: &str = "T(x) :- E(y, x), !T(y).";

    fn analyzer(src: &str, db: &Database) -> FixpointAnalyzer {
        FixpointAnalyzer::new(&parse_program(src).unwrap(), db).unwrap()
    }

    #[test]
    fn existence_on_paper_families() {
        let p = PI1;
        assert!(analyzer(p, &DiGraph::path(5).to_database("E")).fixpoint_exists());
        assert!(!analyzer(p, &DiGraph::cycle(5).to_database("E")).fixpoint_exists());
        assert!(analyzer(p, &DiGraph::cycle(6).to_database("E")).fixpoint_exists());
        assert!(analyzer(p, &DiGraph::disjoint_cycles(3, 2).to_database("E")).fixpoint_exists());
    }

    #[test]
    fn counting_matches_brute_force() {
        let cases = [
            (PI1, DiGraph::path(4)),
            (PI1, DiGraph::cycle(4)),
            (PI1, DiGraph::cycle(5)),
            (PI1, DiGraph::disjoint_cycles(2, 2)),
            (
                "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).",
                DiGraph::path(3),
            ),
            (
                "A(x) :- E(x, y), !B(y). B(x) :- E(y, x), !A(x).",
                DiGraph::cycle(3),
            ),
        ];
        for (src, g) in cases {
            let db = g.to_database("E");
            let program = parse_program(src).unwrap();
            let brute = enumerate_fixpoints_brute(&program, &db, 20).unwrap();
            let a = analyzer(src, &db);
            let (count, complete) = a.count_fixpoints(1 << 16);
            assert!(complete);
            assert_eq!(count as usize, brute.len(), "src={src} g={g}");
        }
    }

    #[test]
    fn gn_has_exponentially_many_fixpoints() {
        // The paper's G_n: 2^n fixpoints.
        for copies in 1..=4usize {
            let db = DiGraph::disjoint_cycles(copies, 2).to_database("E");
            let a = analyzer(PI1, &db);
            let (count, complete) = a.count_fixpoints(1 << 10);
            assert!(complete);
            assert_eq!(count, 1 << copies, "G_{copies}");
        }
    }

    #[test]
    fn uniqueness_detection() {
        assert!(analyzer(PI1, &DiGraph::path(6).to_database("E")).has_unique_fixpoint());
        assert!(!analyzer(PI1, &DiGraph::cycle(4).to_database("E")).has_unique_fixpoint());
        assert!(!analyzer(PI1, &DiGraph::cycle(3).to_database("E")).has_unique_fixpoint());
    }

    #[test]
    fn least_fixpoint_on_paths() {
        // Unique fixpoint ⇒ least fixpoint.
        let a = analyzer(PI1, &DiGraph::path(5).to_database("E"));
        let (r, stats) = a.least_fixpoint_fonp();
        match r {
            LeastFixpointResult::Least(s) => assert_eq!(s.total_tuples(), 2),
            other => panic!("expected least fixpoint, got {other:?}"),
        }
        // Oracle calls: 1 existence + one per tuple (5 vertices).
        assert_eq!(stats.oracle_calls, 6);
    }

    #[test]
    fn no_least_on_even_cycles_and_gn() {
        for db in [
            DiGraph::cycle(4).to_database("E"),
            DiGraph::disjoint_cycles(2, 2).to_database("E"),
        ] {
            let a = analyzer(PI1, &db);
            let (r, stats) = a.least_fixpoint_fonp();
            assert_eq!(r, LeastFixpointResult::NoLeast);
            assert_eq!(stats.core_size, 0, "alternating fixpoints intersect to ∅");
        }
    }

    #[test]
    fn no_fixpoint_on_odd_cycles() {
        let a = analyzer(PI1, &DiGraph::cycle(3).to_database("E"));
        let (r, stats) = a.least_fixpoint_fonp();
        assert_eq!(r, LeastFixpointResult::NoFixpoint);
        assert_eq!(stats.oracle_calls, 1, "existence check only");
    }

    #[test]
    fn fonp_agrees_with_enumeration() {
        let cases = [
            (PI1, DiGraph::path(4)),
            (PI1, DiGraph::cycle(3)),
            (PI1, DiGraph::cycle(4)),
            (PI1, DiGraph::disjoint_cycles(2, 2)),
            (
                "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).",
                DiGraph::path(3),
            ),
        ];
        for (src, g) in cases {
            let db = g.to_database("E");
            let a = analyzer(src, &db);
            let (fonp, _) = a.least_fixpoint_fonp();
            let enumerated = a.least_fixpoint_by_enumeration(1 << 16).unwrap();
            assert_eq!(fonp, enumerated, "src={src} g={g}");
        }
    }

    #[test]
    fn positive_programs_least_is_standard_semantics() {
        let src = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..5 {
            let g = DiGraph::random_gnp(4, 0.4, &mut rng);
            let db = g.to_database("E");
            let a = analyzer(src, &db);
            let (r, _) = a.least_fixpoint_fonp();
            let (lfp, _) =
                inflog_eval::least_fixpoint_naive(&parse_program(src).unwrap(), &db).unwrap();
            assert_eq!(r, LeastFixpointResult::Least(lfp), "g={g}");
        }
    }

    #[test]
    fn enumerated_fixpoints_verify_and_are_distinct() {
        let a = analyzer(PI1, &DiGraph::disjoint_cycles(3, 2).to_database("E"));
        let fps = a.enumerate_fixpoints(1 << 10);
        assert_eq!(fps.len(), 8);
        for (i, f) in fps.iter().enumerate() {
            assert!(a.is_fixpoint(f), "fixpoint {i}");
            for g in &fps[..i] {
                assert_ne!(f, g, "duplicates");
            }
        }
    }
}
