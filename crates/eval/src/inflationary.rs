//! Inflationary DATALOG — the paper's §4 proposal.
//!
//! For any DATALOG¬ program π with operator Θ, define
//!
//! ```text
//! Θ¹ = Θ(∅),   Θ^{n+1} = Θ^n ∪ Θ(Θ^n),   Θ^∞ = ⋃_n Θ^n.
//! ```
//!
//! The sequence is increasing, so it stabilizes after at most `Σ_i |A|^{k_i}`
//! rounds and `Θ^∞` is computable in polynomial time in the database size —
//! the paper's headline argument for inflationary semantics. `Θ^∞` is the
//! *inductive fixpoint* of the inflationary operator `Θ̃(S) = S ∪ Θ(S)`
//! (Gurevich–Shelah); on negation-free programs it coincides with the least
//! fixpoint, and on general programs it need not be a fixpoint of Θ at all.
//!
//! Two implementations:
//! * [`inflationary_naive`] — literal transcription of the definition;
//! * [`inflationary`] — semi-naive delta evaluation via the shared
//!   [`DeltaDriver`]. Sound because a ground body instance false at
//!   `Θ^{n-1}` and true at `Θ^n` must have gained a positive IDB tuple:
//!   under a growing interpretation, negated literals only flip true→false.
//!   Rules without positive IDB atoms therefore fire only in round one. The
//!   driver's `debug_assertions` cross-check recomputes each round with the
//!   naive step.

use crate::driver::DeltaDriver;
use crate::govern::Governor;
use crate::interp::Interp;
use crate::operator::{apply_governed, EvalContext};
use crate::options::EvalOptions;
use crate::resolve::CompiledProgram;
use crate::trace::EvalTrace;
use crate::Result;
use inflog_core::Database;
use inflog_syntax::Program;

/// Computes `Θ^∞` by the definition: `S ← S ∪ Θ(S)` until stable.
///
/// # Errors
/// Compilation errors only — inflationary semantics is total.
pub fn inflationary_naive(program: &Program, db: &Database) -> Result<(Interp, EvalTrace)> {
    let cp = CompiledProgram::compile(program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    inflationary_naive_compiled_with(&cp, &ctx, &EvalOptions::default())
}

/// Naive inflationary iteration over a compiled program. This convenience
/// wrapper runs ungoverned (no budget, token or failpoints) and is
/// therefore infallible.
pub fn inflationary_naive_compiled(cp: &CompiledProgram, ctx: &EvalContext) -> (Interp, EvalTrace) {
    inflationary_naive_compiled_with(cp, ctx, &EvalOptions::sequential())
        .expect("ungoverned inflationary evaluation cannot fail")
}

/// [`inflationary_naive_compiled`] with explicit evaluation options; the
/// governed form checks budget, cancellation and failpoints at every round
/// boundary and every few thousand emitted tuples.
///
/// # Errors
/// [`EvalError::Cancelled`](crate::EvalError::Cancelled),
/// [`EvalError::BudgetExceeded`](crate::EvalError::BudgetExceeded), or a
/// fault injected by an armed failpoint.
pub fn inflationary_naive_compiled_with(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    opts: &EvalOptions,
) -> Result<(Interp, EvalTrace)> {
    let governor = Governor::new(opts);
    let gov = governor.as_active();
    let mut trace = EvalTrace::default();
    let mut s = cp.empty_interp();
    loop {
        if let Some(g) = gov {
            g.check_round()?;
        }
        let theta = apply_governed(cp, ctx, &s, gov)?;
        // Θ̃(S) = S ∪ Θ(S), computed in place: relation identities stay
        // stable, so the context's persistent indexes extend incrementally.
        let added = s.union_with(&theta);
        if added == 0 {
            break;
        }
        trace.record_round(added);
    }
    trace.final_tuples = s.total_tuples();
    Ok((s, trace))
}

/// Computes `Θ^∞` semi-naively (the default engine), with
/// [`EvalOptions::default`] (sequential unless the environment overrides).
///
/// # Errors
/// Compilation errors only — inflationary semantics is total.
pub fn inflationary(program: &Program, db: &Database) -> Result<(Interp, EvalTrace)> {
    inflationary_with(program, db, &EvalOptions::default())
}

/// [`inflationary`] with explicit evaluation options — e.g. a worker-thread
/// count for the parallel round executor. The result is bit-identical for
/// every thread count.
///
/// # Errors
/// Compilation errors only — inflationary semantics is total.
pub fn inflationary_with(
    program: &Program,
    db: &Database,
    opts: &EvalOptions,
) -> Result<(Interp, EvalTrace)> {
    let cp = CompiledProgram::compile(program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    inflationary_compiled_with(&cp, &ctx, opts)
}

/// Semi-naive inflationary iteration over a compiled program.
///
/// Instantiates the shared [`DeltaDriver`]: the driver's full first round
/// is the only round in which rules without positive IDB atoms can add
/// anything — negations against the *current* state can re-enable nothing
/// (they only decay) — and its delta rounds are exactly §4's increasing
/// iteration. This convenience wrapper strips any environment-supplied
/// governance (budget, token, failpoints) and is therefore infallible.
pub fn inflationary_compiled(cp: &CompiledProgram, ctx: &EvalContext) -> (Interp, EvalTrace) {
    inflationary_compiled_with(cp, ctx, &EvalOptions::default().without_governance())
        .expect("ungoverned inflationary evaluation cannot fail")
}

/// [`inflationary_compiled`] with explicit evaluation options; the governed
/// form checks budget, cancellation and failpoints at every round boundary
/// and every few thousand emitted tuples.
///
/// # Errors
/// [`EvalError::Cancelled`](crate::EvalError::Cancelled),
/// [`EvalError::BudgetExceeded`](crate::EvalError::BudgetExceeded), a fault
/// injected by an armed failpoint, or a contained worker panic.
pub fn inflationary_compiled_with(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    opts: &EvalOptions,
) -> Result<(Interp, EvalTrace)> {
    let governor = Governor::new(opts);
    let mut trace = EvalTrace::default();
    let mut s = cp.empty_interp();
    DeltaDriver::with_options(cp, opts.clone()).extend(
        cp,
        ctx,
        &mut s,
        None,
        None,
        Some(&mut trace),
        &governor,
    )?;
    trace.final_tuples = s.total_tuples();
    Ok((s, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::least_fixpoint_naive;
    use crate::operator::apply;
    use inflog_core::graphs::DiGraph;
    use inflog_core::Tuple;
    use inflog_syntax::parse_program;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const PI1: &str = "T(x) :- E(y, x), !T(y).";
    const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";

    #[test]
    fn toggle_program_stabilizes_at_full() {
        // Paper §4: for T(x) <- !T(y), Θ^∞ = Θ¹ = A.
        let mut db = inflog_core::Database::new();
        db.universe_mut().intern("a");
        db.universe_mut().intern("b");
        db.universe_mut().intern("c");
        let p = parse_program("T(x) :- !T(y).").unwrap();
        let (inf, trace) = inflationary(&p, &db).unwrap();
        assert_eq!(inf.total_tuples(), 3);
        assert_eq!(trace.rounds, 1);
    }

    #[test]
    fn pi1_inflationary_is_nodes_with_incoming_edge() {
        // Paper §4: for pi_1, Θ^∞ = Θ¹ = {x : ∃y E(y,x)}.
        for g in [DiGraph::path(5), DiGraph::cycle(4), DiGraph::star(5)] {
            let db = g.to_database("E");
            let p = parse_program(PI1).unwrap();
            let (inf, trace) = inflationary(&p, &db).unwrap();
            let expected: usize = (0..g.num_vertices() as u32)
                .filter(|&v| g.predecessors(v).next().is_some())
                .count();
            assert_eq!(inf.total_tuples(), expected);
            assert!(trace.rounds <= 1);
        }
    }

    #[test]
    fn coincides_with_least_fixpoint_on_positive_programs() {
        // §4: "for DATALOG programs the relation Θ^∞ is the least fixpoint".
        let p = parse_program(TC).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..8 {
            let g = DiGraph::random_gnp(7, 0.3, &mut rng);
            let db = g.to_database("E");
            let (lfp, _) = least_fixpoint_naive(&p, &db).unwrap();
            let (inf, _) = inflationary(&p, &db).unwrap();
            assert_eq!(lfp, inf);
        }
    }

    #[test]
    fn naive_and_seminaive_inflationary_agree_with_negation() {
        let progs = [
            PI1,
            "T(z) :- !T(w).",
            "P(x) :- E(x, y), !Q(y). Q(x) :- E(y, x), !P(x).",
            "A(x) :- E(x, y). B(x) :- A(x), !C(x). C(x) :- B(x), !A(x).",
        ];
        let mut rng = StdRng::seed_from_u64(5);
        for src in progs {
            let p = parse_program(src).unwrap();
            for _ in 0..5 {
                let g = DiGraph::random_gnp(5, 0.4, &mut rng);
                let db = g.to_database("E");
                let (a, ta) = inflationary_naive(&p, &db).unwrap();
                let (b, tb) = inflationary(&p, &db).unwrap();
                assert_eq!(a, b, "program: {src}");
                assert_eq!(ta.rounds, tb.rounds, "program: {src}");
                assert_eq!(ta.added_per_round, tb.added_per_round);
            }
        }
    }

    #[test]
    fn iteration_bound_respected() {
        // Θ^∞ stabilizes within Σ_i |A|^{k_i} rounds (§4).
        let p = parse_program(TC).unwrap();
        let db = DiGraph::path(6).to_database("E");
        let (_, trace) = inflationary(&p, &db).unwrap();
        assert!(trace.rounds <= 36, "rounds = {}", trace.rounds);
    }

    #[test]
    fn result_need_not_be_a_fixpoint() {
        // On an odd cycle pi_1 has no fixpoint; Θ^∞ still exists and is not
        // a fixpoint of Θ (§4's point that Θ^∞ may fail to be a fixpoint).
        let db = DiGraph::cycle(3).to_database("E");
        let p = parse_program(PI1).unwrap();
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let ctx = EvalContext::new(&cp, &db).unwrap();
        let (inf, _) = inflationary(&p, &db).unwrap();
        assert_ne!(apply(&cp, &ctx, &inf), inf);
        // Everything has an incoming edge on a cycle: Θ^∞ = A.
        assert_eq!(inf.total_tuples(), 3);
    }

    #[test]
    fn distance_style_program_multiround() {
        // The delta machinery across negation: quadruple derivations join a
        // positive delta with a negative literal. Regression-guard the exact
        // result on L_3 (v0 -> v1 -> v2).
        let src = "
            S1(x, y) :- E(x, y).
            S1(x, y) :- E(x, z), S1(z, y).
            S3(x, y) :- E(x, y), !S1(x, y).
        ";
        let p = parse_program(src).unwrap();
        let db = DiGraph::path(3).to_database("E");
        let (inf, _) = inflationary(&p, &db).unwrap();
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let s3 = cp.idb_id("S3").unwrap();
        // Round 1: S1 gets E; S3 gets E (S1 was empty). Afterwards no new
        // S3 tuples: E ⊆ S1 from round 2 on.
        assert_eq!(
            inf.get(s3).sorted(),
            vec![Tuple::from_ids(&[0, 1]), Tuple::from_ids(&[1, 2])]
        );
    }

    #[test]
    fn empty_program_and_empty_db() {
        let p = parse_program("").unwrap();
        let db = inflog_core::Database::new();
        let (inf, trace) = inflationary(&p, &db).unwrap();
        assert!(inf.is_empty());
        assert_eq!(trace.rounds, 0);
    }
}
