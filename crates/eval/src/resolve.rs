//! Name resolution: from a syntactic [`Program`] and a [`Database`] to a
//! [`CompiledProgram`] of dense predicate ids and execution plans.

use crate::error::EvalError;
use crate::interp::Interp;
use crate::plan::{
    plan_rule, plan_rule_neg_delta, plan_rule_prebound, CTerm, CardSnapshot, Plan, PredRef, RLit,
};
use crate::Result;
use inflog_core::{Database, Relation};
use inflog_syntax::{Atom, Literal, Program, Term};
use std::collections::HashMap;

/// The re-plannable plan set of one rule: everything the round driver
/// executes (the head-prebound check plan is planned once at compile time —
/// its scans are keyed by the pre-bound head, so cardinality ordering has
/// nothing to reorder).
///
/// [`CompiledRule::replan`] rebuilds one of these against a fresh
/// [`CardSnapshot`], which is how scan order tracks live IDB sizes round
/// over round.
#[derive(Debug, Clone)]
pub struct RulePlans {
    /// Plan evaluating the whole body.
    pub full: Plan,
    /// Delta plans, one per positive IDB atom occurrence.
    pub delta: Vec<Plan>,
    /// Neg-delta plans, one per negated IDB atom occurrence.
    pub neg_delta: Vec<Plan>,
    /// EDB delta plans, one per positive EDB atom occurrence: that
    /// occurrence scans an EDB-shaped delta (the inserted facts), seeding
    /// view-maintenance repairs after an EDB insertion.
    pub edb_delta: Vec<Plan>,
    /// EDB neg-delta plans, one per negated EDB atom occurrence: that
    /// occurrence scans an EDB-shaped removed/inserted set with consume
    /// semantics (see `plan_rule_neg_delta`), enumerating instances an EDB
    /// change enables or disables through a negated extensional literal.
    pub edb_neg_delta: Vec<Plan>,
}

/// One compiled rule: the full plan plus one delta plan per positive IDB
/// atom occurrence (for semi-naive evaluation).
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// IDB id of the head predicate.
    pub head_pred: usize,
    /// Resolved head terms.
    pub head_terms: Vec<CTerm>,
    /// Resolved body literals (source order) — program grounding re-plans
    /// these with the IDB part held symbolic.
    pub body: Vec<RLit>,
    /// Number of variable slots in the rule.
    pub num_vars: usize,
    /// Plan evaluating the whole body.
    pub full_plan: Plan,
    /// Delta plans, one per positive IDB atom occurrence in the body.
    pub delta_plans: Vec<Plan>,
    /// Neg-delta plans, one per **negated** IDB atom occurrence: the
    /// occurrence scans a removed set (tuples that just left the frozen
    /// negation context) instead of filtering. The incremental well-founded
    /// engine drives `Γ`'s restart rounds with these.
    pub neg_delta_plans: Vec<Plan>,
    /// EDB delta plans, one per positive **EDB** atom occurrence: the
    /// occurrence scans an EDB-shaped delta interpretation. The materialized
    /// view repair path seeds its insertion top-up with these.
    pub edb_delta_plans: Vec<Plan>,
    /// EDB neg-delta plans, one per negated **EDB** atom occurrence, with
    /// the same consume semantics as `neg_delta_plans`. The repair path
    /// enumerates damage from retractions and new derivations enabled by
    /// insertions through negated extensional literals with these.
    pub edb_neg_delta_plans: Vec<Plan>,
    /// Plan deciding one-step derivability of a given head tuple: the head
    /// variables are pre-bound, so body atoms probe the persistent indexes.
    pub check_plan: Plan,
    /// Whether the body contains at least one positive IDB atom. Rules
    /// without one can fire new derivations only in the first round of an
    /// inflationary/semi-naive iteration (their body truth only decays as
    /// the IDB relations grow).
    pub has_pos_idb: bool,
    /// Index of the source rule in the original program.
    pub src_index: usize,
}

impl CompiledRule {
    /// Rebuilds this rule's full/delta/neg-delta plans against a fresh
    /// cardinality snapshot — scan order follows the live relation sizes,
    /// while the delta-first invariant and the step semantics are untouched.
    pub fn replan(&self, cards: &CardSnapshot) -> RulePlans {
        build_plans(&self.head_terms, &self.body, self.num_vars, cards)
    }

    /// Whether cardinalities can affect this rule's scan order at all: the
    /// planner only ever chooses between *positive* atoms, so a body with
    /// fewer than two of them plans identically under every snapshot — the
    /// round driver skips replanning for programs made of such rules.
    pub fn order_sensitive(&self) -> bool {
        self.body
            .iter()
            .filter(|l| matches!(l, RLit::Pos { .. }))
            .count()
            >= 2
    }
}

/// Plans a rule's full, per-positive-occurrence delta, and
/// per-negative-occurrence neg-delta plans under one cardinality snapshot.
fn build_plans(head: &[CTerm], body: &[RLit], num_vars: usize, cards: &CardSnapshot) -> RulePlans {
    let full = plan_rule(head.to_vec(), body, num_vars, None, cards);
    let delta = body
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            matches!(
                l,
                RLit::Pos {
                    pred: PredRef::Idb(_),
                    ..
                }
            )
        })
        .map(|(i, _)| plan_rule(head.to_vec(), body, num_vars, Some(i), cards))
        .collect();
    let neg_delta = body
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            matches!(
                l,
                RLit::Neg {
                    pred: PredRef::Idb(_),
                    ..
                }
            )
        })
        .map(|(i, _)| plan_rule_neg_delta(head.to_vec(), body, num_vars, i, cards))
        .collect();
    let edb_delta = body
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            matches!(
                l,
                RLit::Pos {
                    pred: PredRef::Edb(_),
                    ..
                }
            )
        })
        .map(|(i, _)| plan_rule(head.to_vec(), body, num_vars, Some(i), cards))
        .collect();
    let edb_neg_delta = body
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            matches!(
                l,
                RLit::Neg {
                    pred: PredRef::Edb(_),
                    ..
                }
            )
        })
        .map(|(i, _)| plan_rule_neg_delta(head.to_vec(), body, num_vars, i, cards))
        .collect();
    RulePlans {
        full,
        delta,
        neg_delta,
        edb_delta,
        edb_neg_delta,
    }
}

/// A program compiled against a database universe: dense IDB/EDB ids,
/// resolved constants, and per-rule plans.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// IDB predicate names, by IDB id (sorted by name — deterministic).
    pub idb_names: Vec<String>,
    /// IDB arities, by IDB id.
    pub idb_arities: Vec<usize>,
    /// EDB predicate names, by EDB id.
    pub edb_names: Vec<String>,
    /// EDB arities, by EDB id.
    pub edb_arities: Vec<usize>,
    /// Compiled rules in source order.
    pub rules: Vec<CompiledRule>,
    idb_index: HashMap<String, usize>,
    edb_index: HashMap<String, usize>,
}

impl CompiledProgram {
    /// Compiles `program` against `db`'s universe and relations.
    ///
    /// # Errors
    /// * [`EvalError::ArityMismatch`] — predicate used with two arities, or
    ///   a program arity conflicting with the database relation's;
    /// * [`EvalError::UnknownConstant`] — a program constant missing from the
    ///   database universe.
    pub fn compile(program: &Program, db: &Database) -> Result<Self> {
        // Classify predicates and fix arities.
        let idb_set = program.idb_predicates();
        let edb_set = program.edb_predicates();
        let arities = check_arities(program)?;

        let idb_names: Vec<String> = idb_set.into_iter().collect();
        let edb_names: Vec<String> = edb_set.into_iter().collect();
        let idb_index: HashMap<String, usize> = idb_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let edb_index: HashMap<String, usize> = edb_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let idb_arities: Vec<usize> = idb_names.iter().map(|n| arities[n]).collect();
        let edb_arities: Vec<usize> = edb_names.iter().map(|n| arities[n]).collect();

        // EDB arities must agree with the database where present.
        for (name, &arity) in edb_names.iter().zip(&edb_arities) {
            if let Some(r) = db.relation(name) {
                if r.arity() != arity {
                    return Err(EvalError::ArityMismatch {
                        predicate: name.clone(),
                        expected: r.arity(),
                        found: arity,
                    });
                }
            }
        }

        // Compile-time cardinality snapshot: EDB sizes are live (the
        // database is fixed for the evaluation), IDB sizes are unknown —
        // assumed large, so compile-time ties prefer scanning EDB relations
        // and otherwise keep source order. The round driver re-snapshots
        // with live IDB sizes every round.
        let compile_cards = CardSnapshot::new(
            edb_names
                .iter()
                .map(|n| db.relation(n).map_or(0, Relation::len))
                .collect(),
            vec![usize::MAX; idb_names.len()],
        );

        // Per-rule compilation.
        let mut rules = Vec::with_capacity(program.rules.len());
        for (src_index, rule) in program.rules.iter().enumerate() {
            // Variable slots in first-occurrence order.
            let var_names = rule.variables();
            let var_slot: HashMap<&str, usize> = var_names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), i))
                .collect();
            let num_vars = var_names.len();

            let cterm = |t: &Term| -> Result<CTerm> {
                match t {
                    Term::Var(v) => Ok(CTerm::Var(var_slot[v.as_str()])),
                    Term::Const(c) => match db.universe().lookup(c) {
                        Some(k) => Ok(CTerm::Const(k)),
                        None => Err(EvalError::UnknownConstant { name: c.clone() }),
                    },
                }
            };
            let catom = |a: &Atom| -> Result<(PredRef, Vec<CTerm>)> {
                let pred = match idb_index.get(&a.predicate) {
                    Some(&i) => PredRef::Idb(i),
                    None => PredRef::Edb(edb_index[&a.predicate]),
                };
                let terms: Result<Vec<CTerm>> = a.terms.iter().map(&cterm).collect();
                Ok((pred, terms?))
            };

            let head_pred = idb_index[&rule.head.predicate];
            let head_terms: Result<Vec<CTerm>> = rule.head.terms.iter().map(&cterm).collect();
            let head_terms = head_terms?;

            let mut body = Vec::with_capacity(rule.body.len());
            for lit in &rule.body {
                body.push(match lit {
                    Literal::Pos(a) => {
                        let (pred, terms) = catom(a)?;
                        RLit::Pos { pred, terms }
                    }
                    Literal::Neg(a) => {
                        let (pred, terms) = catom(a)?;
                        RLit::Neg { pred, terms }
                    }
                    Literal::Eq(s, t) => RLit::Eq(cterm(s)?, cterm(t)?),
                    Literal::Neq(s, t) => RLit::Neq(cterm(s)?, cterm(t)?),
                });
            }

            let plans = build_plans(&head_terms, &body, num_vars, &compile_cards);
            let head_vars: Vec<usize> = head_terms
                .iter()
                .filter_map(|t| match t {
                    CTerm::Var(v) => Some(*v),
                    CTerm::Const(_) => None,
                })
                .collect();
            let check_plan = plan_rule_prebound(
                head_terms.clone(),
                &body,
                num_vars,
                &head_vars,
                &compile_cards,
            );

            rules.push(CompiledRule {
                head_pred,
                head_terms,
                num_vars,
                has_pos_idb: !plans.delta.is_empty(),
                full_plan: plans.full,
                delta_plans: plans.delta,
                neg_delta_plans: plans.neg_delta,
                edb_delta_plans: plans.edb_delta,
                edb_neg_delta_plans: plans.edb_neg_delta,
                check_plan,
                src_index,
                body,
            });
        }

        if dump_ir_enabled() {
            dump_ir(&rules, &idb_names);
        }

        Ok(CompiledProgram {
            idb_names,
            idb_arities,
            edb_names,
            edb_arities,
            rules,
            idb_index,
            edb_index,
        })
    }

    /// Number of IDB predicates.
    pub fn num_idb(&self) -> usize {
        self.idb_names.len()
    }

    /// IDB id of a predicate name.
    pub fn idb_id(&self, name: &str) -> Option<usize> {
        self.idb_index.get(name).copied()
    }

    /// EDB id of a predicate name.
    pub fn edb_id(&self, name: &str) -> Option<usize> {
        self.edb_index.get(name).copied()
    }

    /// The all-empty interpretation (the iteration start Θ⁰ = Θ(∅) begins
    /// from this).
    pub fn empty_interp(&self) -> Interp {
        Interp::empty(&self.idb_arities)
    }

    /// The full interpretation `(A^{k_1}, ..., A^{k_m})`.
    pub fn full_interp(&self, universe_size: usize) -> Interp {
        Interp::full(universe_size, &self.idb_arities)
    }

    /// Materializes the EDB relations from the database (absent relations
    /// are empty at the program's declared arity).
    ///
    /// # Errors
    /// Propagates arity conflicts between program and database.
    pub fn edb_relations(&self, db: &Database) -> Result<Vec<Relation>> {
        self.edb_names
            .iter()
            .zip(&self.edb_arities)
            .map(|(name, &arity)| match db.relation(name) {
                Some(r) if r.arity() == arity => Ok(r.clone()),
                Some(r) => Err(EvalError::ArityMismatch {
                    predicate: name.clone(),
                    expected: r.arity(),
                    found: arity,
                }),
                None => Ok(Relation::new(arity)),
            })
            .collect()
    }

    /// Renders an interpretation with this program's IDB names and the
    /// database universe's constant names.
    pub fn display_interp(&self, interp: &Interp, db: &Database) -> String {
        let mut out = String::new();
        for (i, name) in self.idb_names.iter().enumerate() {
            let rows: Vec<String> = interp
                .get(i)
                .sorted()
                .iter()
                .map(|t| t.display_with(|c| db.universe().display(c)))
                .collect();
            out.push_str(&format!("{name} = {{{}}}\n", rows.join(", ")));
        }
        out
    }
}

/// Whether `INFLOG_DUMP_IR=1` asked for the lowered register-machine
/// programs of every compiled plan on stderr.
fn dump_ir_enabled() -> bool {
    std::env::var("INFLOG_DUMP_IR").is_ok_and(|v| v.trim() == "1")
}

/// Prints every rule's lowered programs — all plan families, labelled — in
/// the stable [`Display`](std::fmt::Display) format of
/// [`RuleProgram`](crate::exec::RuleProgram).
fn dump_ir(rules: &[CompiledRule], idb_names: &[String]) {
    for (ri, rule) in rules.iter().enumerate() {
        let head = &idb_names[rule.head_pred];
        let emit = |label: &str, plan: &Plan| {
            eprintln!("-- rule {ri} ({head}) {label}\n{}", plan.program);
        };
        emit("full", &rule.full_plan);
        for (i, p) in rule.delta_plans.iter().enumerate() {
            emit(&format!("delta[{i}]"), p);
        }
        for (i, p) in rule.neg_delta_plans.iter().enumerate() {
            emit(&format!("neg_delta[{i}]"), p);
        }
        for (i, p) in rule.edb_delta_plans.iter().enumerate() {
            emit(&format!("edb_delta[{i}]"), p);
        }
        for (i, p) in rule.edb_neg_delta_plans.iter().enumerate() {
            emit(&format!("edb_neg_delta[{i}]"), p);
        }
        emit("check", &rule.check_plan);
    }
}

/// Checks that every predicate is used with one arity program-wide.
fn check_arities(program: &Program) -> Result<HashMap<String, usize>> {
    let mut arities: HashMap<String, usize> = HashMap::new();
    let mut check = |a: &Atom| -> Result<()> {
        match arities.get(&a.predicate) {
            Some(&k) if k != a.arity() => Err(EvalError::ArityMismatch {
                predicate: a.predicate.clone(),
                expected: k,
                found: a.arity(),
            }),
            Some(_) => Ok(()),
            None => {
                arities.insert(a.predicate.clone(), a.arity());
                Ok(())
            }
        }
    };
    for rule in &program.rules {
        check(&rule.head)?;
        for lit in &rule.body {
            if let Some(a) = lit.atom() {
                check(a)?;
            }
        }
    }
    Ok(arities)
}

/// Interns every constant mentioned by `program` into `db`'s universe, so
/// that compilation cannot fail with `UnknownConstant`.
///
/// Use when the program (not the data) introduces constants — e.g. the
/// Theorem 4 construction over the binary domain `{0, 1}`.
pub fn ensure_program_constants(db: &mut Database, program: &Program) {
    for c in program.constants() {
        db.universe_mut().intern(&c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::parse_program;

    fn compile(src: &str, db: &Database) -> CompiledProgram {
        CompiledProgram::compile(&parse_program(src).unwrap(), db).unwrap()
    }

    #[test]
    fn compile_pi1() {
        let db = DiGraph::path(3).to_database("E");
        let cp = compile("T(x) :- E(y, x), !T(y).", &db);
        assert_eq!(cp.idb_names, vec!["T"]);
        assert_eq!(cp.edb_names, vec!["E"]);
        assert_eq!(cp.idb_arities, vec![1]);
        assert_eq!(cp.rules.len(), 1);
        assert!(!cp.rules[0].has_pos_idb);
        assert!(cp.rules[0].delta_plans.is_empty());
    }

    #[test]
    fn compile_tc_has_delta_plans() {
        let db = DiGraph::path(3).to_database("E");
        let cp = compile("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        assert!(!cp.rules[0].has_pos_idb);
        assert!(cp.rules[1].has_pos_idb);
        assert_eq!(cp.rules[1].delta_plans.len(), 1);
    }

    #[test]
    fn idb_ids_sorted_by_name() {
        let db = DiGraph::path(2).to_database("E");
        let cp = compile("Z(x) :- E(x, y). A(x) :- E(x, y). M(x) :- A(x), Z(x).", &db);
        assert_eq!(cp.idb_names, vec!["A", "M", "Z"]);
        assert_eq!(cp.idb_id("M"), Some(1));
        assert_eq!(cp.idb_id("E"), None);
    }

    #[test]
    fn unknown_constant_errors() {
        let db = DiGraph::path(2).to_database("E");
        let p = parse_program("T(x) :- E(x, y), y = '9'.").unwrap();
        let err = CompiledProgram::compile(&p, &db).unwrap_err();
        assert!(matches!(err, EvalError::UnknownConstant { .. }));
    }

    #[test]
    fn ensure_constants_interns() {
        let mut db = DiGraph::path(2).to_database("E");
        let p = parse_program("T(x) :- E(x, y), y = 'extra'.").unwrap();
        ensure_program_constants(&mut db, &p);
        assert!(CompiledProgram::compile(&p, &db).is_ok());
        assert!(db.universe().lookup("extra").is_some());
    }

    #[test]
    fn program_arity_conflict_errors() {
        let db = Database::new();
        let p = parse_program("T(x) :- E(x). T(x) :- E(x, y).").unwrap();
        assert!(matches!(
            CompiledProgram::compile(&p, &db),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn database_arity_conflict_errors() {
        let mut db = Database::new();
        db.insert_named_fact("E", &["a"]).unwrap(); // E/1 in the database
        let p = parse_program("T(x) :- E(x, y).").unwrap(); // E/2 in the program
        assert!(matches!(
            CompiledProgram::compile(&p, &db),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn absent_edb_is_empty() {
        let db = Database::new();
        let cp = compile("T(x) :- E(x, y).", &db);
        let edb = cp.edb_relations(&db).unwrap();
        assert_eq!(edb.len(), 1);
        assert!(edb[0].is_empty());
        assert_eq!(edb[0].arity(), 2);
    }

    #[test]
    fn empty_and_full_interp() {
        let db = DiGraph::path(3).to_database("E");
        let cp = compile("T(x) :- E(y, x), !T(y).", &db);
        assert!(cp.empty_interp().all_empty());
        assert_eq!(cp.full_interp(db.universe_size()).total_tuples(), 3);
    }
}
