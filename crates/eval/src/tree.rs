//! The recursive tree executor — the original `Step`-tree walker, kept as
//! the **oracle** for the flat register-machine VM of [`exec`](crate::exec).
//!
//! Debug builds cross-check every VM application against this executor
//! (see [`operator`](crate::operator)), and `INFLOG_EXEC=tree` routes whole
//! runs through it. Its candidate order — dense order for unkeyed scans,
//! posting order for keyed ones, universe order for `Domain` steps — is the
//! specification the VM reproduces bit-identically.

use crate::exec::ExecEnv;
use crate::plan::{CTerm, Plan, Source, Step};
use inflog_core::{Const, Relation, Tuple};

/// Runs `plan` to completion, inserting every derived head tuple into `out`.
pub(crate) fn run_plan(env: &ExecEnv<'_>, plan: &Plan, out: &mut Relation) {
    let mut vals: Vec<Const> = vec![Const(0); plan.num_vars];
    let mut bound = vec![false; plan.num_vars];
    // A `false` return means an active governor tripped mid-walk; the
    // caller reads the verdict off the governor and discards the output.
    let _ = step(env, plan, 0, &mut vals, &mut bound, out);
}

/// Runs `plan` with its **outermost** iteration restricted to the
/// contiguous range `lo..hi` — the unit of parallel execution. Only
/// called for plans whose first step is an unkeyed scan or a `Domain`
/// step; outputs arrive in the same order as the corresponding slice of a
/// full sequential run.
pub(crate) fn run_plan_slice(
    env: &ExecEnv<'_>,
    plan: &Plan,
    lo: usize,
    hi: usize,
    out: &mut Relation,
) {
    let mut vals: Vec<Const> = vec![Const(0); plan.num_vars];
    let mut bound = vec![false; plan.num_vars];
    match plan.steps.first() {
        Some(Step::Scan {
            pred,
            source,
            terms,
            key_cols,
        }) if key_cols.is_empty() => {
            let tuples = env.scan_tuples(*pred, *source);
            let binds_mask = scan_binds_mask(terms, &bound);
            for t in &tuples[lo..hi] {
                if !scan_candidate(
                    env, plan, 0, &mut vals, &mut bound, out, t, terms, binds_mask,
                ) {
                    return;
                }
            }
        }
        Some(Step::Domain { var }) => {
            let var = *var;
            bound[var] = true;
            for c in lo..hi {
                vals[var] = Const(c as u32);
                if !step(env, plan, 1, &mut vals, &mut bound, out) {
                    return;
                }
            }
        }
        _ => unreachable!("range tasks are built only for splittable first steps"),
    }
}

/// Satisfiability probe over a whole plan with pre-seeded bindings: does
/// any completion reach the head? Returns on the first witness.
pub(crate) fn probe_plan(
    env: &ExecEnv<'_>,
    plan: &Plan,
    vals: &mut Vec<Const>,
    bound: &mut Vec<bool>,
) -> bool {
    probe_steps(env, plan, 0, vals, bound)
}

/// Term positions of a scan that bind a fresh variable, as a bitmask.
/// `bound` is restored between candidates, so the set is identical for
/// every candidate of one scan — computed once, keeping the per-tuple loop
/// allocation-free.
fn scan_binds_mask(terms: &[CTerm], bound: &[bool]) -> u128 {
    assert!(
        terms.len() <= 128,
        "executor supports atoms of arity <= 128"
    );
    let mut binds_mask: u128 = 0;
    for (col, term) in terms.iter().enumerate() {
        if let CTerm::Var(v) = term {
            if !bound[*v] && !terms[..col].contains(term) {
                binds_mask |= 1 << col;
            }
        }
    }
    binds_mask
}

fn value(t: &CTerm, vals: &[Const]) -> Const {
    match t {
        CTerm::Const(c) => *c,
        CTerm::Var(v) => vals[*v],
    }
}

fn build_tuple(terms: &[CTerm], vals: &[Const]) -> Tuple {
    // Collects straight into a Tuple: arities ≤ 4 stay inline, so the
    // executor's innermost head/filter construction never allocates.
    terms.iter().map(|t| value(t, vals)).collect()
}

/// Returns `true` to keep enumerating candidates; `false` when an active
/// governor tripped on an emit (budget exhausted, cancelled, failpoint) —
/// the whole walk unwinds immediately and the caller reads the verdict off
/// the governor.
#[allow(clippy::too_many_lines)]
fn step(
    env: &ExecEnv<'_>,
    plan: &Plan,
    idx: usize,
    vals: &mut Vec<Const>,
    bound: &mut Vec<bool>,
    out: &mut Relation,
) -> bool {
    if idx == plan.steps.len() {
        let head = build_tuple(&plan.head, vals);
        out.insert(head);
        return !matches!(env.gov, Some(g) if g.note_emit());
    }
    match &plan.steps[idx] {
        Step::Scan {
            pred,
            source,
            terms,
            key_cols,
        } => {
            let binds_mask = scan_binds_mask(terms, bound);
            if key_cols.is_empty() {
                // Unkeyed scan: iterate the dense slice (full relation or
                // delta) in place.
                let tuples = env.scan_tuples(*pred, *source);
                for t in tuples {
                    if !scan_candidate(env, plan, idx, vals, bound, out, t, terms, binds_mask) {
                        return false;
                    }
                }
            } else {
                // Keyed scan: probe the persistent index; the postings
                // are borrowed positions into the dense storage — no
                // tuple collection is cloned. Keyed scans are never delta
                // scans (the delta-first invariant).
                let rel = env.relation(*pred, *source);
                let key: Tuple = key_cols.iter().map(|&c| value(&terms[c], vals)).collect();
                if let Some(postings) = env.indexes.probe(rel.id(), key_cols, &key) {
                    for &ti in postings {
                        let t = &rel.dense()[ti as usize];
                        if !scan_candidate(env, plan, idx, vals, bound, out, t, terms, binds_mask) {
                            return false;
                        }
                    }
                } else {
                    // No index registered (unprepared plan): filtered
                    // linear scan — correct, just slower.
                    for ti in 0..rel.dense().len() {
                        let t = &rel.dense()[ti];
                        if key_cols.iter().enumerate().any(|(r, &c)| t[c] != key[r]) {
                            continue;
                        }
                        if !scan_candidate(env, plan, idx, vals, bound, out, t, terms, binds_mask) {
                            return false;
                        }
                    }
                }
            }
            true
        }
        Step::Domain { var } => {
            let var = *var;
            bound[var] = true;
            for c in 0..env.ctx.universe_size as u32 {
                vals[var] = Const(c);
                if !step(env, plan, idx + 1, vals, bound, out) {
                    bound[var] = false;
                    return false;
                }
            }
            bound[var] = false;
            true
        }
        Step::FilterPos { pred, terms } => {
            let t = build_tuple(terms, vals);
            !env.relation(*pred, Source::Full).contains(&t)
                || step(env, plan, idx + 1, vals, bound, out)
        }
        Step::FilterNeg { pred, terms } => {
            let t = build_tuple(terms, vals);
            env.neg_relation(*pred).contains(&t) || step(env, plan, idx + 1, vals, bound, out)
        }
        Step::BindEq { var, from } => {
            let var = *var;
            vals[var] = value(from, vals);
            bound[var] = true;
            let keep_going = step(env, plan, idx + 1, vals, bound, out);
            bound[var] = false;
            keep_going
        }
        Step::FilterEq { a, b } => {
            value(a, vals) != value(b, vals) || step(env, plan, idx + 1, vals, bound, out)
        }
        Step::FilterNeq { a, b } => {
            value(a, vals) == value(b, vals) || step(env, plan, idx + 1, vals, bound, out)
        }
    }
}

/// Tries one scan candidate: unify `t` against `terms`, recurse into the
/// remaining steps on success, then restore the bindings this scan step
/// introduced (`binds_mask` marks the term positions that bind). Returns
/// `false` only when the recursion stopped on a governor trip.
#[allow(clippy::too_many_arguments)]
fn scan_candidate(
    env: &ExecEnv<'_>,
    plan: &Plan,
    idx: usize,
    vals: &mut Vec<Const>,
    bound: &mut Vec<bool>,
    out: &mut Relation,
    t: &Tuple,
    terms: &[CTerm],
    binds_mask: u128,
) -> bool {
    let mut ok = true;
    for (col, term) in terms.iter().enumerate() {
        match term {
            CTerm::Const(c) => {
                if t[col] != *c {
                    ok = false;
                    break;
                }
            }
            CTerm::Var(v) => {
                if binds_mask & (1 << col) != 0 {
                    vals[*v] = t[col];
                    bound[*v] = true;
                } else if t[col] != vals[*v] {
                    ok = false;
                    break;
                }
            }
        }
    }
    let keep_going = !ok || step(env, plan, idx + 1, vals, bound, out);
    let mut mask = binds_mask;
    while mask != 0 {
        let col = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let CTerm::Var(v) = terms[col] else {
            unreachable!("binds_mask marks variable positions only")
        };
        bound[v] = false;
    }
    keep_going
}

/// Satisfiability probe: does any completion of the current binding
/// satisfy the plan's remaining steps? Same semantics as [`step`] minus
/// head construction, returning on the **first** witness — the one-step
/// derivability checks of the incremental well-founded engine run entire
/// rule bodies through this.
fn probe_steps(
    env: &ExecEnv<'_>,
    plan: &Plan,
    idx: usize,
    vals: &mut Vec<Const>,
    bound: &mut Vec<bool>,
) -> bool {
    if idx == plan.steps.len() {
        return true;
    }
    match &plan.steps[idx] {
        Step::Scan {
            pred,
            source,
            terms,
            key_cols,
        } => {
            let binds_mask = scan_binds_mask(terms, bound);
            let mut found = false;
            if key_cols.is_empty() {
                let tuples = env.scan_tuples(*pred, *source);
                for t in tuples {
                    if probe_candidate(env, plan, idx, vals, bound, t, terms, binds_mask) {
                        found = true;
                        break;
                    }
                }
            } else {
                let rel = env.relation(*pred, *source);
                let key: Tuple = key_cols.iter().map(|&c| value(&terms[c], vals)).collect();
                if let Some(postings) = env.indexes.probe(rel.id(), key_cols, &key) {
                    for &ti in postings {
                        let t = &rel.dense()[ti as usize];
                        if probe_candidate(env, plan, idx, vals, bound, t, terms, binds_mask) {
                            found = true;
                            break;
                        }
                    }
                } else {
                    for ti in 0..rel.dense().len() {
                        let t = &rel.dense()[ti];
                        if key_cols.iter().enumerate().any(|(r, &c)| t[c] != key[r]) {
                            continue;
                        }
                        if probe_candidate(env, plan, idx, vals, bound, t, terms, binds_mask) {
                            found = true;
                            break;
                        }
                    }
                }
            }
            // Bindings this scan introduced were already unwound by
            // `probe_candidate`.
            found
        }
        Step::Domain { var } => {
            let var = *var;
            bound[var] = true;
            let mut found = false;
            for c in 0..env.ctx.universe_size as u32 {
                vals[var] = Const(c);
                if probe_steps(env, plan, idx + 1, vals, bound) {
                    found = true;
                    break;
                }
            }
            bound[var] = false;
            found
        }
        Step::FilterPos { pred, terms } => {
            let t = build_tuple(terms, vals);
            env.relation(*pred, Source::Full).contains(&t)
                && probe_steps(env, plan, idx + 1, vals, bound)
        }
        Step::FilterNeg { pred, terms } => {
            let t = build_tuple(terms, vals);
            !env.neg_relation(*pred).contains(&t) && probe_steps(env, plan, idx + 1, vals, bound)
        }
        Step::BindEq { var, from } => {
            let var = *var;
            vals[var] = value(from, vals);
            bound[var] = true;
            let found = probe_steps(env, plan, idx + 1, vals, bound);
            bound[var] = false;
            found
        }
        Step::FilterEq { a, b } => {
            value(a, vals) == value(b, vals) && probe_steps(env, plan, idx + 1, vals, bound)
        }
        Step::FilterNeq { a, b } => {
            value(a, vals) != value(b, vals) && probe_steps(env, plan, idx + 1, vals, bound)
        }
    }
}

/// [`scan_candidate`] for probes: unify, recurse, unwind; reports whether a
/// witness was found downstream.
#[allow(clippy::too_many_arguments)]
fn probe_candidate(
    env: &ExecEnv<'_>,
    plan: &Plan,
    idx: usize,
    vals: &mut Vec<Const>,
    bound: &mut Vec<bool>,
    t: &Tuple,
    terms: &[CTerm],
    binds_mask: u128,
) -> bool {
    let mut ok = true;
    for (col, term) in terms.iter().enumerate() {
        match term {
            CTerm::Const(c) => {
                if t[col] != *c {
                    ok = false;
                    break;
                }
            }
            CTerm::Var(v) => {
                if binds_mask & (1 << col) != 0 {
                    vals[*v] = t[col];
                    bound[*v] = true;
                } else if t[col] != vals[*v] {
                    ok = false;
                    break;
                }
            }
        }
    }
    let found = ok && probe_steps(env, plan, idx + 1, vals, bound);
    let mut mask = binds_mask;
    while mask != 0 {
        let col = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let CTerm::Var(v) = terms[col] else {
            unreachable!("binds_mask marks variable positions only")
        };
        bound[v] = false;
    }
    found
}
