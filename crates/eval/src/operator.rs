//! The immediate-consequence operator Θ of §2, executed over compiled plans.
//!
//! Given a database `D` and an interpretation `S = (S_1, ..., S_m)` for the
//! IDB predicates, `Θ(S)` returns the relations derived by applying every
//! rule once, with variables ranging over the universe `A` and body
//! negations evaluated against `S` itself (synchronous / Jacobi application —
//! derivations within a round do not see each other).
//!
//! Variants:
//! * [`apply`] — plain `Θ(S)`;
//! * [`apply_subset`] — Θ restricted to a subset of rules (stratified
//!   evaluation applies one stratum's rules at a time);
//! * [`apply_delta`] — semi-naive: only derivations whose body uses at least
//!   one tuple of a delta interpretation (sound for inflationary iteration:
//!   under a growing `S`, a ground body instance can become newly true only
//!   through a positive IDB atom — negative literals only decay);
//! * [`apply_with_neg`] — negative IDB literals read a *separate*
//!   interpretation (the alternating-fixpoint transform Γ of the
//!   well-founded semantics needs this);
//! * [`apply_delta_with_neg`] — both at once: the semi-naive step of Γ.
//!   With negations frozen, the positivized operator is monotone, so the
//!   delta argument is exactly the positive-program one.
//!
//! # Parallel application
//!
//! One Θ application is embarrassingly parallel: within a round every plan
//! reads the *same* frozen inputs (`s`, the delta, the EDB, the persistent
//! indexes) and only emits head tuples. [`apply_general_into`] therefore
//! executes large applications across worker threads: the outermost loop of
//! each plan — for delta plans the delta scan, which the planner places
//! first — is split into contiguous ranges, the `(rule, plan, range)` tasks
//! run under [`std::thread::scope`] with a work-stealing cursor, each task
//! deduplicates into its own scratch relation, and the scratch relations
//! are merged **in task order**. Because tasks are order-contiguous
//! segments of the sequential iteration, first occurrences survive the
//! merge in exactly the sequential order: the output is bit-identical to a
//! sequential application — same tuples, same insertion order — for every
//! thread count. Small applications (see
//! [`EvalOptions::parallel_threshold`]) skip the fork entirely.
//!
//! During a round the [`IndexSet`] is read-only (a single read guard is
//! taken after plan preparation and shared by every worker); incremental
//! index extension happens strictly between rounds, under the write lock of
//! [`IndexSet::begin_application`]-time preparation.
//!
//! The engines do not drive rounds themselves; the shared round loop lives
//! in [`driver`](crate::driver).

use crate::index::IndexSet;
use crate::interp::Interp;
use crate::options::EvalOptions;
use crate::plan::{CTerm, Plan, PredRef, Source, Step};
use crate::resolve::{CompiledProgram, RulePlans};
use crate::Result;
use inflog_core::{Const, Database, Relation, Tuple};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

/// Evaluation context: materialized EDB relations, the universe size, and
/// the persistent hash-join indexes.
///
/// The context outlives every round of a fixpoint iteration, so the
/// [`IndexSet`] it owns persists across Θ applications: EDB indexes are
/// built exactly once, and IDB indexes are extended incrementally from each
/// round's newly derived tuples instead of being rebuilt from scratch.
///
/// The context is [`Sync`]: during a parallel round, worker threads share
/// it read-only (the index set behind its `RwLock` is only written between
/// rounds, by the thread driving the fixpoint).
#[derive(Debug)]
pub struct EvalContext {
    /// EDB relations by EDB id (absent in the database = empty).
    pub edb: Vec<Relation>,
    /// `|A|` — the range of `Domain` plan steps.
    pub universe_size: usize,
    /// Persistent indexes, maintained across Θ applications. The lock lets
    /// the read-only evaluation entry points keep their `&EvalContext`
    /// signatures while the cache warms, and lets parallel rounds share the
    /// warmed set across workers through one read guard.
    indexes: RwLock<IndexSet>,
    /// Number of Θ applications routed through the parallel executor
    /// (observability: the auto mode's sequential fallback is tested
    /// against this). In forced mode a one-task application counts even
    /// though no extra thread is spawned for it.
    parallel_applications: AtomicU64,
}

impl EvalContext {
    /// Builds a context for `cp` over `db`.
    ///
    /// # Errors
    /// Propagates arity conflicts between the program and the database.
    pub fn new(cp: &CompiledProgram, db: &Database) -> Result<Self> {
        Ok(EvalContext {
            edb: cp.edb_relations(db)?,
            universe_size: db.universe_size(),
            indexes: RwLock::new(IndexSet::default()),
            parallel_applications: AtomicU64::new(0),
        })
    }

    /// Number of persistent indexes currently held (observability / tests).
    pub fn num_indexes(&self) -> usize {
        self.read_indexes().len()
    }

    /// Number of Θ applications over this context routed through the
    /// parallel executor. Auto mode must leave this at zero when every
    /// round stays below the parallel threshold.
    pub fn parallel_applications(&self) -> u64 {
        self.parallel_applications.load(Ordering::Relaxed)
    }

    fn read_indexes(&self) -> std::sync::RwLockReadGuard<'_, IndexSet> {
        self.indexes.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_indexes(&self) -> std::sync::RwLockWriteGuard<'_, IndexSet> {
        self.indexes.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs [`IndexSet::debug_validate`] over this context's indexes for
    /// `rel`: postings must be sorted and complete. Test/debug aid for the
    /// patch/rollback paths the incremental well-founded engine exercises.
    ///
    /// # Panics
    /// Panics if any index over `rel` violates the invariant.
    pub fn debug_validate_indexes(&self, rel: &Relation) {
        self.read_indexes().debug_validate(rel);
    }

    /// Removes `t` from `rel` while keeping this context's indexes over it
    /// consistent (patched in place, not rebuilt). Returns whether the tuple
    /// was present.
    ///
    /// This is the deletion primitive of the incremental well-founded
    /// engine: the decreasing side loses a handful of tuples per
    /// alternation, and rebuilding its indexes each time would cost more
    /// than the alternation itself.
    pub(crate) fn remove_patched(&self, rel: &mut Relation, t: &Tuple) -> bool {
        let old_len = rel.len();
        let Some((removed_pos, moved_from)) = rel.remove_tracked(t) else {
            return false;
        };
        self.write_indexes()
            .patch_swap_remove(rel, t, removed_pos, moved_from, old_len);
        true
    }

    /// Removes `t` from the EDB relation `edb_id` while keeping the indexes
    /// over it consistent, like [`EvalContext::remove_patched`] but for the
    /// context's own relations. The materialized-view repair path retracts
    /// base facts through this so the warm EDB indexes survive the update.
    pub(crate) fn remove_edb_patched(&mut self, edb_id: usize, t: &Tuple) -> bool {
        let rel = &mut self.edb[edb_id];
        let old_len = rel.len();
        let Some((removed_pos, moved_from)) = rel.remove_tracked(t) else {
            return false;
        };
        self.indexes
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .patch_swap_remove(rel, t, removed_pos, moved_from, old_len);
        true
    }
}

impl Clone for EvalContext {
    fn clone(&self) -> Self {
        EvalContext {
            edb: self.edb.clone(),
            universe_size: self.universe_size,
            // The warmed indexes are keyed by relation id and every cloned
            // relation gets a fresh id, so copying them would only carry
            // dead weight that misses on every probe — start empty.
            indexes: RwLock::new(IndexSet::default()),
            parallel_applications: AtomicU64::new(0),
        }
    }
}

/// Which plan set of each rule an application executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanKind {
    /// The full body plan.
    Full,
    /// One delta plan per positive IDB atom occurrence (semi-naive rounds);
    /// the delta interpretation holds the last round's new tuples.
    PosDelta,
    /// One delta plan per negated IDB atom occurrence (the incremental
    /// alternating fixpoint's restart round); the delta interpretation holds
    /// the tuples that just *left* the frozen negation context.
    NegDelta,
    /// One delta plan per positive **EDB** atom occurrence (materialized
    /// view repair); the delta is **EDB-shaped** — indexed by EDB id — and
    /// holds the facts just inserted into the extensional database.
    EdbDelta,
    /// One delta plan per negated **EDB** atom occurrence (materialized view
    /// repair); the EDB-shaped delta holds retracted facts (damage
    /// enumeration) or inserted facts (top-up seeding), with the driven
    /// occurrence consumed exactly like [`PlanKind::NegDelta`].
    EdbNegDelta,
}

/// Options threading through one Θ application.
struct ApplyOpts<'a> {
    /// Restrict to these rule indices (source order); `None` = all rules.
    rules: Option<&'a [usize]>,
    /// Which plan set to execute.
    plans: PlanKind,
    /// Resolves [`Source::Delta`] scans (the per-round delta for
    /// [`PlanKind::PosDelta`], the removed set for [`PlanKind::NegDelta`]).
    delta: Option<&'a Interp>,
    /// If set, negative IDB literals read this interpretation instead of `s`.
    neg: Option<&'a Interp>,
    /// Replanned plan sets indexed by source rule, overriding the compiled
    /// program's plans — the round driver re-plans per round against live
    /// relation cardinalities and executes through this.
    overrides: Option<&'a [RulePlans]>,
}

/// `Θ(S)`.
pub fn apply(cp: &CompiledProgram, ctx: &EvalContext, s: &Interp) -> Interp {
    run(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules: None,
            plans: PlanKind::Full,
            delta: None,
            neg: None,
            overrides: None,
        },
    )
}

/// `Θ(S)` restricted to the rules with the given source indices.
pub fn apply_subset(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    rules: &[usize],
) -> Interp {
    run(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules: Some(rules),
            plans: PlanKind::Full,
            delta: None,
            neg: None,
            overrides: None,
        },
    )
}

/// Semi-naive step: derivations whose body uses at least one `delta` tuple
/// in a positive IDB position. Rules without positive IDB atoms produce
/// nothing here (they fire exhaustively in round one).
pub fn apply_delta(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    delta: &Interp,
    rules: Option<&[usize]>,
) -> Interp {
    run(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules,
            plans: PlanKind::PosDelta,
            delta: Some(delta),
            neg: None,
            overrides: None,
        },
    )
}

/// `Θ(S)` with negative IDB literals evaluated against `neg` instead of `s`
/// (the well-founded Γ transform).
pub fn apply_with_neg(cp: &CompiledProgram, ctx: &EvalContext, s: &Interp, neg: &Interp) -> Interp {
    run(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules: None,
            plans: PlanKind::Full,
            delta: None,
            neg: Some(neg),
            overrides: None,
        },
    )
}

/// Semi-naive step of the well-founded Γ transform: derivations using at
/// least one `delta` tuple in a positive IDB position, with negative IDB
/// literals frozen at `neg`.
///
/// Sound for the same reason [`apply_delta`] is sound for positive programs:
/// with the negations frozen at a fixed `neg`, the positivized operator is
/// **monotone** in `s`, so a ground body instance newly true this round must
/// have gained a positive IDB tuple — the standard delta argument applies
/// verbatim. (Rules without positive IDB atoms derive nothing here; the
/// round driver fires them in its full first round.)
pub fn apply_delta_with_neg(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    delta: &Interp,
    neg: &Interp,
    rules: Option<&[usize]>,
) -> Interp {
    run(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules,
            plans: PlanKind::PosDelta,
            delta: Some(delta),
            neg: Some(neg),
            overrides: None,
        },
    )
}

/// Fully general Θ application (any combination of rule subset, delta
/// restriction and frozen negation context), written into a caller-owned
/// output buffer, optionally across worker threads.
///
/// `out` is cleared first ([`Relation::clear`] keeps its allocations), so a
/// round driver can reuse one scratch interpretation across every round of a
/// fixpoint instead of allocating fresh relations per application.
///
/// `par` controls the parallel executor (see the module docs): with more
/// than one effective thread and a work estimate at or above
/// `par.parallel_threshold`, the application forks; the result is
/// bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_general_into(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    rules: Option<&[usize]>,
    plans: PlanKind,
    delta: Option<&Interp>,
    neg: Option<&Interp>,
    overrides: Option<&[RulePlans]>,
    out: &mut Interp,
    par: &EvalOptions,
) {
    debug_assert_eq!(
        plans == PlanKind::Full,
        delta.is_none(),
        "delta interpretations accompany exactly the delta plan kinds"
    );
    debug_assert!(
        overrides.is_none_or(|o| o.len() == cp.rules.len()),
        "plan overrides must cover every rule"
    );
    run_into(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules,
            plans,
            delta,
            neg,
            overrides,
        },
        out,
        par,
    );
}

/// Resolves a plan's relation reference against the evaluation state.
fn resolve_relation<'a>(
    ctx: &'a EvalContext,
    s: &'a Interp,
    delta: Option<&'a Interp>,
    pred: PredRef,
    source: Source,
) -> &'a Relation {
    match (pred, source) {
        (PredRef::Edb(i), Source::Full) => &ctx.edb[i],
        (PredRef::Idb(i), Source::Full) => s.get(i),
        // The delta interpretation is shaped for the plan kind being run:
        // IDB-indexed for Pos/NegDelta plans, EDB-indexed for Edb*Delta
        // plans. One application only ever resolves one of the two shapes,
        // since each plan kind drives deltas through one predicate class.
        (PredRef::Edb(i) | PredRef::Idb(i), Source::Delta) => delta
            .expect("delta scan outside a delta application")
            .get(i),
    }
}

/// Registers (and incrementally refreshes) the indexes `plan`'s keyed scans
/// will probe. Called once per plan per Θ application, before execution
/// starts — the only point at which the index set is written.
fn prepare_plan(
    indexes: &mut IndexSet,
    plan: &Plan,
    ctx: &EvalContext,
    s: &Interp,
    delta: Option<&Interp>,
) {
    for step in &plan.steps {
        if let Step::Scan {
            pred,
            source,
            key_cols,
            ..
        } = step
        {
            if !key_cols.is_empty() {
                indexes.ensure(resolve_relation(ctx, s, delta, *pred, *source), key_cols);
            }
        }
    }
}

/// Enumerates every variable binding that satisfies a plan containing **no
/// IDB references** (positive EDB atoms, EDB negations, equalities,
/// inequalities and `Domain` steps only).
///
/// The plan's head must be the identity tuple over all rule variables, so
/// the emitted tuples *are* the bindings. Program grounding (the fixpoint
/// completion encoding of §3) uses this to enumerate rule instantiations
/// with the extensional part already evaluated away.
///
/// # Panics
/// Panics (in debug builds) if the plan references IDB relations.
pub fn enumerate_bindings(plan: &Plan, ctx: &EvalContext) -> Vec<Tuple> {
    debug_assert!(
        plan.steps.iter().all(|s| !matches!(
            s,
            Step::Scan {
                pred: PredRef::Idb(_),
                ..
            } | Step::FilterPos {
                pred: PredRef::Idb(_),
                ..
            } | Step::FilterNeg {
                pred: PredRef::Idb(_),
                ..
            }
        )),
        "grounding plans must not reference IDB relations"
    );
    let empty = Interp::from_relations(Vec::new());
    let mut out = Relation::new(plan.num_vars);
    {
        let mut indexes = ctx.write_indexes();
        indexes.begin_application();
        prepare_plan(&mut indexes, plan, ctx, &empty, None);
    }
    let indexes = ctx.read_indexes();
    let exec = Executor {
        ctx,
        s: &empty,
        delta: None,
        neg: &empty,
        indexes: &indexes,
    };
    exec.run_plan(plan, &mut out);
    out.sorted()
}

/// Synchronizes the persistent indexes probed by the **check plans** with
/// the current state of `s` (and the EDB). Call before a batch of
/// [`derivable`] checks; between batches, only relations that grew need to
/// be (and are) consumed incrementally.
pub(crate) fn sync_check_indexes(cp: &CompiledProgram, ctx: &EvalContext, s: &Interp) {
    let mut indexes = ctx.write_indexes();
    indexes.begin_application();
    for rule in &cp.rules {
        prepare_plan(&mut indexes, &rule.check_plan, ctx, s, None);
    }
}

/// One-step derivability: is `tuple` derivable as IDB predicate `pred` by
/// some rule instance, with positive IDB atoms read from `s` and negative
/// IDB literals read from `neg`?
///
/// Runs each candidate rule's check plan with the head variables pre-bound
/// from `tuple`, so body atoms probe the persistent hash-join indexes
/// (prepare them with [`sync_check_indexes`]) and the search exits on the
/// first witness. The incremental well-founded engine uses this to confirm
/// which tuples of the previous `U` survive into the next one.
pub(crate) fn derivable(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    pred: usize,
    tuple: &Tuple,
    s: &Interp,
    neg: &Interp,
) -> bool {
    let indexes = ctx.read_indexes();
    let exec = Executor {
        ctx,
        s,
        delta: None,
        neg,
        indexes: &indexes,
    };
    let mut vals: Vec<Const> = Vec::new();
    let mut bound: Vec<bool> = Vec::new();
    for rule in cp.rules.iter().filter(|r| r.head_pred == pred) {
        vals.clear();
        vals.resize(rule.num_vars, Const(0));
        bound.clear();
        bound.resize(rule.num_vars, false);
        if !unify_head(&rule.head_terms, tuple, &mut vals, &mut bound) {
            continue;
        }
        if exec.probe_steps(&rule.check_plan, 0, &mut vals, &mut bound) {
            return true;
        }
    }
    false
}

/// Unifies a rule head against a concrete tuple, binding head variables.
/// Fails on constant mismatches and on inconsistent repeated variables.
fn unify_head(head: &[CTerm], tuple: &Tuple, vals: &mut [Const], bound: &mut [bool]) -> bool {
    debug_assert_eq!(head.len(), tuple.arity());
    for (term, &c) in head.iter().zip(tuple.items()) {
        match term {
            CTerm::Const(k) => {
                if *k != c {
                    return false;
                }
            }
            CTerm::Var(v) => {
                if bound[*v] {
                    if vals[*v] != c {
                        return false;
                    }
                } else {
                    vals[*v] = c;
                    bound[*v] = true;
                }
            }
        }
    }
    true
}

struct Executor<'a> {
    ctx: &'a EvalContext,
    s: &'a Interp,
    delta: Option<&'a Interp>,
    neg: &'a Interp,
    /// The persistent index set, read-locked for the whole application:
    /// probes borrow straight from it with no per-scan lock traffic, and
    /// parallel workers share the same guard through this reference.
    indexes: &'a IndexSet,
}

fn run(cp: &CompiledProgram, ctx: &EvalContext, s: &Interp, opts: &ApplyOpts<'_>) -> Interp {
    let mut out = cp.empty_interp();
    run_into(cp, ctx, s, opts, &mut out, &EvalOptions::sequential());
    out
}

/// One `(rule, plan, outer-range)` unit of parallel work. Tasks are built —
/// and their outputs merged — in sequential execution order, which is what
/// makes the parallel application bit-identical to the sequential one.
struct Task<'a> {
    plan: &'a Plan,
    head_pred: usize,
    /// Contiguous range of the plan's outermost iteration, or `None` to run
    /// the plan whole (its first step is not splittable).
    range: Option<(usize, usize)>,
}

/// How a plan's outermost step can be partitioned across workers.
enum Outer {
    /// First step iterates a relation's dense storage: `0..len` positions.
    Dense(usize),
    /// First step ranges a variable over the universe: `0..len` constants.
    Domain(usize),
    /// Not splittable (keyed first scan, filter-only plan, empty body):
    /// execute the plan as one task.
    Whole,
}

fn outer_extent(ctx: &EvalContext, s: &Interp, delta: Option<&Interp>, plan: &Plan) -> Outer {
    match plan.steps.first() {
        Some(Step::Scan {
            pred,
            source,
            key_cols,
            ..
        }) if key_cols.is_empty() => {
            Outer::Dense(resolve_relation(ctx, s, delta, *pred, *source).len())
        }
        Some(Step::Domain { .. }) => Outer::Domain(ctx.universe_size),
        _ => Outer::Whole,
    }
}

fn run_into(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    opts: &ApplyOpts<'_>,
    out: &mut Interp,
    par: &EvalOptions,
) {
    for i in 0..out.len() {
        out.get_mut(i).clear();
    }

    let all_indices: Vec<usize>;
    let selected: &[usize] = match opts.rules {
        Some(r) => r,
        None => {
            all_indices = (0..cp.rules.len()).collect();
            &all_indices
        }
    };

    // Bring every index the selected plans probe up to date with the
    // relations as of this application (incremental: only the dense suffix
    // added since the last application is consumed). Execution then only
    // *reads* the index set, so probes return borrowed slices and worker
    // threads share one read guard.
    {
        let mut indexes = ctx.write_indexes();
        indexes.begin_application();
        for &ri in selected {
            for plan in plans_of(cp, ri, opts.overrides, opts.plans) {
                prepare_plan(&mut indexes, plan, ctx, s, opts.delta);
            }
        }
    }
    let indexes = ctx.read_indexes();
    let exec = Executor {
        ctx,
        s,
        delta: opts.delta,
        neg: opts.neg.unwrap_or(s),
        indexes: &indexes,
    };

    let workers = par.effective_threads();
    if workers > 1 {
        // Estimate the round's work as the summed outer-loop extent of its
        // plans (for delta rounds: the delta size). Below the threshold the
        // fork costs more than it buys. Extents are resolved once and
        // reused for task building.
        let mut extents: Vec<(&Plan, usize, Outer)> = Vec::new();
        let mut estimate = 0usize;
        for &ri in selected {
            let rule = &cp.rules[ri];
            for plan in plans_of(cp, ri, opts.overrides, opts.plans) {
                let extent = outer_extent(ctx, s, opts.delta, plan);
                estimate += match extent {
                    Outer::Dense(n) | Outer::Domain(n) => n,
                    Outer::Whole => 1,
                };
                extents.push((plan, rule.head_pred, extent));
            }
        }
        // A threshold of 0 *forces* the parallel path (tests/CI drive every
        // round through it); otherwise the estimate must clear the bar.
        let forced = par.parallel_threshold == 0;
        if estimate >= par.parallel_threshold.max(1) {
            let tasks = build_tasks(&extents, workers, estimate, forced);
            if tasks.len() > 1 || (forced && !tasks.is_empty()) {
                run_tasks_parallel(&exec, &tasks, workers, out);
                ctx.parallel_applications.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    for &ri in selected {
        let rule = &cp.rules[ri];
        for plan in plans_of(cp, ri, opts.overrides, opts.plans) {
            exec.run_plan(plan, out.get_mut(rule.head_pred));
        }
    }
}

/// Splits the selected plans (with their pre-resolved outer extents) into
/// order-contiguous tasks, at most a few per worker, never slicing below a
/// minimum grain (a sliver of outer loop per thread would be all merge
/// overhead). In `forced` mode (threshold 0) the grain floor drops to 1 so
/// even tiny rounds genuinely shard — that mode exists to drag every round
/// through the parallel path under test.
fn build_tasks<'a>(
    extents: &[(&'a Plan, usize, Outer)],
    workers: usize,
    estimate: usize,
    forced: bool,
) -> Vec<Task<'a>> {
    /// Minimum outer-loop candidates per task (auto mode).
    const MIN_GRAIN: usize = 32;
    /// Task-queue depth per worker (work stealing evens out skew).
    const TASKS_PER_WORKER: usize = 4;

    let floor = if forced { 1 } else { MIN_GRAIN };
    let grain = (estimate / (workers * TASKS_PER_WORKER)).max(floor);
    let mut tasks = Vec::new();
    for &(plan, head_pred, ref extent) in extents {
        match *extent {
            Outer::Dense(0) | Outer::Domain(0) => {} // nothing to scan
            Outer::Dense(n) | Outer::Domain(n) => {
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + grain).min(n);
                    tasks.push(Task {
                        plan,
                        head_pred,
                        range: Some((lo, hi)),
                    });
                    lo = hi;
                }
            }
            Outer::Whole => tasks.push(Task {
                plan,
                head_pred,
                range: None,
            }),
        }
    }
    tasks
}

/// Executes `tasks` across `workers` scoped threads (the calling thread
/// participates) and merges the per-task outputs into `out` in task order.
///
/// The per-task scratch relations are built fresh each application —
/// [`Relation::new`] allocates nothing until a task's first insertion, and
/// the auto threshold keeps parallel rounds large enough that the merge
/// clone (each derived tuple is copied once into `out`) is noise next to
/// plan execution.
fn run_tasks_parallel(exec: &Executor<'_>, tasks: &[Task<'_>], workers: usize, out: &mut Interp) {
    let outputs: Vec<Mutex<Relation>> = tasks
        .iter()
        .map(|t| Mutex::new(Relation::new(out.get(t.head_pred).arity())))
        .collect();
    let cursor = AtomicUsize::new(0);
    let worker = || {
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(task) = tasks.get(i) else { return };
            // Each task index is claimed exactly once, so the lock is
            // uncontended — it exists to hand the worker `&mut` access.
            let mut rel = outputs[i].lock().unwrap_or_else(PoisonError::into_inner);
            match task.range {
                Some((lo, hi)) => exec.run_plan_slice(task.plan, lo, hi, &mut rel),
                None => exec.run_plan(task.plan, &mut rel),
            }
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..workers.min(tasks.len()) {
            scope.spawn(worker);
        }
        worker();
    });
    // Deterministic merge: task order is sequential execution order, and
    // union keeps first occurrences, so `out` ends up bit-identical to a
    // sequential application.
    for (task, slot) in tasks.iter().zip(outputs) {
        let rel = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
        out.get_mut(task.head_pred).union_with(&rel);
    }
}

/// The plan set of rule `ri` that a [`PlanKind`] application executes —
/// from the per-round overrides when the caller replanned, otherwise the
/// compiled program's compile-time plans.
fn plans_of<'a>(
    cp: &'a CompiledProgram,
    ri: usize,
    overrides: Option<&'a [RulePlans]>,
    kind: PlanKind,
) -> &'a [Plan] {
    match (overrides, kind) {
        (Some(o), PlanKind::Full) => std::slice::from_ref(&o[ri].full),
        (Some(o), PlanKind::PosDelta) => &o[ri].delta,
        (Some(o), PlanKind::NegDelta) => &o[ri].neg_delta,
        (Some(o), PlanKind::EdbDelta) => &o[ri].edb_delta,
        (Some(o), PlanKind::EdbNegDelta) => &o[ri].edb_neg_delta,
        (None, PlanKind::Full) => std::slice::from_ref(&cp.rules[ri].full_plan),
        (None, PlanKind::PosDelta) => &cp.rules[ri].delta_plans,
        (None, PlanKind::NegDelta) => &cp.rules[ri].neg_delta_plans,
        (None, PlanKind::EdbDelta) => &cp.rules[ri].edb_delta_plans,
        (None, PlanKind::EdbNegDelta) => &cp.rules[ri].edb_neg_delta_plans,
    }
}

/// Term positions of a scan that bind a fresh variable, as a bitmask.
/// `bound` is restored between candidates, so the set is identical for
/// every candidate of one scan — computed once, keeping the per-tuple loop
/// allocation-free.
fn scan_binds_mask(terms: &[CTerm], bound: &[bool]) -> u128 {
    assert!(
        terms.len() <= 128,
        "executor supports atoms of arity <= 128"
    );
    let mut binds_mask: u128 = 0;
    for (col, term) in terms.iter().enumerate() {
        if let CTerm::Var(v) = term {
            if !bound[*v] && !terms[..col].contains(term) {
                binds_mask |= 1 << col;
            }
        }
    }
    binds_mask
}

impl<'a> Executor<'a> {
    fn relation(&self, pred: PredRef, source: Source) -> &'a Relation {
        resolve_relation(self.ctx, self.s, self.delta, pred, source)
    }

    /// The relation a *negative* literal reads (the Γ transform swaps it).
    fn neg_relation(&self, pred: PredRef) -> &'a Relation {
        match pred {
            PredRef::Edb(i) => &self.ctx.edb[i],
            PredRef::Idb(i) => self.neg.get(i),
        }
    }

    fn run_plan(&self, plan: &Plan, out: &mut Relation) {
        let mut vals: Vec<Const> = vec![Const(0); plan.num_vars];
        let mut bound = vec![false; plan.num_vars];
        self.step(plan, 0, &mut vals, &mut bound, out);
    }

    /// Runs `plan` with its **outermost** iteration restricted to the
    /// contiguous range `lo..hi` — the unit of parallel execution. Only
    /// called for plans whose first step is an unkeyed scan or a `Domain`
    /// step (see [`Outer`]); outputs arrive in the same order as the
    /// corresponding slice of a full sequential run.
    fn run_plan_slice(&self, plan: &Plan, lo: usize, hi: usize, out: &mut Relation) {
        let mut vals: Vec<Const> = vec![Const(0); plan.num_vars];
        let mut bound = vec![false; plan.num_vars];
        match plan.steps.first() {
            Some(Step::Scan {
                pred,
                source,
                terms,
                key_cols,
            }) if key_cols.is_empty() => {
                let rel = self.relation(*pred, *source);
                let binds_mask = scan_binds_mask(terms, &bound);
                for t in &rel.dense()[lo..hi] {
                    self.scan_candidate(plan, 0, &mut vals, &mut bound, out, t, terms, binds_mask);
                }
            }
            Some(Step::Domain { var }) => {
                let var = *var;
                bound[var] = true;
                for c in lo..hi {
                    vals[var] = Const(c as u32);
                    self.step(plan, 1, &mut vals, &mut bound, out);
                }
            }
            _ => unreachable!("range tasks are built only for splittable first steps"),
        }
    }

    fn value(&self, t: &CTerm, vals: &[Const]) -> Const {
        match t {
            CTerm::Const(c) => *c,
            CTerm::Var(v) => vals[*v],
        }
    }

    fn build_tuple(&self, terms: &[CTerm], vals: &[Const]) -> Tuple {
        // Collects straight into a Tuple: arities ≤ 4 stay inline, so the
        // executor's innermost head/filter construction never allocates.
        terms.iter().map(|t| self.value(t, vals)).collect()
    }

    #[allow(clippy::too_many_lines)]
    fn step(
        &self,
        plan: &Plan,
        idx: usize,
        vals: &mut Vec<Const>,
        bound: &mut Vec<bool>,
        out: &mut Relation,
    ) {
        if idx == plan.steps.len() {
            let head = self.build_tuple(&plan.head, vals);
            out.insert(head);
            return;
        }
        match &plan.steps[idx] {
            Step::Scan {
                pred,
                source,
                terms,
                key_cols,
            } => {
                let rel = self.relation(*pred, *source);
                let binds_mask = scan_binds_mask(terms, bound);
                if key_cols.is_empty() {
                    // Full scan: iterate the dense storage in place.
                    for ti in 0..rel.dense().len() {
                        let t = &rel.dense()[ti];
                        self.scan_candidate(plan, idx, vals, bound, out, t, terms, binds_mask);
                    }
                } else {
                    // Keyed scan: probe the persistent index; the postings
                    // are borrowed positions into the dense storage — no
                    // tuple collection is cloned.
                    let key: Tuple = key_cols
                        .iter()
                        .map(|&c| self.value(&terms[c], vals))
                        .collect();
                    if let Some(postings) = self.indexes.probe(rel.id(), key_cols, &key) {
                        for &ti in postings {
                            let t = &rel.dense()[ti as usize];
                            self.scan_candidate(plan, idx, vals, bound, out, t, terms, binds_mask);
                        }
                    } else {
                        // No index registered (unprepared plan): filtered
                        // linear scan — correct, just slower.
                        for ti in 0..rel.dense().len() {
                            let t = &rel.dense()[ti];
                            if key_cols.iter().enumerate().any(|(r, &c)| t[c] != key[r]) {
                                continue;
                            }
                            self.scan_candidate(plan, idx, vals, bound, out, t, terms, binds_mask);
                        }
                    }
                }
            }
            Step::Domain { var } => {
                let var = *var;
                bound[var] = true;
                for c in 0..self.ctx.universe_size as u32 {
                    vals[var] = Const(c);
                    self.step(plan, idx + 1, vals, bound, out);
                }
                bound[var] = false;
            }
            Step::FilterPos { pred, terms } => {
                let t = self.build_tuple(terms, vals);
                if self.relation(*pred, Source::Full).contains(&t) {
                    self.step(plan, idx + 1, vals, bound, out);
                }
            }
            Step::FilterNeg { pred, terms } => {
                let t = self.build_tuple(terms, vals);
                if !self.neg_relation(*pred).contains(&t) {
                    self.step(plan, idx + 1, vals, bound, out);
                }
            }
            Step::BindEq { var, from } => {
                let var = *var;
                vals[var] = self.value(from, vals);
                bound[var] = true;
                self.step(plan, idx + 1, vals, bound, out);
                bound[var] = false;
            }
            Step::FilterEq { a, b } => {
                if self.value(a, vals) == self.value(b, vals) {
                    self.step(plan, idx + 1, vals, bound, out);
                }
            }
            Step::FilterNeq { a, b } => {
                if self.value(a, vals) != self.value(b, vals) {
                    self.step(plan, idx + 1, vals, bound, out);
                }
            }
        }
    }

    /// Tries one scan candidate: unify `t` against `terms`, recurse into the
    /// remaining steps on success, then restore the bindings this scan step
    /// introduced (`binds_mask` marks the term positions that bind).
    #[allow(clippy::too_many_arguments)]
    fn scan_candidate(
        &self,
        plan: &Plan,
        idx: usize,
        vals: &mut Vec<Const>,
        bound: &mut Vec<bool>,
        out: &mut Relation,
        t: &Tuple,
        terms: &[CTerm],
        binds_mask: u128,
    ) {
        let mut ok = true;
        for (col, term) in terms.iter().enumerate() {
            match term {
                CTerm::Const(c) => {
                    if t[col] != *c {
                        ok = false;
                        break;
                    }
                }
                CTerm::Var(v) => {
                    if binds_mask & (1 << col) != 0 {
                        vals[*v] = t[col];
                        bound[*v] = true;
                    } else if t[col] != vals[*v] {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok {
            self.step(plan, idx + 1, vals, bound, out);
        }
        let mut mask = binds_mask;
        while mask != 0 {
            let col = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let CTerm::Var(v) = terms[col] else {
                unreachable!("binds_mask marks variable positions only")
            };
            bound[v] = false;
        }
    }

    /// Satisfiability probe: does any completion of the current binding
    /// satisfy the plan's remaining steps? Same semantics as [`step`](Self::step)
    /// minus head construction, returning on the **first** witness — the
    /// one-step derivability checks of the incremental well-founded engine
    /// run entire rule bodies through this.
    fn probe_steps(
        &self,
        plan: &Plan,
        idx: usize,
        vals: &mut Vec<Const>,
        bound: &mut Vec<bool>,
    ) -> bool {
        if idx == plan.steps.len() {
            return true;
        }
        match &plan.steps[idx] {
            Step::Scan {
                pred,
                source,
                terms,
                key_cols,
            } => {
                let rel = self.relation(*pred, *source);
                let binds_mask = scan_binds_mask(terms, bound);
                let mut found = false;
                if key_cols.is_empty() {
                    for ti in 0..rel.dense().len() {
                        let t = &rel.dense()[ti];
                        if self.probe_candidate(plan, idx, vals, bound, t, terms, binds_mask) {
                            found = true;
                            break;
                        }
                    }
                } else {
                    let key: Tuple = key_cols
                        .iter()
                        .map(|&c| self.value(&terms[c], vals))
                        .collect();
                    if let Some(postings) = self.indexes.probe(rel.id(), key_cols, &key) {
                        for &ti in postings {
                            let t = &rel.dense()[ti as usize];
                            if self.probe_candidate(plan, idx, vals, bound, t, terms, binds_mask) {
                                found = true;
                                break;
                            }
                        }
                    } else {
                        for ti in 0..rel.dense().len() {
                            let t = &rel.dense()[ti];
                            if key_cols.iter().enumerate().any(|(r, &c)| t[c] != key[r]) {
                                continue;
                            }
                            if self.probe_candidate(plan, idx, vals, bound, t, terms, binds_mask) {
                                found = true;
                                break;
                            }
                        }
                    }
                }
                // Bindings this scan introduced were already unwound by
                // `probe_candidate`.
                found
            }
            Step::Domain { var } => {
                let var = *var;
                bound[var] = true;
                let mut found = false;
                for c in 0..self.ctx.universe_size as u32 {
                    vals[var] = Const(c);
                    if self.probe_steps(plan, idx + 1, vals, bound) {
                        found = true;
                        break;
                    }
                }
                bound[var] = false;
                found
            }
            Step::FilterPos { pred, terms } => {
                let t = self.build_tuple(terms, vals);
                self.relation(*pred, Source::Full).contains(&t)
                    && self.probe_steps(plan, idx + 1, vals, bound)
            }
            Step::FilterNeg { pred, terms } => {
                let t = self.build_tuple(terms, vals);
                !self.neg_relation(*pred).contains(&t)
                    && self.probe_steps(plan, idx + 1, vals, bound)
            }
            Step::BindEq { var, from } => {
                let var = *var;
                vals[var] = self.value(from, vals);
                bound[var] = true;
                let found = self.probe_steps(plan, idx + 1, vals, bound);
                bound[var] = false;
                found
            }
            Step::FilterEq { a, b } => {
                self.value(a, vals) == self.value(b, vals)
                    && self.probe_steps(plan, idx + 1, vals, bound)
            }
            Step::FilterNeq { a, b } => {
                self.value(a, vals) != self.value(b, vals)
                    && self.probe_steps(plan, idx + 1, vals, bound)
            }
        }
    }

    /// [`scan_candidate`](Self::scan_candidate) for probes: unify, recurse,
    /// unwind; reports whether a witness was found downstream.
    #[allow(clippy::too_many_arguments)]
    fn probe_candidate(
        &self,
        plan: &Plan,
        idx: usize,
        vals: &mut Vec<Const>,
        bound: &mut Vec<bool>,
        t: &Tuple,
        terms: &[CTerm],
        binds_mask: u128,
    ) -> bool {
        let mut ok = true;
        for (col, term) in terms.iter().enumerate() {
            match term {
                CTerm::Const(c) => {
                    if t[col] != *c {
                        ok = false;
                        break;
                    }
                }
                CTerm::Var(v) => {
                    if binds_mask & (1 << col) != 0 {
                        vals[*v] = t[col];
                        bound[*v] = true;
                    } else if t[col] != vals[*v] {
                        ok = false;
                        break;
                    }
                }
            }
        }
        let found = ok && self.probe_steps(plan, idx + 1, vals, bound);
        let mut mask = binds_mask;
        while mask != 0 {
            let col = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let CTerm::Var(v) = terms[col] else {
                unreachable!("binds_mask marks variable positions only")
            };
            bound[v] = false;
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::parse_program;

    fn setup(src: &str, db: &Database) -> (CompiledProgram, EvalContext) {
        let p = parse_program(src).unwrap();
        let cp = CompiledProgram::compile(&p, db).unwrap();
        let ctx = EvalContext::new(&cp, db).unwrap();
        (cp, ctx)
    }

    fn t1(x: u32) -> Tuple {
        Tuple::from_ids(&[x])
    }

    fn t2(x: u32, y: u32) -> Tuple {
        Tuple::from_ids(&[x, y])
    }

    #[test]
    fn eval_context_is_send_and_sync() {
        // Parallel rounds share the context (and interpretations) across
        // worker threads; this fails to compile if interior mutability ever
        // takes `Sync` away again.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalContext>();
        assert_send_sync::<Interp>();
        assert_send_sync::<CompiledProgram>();
    }

    #[test]
    fn theta_of_pi1_on_empty_t() {
        // Paper §2: for pi_1 on D=(A,E), Θ(T) = {a : ∃y (E(y,a) ∧ ¬T(y))}.
        // With T = ∅: every vertex with an incoming edge.
        let db = DiGraph::path(4).to_database("E");
        let (cp, ctx) = setup("T(x) :- E(y, x), !T(y).", &db);
        let theta = apply(&cp, &ctx, &cp.empty_interp());
        let tid = cp.idb_id("T").unwrap();
        assert_eq!(theta.get(tid).sorted(), vec![t1(1), t1(2), t1(3)]);
    }

    #[test]
    fn theta_fixpoint_check_on_path() {
        // On L_4 (vertices v0..v3), the unique fixpoint of pi_1 is {v1, v3}
        // (the paper's {2, 4, ...} in 1-based numbering).
        let db = DiGraph::path(4).to_database("E");
        let (cp, ctx) = setup("T(x) :- E(y, x), !T(y).", &db);
        let tid = cp.idb_id("T").unwrap();
        let mut fix = cp.empty_interp();
        fix.insert(tid, t1(1));
        fix.insert(tid, t1(3));
        assert_eq!(apply(&cp, &ctx, &fix), fix);
        // And {v1, v2} is not a fixpoint.
        let mut not_fix = cp.empty_interp();
        not_fix.insert(tid, t1(1));
        not_fix.insert(tid, t1(2));
        assert_ne!(apply(&cp, &ctx, &not_fix), not_fix);
    }

    #[test]
    fn toggle_rule_has_no_fixpoint_on_nonempty_universe() {
        // T(z) <- !T(w): Θ(∅) = A, Θ(A) = ∅ — the paper's "toggle".
        let mut db = Database::new();
        db.universe_mut().intern("a");
        db.universe_mut().intern("b");
        let (cp, ctx) = setup("T(z) :- !T(w).", &db);
        let empty = cp.empty_interp();
        let theta1 = apply(&cp, &ctx, &empty);
        assert_eq!(theta1.total_tuples(), 2); // T = A
        let theta2 = apply(&cp, &ctx, &theta1);
        assert!(theta2.all_empty()); // back to ∅
    }

    #[test]
    fn tc_single_application() {
        let db = DiGraph::path(3).to_database("E");
        let (cp, ctx) = setup("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let sid = cp.idb_id("S").unwrap();
        let s1 = apply(&cp, &ctx, &cp.empty_interp());
        assert_eq!(s1.get(sid).sorted(), vec![t2(0, 1), t2(1, 2)]);
        let s2 = apply(&cp, &ctx, &s1);
        assert_eq!(s2.get(sid).sorted(), vec![t2(0, 1), t2(0, 2), t2(1, 2)]);
    }

    #[test]
    fn constants_in_heads_range_free_vars() {
        // G(z, 1) <- . over a 2-element universe {0, 1}.
        let mut db = Database::new();
        db.universe_mut().intern("0");
        db.universe_mut().intern("1");
        let (cp, ctx) = setup("G(z, 1).", &db);
        let g = cp.idb_id("G").unwrap();
        let theta = apply(&cp, &ctx, &cp.empty_interp());
        assert_eq!(theta.get(g).sorted(), vec![t2(0, 1), t2(1, 1)]);
    }

    #[test]
    fn zero_ary_predicates() {
        let mut db = Database::new();
        db.universe_mut().intern("a");
        let (cp, ctx) = setup("Win :- !Lose. Lose :- Lose.", &db);
        let win = cp.idb_id("Win").unwrap();
        let lose = cp.idb_id("Lose").unwrap();
        let theta = apply(&cp, &ctx, &cp.empty_interp());
        assert_eq!(theta.get(win).len(), 1);
        assert_eq!(theta.get(lose).len(), 0);
        // With Lose set, Win is not derived.
        let mut s = cp.empty_interp();
        s.insert(lose, Tuple::empty());
        let theta = apply(&cp, &ctx, &s);
        assert!(theta.get(win).is_empty());
        assert!(!theta.get(lose).is_empty());
    }

    #[test]
    fn inequality_filters() {
        let db = DiGraph::complete(3).to_database("E");
        let (cp, ctx) = setup("P(x, y) :- E(x, y), x != y.", &db);
        let p = cp.idb_id("P").unwrap();
        let theta = apply(&cp, &ctx, &cp.empty_interp());
        assert_eq!(theta.get(p).len(), 6); // complete(3) has no self-loops anyway
        let db2 = DiGraph::cycle(1).to_database("E"); // self-loop only
        let (cp2, ctx2) = setup("P(x, y) :- E(x, y), x != y.", &db2);
        assert!(apply(&cp2, &ctx2, &cp2.empty_interp()).all_empty());
    }

    #[test]
    fn apply_subset_respects_rule_choice() {
        let db = DiGraph::path(3).to_database("E");
        let (cp, ctx) = setup("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let sid = cp.idb_id("S").unwrap();
        // Only the recursive rule, from empty: derives nothing.
        let only_rec = apply_subset(&cp, &ctx, &cp.empty_interp(), &[1]);
        assert!(only_rec.get(sid).is_empty());
        // Only the base rule: the edges.
        let only_base = apply_subset(&cp, &ctx, &cp.empty_interp(), &[0]);
        assert_eq!(only_base.get(sid).len(), 2);
    }

    #[test]
    fn apply_delta_matches_full_difference() {
        // Semi-naive invariant: new derivations from (S, Δ) where Δ = S
        // equal Θ(S) minus what Θ(∅)-style rules would rederive. Check the
        // weaker, sufficient property used by the engines:
        // Θ(S) ⊇ apply_delta(S, Δ=S) ⊇ Θ(S) \ Θ(S⁻) for the TC program.
        let db = DiGraph::path(4).to_database("E");
        let (cp, ctx) = setup("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let s1 = apply(&cp, &ctx, &cp.empty_interp());
        let full2 = apply(&cp, &ctx, &s1);
        let delta2 = apply_delta(&cp, &ctx, &s1, &s1, None);
        // Everything the delta pass derives is derivable by the full pass.
        assert!(delta2.is_subset(&full2));
        // And it covers all *new* tuples.
        let new = full2.difference(&s1);
        assert!(new.is_subset(&delta2));
    }

    #[test]
    fn apply_with_neg_separates_contexts() {
        // T(x) <- V(x), !U(x);  U(x) <- V(x), !T(x).
        let mut db = Database::new();
        db.insert_named_fact("V", &["a"]).unwrap();
        let (cp, ctx) = setup("T(x) :- V(x), !U(x). U(x) :- V(x), !T(x).", &db);
        let tid = cp.idb_id("T").unwrap();
        let uid = cp.idb_id("U").unwrap();
        // neg context = full: nothing derivable.
        let full = cp.full_interp(db.universe_size());
        let r = apply_with_neg(&cp, &ctx, &cp.empty_interp(), &full);
        assert!(r.all_empty());
        // neg context = empty: both derivable.
        let r = apply_with_neg(&cp, &ctx, &cp.empty_interp(), &cp.empty_interp());
        assert_eq!(r.get(tid).len(), 1);
        assert_eq!(r.get(uid).len(), 1);
    }

    #[test]
    fn equality_join() {
        let db = DiGraph::path(3).to_database("E");
        let (cp, ctx) = setup("P(x) :- E(x, y), E(y, z), y = z.", &db);
        // y = z requires an edge y->y (self-loop): none on a path.
        assert!(apply(&cp, &ctx, &cp.empty_interp()).all_empty());
        let db2 = DiGraph::cycle(1).to_database("E");
        let (cp2, ctx2) = setup("P(x) :- E(x, y), E(y, z), y = z.", &db2);
        assert_eq!(apply(&cp2, &ctx2, &cp2.empty_interp()).total_tuples(), 1);
    }

    #[test]
    fn repeated_variables_in_atom() {
        // P(x) <- E(x, x): only self-loops match.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(2, 2);
        let db = g.to_database("E");
        let (cp, ctx) = setup("P(x) :- E(x, x).", &db);
        let p = cp.idb_id("P").unwrap();
        let theta = apply(&cp, &ctx, &cp.empty_interp());
        assert_eq!(theta.get(p).sorted(), vec![t1(2)]);
    }

    #[test]
    fn empty_universe_yields_empty_results() {
        let db = Database::new();
        let (cp, ctx) = setup("T(z) :- !T(w).", &db);
        // With A = ∅ even the toggle rule derives nothing.
        assert!(apply(&cp, &ctx, &cp.empty_interp()).all_empty());
    }

    #[test]
    fn parallel_application_is_bit_identical() {
        // The same Θ application, sequential vs forced-parallel at several
        // worker counts: identical tuples in identical insertion order.
        let db = DiGraph::binary_tree(31).to_database("E");
        let (cp, ctx) = setup("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let seed = apply(&cp, &ctx, &cp.empty_interp());
        let mut seq = cp.empty_interp();
        apply_general_into(
            &cp,
            &ctx,
            &seed,
            None,
            PlanKind::Full,
            None,
            None,
            None,
            &mut seq,
            &EvalOptions::sequential(),
        );
        for threads in [2, 3, 4] {
            let mut par = cp.empty_interp();
            apply_general_into(
                &cp,
                &ctx,
                &seed,
                None,
                PlanKind::Full,
                None,
                None,
                None,
                &mut par,
                &EvalOptions {
                    threads,
                    parallel_threshold: 0,
                },
            );
            for i in 0..seq.len() {
                assert_eq!(
                    seq.get(i).dense(),
                    par.get(i).dense(),
                    "insertion order diverged at {threads} threads"
                );
            }
        }
        assert!(ctx.parallel_applications() >= 3);
    }

    #[test]
    fn auto_threshold_keeps_small_applications_sequential() {
        let db = DiGraph::path(4).to_database("E");
        let (cp, ctx) = setup("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let mut out = cp.empty_interp();
        apply_general_into(
            &cp,
            &ctx,
            &cp.empty_interp(),
            None,
            PlanKind::Full,
            None,
            None,
            None,
            &mut out,
            &EvalOptions::with_threads(4), // default threshold ≫ 3 edges
        );
        assert_eq!(ctx.parallel_applications(), 0);
        // One full application from ∅: just the base rule's 3 edges.
        assert_eq!(out.total_tuples(), 3);
    }
}
