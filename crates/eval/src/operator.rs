//! The immediate-consequence operator Θ of §2, executed over compiled plans.
//!
//! Given a database `D` and an interpretation `S = (S_1, ..., S_m)` for the
//! IDB predicates, `Θ(S)` returns the relations derived by applying every
//! rule once, with variables ranging over the universe `A` and body
//! negations evaluated against `S` itself (synchronous / Jacobi application —
//! derivations within a round do not see each other).
//!
//! Variants:
//! * [`apply`] — plain `Θ(S)`;
//! * [`apply_subset`] — Θ restricted to a subset of rules (stratified
//!   evaluation applies one stratum's rules at a time);
//! * [`apply_delta`] — semi-naive: only derivations whose body uses at least
//!   one tuple of a delta interpretation (sound for inflationary iteration:
//!   under a growing `S`, a ground body instance can become newly true only
//!   through a positive IDB atom — negative literals only decay);
//! * [`apply_with_neg`] — negative IDB literals read a *separate*
//!   interpretation (the alternating-fixpoint transform Γ of the
//!   well-founded semantics needs this);
//! * [`apply_delta_with_neg`] — both at once: the semi-naive step of Γ.
//!   With negations frozen, the positivized operator is monotone, so the
//!   delta argument is exactly the positive-program one.
//!
//! # Parallel application
//!
//! One Θ application is embarrassingly parallel: within a round every plan
//! reads the *same* frozen inputs (`s`, the delta, the EDB, the persistent
//! indexes) and only emits head tuples. [`apply_general_into`] therefore
//! executes large applications across worker threads: the outermost loop of
//! each plan — for delta plans the delta scan, which the planner places
//! first — is split into contiguous ranges, the `(rule, plan, range)` tasks
//! run under [`std::thread::scope`] with a work-stealing cursor, each task
//! deduplicates into its own scratch relation, and the scratch relations
//! are merged **in task order**. Because tasks are order-contiguous
//! segments of the sequential iteration, first occurrences survive the
//! merge in exactly the sequential order: the output is bit-identical to a
//! sequential application — same tuples, same insertion order — for every
//! thread count. Small applications (see
//! [`EvalOptions::parallel_threshold`]) skip the fork entirely.
//!
//! During a round the [`IndexSet`] is read-only (a single read guard is
//! taken after plan preparation and shared by every worker); incremental
//! index extension happens strictly between rounds, under the write lock of
//! [`IndexSet::begin_application`]-time preparation.
//!
//! The engines do not drive rounds themselves; the shared round loop lives
//! in [`driver`](crate::driver).
//!
//! # Executors
//!
//! Plan execution itself lives elsewhere: the default flat register-machine
//! VM in [`exec`](crate::exec) (every [`Plan`] embeds its lowered
//! [`RuleProgram`](crate::exec::RuleProgram)), and the recursive tree
//! walker in [`tree`](crate::tree), kept as the oracle. This module only
//! selects between them per application ([`EvalOptions::exec_kind`], i.e.
//! the `INFLOG_EXEC` switch) — and, in debug builds, replays every VM
//! application on the tree executor and asserts dense-storage equality.

use crate::error::EvalError;
use crate::exec::{self, ExecEnv};
use crate::govern::{Governor, SITE_INDEX_EXTEND};
use crate::index::IndexSet;
use crate::interp::Interp;
use crate::options::{EvalOptions, ExecKind};
use crate::plan::{CTerm, Plan, PredRef, Source, Step};
use crate::resolve::{CompiledProgram, CompiledRule, RulePlans};
use crate::tree;
use crate::Result;
use inflog_core::{Const, Database, Relation, Tuple};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

/// Evaluation context: materialized EDB relations, the universe size, and
/// the persistent hash-join indexes.
///
/// The context outlives every round of a fixpoint iteration, so the
/// [`IndexSet`] it owns persists across Θ applications: EDB indexes are
/// built exactly once, and IDB indexes are extended incrementally from each
/// round's newly derived tuples instead of being rebuilt from scratch.
///
/// The context is [`Sync`]: during a parallel round, worker threads share
/// it read-only (the index set behind its `RwLock` is only written between
/// rounds, by the thread driving the fixpoint).
#[derive(Debug)]
pub struct EvalContext {
    /// EDB relations by EDB id (absent in the database = empty).
    pub edb: Vec<Relation>,
    /// `|A|` — the range of `Domain` plan steps.
    pub universe_size: usize,
    /// Persistent indexes, maintained across Θ applications. The lock lets
    /// the read-only evaluation entry points keep their `&EvalContext`
    /// signatures while the cache warms, and lets parallel rounds share the
    /// warmed set across workers through one read guard.
    indexes: RwLock<IndexSet>,
    /// Number of Θ applications routed through the parallel executor
    /// (observability: the auto mode's sequential fallback is tested
    /// against this). In forced mode a one-task application counts even
    /// though no extra thread is spawned for it.
    parallel_applications: AtomicU64,
}

impl EvalContext {
    /// Builds a context for `cp` over `db`.
    ///
    /// # Errors
    /// Propagates arity conflicts between the program and the database.
    pub fn new(cp: &CompiledProgram, db: &Database) -> Result<Self> {
        Ok(EvalContext {
            edb: cp.edb_relations(db)?,
            universe_size: db.universe_size(),
            indexes: RwLock::new(IndexSet::default()),
            parallel_applications: AtomicU64::new(0),
        })
    }

    /// Number of persistent indexes currently held (observability / tests).
    pub fn num_indexes(&self) -> usize {
        self.read_indexes().len()
    }

    /// Number of Θ applications over this context routed through the
    /// parallel executor. Auto mode must leave this at zero when every
    /// round stays below the parallel threshold.
    pub fn parallel_applications(&self) -> u64 {
        self.parallel_applications.load(Ordering::Relaxed)
    }

    /// Takes the shared read guard, recovering from lock poisoning: the
    /// index set is pure derived data, so if a writer panicked mid-update
    /// the whole cache is dropped (and rebuilt lazily by the next
    /// application's prepare step) instead of serving a possibly-torn index.
    fn read_indexes(&self) -> std::sync::RwLockReadGuard<'_, IndexSet> {
        match self.indexes.read() {
            Ok(guard) => guard,
            Err(_) => {
                {
                    let mut w = self.indexes.write().unwrap_or_else(PoisonError::into_inner);
                    *w = IndexSet::default();
                }
                self.indexes.clear_poison();
                self.indexes.read().unwrap_or_else(PoisonError::into_inner)
            }
        }
    }

    /// Takes the write guard, recovering from lock poisoning the same way
    /// as [`read_indexes`](Self::read_indexes): clear the cache, clear the
    /// poison flag, continue.
    fn write_indexes(&self) -> std::sync::RwLockWriteGuard<'_, IndexSet> {
        match self.indexes.write() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = IndexSet::default();
                self.indexes.clear_poison();
                guard
            }
        }
    }

    /// Runs [`IndexSet::debug_validate`] over this context's indexes for
    /// `rel`: postings must be sorted and complete. Test/debug aid for the
    /// patch/rollback paths the incremental well-founded engine exercises.
    ///
    /// # Panics
    /// Panics if any index over `rel` violates the invariant.
    pub fn debug_validate_indexes(&self, rel: &Relation) {
        self.read_indexes().debug_validate(rel);
    }

    /// Removes `t` from `rel` while keeping this context's indexes over it
    /// consistent (patched in place, not rebuilt). Returns whether the tuple
    /// was present.
    ///
    /// This is the deletion primitive of the incremental well-founded
    /// engine: the decreasing side loses a handful of tuples per
    /// alternation, and rebuilding its indexes each time would cost more
    /// than the alternation itself.
    ///
    /// Returns the dense positions the swap-remove touched (see
    /// [`Relation::remove_tracked`]) so transactional callers can undo the
    /// removal with [`Relation::restore_swap_removed`], or `None` if the
    /// tuple was absent.
    pub(crate) fn remove_patched(&self, rel: &mut Relation, t: &Tuple) -> Option<(usize, usize)> {
        let old_len = rel.len();
        let (removed_pos, moved_from) = rel.remove_tracked(t)?;
        self.write_indexes()
            .patch_swap_remove(rel, t, removed_pos, moved_from, old_len);
        Some((removed_pos, moved_from))
    }

    /// Removes `t` from the EDB relation `edb_id` while keeping the indexes
    /// over it consistent, like [`EvalContext::remove_patched`] but for the
    /// context's own relations. The materialized-view repair path retracts
    /// base facts through this so the warm EDB indexes survive the update;
    /// the returned swap positions feed its rollback log.
    pub(crate) fn remove_edb_patched(
        &mut self,
        edb_id: usize,
        t: &Tuple,
    ) -> Option<(usize, usize)> {
        let rel = &mut self.edb[edb_id];
        let old_len = rel.len();
        let (removed_pos, moved_from) = rel.remove_tracked(t)?;
        self.indexes
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .patch_swap_remove(rel, t, removed_pos, moved_from, old_len);
        Some((removed_pos, moved_from))
    }
}

impl Clone for EvalContext {
    fn clone(&self) -> Self {
        EvalContext {
            edb: self.edb.clone(),
            universe_size: self.universe_size,
            // The warmed indexes are keyed by relation id and every cloned
            // relation gets a fresh id, so copying them would only carry
            // dead weight that misses on every probe — start empty.
            indexes: RwLock::new(IndexSet::default()),
            parallel_applications: AtomicU64::new(0),
        }
    }
}

/// Which plan set of each rule an application executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanKind {
    /// The full body plan.
    Full,
    /// One delta plan per positive IDB atom occurrence (semi-naive rounds);
    /// the delta interpretation holds the last round's new tuples.
    PosDelta,
    /// One delta plan per negated IDB atom occurrence (the incremental
    /// alternating fixpoint's restart round); the delta interpretation holds
    /// the tuples that just *left* the frozen negation context.
    NegDelta,
    /// One delta plan per positive **EDB** atom occurrence (materialized
    /// view repair); the delta is **EDB-shaped** — indexed by EDB id — and
    /// holds the facts just inserted into the extensional database.
    EdbDelta,
    /// One delta plan per negated **EDB** atom occurrence (materialized view
    /// repair); the EDB-shaped delta holds retracted facts (damage
    /// enumeration) or inserted facts (top-up seeding), with the driven
    /// occurrence consumed exactly like [`PlanKind::NegDelta`].
    EdbNegDelta,
}

/// Where [`Source::Delta`] scans read their tuples.
///
/// The delta-first invariant makes every delta occurrence an **unkeyed
/// leading scan** — deltas are never probed, never membership-checked and
/// never indexed — so a delta only has to be a tuple slice, not a relation.
/// That lets semi-naive round drivers skip materializing Δ entirely: the
/// tuples a round adds are exactly the dense suffix `s` grew by, and
/// [`DeltaSource::Suffix`] points straight at it (no per-tuple clone, no
/// hash insert, no dedup — the suffix is new by construction).
#[derive(Clone, Copy)]
pub(crate) enum DeltaSource<'a> {
    /// A materialized delta interpretation (IDB-shaped for
    /// [`PlanKind::PosDelta`]/[`PlanKind::NegDelta`], EDB-shaped for the
    /// view-maintenance plan kinds).
    Interp(&'a Interp),
    /// The delta is the dense suffix of the live interpretation `s`,
    /// starting at these per-IDB-relation marks.
    Suffix(&'a [usize]),
}

/// Resolves the tuples a [`Source::Delta`] scan iterates.
pub(crate) fn delta_scan_tuples<'a>(
    s: &'a Interp,
    delta: Option<DeltaSource<'a>>,
    pred: PredRef,
) -> &'a [Tuple] {
    let delta = delta.expect("delta scan outside a delta application");
    match (delta, pred) {
        // The materialized delta is shaped for the plan kind being run:
        // IDB-indexed for Pos/NegDelta plans, EDB-indexed for Edb*Delta
        // plans. One application only ever resolves one of the two shapes,
        // since each plan kind drives deltas through one predicate class.
        (DeltaSource::Interp(d), PredRef::Edb(i) | PredRef::Idb(i)) => d.get(i).dense(),
        (DeltaSource::Suffix(marks), PredRef::Idb(i)) => &s.get(i).dense()[marks[i]..],
        (DeltaSource::Suffix(_), PredRef::Edb(_)) => {
            unreachable!("suffix deltas are IDB-shaped (semi-naive rounds)")
        }
    }
}

/// Options threading through one Θ application.
struct ApplyOpts<'a> {
    /// Restrict to these rule indices (source order); `None` = all rules.
    rules: Option<&'a [usize]>,
    /// Which plan set to execute.
    plans: PlanKind,
    /// Resolves [`Source::Delta`] scans (the per-round delta for
    /// [`PlanKind::PosDelta`], the removed set for [`PlanKind::NegDelta`]).
    delta: Option<DeltaSource<'a>>,
    /// If set, negative IDB literals read this interpretation instead of `s`.
    neg: Option<&'a Interp>,
    /// Replanned plan sets indexed by source rule, overriding the compiled
    /// program's plans — the round driver re-plans per round against live
    /// relation cardinalities and executes through this.
    overrides: Option<&'a [RulePlans]>,
}

/// `Θ(S)`.
pub fn apply(cp: &CompiledProgram, ctx: &EvalContext, s: &Interp) -> Interp {
    run(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules: None,
            plans: PlanKind::Full,
            delta: None,
            neg: None,
            overrides: None,
        },
    )
}

/// `Θ(S)` under governance: emitted tuples count toward the budget and the
/// deadline, cancellation token and failpoints are observed mid-application.
/// The naive round loops call this once per round; `gov = None` (or an inert
/// governor) reduces to [`apply`].
pub(crate) fn apply_governed(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    gov: Option<&Governor>,
) -> Result<Interp> {
    let mut out = cp.empty_interp();
    run_into(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules: None,
            plans: PlanKind::Full,
            delta: None,
            neg: None,
            overrides: None,
        },
        &mut out,
        &EvalOptions::sequential(),
        gov,
    )?;
    Ok(out)
}

/// `Θ(S)` restricted to the rules with the given source indices.
pub fn apply_subset(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    rules: &[usize],
) -> Interp {
    run(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules: Some(rules),
            plans: PlanKind::Full,
            delta: None,
            neg: None,
            overrides: None,
        },
    )
}

/// Semi-naive step: derivations whose body uses at least one `delta` tuple
/// in a positive IDB position. Rules without positive IDB atoms produce
/// nothing here (they fire exhaustively in round one).
pub fn apply_delta(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    delta: &Interp,
    rules: Option<&[usize]>,
) -> Interp {
    run(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules,
            plans: PlanKind::PosDelta,
            delta: Some(DeltaSource::Interp(delta)),
            neg: None,
            overrides: None,
        },
    )
}

/// `Θ(S)` with negative IDB literals evaluated against `neg` instead of `s`
/// (the well-founded Γ transform).
pub fn apply_with_neg(cp: &CompiledProgram, ctx: &EvalContext, s: &Interp, neg: &Interp) -> Interp {
    run(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules: None,
            plans: PlanKind::Full,
            delta: None,
            neg: Some(neg),
            overrides: None,
        },
    )
}

/// Semi-naive step of the well-founded Γ transform: derivations using at
/// least one `delta` tuple in a positive IDB position, with negative IDB
/// literals frozen at `neg`.
///
/// Sound for the same reason [`apply_delta`] is sound for positive programs:
/// with the negations frozen at a fixed `neg`, the positivized operator is
/// **monotone** in `s`, so a ground body instance newly true this round must
/// have gained a positive IDB tuple — the standard delta argument applies
/// verbatim. (Rules without positive IDB atoms derive nothing here; the
/// round driver fires them in its full first round.)
pub fn apply_delta_with_neg(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    delta: &Interp,
    neg: &Interp,
    rules: Option<&[usize]>,
) -> Interp {
    run(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules,
            plans: PlanKind::PosDelta,
            delta: Some(DeltaSource::Interp(delta)),
            neg: Some(neg),
            overrides: None,
        },
    )
}

/// Fully general Θ application (any combination of rule subset, delta
/// restriction and frozen negation context), written into a caller-owned
/// output buffer, optionally across worker threads.
///
/// `out` is cleared first ([`Relation::clear`] keeps its allocations), so a
/// round driver can reuse one scratch interpretation across every round of a
/// fixpoint instead of allocating fresh relations per application.
///
/// `par` controls the parallel executor (see the module docs): with more
/// than one effective thread and a work estimate at or above
/// `par.parallel_threshold`, the application forks; the result is
/// bit-identical either way.
///
/// `gov` is the round driver's resource governor: emissions are reported to
/// it from the executors' inner loops, the `index-extend` failpoint fires
/// here, and worker panics surface as [`EvalError::WorkerPanic`]. On any
/// `Err` the contents of `out` are unspecified (partially filled) and must
/// be discarded by the caller.
///
/// # Errors
/// [`EvalError::WorkerPanic`] if a parallel task panicked;
/// budget/cancellation/failpoint errors when `gov` tripped.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_general_into(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    rules: Option<&[usize]>,
    plans: PlanKind,
    delta: Option<DeltaSource<'_>>,
    neg: Option<&Interp>,
    overrides: Option<&[RulePlans]>,
    out: &mut Interp,
    par: &EvalOptions,
    gov: Option<&Governor>,
) -> Result<()> {
    debug_assert_eq!(
        plans == PlanKind::Full,
        delta.is_none(),
        "delta interpretations accompany exactly the delta plan kinds"
    );
    debug_assert!(
        overrides.is_none_or(|o| o.len() == cp.rules.len()),
        "plan overrides must cover every rule"
    );
    run_into(
        cp,
        ctx,
        s,
        &ApplyOpts {
            rules,
            plans,
            delta,
            neg,
            overrides,
        },
        out,
        par,
        gov,
    )
}

/// Resolves a plan's **full-source** relation reference against the
/// evaluation state. [`Source::Delta`] never resolves to a relation — the
/// delta-first invariant keeps deltas as unkeyed leading scans, so delta
/// tuples flow through [`delta_scan_tuples`] as plain slices.
pub(crate) fn resolve_relation<'a>(
    ctx: &'a EvalContext,
    s: &'a Interp,
    pred: PredRef,
    source: Source,
) -> &'a Relation {
    debug_assert_eq!(
        source,
        Source::Full,
        "delta sources are scanned as slices, never resolved as relations"
    );
    match pred {
        PredRef::Edb(i) => &ctx.edb[i],
        PredRef::Idb(i) => s.get(i),
    }
}

/// Registers (and incrementally refreshes) the indexes `plan`'s keyed scans
/// will probe. Called once per plan per Θ application, before execution
/// starts — the only point at which the index set is written.
fn prepare_plan(indexes: &mut IndexSet, plan: &Plan, ctx: &EvalContext, s: &Interp) {
    for step in &plan.steps {
        if let Step::Scan {
            pred,
            source,
            key_cols,
            ..
        } = step
        {
            if !key_cols.is_empty() {
                // Keyed scans are never delta scans (the delta-first
                // invariant), so the relation always resolves.
                indexes.ensure(resolve_relation(ctx, s, *pred, *source), key_cols);
            }
        }
    }
}

/// Enumerates every variable binding that satisfies a plan containing **no
/// IDB references** (positive EDB atoms, EDB negations, equalities,
/// inequalities and `Domain` steps only).
///
/// The plan's head must be the identity tuple over all rule variables, so
/// the emitted tuples *are* the bindings. Program grounding (the fixpoint
/// completion encoding of §3) uses this to enumerate rule instantiations
/// with the extensional part already evaluated away.
///
/// # Panics
/// Panics (in debug builds) if the plan references IDB relations.
pub fn enumerate_bindings(plan: &Plan, ctx: &EvalContext) -> Vec<Tuple> {
    debug_assert!(
        plan.steps.iter().all(|s| !matches!(
            s,
            Step::Scan {
                pred: PredRef::Idb(_),
                ..
            } | Step::FilterPos {
                pred: PredRef::Idb(_),
                ..
            } | Step::FilterNeg {
                pred: PredRef::Idb(_),
                ..
            }
        )),
        "grounding plans must not reference IDB relations"
    );
    let empty = Interp::from_relations(Vec::new());
    let mut out = Relation::new(plan.num_vars);
    {
        let mut indexes = ctx.write_indexes();
        indexes.begin_application();
        prepare_plan(&mut indexes, plan, ctx, &empty);
    }
    let indexes = ctx.read_indexes();
    let env = ExecEnv {
        ctx,
        s: &empty,
        delta: None,
        neg: &empty,
        indexes: &indexes,
        gov: None,
    };
    let kind = EvalOptions::sequential().exec_kind();
    exec_plan(&env, kind, plan, &mut out);
    #[cfg(debug_assertions)]
    if kind == ExecKind::Vm {
        let mut oracle = Relation::new(plan.num_vars);
        tree::run_plan(&env, plan, &mut oracle);
        assert_eq!(
            out.dense(),
            oracle.dense(),
            "VM diverged from the tree oracle in enumerate_bindings"
        );
    }
    out.sorted()
}

/// Synchronizes the persistent indexes probed by the **check plans** with
/// the current state of `s` (and the EDB). Call before a batch of
/// [`derivable`] checks; between batches, only relations that grew need to
/// be (and are) consumed incrementally.
pub(crate) fn sync_check_indexes(cp: &CompiledProgram, ctx: &EvalContext, s: &Interp) {
    let mut indexes = ctx.write_indexes();
    indexes.begin_application();
    for rule in &cp.rules {
        prepare_plan(&mut indexes, &rule.check_plan, ctx, s);
    }
}

/// One-step derivability: is `tuple` derivable as IDB predicate `pred` by
/// some rule instance, with positive IDB atoms read from `s` and negative
/// IDB literals read from `neg`?
///
/// Runs each candidate rule's check plan with the head variables pre-bound
/// from `tuple`, so body atoms probe the persistent hash-join indexes
/// (prepare them with [`sync_check_indexes`]) and the search exits on the
/// first witness. The incremental well-founded engine uses this to confirm
/// which tuples of the previous `U` survive into the next one.
pub(crate) fn derivable(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    pred: usize,
    tuple: &Tuple,
    s: &Interp,
    neg: &Interp,
    kind: ExecKind,
) -> bool {
    let indexes = ctx.read_indexes();
    let env = ExecEnv {
        ctx,
        s,
        delta: None,
        neg,
        indexes: &indexes,
        gov: None,
    };
    let mut vals: Vec<Const> = Vec::new();
    let mut bound: Vec<bool> = Vec::new();
    for rule in cp.rules.iter().filter(|r| r.head_pred == pred) {
        vals.clear();
        vals.resize(rule.num_vars, Const(0));
        bound.clear();
        bound.resize(rule.num_vars, false);
        if !unify_head(&rule.head_terms, tuple, &mut vals, &mut bound) {
            continue;
        }
        let hit = match kind {
            ExecKind::Vm => {
                #[cfg(debug_assertions)]
                let expected = tree::probe_plan(
                    &env,
                    &rule.check_plan,
                    &mut vals.clone(),
                    &mut bound.clone(),
                );
                let hit = exec::probe_program(&env, &rule.check_plan.program, &mut vals);
                #[cfg(debug_assertions)]
                assert_eq!(
                    hit, expected,
                    "VM probe diverged from the tree oracle in derivable"
                );
                hit
            }
            ExecKind::Tree => tree::probe_plan(&env, &rule.check_plan, &mut vals, &mut bound),
        };
        if hit {
            return true;
        }
    }
    false
}

/// Batch one-step derivability: [`derivable`] for every tuple of `list`,
/// invoking `confirm` with the position of each derivable one. `s` must
/// stay unmutated across the whole batch — that lets each rule's check
/// program be resolved against the environment **once** and reused for all
/// tuples, which is where a batch beats a loop of single checks (the
/// rederivation sweeps run tens of thousands of these per alternation).
#[allow(clippy::too_many_arguments)]
pub(crate) fn derivable_batch(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    pred: usize,
    list: &[Tuple],
    s: &Interp,
    neg: &Interp,
    kind: ExecKind,
    mut confirm: impl FnMut(usize),
) {
    let indexes = ctx.read_indexes();
    let env = ExecEnv {
        ctx,
        s,
        delta: None,
        neg,
        indexes: &indexes,
        gov: None,
    };
    let rules: Vec<&CompiledRule> = cp.rules.iter().filter(|r| r.head_pred == pred).collect();
    let resolved: Vec<exec::ResolvedProgram<'_>> = match kind {
        ExecKind::Vm => rules
            .iter()
            .map(|r| exec::resolve_program(&env, &r.check_plan.program))
            .collect(),
        ExecKind::Tree => Vec::new(),
    };
    let mut vals: Vec<Const> = Vec::new();
    let mut bound: Vec<bool> = Vec::new();
    for (ti, tuple) in list.iter().enumerate() {
        'rules: for (ri, rule) in rules.iter().enumerate() {
            vals.clear();
            vals.resize(rule.num_vars, Const(0));
            bound.clear();
            bound.resize(rule.num_vars, false);
            if !unify_head(&rule.head_terms, tuple, &mut vals, &mut bound) {
                continue;
            }
            let hit = match kind {
                ExecKind::Vm => {
                    #[cfg(debug_assertions)]
                    let expected = tree::probe_plan(
                        &env,
                        &rule.check_plan,
                        &mut vals.clone(),
                        &mut bound.clone(),
                    );
                    let hit = resolved[ri].probe(&env, &mut vals);
                    #[cfg(debug_assertions)]
                    assert_eq!(
                        hit, expected,
                        "VM probe diverged from the tree oracle in derivable_batch"
                    );
                    hit
                }
                ExecKind::Tree => tree::probe_plan(&env, &rule.check_plan, &mut vals, &mut bound),
            };
            if hit {
                confirm(ti);
                break 'rules;
            }
        }
    }
}

/// Unifies a rule head against a concrete tuple, binding head variables.
/// Fails on constant mismatches and on inconsistent repeated variables.
fn unify_head(head: &[CTerm], tuple: &Tuple, vals: &mut [Const], bound: &mut [bool]) -> bool {
    debug_assert_eq!(head.len(), tuple.arity());
    for (term, &c) in head.iter().zip(tuple.items()) {
        match term {
            CTerm::Const(k) => {
                if *k != c {
                    return false;
                }
            }
            CTerm::Var(v) => {
                if bound[*v] {
                    if vals[*v] != c {
                        return false;
                    }
                } else {
                    vals[*v] = c;
                    bound[*v] = true;
                }
            }
        }
    }
    true
}

/// Runs one plan through the selected executor.
fn exec_plan(env: &ExecEnv<'_>, kind: ExecKind, plan: &Plan, out: &mut Relation) {
    match kind {
        ExecKind::Vm => exec::run_program(env, &plan.program, out, None),
        ExecKind::Tree => tree::run_plan(env, plan, out),
    }
}

/// Runs one plan with its outermost loop restricted to `lo..hi` through the
/// selected executor (the unit of parallel work).
fn exec_plan_slice(
    env: &ExecEnv<'_>,
    kind: ExecKind,
    plan: &Plan,
    lo: usize,
    hi: usize,
    out: &mut Relation,
) {
    match kind {
        ExecKind::Vm => exec::run_program(env, &plan.program, out, Some((lo, hi))),
        ExecKind::Tree => tree::run_plan_slice(env, plan, lo, hi, out),
    }
}

fn run(cp: &CompiledProgram, ctx: &EvalContext, s: &Interp, opts: &ApplyOpts<'_>) -> Interp {
    let mut out = cp.empty_interp();
    // Ungoverned and sequential: the only failure mode run_into has left is
    // a worker panic, and the sequential path cannot hit it. Re-raising
    // keeps the public one-shot wrappers infallible.
    run_into(cp, ctx, s, opts, &mut out, &EvalOptions::sequential(), None)
        .unwrap_or_else(|e| panic!("{e}"));
    out
}

/// One `(rule, plan, outer-range)` unit of parallel work. Tasks are built —
/// and their outputs merged — in sequential execution order, which is what
/// makes the parallel application bit-identical to the sequential one.
struct Task<'a> {
    plan: &'a Plan,
    head_pred: usize,
    /// Contiguous range of the plan's outermost iteration, or `None` to run
    /// the plan whole (its first step is not splittable).
    range: Option<(usize, usize)>,
}

/// How a plan's outermost step can be partitioned across workers.
enum Outer {
    /// First step iterates a relation's dense storage: `0..len` positions.
    Dense(usize),
    /// First step ranges a variable over the universe: `0..len` constants.
    Domain(usize),
    /// Not splittable (keyed first scan, filter-only plan, empty body):
    /// execute the plan as one task.
    Whole,
}

fn outer_extent(
    ctx: &EvalContext,
    s: &Interp,
    delta: Option<DeltaSource<'_>>,
    plan: &Plan,
) -> Outer {
    match plan.steps.first() {
        Some(Step::Scan {
            pred,
            source,
            key_cols,
            ..
        }) if key_cols.is_empty() => Outer::Dense(match source {
            Source::Delta => delta_scan_tuples(s, delta, *pred).len(),
            Source::Full => resolve_relation(ctx, s, *pred, *source).len(),
        }),
        Some(Step::Domain { .. }) => Outer::Domain(ctx.universe_size),
        _ => Outer::Whole,
    }
}

fn run_into(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    s: &Interp,
    opts: &ApplyOpts<'_>,
    out: &mut Interp,
    par: &EvalOptions,
    gov: Option<&Governor>,
) -> Result<()> {
    // Demote an inert governor to `None` up front so the executors' inner
    // loops pay nothing when no budget, token or failpoint is armed.
    let gov = gov.and_then(Governor::as_active);

    for i in 0..out.len() {
        out.get_mut(i).clear();
    }

    let all_indices: Vec<usize>;
    let selected: &[usize] = match opts.rules {
        Some(r) => r,
        None => {
            all_indices = (0..cp.rules.len()).collect();
            &all_indices
        }
    };

    // Bring every index the selected plans probe up to date with the
    // relations as of this application (incremental: only the dense suffix
    // added since the last application is consumed). Execution then only
    // *reads* the index set, so probes return borrowed slices and worker
    // threads share one read guard.
    if let Some(g) = gov {
        g.fail_at(SITE_INDEX_EXTEND)?;
    }
    {
        let mut indexes = ctx.write_indexes();
        indexes.begin_application();
        for &ri in selected {
            for plan in plans_of(cp, ri, opts.overrides, opts.plans) {
                prepare_plan(&mut indexes, plan, ctx, s);
            }
        }
    }
    let indexes = ctx.read_indexes();
    let env = ExecEnv {
        ctx,
        s,
        delta: opts.delta,
        neg: opts.neg.unwrap_or(s),
        indexes: &indexes,
        gov,
    };
    let kind = par.exec_kind();

    let mut ran_parallel = false;
    let workers = par.effective_threads();
    if workers > 1 {
        // Estimate the round's work as the summed outer-loop extent of its
        // plans (for delta rounds: the delta size). Below the threshold the
        // fork costs more than it buys. Extents are resolved once and
        // reused for task building.
        let mut extents: Vec<(&Plan, usize, Outer)> = Vec::new();
        let mut estimate = 0usize;
        for &ri in selected {
            let rule = &cp.rules[ri];
            for plan in plans_of(cp, ri, opts.overrides, opts.plans) {
                let extent = outer_extent(ctx, s, opts.delta, plan);
                estimate += match extent {
                    Outer::Dense(n) | Outer::Domain(n) => n,
                    Outer::Whole => 1,
                };
                extents.push((plan, rule.head_pred, extent));
            }
        }
        // A threshold of 0 *forces* the parallel path (tests/CI drive every
        // round through it); otherwise the estimate must clear the bar.
        let forced = par.parallel_threshold == 0;
        if estimate >= par.parallel_threshold.max(1) {
            let tasks = build_tasks(&extents, workers, estimate, forced);
            if tasks.len() > 1 || (forced && !tasks.is_empty()) {
                run_tasks_parallel(&env, kind, &tasks, workers, out)?;
                ctx.parallel_applications.fetch_add(1, Ordering::Relaxed);
                ran_parallel = true;
            }
        }
    }

    if !ran_parallel {
        'rules: for &ri in selected {
            let rule = &cp.rules[ri];
            for plan in plans_of(cp, ri, opts.overrides, opts.plans) {
                exec_plan(&env, kind, plan, out.get_mut(rule.head_pred));
                if gov.is_some_and(Governor::tripped) {
                    break 'rules;
                }
            }
        }
    }

    // Surface any mid-application trip (budget, cancellation, failpoint)
    // before the debug oracle below: a tripped application truncated its
    // output, so replaying it whole would report a false divergence. The
    // caller discards `out` on `Err`.
    if let Some(g) = gov {
        g.check()?;
    }

    // Debug oracle: replay every VM application on the tree executor and
    // require bit-identical dense storage — same tuples, same insertion
    // order. This is the standing proof obligation that lowering preserved
    // the candidate order exactly. The replay runs ungoverned so it cannot
    // double-count emissions or re-fire one-shot failpoints.
    #[cfg(debug_assertions)]
    if kind == ExecKind::Vm {
        let oracle_env = ExecEnv {
            ctx,
            s,
            delta: opts.delta,
            neg: opts.neg.unwrap_or(s),
            indexes: &indexes,
            gov: None,
        };
        let mut oracle = Interp::from_relations(
            (0..out.len())
                .map(|i| Relation::new(out.get(i).arity()))
                .collect(),
        );
        for &ri in selected {
            let rule = &cp.rules[ri];
            for plan in plans_of(cp, ri, opts.overrides, opts.plans) {
                tree::run_plan(&oracle_env, plan, oracle.get_mut(rule.head_pred));
            }
        }
        for i in 0..out.len() {
            assert_eq!(
                out.get(i).dense(),
                oracle.get(i).dense(),
                "VM diverged from the tree oracle on relation {i} (parallel={ran_parallel})"
            );
        }
    }
    Ok(())
}

/// Splits the selected plans (with their pre-resolved outer extents) into
/// order-contiguous tasks, at most a few per worker, never slicing below a
/// minimum grain (a sliver of outer loop per thread would be all merge
/// overhead). In `forced` mode (threshold 0) the grain floor drops to 1 so
/// even tiny rounds genuinely shard — that mode exists to drag every round
/// through the parallel path under test.
fn build_tasks<'a>(
    extents: &[(&'a Plan, usize, Outer)],
    workers: usize,
    estimate: usize,
    forced: bool,
) -> Vec<Task<'a>> {
    /// Minimum outer-loop candidates per task (auto mode).
    const MIN_GRAIN: usize = 32;
    /// Task-queue depth per worker (work stealing evens out skew).
    const TASKS_PER_WORKER: usize = 4;

    let floor = if forced { 1 } else { MIN_GRAIN };
    let grain = (estimate / (workers * TASKS_PER_WORKER)).max(floor);
    let mut tasks = Vec::new();
    for &(plan, head_pred, ref extent) in extents {
        match *extent {
            Outer::Dense(0) | Outer::Domain(0) => {} // nothing to scan
            Outer::Dense(n) | Outer::Domain(n) => {
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + grain).min(n);
                    tasks.push(Task {
                        plan,
                        head_pred,
                        range: Some((lo, hi)),
                    });
                    lo = hi;
                }
            }
            Outer::Whole => tasks.push(Task {
                plan,
                head_pred,
                range: None,
            }),
        }
    }
    tasks
}

/// Executes `tasks` across `workers` scoped threads (the calling thread
/// participates) and merges the per-task outputs into `out` in task order.
///
/// The per-task scratch relations are built fresh each application —
/// [`Relation::new`] allocates nothing until a task's first insertion, and
/// the auto threshold keeps parallel rounds large enough that the merge
/// clone (each derived tuple is copied once into `out`) is noise next to
/// plan execution.
///
/// Each task body runs under [`std::panic::catch_unwind`]: a panicking plan
/// execution poisons only its own task, the first panic's payload is
/// recorded, the remaining workers stop claiming tasks, and the application
/// returns [`EvalError::WorkerPanic`] instead of propagating the panic into
/// [`std::thread::scope`] (which would abort the process on the second
/// concurrent panic).
///
/// # Errors
/// [`EvalError::WorkerPanic`] carrying the first panic's message; `out` is
/// left cleared (no partial merge).
fn run_tasks_parallel(
    env: &ExecEnv<'_>,
    kind: ExecKind,
    tasks: &[Task<'_>],
    workers: usize,
    out: &mut Interp,
) -> Result<()> {
    let outputs: Vec<Mutex<Relation>> = tasks
        .iter()
        .map(|t| Mutex::new(Relation::new(out.get(t.head_pred).arity())))
        .collect();
    let cursor = AtomicUsize::new(0);
    let first_panic: Mutex<Option<String>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let worker = || {
        loop {
            if abort.load(Ordering::Relaxed) {
                return;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(task) = tasks.get(i) else { return };
            // Each task index is claimed exactly once, so the lock is
            // uncontended — it exists to hand the worker `&mut` access.
            let mut rel = outputs[i].lock().unwrap_or_else(PoisonError::into_inner);
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if env.gov.is_some_and(Governor::should_inject_worker_panic) {
                    panic!("worker-panic failpoint fired");
                }
                match task.range {
                    Some((lo, hi)) => exec_plan_slice(env, kind, task.plan, lo, hi, &mut rel),
                    None => exec_plan(env, kind, task.plan, &mut rel),
                }
            }));
            if let Err(payload) = run {
                let mut slot = first_panic.lock().unwrap_or_else(PoisonError::into_inner);
                if slot.is_none() {
                    *slot = Some(panic_message(payload.as_ref()));
                }
                abort.store(true, Ordering::Relaxed);
                return;
            }
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..workers.min(tasks.len()) {
            scope.spawn(worker);
        }
        worker();
    });
    if let Some(message) = first_panic
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(EvalError::WorkerPanic { message });
    }
    // Deterministic merge: task order is sequential execution order, and
    // union keeps first occurrences, so `out` ends up bit-identical to a
    // sequential application.
    for (task, slot) in tasks.iter().zip(outputs) {
        let rel = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
        out.get_mut(task.head_pred).union_with(&rel);
    }
    Ok(())
}

/// Extracts a human-readable message from a panic payload (the common
/// `&str` / `String` cases; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The plan set of rule `ri` that a [`PlanKind`] application executes —
/// from the per-round overrides when the caller replanned, otherwise the
/// compiled program's compile-time plans.
fn plans_of<'a>(
    cp: &'a CompiledProgram,
    ri: usize,
    overrides: Option<&'a [RulePlans]>,
    kind: PlanKind,
) -> &'a [Plan] {
    match (overrides, kind) {
        (Some(o), PlanKind::Full) => std::slice::from_ref(&o[ri].full),
        (Some(o), PlanKind::PosDelta) => &o[ri].delta,
        (Some(o), PlanKind::NegDelta) => &o[ri].neg_delta,
        (Some(o), PlanKind::EdbDelta) => &o[ri].edb_delta,
        (Some(o), PlanKind::EdbNegDelta) => &o[ri].edb_neg_delta,
        (None, PlanKind::Full) => std::slice::from_ref(&cp.rules[ri].full_plan),
        (None, PlanKind::PosDelta) => &cp.rules[ri].delta_plans,
        (None, PlanKind::NegDelta) => &cp.rules[ri].neg_delta_plans,
        (None, PlanKind::EdbDelta) => &cp.rules[ri].edb_delta_plans,
        (None, PlanKind::EdbNegDelta) => &cp.rules[ri].edb_neg_delta_plans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::parse_program;

    fn setup(src: &str, db: &Database) -> (CompiledProgram, EvalContext) {
        let p = parse_program(src).unwrap();
        let cp = CompiledProgram::compile(&p, db).unwrap();
        let ctx = EvalContext::new(&cp, db).unwrap();
        (cp, ctx)
    }

    fn t1(x: u32) -> Tuple {
        Tuple::from_ids(&[x])
    }

    fn t2(x: u32, y: u32) -> Tuple {
        Tuple::from_ids(&[x, y])
    }

    #[test]
    fn eval_context_is_send_and_sync() {
        // Parallel rounds share the context (and interpretations) across
        // worker threads; this fails to compile if interior mutability ever
        // takes `Sync` away again.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalContext>();
        assert_send_sync::<Interp>();
        assert_send_sync::<CompiledProgram>();
    }

    #[test]
    fn theta_of_pi1_on_empty_t() {
        // Paper §2: for pi_1 on D=(A,E), Θ(T) = {a : ∃y (E(y,a) ∧ ¬T(y))}.
        // With T = ∅: every vertex with an incoming edge.
        let db = DiGraph::path(4).to_database("E");
        let (cp, ctx) = setup("T(x) :- E(y, x), !T(y).", &db);
        let theta = apply(&cp, &ctx, &cp.empty_interp());
        let tid = cp.idb_id("T").unwrap();
        assert_eq!(theta.get(tid).sorted(), vec![t1(1), t1(2), t1(3)]);
    }

    #[test]
    fn theta_fixpoint_check_on_path() {
        // On L_4 (vertices v0..v3), the unique fixpoint of pi_1 is {v1, v3}
        // (the paper's {2, 4, ...} in 1-based numbering).
        let db = DiGraph::path(4).to_database("E");
        let (cp, ctx) = setup("T(x) :- E(y, x), !T(y).", &db);
        let tid = cp.idb_id("T").unwrap();
        let mut fix = cp.empty_interp();
        fix.insert(tid, t1(1));
        fix.insert(tid, t1(3));
        assert_eq!(apply(&cp, &ctx, &fix), fix);
        // And {v1, v2} is not a fixpoint.
        let mut not_fix = cp.empty_interp();
        not_fix.insert(tid, t1(1));
        not_fix.insert(tid, t1(2));
        assert_ne!(apply(&cp, &ctx, &not_fix), not_fix);
    }

    #[test]
    fn toggle_rule_has_no_fixpoint_on_nonempty_universe() {
        // T(z) <- !T(w): Θ(∅) = A, Θ(A) = ∅ — the paper's "toggle".
        let mut db = Database::new();
        db.universe_mut().intern("a");
        db.universe_mut().intern("b");
        let (cp, ctx) = setup("T(z) :- !T(w).", &db);
        let empty = cp.empty_interp();
        let theta1 = apply(&cp, &ctx, &empty);
        assert_eq!(theta1.total_tuples(), 2); // T = A
        let theta2 = apply(&cp, &ctx, &theta1);
        assert!(theta2.all_empty()); // back to ∅
    }

    #[test]
    fn tc_single_application() {
        let db = DiGraph::path(3).to_database("E");
        let (cp, ctx) = setup("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let sid = cp.idb_id("S").unwrap();
        let s1 = apply(&cp, &ctx, &cp.empty_interp());
        assert_eq!(s1.get(sid).sorted(), vec![t2(0, 1), t2(1, 2)]);
        let s2 = apply(&cp, &ctx, &s1);
        assert_eq!(s2.get(sid).sorted(), vec![t2(0, 1), t2(0, 2), t2(1, 2)]);
    }

    #[test]
    fn constants_in_heads_range_free_vars() {
        // G(z, 1) <- . over a 2-element universe {0, 1}.
        let mut db = Database::new();
        db.universe_mut().intern("0");
        db.universe_mut().intern("1");
        let (cp, ctx) = setup("G(z, 1).", &db);
        let g = cp.idb_id("G").unwrap();
        let theta = apply(&cp, &ctx, &cp.empty_interp());
        assert_eq!(theta.get(g).sorted(), vec![t2(0, 1), t2(1, 1)]);
    }

    #[test]
    fn zero_ary_predicates() {
        let mut db = Database::new();
        db.universe_mut().intern("a");
        let (cp, ctx) = setup("Win :- !Lose. Lose :- Lose.", &db);
        let win = cp.idb_id("Win").unwrap();
        let lose = cp.idb_id("Lose").unwrap();
        let theta = apply(&cp, &ctx, &cp.empty_interp());
        assert_eq!(theta.get(win).len(), 1);
        assert_eq!(theta.get(lose).len(), 0);
        // With Lose set, Win is not derived.
        let mut s = cp.empty_interp();
        s.insert(lose, Tuple::empty());
        let theta = apply(&cp, &ctx, &s);
        assert!(theta.get(win).is_empty());
        assert!(!theta.get(lose).is_empty());
    }

    #[test]
    fn inequality_filters() {
        let db = DiGraph::complete(3).to_database("E");
        let (cp, ctx) = setup("P(x, y) :- E(x, y), x != y.", &db);
        let p = cp.idb_id("P").unwrap();
        let theta = apply(&cp, &ctx, &cp.empty_interp());
        assert_eq!(theta.get(p).len(), 6); // complete(3) has no self-loops anyway
        let db2 = DiGraph::cycle(1).to_database("E"); // self-loop only
        let (cp2, ctx2) = setup("P(x, y) :- E(x, y), x != y.", &db2);
        assert!(apply(&cp2, &ctx2, &cp2.empty_interp()).all_empty());
    }

    #[test]
    fn apply_subset_respects_rule_choice() {
        let db = DiGraph::path(3).to_database("E");
        let (cp, ctx) = setup("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let sid = cp.idb_id("S").unwrap();
        // Only the recursive rule, from empty: derives nothing.
        let only_rec = apply_subset(&cp, &ctx, &cp.empty_interp(), &[1]);
        assert!(only_rec.get(sid).is_empty());
        // Only the base rule: the edges.
        let only_base = apply_subset(&cp, &ctx, &cp.empty_interp(), &[0]);
        assert_eq!(only_base.get(sid).len(), 2);
    }

    #[test]
    fn apply_delta_matches_full_difference() {
        // Semi-naive invariant: new derivations from (S, Δ) where Δ = S
        // equal Θ(S) minus what Θ(∅)-style rules would rederive. Check the
        // weaker, sufficient property used by the engines:
        // Θ(S) ⊇ apply_delta(S, Δ=S) ⊇ Θ(S) \ Θ(S⁻) for the TC program.
        let db = DiGraph::path(4).to_database("E");
        let (cp, ctx) = setup("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let s1 = apply(&cp, &ctx, &cp.empty_interp());
        let full2 = apply(&cp, &ctx, &s1);
        let delta2 = apply_delta(&cp, &ctx, &s1, &s1, None);
        // Everything the delta pass derives is derivable by the full pass.
        assert!(delta2.is_subset(&full2));
        // And it covers all *new* tuples.
        let new = full2.difference(&s1);
        assert!(new.is_subset(&delta2));
    }

    #[test]
    fn apply_with_neg_separates_contexts() {
        // T(x) <- V(x), !U(x);  U(x) <- V(x), !T(x).
        let mut db = Database::new();
        db.insert_named_fact("V", &["a"]).unwrap();
        let (cp, ctx) = setup("T(x) :- V(x), !U(x). U(x) :- V(x), !T(x).", &db);
        let tid = cp.idb_id("T").unwrap();
        let uid = cp.idb_id("U").unwrap();
        // neg context = full: nothing derivable.
        let full = cp.full_interp(db.universe_size());
        let r = apply_with_neg(&cp, &ctx, &cp.empty_interp(), &full);
        assert!(r.all_empty());
        // neg context = empty: both derivable.
        let r = apply_with_neg(&cp, &ctx, &cp.empty_interp(), &cp.empty_interp());
        assert_eq!(r.get(tid).len(), 1);
        assert_eq!(r.get(uid).len(), 1);
    }

    #[test]
    fn equality_join() {
        let db = DiGraph::path(3).to_database("E");
        let (cp, ctx) = setup("P(x) :- E(x, y), E(y, z), y = z.", &db);
        // y = z requires an edge y->y (self-loop): none on a path.
        assert!(apply(&cp, &ctx, &cp.empty_interp()).all_empty());
        let db2 = DiGraph::cycle(1).to_database("E");
        let (cp2, ctx2) = setup("P(x) :- E(x, y), E(y, z), y = z.", &db2);
        assert_eq!(apply(&cp2, &ctx2, &cp2.empty_interp()).total_tuples(), 1);
    }

    #[test]
    fn repeated_variables_in_atom() {
        // P(x) <- E(x, x): only self-loops match.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(2, 2);
        let db = g.to_database("E");
        let (cp, ctx) = setup("P(x) :- E(x, x).", &db);
        let p = cp.idb_id("P").unwrap();
        let theta = apply(&cp, &ctx, &cp.empty_interp());
        assert_eq!(theta.get(p).sorted(), vec![t1(2)]);
    }

    #[test]
    fn empty_universe_yields_empty_results() {
        let db = Database::new();
        let (cp, ctx) = setup("T(z) :- !T(w).", &db);
        // With A = ∅ even the toggle rule derives nothing.
        assert!(apply(&cp, &ctx, &cp.empty_interp()).all_empty());
    }

    #[test]
    fn parallel_application_is_bit_identical() {
        // The same Θ application, sequential vs forced-parallel at several
        // worker counts: identical tuples in identical insertion order.
        let db = DiGraph::binary_tree(31).to_database("E");
        let (cp, ctx) = setup("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let seed = apply(&cp, &ctx, &cp.empty_interp());
        let mut seq = cp.empty_interp();
        apply_general_into(
            &cp,
            &ctx,
            &seed,
            None,
            PlanKind::Full,
            None,
            None,
            None,
            &mut seq,
            &EvalOptions::sequential(),
            None,
        )
        .unwrap();
        for threads in [2, 3, 4] {
            let mut par = cp.empty_interp();
            apply_general_into(
                &cp,
                &ctx,
                &seed,
                None,
                PlanKind::Full,
                None,
                None,
                None,
                &mut par,
                &EvalOptions {
                    threads,
                    parallel_threshold: 0,
                    ..EvalOptions::sequential()
                },
                None,
            )
            .unwrap();
            for i in 0..seq.len() {
                assert_eq!(
                    seq.get(i).dense(),
                    par.get(i).dense(),
                    "insertion order diverged at {threads} threads"
                );
            }
        }
        assert!(ctx.parallel_applications() >= 3);
    }

    #[test]
    fn auto_threshold_keeps_small_applications_sequential() {
        let db = DiGraph::path(4).to_database("E");
        let (cp, ctx) = setup("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let mut out = cp.empty_interp();
        apply_general_into(
            &cp,
            &ctx,
            &cp.empty_interp(),
            None,
            PlanKind::Full,
            None,
            None,
            None,
            &mut out,
            &EvalOptions::with_threads(4), // default threshold ≫ 3 edges
            None,
        )
        .unwrap();
        assert_eq!(ctx.parallel_applications(), 0);
        // One full application from ∅: just the base rule's 3 edges.
        assert_eq!(out.total_tuples(), 3);
    }
}
