//! Persistent, incrementally maintained hash-join indexes.
//!
//! The executor's keyed [`Scan`](crate::plan::Step::Scan)s probe hash
//! indexes (key projection ↦ positions in the relation's dense storage).
//! Rebuilding those indexes on every Θ application would dominate the
//! evaluation cost, and fixpoint iteration only ever *grows* relations — so
//! indexes live here, in an [`IndexSet`] owned by the evaluation context,
//! and are maintained incrementally:
//!
//! * each index records the dense-prefix watermark `upto` it has consumed;
//!   [`Relation::dense`]`()[upto..]` is exactly the set of tuples added
//!   since (the per-round delta), so catching up is a linear walk of the
//!   new suffix;
//! * indexes are keyed by [`Relation::id`], which is stable under
//!   append-only growth and refreshed by clones and removals — a stale id
//!   simply misses and the index is rebuilt, never served incorrectly;
//! * postings are `u32` positions into the dense storage, so probing
//!   returns a borrowed `&[u32]` and the executor reads tuples in place —
//!   no tuple collection is cloned on the probe path.
//!
//! Entries untouched for several Θ applications are evicted once the set
//! grows past a watermark, bounding memory across long iterations that
//! allocate fresh relations each round.

use inflog_core::{Relation, Tuple};
use std::collections::HashMap;

/// Key-column set encoded as a bitmask (positions are small: they index
/// into an atom's argument list). Columns ≥ 128 are never indexed.
///
/// The bitmask erases column *order*, so index identity relies on every
/// caller presenting key columns strictly ascending — which the planner
/// guarantees (`key_cols` is built by an in-order enumerate+filter). The
/// debug assertion turns that incidental invariant into an enforced one:
/// an unsorted column list would key the projection map inconsistently and
/// silently drop join matches.
pub fn col_mask(cols: &[usize]) -> Option<u128> {
    debug_assert!(
        cols.windows(2).all(|w| w[0] < w[1]),
        "key columns must be strictly ascending, got {cols:?}"
    );
    let mut mask = 0u128;
    for &c in cols {
        if c >= 128 {
            return None;
        }
        mask |= 1 << c;
    }
    Some(mask)
}

/// One persistent index: key projection ↦ dense positions, plus the
/// watermark of how much of the relation it has consumed.
#[derive(Debug, Clone)]
struct Index {
    cols: Vec<usize>,
    /// `relation.dense()[..upto]` is indexed.
    upto: usize,
    map: HashMap<Tuple, Vec<u32>>,
    /// Tick of the last application that touched this index.
    last_used: u64,
}

impl Index {
    fn extend_from(&mut self, rel: &Relation) {
        let dense = rel.dense();
        for (i, t) in dense.iter().enumerate().skip(self.upto) {
            self.map
                .entry(t.project(&self.cols))
                .or_default()
                .push(i as u32);
        }
        self.upto = dense.len();
    }
}

/// Evict entries untouched for this many applications (once over the size
/// watermark).
const EVICT_AGE: u64 = 8;
/// Start evicting when the set holds more than this many indexes.
const EVICT_WATERMARK: usize = 128;

/// The set of persistent indexes owned by an evaluation context.
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    indexes: HashMap<(u64, u128), Index>,
    /// Monotone Θ-application counter (drives eviction).
    tick: u64,
}

impl IndexSet {
    /// Marks the start of one Θ application; occasionally evicts indexes of
    /// relations that no longer participate (e.g. dead per-round deltas).
    pub fn begin_application(&mut self) {
        self.tick += 1;
        if self.indexes.len() > EVICT_WATERMARK {
            let tick = self.tick;
            self.indexes.retain(|_, ix| ix.last_used + EVICT_AGE > tick);
        }
    }

    /// Ensures an up-to-date index on `cols` exists for `rel`, building it
    /// or extending it from the dense suffix added since the last
    /// application.
    pub fn ensure(&mut self, rel: &Relation, cols: &[usize]) {
        let Some(mask) = col_mask(cols) else { return };
        let tick = self.tick;
        let ix = self
            .indexes
            .entry((rel.id(), mask))
            .or_insert_with(|| Index {
                cols: cols.to_vec(),
                upto: 0,
                map: HashMap::new(),
                last_used: tick,
            });
        ix.last_used = tick;
        ix.extend_from(rel);
    }

    /// Probes the index of `(rel_id, cols)` for a key: the dense positions
    /// of the matching tuples, borrowed — no clone.
    ///
    /// Returns `None` when no index is registered (the executor falls back
    /// to a filtered scan) and `Some(&[])` when the key has no matches.
    pub fn probe(&self, rel_id: u64, cols: &[usize], key: &Tuple) -> Option<&[u32]> {
        let mask = col_mask(cols)?;
        let ix = self.indexes.get(&(rel_id, mask))?;
        Some(ix.map.get(key).map_or(&[][..], Vec::as_slice))
    }

    /// Number of live indexes (observability / tests).
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Whether no indexes are held.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::Tuple;

    fn t(ids: &[u32]) -> Tuple {
        Tuple::from_ids(ids)
    }

    fn rel(ts: &[&[u32]]) -> Relation {
        Relation::from_tuples(2, ts.iter().map(|ids| t(ids)))
    }

    #[test]
    fn builds_and_probes() {
        let r = rel(&[&[0, 1], &[0, 2], &[1, 2]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        let hits = set.probe(r.id(), &[0], &t(&[0])).unwrap();
        assert_eq!(hits.len(), 2);
        for &i in hits {
            assert_eq!(r.dense()[i as usize][0].id(), 0);
        }
        assert_eq!(set.probe(r.id(), &[0], &t(&[9])).unwrap(), &[] as &[u32]);
        assert!(set.probe(r.id() + 1, &[0], &t(&[0])).is_none());
    }

    #[test]
    fn extends_incrementally_from_dense_suffix() {
        let mut r = rel(&[&[0, 1]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        assert_eq!(set.probe(r.id(), &[0], &t(&[0])).unwrap().len(), 1);
        r.union_with(&rel(&[&[0, 2], &[3, 4]]));
        set.begin_application();
        set.ensure(&r, &[0]);
        assert_eq!(set.probe(r.id(), &[0], &t(&[0])).unwrap().len(), 2);
        assert_eq!(set.probe(r.id(), &[0], &t(&[3])).unwrap().len(), 1);
        assert_eq!(set.len(), 1, "same index, extended in place");
    }

    #[test]
    fn stale_ids_never_served() {
        let r = rel(&[&[0, 1]]);
        let mut set = IndexSet::default();
        set.ensure(&r, &[0]);
        let clone = r.clone();
        assert!(set.probe(clone.id(), &[0], &t(&[0])).is_none());
    }

    #[test]
    fn eviction_bounds_growth() {
        let mut set = IndexSet::default();
        let rels: Vec<Relation> = (0..200).map(|_| rel(&[&[0, 1]])).collect();
        for r in &rels {
            set.begin_application();
            set.ensure(r, &[0]);
        }
        assert!(set.len() <= EVICT_WATERMARK + EVICT_AGE as usize + 1);
        assert!(!set.is_empty());
    }
}
