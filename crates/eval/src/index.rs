//! Persistent, incrementally maintained hash-join indexes.
//!
//! The executor's keyed [`Scan`](crate::plan::Step::Scan)s probe hash
//! indexes (key projection ↦ positions in the relation's dense storage).
//! Rebuilding those indexes on every Θ application would dominate the
//! evaluation cost, and fixpoint iteration only ever *grows* relations — so
//! indexes live here, in an [`IndexSet`] owned by the evaluation context,
//! and are maintained incrementally:
//!
//! * each index records the dense-prefix watermark `upto` it has consumed;
//!   [`Relation::dense`]`()[upto..]` is exactly the set of tuples added
//!   since (the per-round delta), so catching up is a linear walk of the
//!   new suffix;
//! * indexes are keyed by [`Relation::id`], which is stable under
//!   append-only growth and refreshed by clones and removals — a stale id
//!   simply misses and the index is rebuilt, never served incorrectly;
//! * relations that *shrink* stay indexed through two paths: a rollback to
//!   a watermark ([`Relation::truncate`] / `split_off`) keeps the id and
//!   the dense prefix, so the index detects it via
//!   [`Relation::shrink_epoch`] and drops only the postings past the cut;
//!   and a tracked single-tuple removal ([`Relation::remove_tracked`] — how
//!   the incremental well-founded engine deletes the few tuples that leave
//!   its decreasing side each alternation) has its two affected postings
//!   patched in place by [`IndexSet::patch_swap_remove`];
//! * postings are `u32` positions into the dense storage, so probing
//!   returns a borrowed `&[u32]` and the executor reads tuples in place —
//!   no tuple collection is cloned on the probe path.
//!
//! Entries untouched for several Θ applications are evicted once the set
//! grows past a watermark, bounding memory across long iterations that
//! allocate fresh relations each round.

use inflog_core::{FxBuildHasher, Relation, Tuple};
use std::collections::HashMap;

/// Key-column set encoded as a bitmask (positions are small: they index
/// into an atom's argument list). Columns ≥ 128 are never indexed.
///
/// The bitmask erases column *order*, so index identity relies on every
/// caller presenting key columns strictly ascending — which the planner
/// guarantees (`key_cols` is built by an in-order enumerate+filter). The
/// debug assertion turns that incidental invariant into an enforced one:
/// an unsorted column list would key the projection map inconsistently and
/// silently drop join matches.
pub fn col_mask(cols: &[usize]) -> Option<u128> {
    debug_assert!(
        cols.windows(2).all(|w| w[0] < w[1]),
        "key columns must be strictly ascending, got {cols:?}"
    );
    let mut mask = 0u128;
    for &c in cols {
        if c >= 128 {
            return None;
        }
        mask |= 1 << c;
    }
    Some(mask)
}

/// One persistent index: key projection ↦ dense positions, plus the
/// watermark of how much of the relation it has consumed. The projection
/// map hashes with [`FxBuildHasher`] — the probe sits in every keyed
/// scan's inner loop, where SipHash rounds on a 1–4-word key would
/// dominate the lookup.
#[derive(Debug, Clone)]
pub(crate) struct Index {
    cols: Vec<usize>,
    /// `relation.dense()[..upto]` is indexed.
    upto: usize,
    /// [`Relation::shrink_epoch`] at the last synchronization. A relation
    /// one epoch ahead was truncated exactly once since: postings at or past
    /// its `last_truncate_len` are dropped and the prefix survives. Further
    /// behind than one epoch, the index rebuilds from scratch.
    epoch: u64,
    map: HashMap<Tuple, Vec<u32>, FxBuildHasher>,
    /// Tick of the last application that touched this index.
    last_used: u64,
}

impl Index {
    /// The postings filed under `key`: positions into the relation's dense
    /// storage, in insertion order; empty when the key has no matches. The
    /// register-machine executor resolves the index once per program run
    /// and probes it directly, skipping [`IndexSet::probe`]'s per-call
    /// registry lookup.
    #[inline]
    pub(crate) fn postings(&self, key: &Tuple) -> &[u32] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Brings the index up to date with `rel`, resynchronizing across
    /// truncations (see [`Relation::truncate`]) before consuming the dense
    /// suffix added since the last call.
    fn sync(&mut self, rel: &Relation) {
        let epoch = rel.shrink_epoch();
        if epoch == self.epoch + 1 {
            // Exactly one rollback since the last sync: the dense prefix
            // below the cut is unchanged, so drop only the dead postings.
            self.rollback_to(rel.last_truncate_len().min(self.upto));
            self.epoch = epoch;
        } else if epoch != self.epoch {
            // Several rollbacks: the intermediate low-water mark is unknown,
            // so the positions we hold cannot be trusted. Rebuild.
            self.map.clear();
            self.upto = 0;
            self.epoch = epoch;
        }
        let dense = rel.dense();
        for (i, t) in dense.iter().enumerate().skip(self.upto) {
            self.map
                .entry(t.project(&self.cols))
                .or_default()
                .push(i as u32);
        }
        self.upto = dense.len();
    }

    /// Drops all postings at dense positions `>= cut`. Postings within a
    /// bucket are strictly increasing (appended in dense order, truncated in
    /// dense order), so each bucket is cut at a partition point.
    fn rollback_to(&mut self, cut: usize) {
        self.map.retain(|_, postings| {
            let keep = postings.partition_point(|&p| (p as usize) < cut);
            postings.truncate(keep);
            !postings.is_empty()
        });
        self.upto = cut;
    }
}

/// Evict entries untouched for this many applications (once over the size
/// watermark).
const EVICT_AGE: u64 = 8;
/// Start evicting when the set holds more than this many indexes.
const EVICT_WATERMARK: usize = 128;

/// The set of persistent indexes owned by an evaluation context.
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    indexes: HashMap<(u64, u128), Index, FxBuildHasher>,
    /// Monotone Θ-application counter (drives eviction).
    tick: u64,
}

impl IndexSet {
    /// Marks the start of one Θ application; occasionally evicts indexes of
    /// relations that no longer participate (e.g. dead per-round deltas).
    pub fn begin_application(&mut self) {
        self.tick += 1;
        if self.indexes.len() > EVICT_WATERMARK {
            let tick = self.tick;
            self.indexes.retain(|_, ix| ix.last_used + EVICT_AGE > tick);
        }
    }

    /// Ensures an up-to-date index on `cols` exists for `rel`, building it
    /// or extending it from the dense suffix added since the last
    /// application.
    pub fn ensure(&mut self, rel: &Relation, cols: &[usize]) {
        let Some(mask) = col_mask(cols) else { return };
        let tick = self.tick;
        let ix = self
            .indexes
            .entry((rel.id(), mask))
            .or_insert_with(|| Index {
                cols: cols.to_vec(),
                upto: 0,
                epoch: rel.shrink_epoch(),
                map: HashMap::default(),
                last_used: tick,
            });
        ix.last_used = tick;
        ix.sync(rel);
    }

    /// Patches every index of `rel` after a [`Relation::remove_tracked`]
    /// swap-remove: the posting for `removed` (at `removed_pos`) is dropped,
    /// and the tuple that moved from `moved_from` (the old last position)
    /// into `removed_pos` has its posting redirected. Indexes that were not
    /// fully synchronized with the relation before the removal cannot be
    /// patched positionally and are discarded instead (they rebuild on the
    /// next [`ensure`](Self::ensure)).
    ///
    /// `old_len` is the relation's length *before* the removal.
    pub fn patch_swap_remove(
        &mut self,
        rel: &Relation,
        removed: &Tuple,
        removed_pos: usize,
        moved_from: usize,
        old_len: usize,
    ) {
        self.indexes.retain(|&(rel_id, _), ix| {
            if rel_id != rel.id() {
                return true;
            }
            if ix.upto != old_len || ix.epoch != rel.shrink_epoch() {
                return false; // not in sync: positional patching is unsound
            }
            let drop_key = removed.project(&ix.cols);
            if let Some(postings) = ix.map.get_mut(&drop_key) {
                if let Ok(p) = postings.binary_search(&(removed_pos as u32)) {
                    postings.remove(p);
                }
                if postings.is_empty() {
                    ix.map.remove(&drop_key);
                }
            }
            if moved_from != removed_pos {
                // The moved tuple now lives at `removed_pos`.
                let moved_key = rel.dense()[removed_pos].project(&ix.cols);
                let postings = ix.map.entry(moved_key).or_default();
                if let Ok(p) = postings.binary_search(&(moved_from as u32)) {
                    postings.remove(p);
                }
                let at = postings.partition_point(|&p| (p as usize) < removed_pos);
                postings.insert(at, removed_pos as u32);
            }
            ix.upto = rel.dense().len();
            true
        });
    }

    /// Invariant check: every surviving index over `rel` is **sorted and
    /// complete** — each bucket's postings are strictly ascending positions
    /// below the watermark, and every indexed dense position appears in
    /// exactly the bucket of its key projection.
    ///
    /// The parallel round executor reads postings concurrently and merges
    /// worker output by position order, so a posting that went stale or out
    /// of order after a [`patch_swap_remove`](Self::patch_swap_remove) or a
    /// `shrink_epoch` rollback would silently drop or misorder join
    /// matches. The sweep is `O(total postings)`, so it runs per *batch* of
    /// patches, not per patch (the incremental well-founded engine
    /// validates once per alternation in debug builds); tests call it
    /// directly around rollback + parallel-round sequences.
    ///
    /// The check is **epoch-aware**, matching the lazy contract between
    /// `Relation::truncate` and `Index::sync`: an index exactly one
    /// `shrink_epoch` behind its relation has not observed the truncation
    /// yet, and only its postings below the truncation cut
    /// (`last_truncate_len`, capped by the watermark) carry an invariant —
    /// that is precisely the prefix `sync` rolls back to. Postings at or
    /// past the cut are stale by design (a repair may have regrown the
    /// dense array with different tuples) and are skipped. Indexes more
    /// than one epoch behind are rebuilt wholesale on their next sync, so
    /// nothing about them is checked.
    ///
    /// # Panics
    /// Panics if any index over `rel` violates the invariant.
    pub fn debug_validate(&self, rel: &Relation) {
        for (&(rel_id, _), ix) in &self.indexes {
            if rel_id != rel.id() {
                continue;
            }
            let current = ix.epoch == rel.shrink_epoch();
            let cut = if current {
                ix.upto
            } else if ix.epoch + 1 == rel.shrink_epoch() {
                ix.upto.min(rel.last_truncate_len())
            } else {
                continue;
            };
            if current {
                assert!(
                    ix.upto <= rel.dense().len(),
                    "index watermark {} beyond relation length {}",
                    ix.upto,
                    rel.dense().len()
                );
            }
            let mut covered = 0usize;
            for (key, postings) in &ix.map {
                assert!(
                    postings.windows(2).all(|w| w[0] < w[1]),
                    "postings for key {key} are not strictly ascending"
                );
                for &p in postings {
                    if (p as usize) >= cut {
                        assert!(!current, "posting {p} at/after watermark {}", ix.upto);
                        continue; // stale by design; sync rolls it back
                    }
                    assert_eq!(
                        &rel.dense()[p as usize].project(&ix.cols),
                        key,
                        "posting {p} filed under the wrong key"
                    );
                    covered += 1;
                }
            }
            if current {
                assert_eq!(
                    covered, ix.upto,
                    "index covers {covered} positions but watermark is {}",
                    ix.upto
                );
            }
        }
    }

    /// Probes the index of `(rel_id, cols)` for a key: the dense positions
    /// of the matching tuples, borrowed — no clone.
    ///
    /// Returns `None` when no index is registered (the executor falls back
    /// to a filtered scan) and `Some(&[])` when the key has no matches.
    pub fn probe(&self, rel_id: u64, cols: &[usize], key: &Tuple) -> Option<&[u32]> {
        Some(self.resolve(rel_id, cols)?.postings(key))
    }

    /// Looks up the index registered for `(rel_id, cols)` once, so a
    /// program run can probe [`Index::postings`] directly per outer
    /// candidate instead of re-hashing the registry key on every probe.
    /// `None` means no index is registered (unprepared plan): callers fall
    /// back to a filtered linear scan.
    pub(crate) fn resolve(&self, rel_id: u64, cols: &[usize]) -> Option<&Index> {
        self.indexes.get(&(rel_id, col_mask(cols)?))
    }

    /// Number of live indexes (observability / tests).
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Whether no indexes are held.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::Tuple;

    fn t(ids: &[u32]) -> Tuple {
        Tuple::from_ids(ids)
    }

    fn rel(ts: &[&[u32]]) -> Relation {
        Relation::from_tuples(2, ts.iter().map(|ids| t(ids)))
    }

    #[test]
    fn builds_and_probes() {
        let r = rel(&[&[0, 1], &[0, 2], &[1, 2]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        let hits = set.probe(r.id(), &[0], &t(&[0])).unwrap();
        assert_eq!(hits.len(), 2);
        for &i in hits {
            assert_eq!(r.dense()[i as usize][0].id(), 0);
        }
        assert_eq!(set.probe(r.id(), &[0], &t(&[9])).unwrap(), &[] as &[u32]);
        assert!(set.probe(r.id() + 1, &[0], &t(&[0])).is_none());
    }

    #[test]
    fn extends_incrementally_from_dense_suffix() {
        let mut r = rel(&[&[0, 1]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        assert_eq!(set.probe(r.id(), &[0], &t(&[0])).unwrap().len(), 1);
        r.union_with(&rel(&[&[0, 2], &[3, 4]]));
        set.begin_application();
        set.ensure(&r, &[0]);
        assert_eq!(set.probe(r.id(), &[0], &t(&[0])).unwrap().len(), 2);
        assert_eq!(set.probe(r.id(), &[0], &t(&[3])).unwrap().len(), 1);
        assert_eq!(set.len(), 1, "same index, extended in place");
    }

    #[test]
    fn stale_ids_never_served() {
        let r = rel(&[&[0, 1]]);
        let mut set = IndexSet::default();
        set.ensure(&r, &[0]);
        let clone = r.clone();
        assert!(set.probe(clone.id(), &[0], &t(&[0])).is_none());
    }

    #[test]
    fn rollback_drops_postings_past_the_cut() {
        let mut r = rel(&[&[0, 1], &[0, 2]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        assert_eq!(set.probe(r.id(), &[0], &t(&[0])).unwrap().len(), 2);
        let w = r.len();
        r.union_with(&rel(&[&[0, 3], &[5, 6]]));
        set.begin_application();
        set.ensure(&r, &[0]);
        assert_eq!(set.probe(r.id(), &[0], &t(&[0])).unwrap().len(), 3);
        // Roll the relation back to the watermark: the index follows.
        r.truncate(w);
        set.begin_application();
        set.ensure(&r, &[0]);
        assert_eq!(set.probe(r.id(), &[0], &t(&[0])).unwrap().len(), 2);
        assert_eq!(set.probe(r.id(), &[0], &t(&[5])).unwrap(), &[] as &[u32]);
        assert_eq!(set.len(), 1, "rolled back in place, not rebuilt");
    }

    #[test]
    fn truncate_then_regrow_between_syncs_is_detected() {
        // The dangerous interleaving: the index last synced at length 3, the
        // relation is truncated to 1 and regrown past 3 before the next
        // sync. Length alone cannot reveal the cut — the epoch does.
        let mut r = rel(&[&[0, 1], &[0, 2], &[0, 3]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        r.truncate(1);
        r.union_with(&rel(&[&[1, 7], &[1, 8], &[0, 9]]));
        assert_eq!(r.len(), 4);
        set.begin_application();
        set.ensure(&r, &[0]);
        let hits = set.probe(r.id(), &[0], &t(&[0])).unwrap();
        assert_eq!(hits.len(), 2); // (0,1) from the prefix, (0,9) regrown
        for &i in hits {
            assert_eq!(r.dense()[i as usize][0].id(), 0);
        }
        assert_eq!(set.probe(r.id(), &[0], &t(&[1])).unwrap().len(), 2);
    }

    #[test]
    fn patch_swap_remove_keeps_index_exact() {
        let mut r = rel(&[&[0, 1], &[0, 2], &[1, 3], &[0, 4]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        assert_eq!(set.probe(r.id(), &[0], &t(&[0])).unwrap().len(), 3);
        // Remove (0,2): (0,4) moves from position 3 into position 1.
        let old_len = r.len();
        let (rp, mp) = r.remove_tracked(&t(&[0, 2])).unwrap();
        set.patch_swap_remove(&r, &t(&[0, 2]), rp, mp, old_len);
        let hits = set.probe(r.id(), &[0], &t(&[0])).unwrap();
        assert_eq!(hits.len(), 2);
        for &i in hits {
            assert_eq!(r.dense()[i as usize][0].id(), 0);
        }
        assert!(hits.windows(2).all(|w| w[0] < w[1]), "postings stay sorted");
        // Remove the last remaining (1,_) tuple: its bucket disappears.
        let old_len = r.len();
        let (rp, mp) = r.remove_tracked(&t(&[1, 3])).unwrap();
        set.patch_swap_remove(&r, &t(&[1, 3]), rp, mp, old_len);
        assert_eq!(set.probe(r.id(), &[0], &t(&[1])).unwrap(), &[] as &[u32]);
        // The index keeps extending incrementally afterwards.
        r.union_with(&rel(&[&[0, 9]]));
        set.begin_application();
        set.ensure(&r, &[0]);
        assert_eq!(set.probe(r.id(), &[0], &t(&[0])).unwrap().len(), 3);
    }

    #[test]
    fn unsynced_index_is_discarded_on_patch() {
        let mut r = rel(&[&[0, 1], &[0, 2]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        // Grow the relation *without* re-syncing the index, then remove.
        r.union_with(&rel(&[&[0, 3]]));
        let old_len = r.len();
        let (rp, mp) = r.remove_tracked(&t(&[0, 1])).unwrap();
        set.patch_swap_remove(&r, &t(&[0, 1]), rp, mp, old_len);
        assert!(
            set.probe(r.id(), &[0], &t(&[0])).is_none(),
            "stale index must be dropped, not patched"
        );
    }

    #[test]
    fn multiple_truncations_between_syncs_rebuild() {
        let mut r = rel(&[&[0, 1], &[0, 2], &[0, 3]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        r.truncate(2);
        r.union_with(&rel(&[&[2, 5]]));
        r.truncate(1); // second cut without an intervening sync
        r.union_with(&rel(&[&[0, 6]]));
        set.begin_application();
        set.ensure(&r, &[0]);
        assert_eq!(set.probe(r.id(), &[0], &t(&[0])).unwrap().len(), 2);
        assert_eq!(set.probe(r.id(), &[0], &t(&[2])).unwrap(), &[] as &[u32]);
    }

    #[test]
    fn validate_passes_after_patch_and_rollback_sequences() {
        // Interleave growth, tracked removals and truncation rollbacks; the
        // postings must stay sorted and complete at every step — this is
        // what lets a parallel round trust posting order right after the
        // incremental well-founded engine's patch/rollback paths.
        let mut r = rel(&[&[0, 1], &[0, 2], &[1, 3], &[0, 4], &[2, 5]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        set.debug_validate(&r);
        // Tracked removal in the middle: swap-remove patch.
        let old_len = r.len();
        let (rp, mp) = r.remove_tracked(&t(&[0, 2])).unwrap();
        set.patch_swap_remove(&r, &t(&[0, 2]), rp, mp, old_len);
        set.debug_validate(&r);
        // Rollback to a watermark, then regrow and resync.
        let w = r.len();
        r.union_with(&rel(&[&[0, 6], &[1, 7]]));
        set.begin_application();
        set.ensure(&r, &[0]);
        r.truncate(w);
        set.begin_application();
        set.ensure(&r, &[0]);
        set.debug_validate(&r);
        // Another tracked removal right after the rollback.
        let old_len = r.len();
        let (rp, mp) = r.remove_tracked(&t(&[2, 5])).unwrap();
        set.patch_swap_remove(&r, &t(&[2, 5]), rp, mp, old_len);
        set.debug_validate(&r);
    }

    #[test]
    fn validate_tolerates_truncate_remove_interleaving_within_one_repair() {
        // The materialized-view repair path can truncate one relation
        // (epoch bump) and regrow it before any index sync, then run
        // tracked removals in the same batch. A lagging index's postings
        // past the truncation cut point at replaced tuples — stale by
        // design, recovered by `sync`'s rollback — so validation must only
        // hold the prefix below the cut to the invariant instead of
        // panicking on the regrown suffix.
        let mut r = rel(&[&[0, 0], &[1, 1], &[2, 2], &[3, 3]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        r.truncate(2);
        r.insert(t(&[7, 7]));
        r.insert(t(&[8, 8]));
        // Positions 2 and 3 are now (7,7)/(8,8) but still filed under keys
        // 2 and 3 in the lagging index; only the prefix [0, 2) is checked.
        set.debug_validate(&r);
        // A tracked removal interleaved on the same relation: the patch
        // must drop the out-of-sync index (epoch mismatch) rather than
        // leave stale postings behind.
        let old_len = r.len();
        let (rp, mp) = r.remove_tracked(&t(&[1, 1])).unwrap();
        set.patch_swap_remove(&r, &t(&[1, 1]), rp, mp, old_len);
        assert!(
            set.probe(r.id(), &[0], &t(&[1])).is_none(),
            "out-of-sync index must be dropped, not patched"
        );
        set.debug_validate(&r);
        // A fresh sync rebuilds a fully valid index over the mutated state.
        set.begin_application();
        set.ensure(&r, &[0]);
        set.debug_validate(&r);
        assert_eq!(set.probe(r.id(), &[0], &t(&[7])).unwrap().len(), 1);
    }

    #[test]
    fn validate_skips_indexes_more_than_one_epoch_behind() {
        // Two truncations without an intervening sync: the index is
        // rebuild-on-next-sync territory and carries no invariant at all.
        let mut r = rel(&[&[0, 0], &[1, 1], &[2, 2]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        r.truncate(2);
        r.truncate(1);
        r.insert(t(&[9, 9]));
        set.debug_validate(&r);
        set.begin_application();
        set.ensure(&r, &[0]);
        set.debug_validate(&r);
        assert_eq!(set.probe(r.id(), &[0], &t(&[9])).unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "wrong key")]
    fn validate_catches_corrupted_postings() {
        let mut r = rel(&[&[0, 1], &[1, 2]]);
        let mut set = IndexSet::default();
        set.begin_application();
        set.ensure(&r, &[0]);
        // Corrupt the relation out from under the index: swap-remove
        // without patching, then regrow to the old length — the postings
        // now point at tuples filed under stale keys.
        r.remove_tracked(&t(&[0, 1])).unwrap();
        r.insert(t(&[5, 5]));
        set.debug_validate(&r);
    }

    #[test]
    fn eviction_bounds_growth() {
        let mut set = IndexSet::default();
        let rels: Vec<Relation> = (0..200).map(|_| rel(&[&[0, 1]])).collect();
        for r in &rels {
            set.begin_application();
            set.ensure(r, &[0]);
        }
        assert!(set.len() <= EVICT_WATERMARK + EVICT_AGE as usize + 1);
        assert!(!set.is_empty());
    }
}
