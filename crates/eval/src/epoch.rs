//! Immutable epoch snapshots of a materialized model, for concurrent
//! serving.
//!
//! # The epoch-publication invariant
//!
//! An [`Epoch`] is a *complete, committed, immutable* copy of one
//! materialized fixpoint: the database it was evaluated over, the true and
//! undefined IDB relations the engine produced for exactly that database,
//! and the (refcount-shared) program and compiled plans. An epoch is
//! constructed only from a committed [`Materialized`] state — never from a
//! mid-update or rolled-back one — and nothing can mutate it afterwards,
//! so every answer read from one epoch is internally consistent with that
//! single epoch's EDB. Because every maintained semantics is a
//! deterministic function of the EDB (the paper's central observation), a
//! reader can mechanically verify this: a from-scratch evaluation over
//! [`Epoch::database`] must reproduce [`Epoch::interp`] /
//! [`Epoch::undefined`] bit for bit ([`Epoch::matches_recompute`] does
//! exactly that, and the serve-layer chaos harness runs it under churn).
//!
//! [`EpochCell`] is the publication point: the single writer commits an
//! update through the transactional (and optionally durable) path, then
//! swaps a freshly captured `Arc<Epoch>` into the cell. Readers
//! [`pin`](EpochCell::pin) the current epoch — an `Arc` clone — and keep
//! answering from it for as long as they like; a publish never blocks or
//! disturbs pinned readers, and an old epoch is freed exactly when its
//! last pinning reader drops it. A failed update publishes nothing: the
//! cell still holds the last committed epoch.

use crate::error::{BudgetKind, EvalError};
use crate::interp::Interp;
use crate::materialize::Engine;
use crate::operator::EvalContext;
use crate::options::EvalOptions;
use crate::query::{self, QueryAnswer, QueryOpts};
use crate::resolve::CompiledProgram;
use crate::stratified::Stratification;
use crate::Result;
use inflog_core::{Const, Database, Tuple};
use inflog_syntax::{Atom, Program, Term};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Three-valued membership of a fact in an epoch's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// In the model (IDB) or the database (EDB).
    True,
    /// Not in the model and not undefined.
    False,
    /// Undefined under the well-founded semantics.
    Undefined,
}

/// How often scan loops poll a deadline (every `SCAN_POLL_MASK + 1`
/// tuples) — same cadence as the evaluation executors.
const SCAN_POLL_MASK: usize = (1 << 12) - 1;

/// One committed, immutable snapshot of a materialized model. See the
/// module docs for the publication invariant.
#[derive(Debug)]
pub struct Epoch {
    number: u64,
    program: Arc<Program>,
    cp: Arc<CompiledProgram>,
    engine: Engine,
    strat: Option<Stratification>,
    db: Database,
    s: Interp,
    undefined: Interp,
    /// EDB relations + persistent index set for this snapshot: readers of
    /// the same epoch share one warming index cache (the inner `RwLock`
    /// makes that safe), and the verification recompute runs over it.
    ctx: EvalContext,
}

impl Epoch {
    /// Crate-internal constructor; [`Materialized::publish`] is the only
    /// producer, which is what makes the immutability claim above true.
    ///
    /// [`Materialized::publish`]: crate::Materialized::publish
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        number: u64,
        program: Arc<Program>,
        cp: Arc<CompiledProgram>,
        engine: Engine,
        strat: Option<Stratification>,
        db: Database,
        s: Interp,
        undefined: Interp,
        ctx: EvalContext,
    ) -> Epoch {
        Epoch {
            number,
            program,
            cp,
            engine,
            strat,
            db,
            s,
            undefined,
            ctx,
        }
    }

    /// The epoch number this snapshot was stamped with at publication.
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The program the model is a fixpoint of (refcount-shared with the
    /// writer handle and every sibling epoch).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The compiled program (predicate-id mappings, arities).
    pub fn compiled(&self) -> &CompiledProgram {
        &self.cp
    }

    /// The engine that produced the model.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The database this epoch's model is the fixpoint over.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// True facts of the model (IDB relations by IDB id).
    pub fn interp(&self) -> &Interp {
        &self.s
    }

    /// Undefined facts of the model (empty except for well-founded on
    /// non-stratifiable programs).
    pub fn undefined(&self) -> &Interp {
        &self.undefined
    }

    /// Three-valued membership of `(pred, t)` in this epoch.
    ///
    /// # Errors
    /// [`EvalError::UnknownRelation`] / [`EvalError::ArityMismatch`] for a
    /// predicate the program does not know or a wrong-width tuple.
    pub fn contains(&self, pred: &str, t: &Tuple) -> Result<Truth> {
        let (rel, undef) = self.relations_of(pred)?;
        if t.arity() != rel.arity() {
            return Err(EvalError::ArityMismatch {
                predicate: pred.to_owned(),
                expected: rel.arity(),
                found: t.arity(),
            });
        }
        if rel.contains(t) {
            Ok(Truth::True)
        } else if undef.is_some_and(|u| u.contains(t)) {
            Ok(Truth::Undefined)
        } else {
            Ok(Truth::False)
        }
    }

    /// Answers a goal by scanning this epoch's *materialized* relations —
    /// the cheap serving read path: no evaluation, just a filter over the
    /// committed fixpoint. Constants in the goal must exist in the epoch's
    /// universe; repeated variables constrain positions to be equal.
    /// Results are sorted lexicographically, so for IDB goals the answer
    /// equals what a from-scratch [`Epoch::query`] over this epoch's EDB
    /// returns (the stress harness asserts exactly that).
    ///
    /// `deadline` bounds the scan: the loop polls it every few thousand
    /// tuples and gives up with [`EvalError::BudgetExceeded`]
    /// ([`BudgetKind::Deadline`]).
    ///
    /// # Errors
    /// [`EvalError::UnknownRelation`], [`EvalError::ArityMismatch`],
    /// [`EvalError::UnknownConstant`], or the deadline trip.
    pub fn select(&self, goal: &Atom, deadline: Option<Instant>) -> Result<QueryAnswer> {
        let (rel, undef) = self.relations_of(&goal.predicate)?;
        if goal.terms.len() != rel.arity() {
            return Err(EvalError::ArityMismatch {
                predicate: goal.predicate.clone(),
                expected: rel.arity(),
                found: goal.terms.len(),
            });
        }
        let pattern = self.pattern_of(goal)?;
        // An already-expired deadline trips before any work, so callers get
        // a deterministic budget error regardless of relation size.
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(EvalError::BudgetExceeded {
                    kind: BudgetKind::Deadline,
                    limit: 0,
                });
            }
        }
        let mut scanned = 0usize;
        let mut scan = |rel: &inflog_core::Relation| -> Result<Vec<Tuple>> {
            let mut out = Vec::new();
            for t in rel.iter() {
                scanned += 1;
                if scanned & SCAN_POLL_MASK == 0 {
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            return Err(EvalError::BudgetExceeded {
                                kind: BudgetKind::Deadline,
                                limit: 0,
                            });
                        }
                    }
                }
                if pattern_matches(&pattern, t) {
                    out.push(t.clone());
                }
            }
            out.sort_unstable();
            Ok(out)
        };
        let tuples = scan(rel)?;
        let undefined = match undef {
            Some(u) => scan(u)?,
            None => Vec::new(),
        };
        Ok(QueryAnswer {
            tuples,
            undefined,
            strategy: query::QueryStrategy::EdbScan,
        })
    }

    /// Answers a goal by *evaluating from scratch* over this epoch's EDB —
    /// the governed goal-directed path ([`query::query`]), carrying the
    /// caller's budget/deadline/cancellation. Deterministic per epoch, so
    /// two readers pinning the same epoch always get the same answer.
    ///
    /// # Errors
    /// Same conditions as [`query::query`].
    pub fn query(&self, goal: &Atom, opts: &QueryOpts) -> Result<QueryAnswer> {
        query::query(&self.program, goal, &self.db, opts)
    }

    /// The mechanical consistency oracle: re-evaluates the epoch's engine
    /// from scratch over the epoch's own EDB and reports whether the
    /// result equals the published model (set equality per relation). A
    /// correctly published epoch always passes; a torn publish — state
    /// from one commit paired with a database from another — cannot.
    ///
    /// # Errors
    /// Evaluation errors of the governed engines under `opts` (budget,
    /// cancellation, armed failpoints).
    pub fn matches_recompute(&self, opts: &EvalOptions) -> Result<bool> {
        let empty = self.cp.empty_interp();
        let (s, undefined) = match self.engine {
            Engine::Seminaive => (
                crate::seminaive::least_fixpoint_seminaive_compiled_with(
                    &self.cp, &self.ctx, opts,
                )?
                .0,
                empty,
            ),
            Engine::Inflationary => (
                crate::inflationary::inflationary_compiled_with(&self.cp, &self.ctx, opts)?.0,
                empty,
            ),
            Engine::Stratified => {
                let strat = self
                    .strat
                    .as_ref()
                    .expect("stratified engine publishes its stratification");
                (
                    crate::stratified::stratified_eval_compiled_with(
                        &self.cp,
                        &self.ctx,
                        strat,
                        &self.program,
                        opts,
                    )?
                    .0,
                    empty,
                )
            }
            Engine::WellFounded => {
                let model =
                    crate::wellfounded::well_founded_compiled_with(&self.cp, &self.ctx, opts)?;
                (model.true_facts, model.undefined)
            }
        };
        Ok(self.s == s && self.undefined == undefined)
    }

    /// The true and (for IDB predicates) undefined relations of `pred`.
    fn relations_of(
        &self,
        pred: &str,
    ) -> Result<(&inflog_core::Relation, Option<&inflog_core::Relation>)> {
        if let Some(i) = self.cp.idb_id(pred) {
            return Ok((self.s.get(i), Some(self.undefined.get(i))));
        }
        if let Some(i) = self.cp.edb_id(pred) {
            return Ok((&self.ctx.edb[i], None));
        }
        Err(EvalError::UnknownRelation {
            name: pred.to_owned(),
        })
    }

    /// Resolves a goal's terms: constants to universe ids, variables to
    /// equality classes (first occurrence binds, repeats constrain).
    fn pattern_of(&self, goal: &Atom) -> Result<Vec<Slot>> {
        let mut vars: Vec<&str> = Vec::new();
        goal.terms
            .iter()
            .map(|term| match term {
                Term::Const(name) => self
                    .db
                    .universe()
                    .lookup(name)
                    .map(Slot::Bound)
                    .ok_or_else(|| EvalError::UnknownConstant { name: name.clone() }),
                Term::Var(v) => Ok(match vars.iter().position(|seen| seen == v) {
                    Some(first) => Slot::SameAs(first),
                    None => {
                        vars.push(v);
                        Slot::Free
                    }
                }),
            })
            .collect()
    }
}

/// One resolved goal position for the scan filter.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Must equal this constant.
    Bound(Const),
    /// First occurrence of a variable: matches anything.
    Free,
    /// Repeated variable: must equal the value at this earlier position.
    SameAs(usize),
}

fn pattern_matches(pattern: &[Slot], t: &Tuple) -> bool {
    let items = t.items();
    pattern.iter().enumerate().all(|(i, slot)| match slot {
        Slot::Bound(c) => items[i] == *c,
        Slot::Free => true,
        Slot::SameAs(j) => items[i] == items[*j],
    })
}

/// The single-writer / many-reader publication point for epochs. See the
/// module docs: [`publish`](EpochCell::publish) atomically replaces the
/// current epoch, [`pin`](EpochCell::pin) hands a reader a refcounted
/// handle on the epoch current at that instant. The lock is held only for
/// the `Arc` clone or swap — never across evaluation — so readers and the
/// writer cannot block each other for more than a pointer exchange.
#[derive(Debug)]
pub struct EpochCell {
    current: Mutex<Arc<Epoch>>,
}

impl EpochCell {
    /// A cell serving `first` (usually epoch 0, fresh from
    /// [`Materialized::publish`](crate::Materialized::publish)).
    pub fn new(first: Arc<Epoch>) -> EpochCell {
        EpochCell {
            current: Mutex::new(first),
        }
    }

    /// Pins the currently published epoch: the returned handle keeps
    /// answering from that snapshot no matter how many later epochs are
    /// published, and frees it on drop (when it is the last pin).
    pub fn pin(&self) -> Arc<Epoch> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Publishes `next` as the current epoch and returns the previous one.
    /// Epoch numbers must advance — publishing is the commit ack of a
    /// serialized writer, and a stale swap would un-commit an acked write.
    ///
    /// # Panics
    /// If `next.number()` does not exceed the published number.
    pub fn publish(&self, next: Arc<Epoch>) -> Arc<Epoch> {
        let mut cur = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(
            next.number() > cur.number(),
            "epoch publication must advance: {} -> {}",
            cur.number(),
            next.number()
        );
        std::mem::replace(&mut *cur, next)
    }

    /// The currently published epoch number.
    pub fn number(&self) -> u64 {
        self.current
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .number()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::{MaterializeOpts, Materialized};
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::parse_atom;

    const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";

    fn handle(engine: Engine) -> Materialized {
        let db = DiGraph::path(4).to_database("E");
        let opts = MaterializeOpts {
            engine,
            ..MaterializeOpts::default()
        };
        Materialized::new(&inflog_syntax::parse_program(TC).unwrap(), &db, &opts).unwrap()
    }

    #[test]
    fn publish_pin_and_free() {
        let mut m = handle(Engine::Stratified);
        let cell = EpochCell::new(m.publish(m.epoch()).unwrap());
        assert_eq!(cell.number(), 0);
        let pinned = cell.pin();

        m.insert_named("E", &["v3", "v0"]).unwrap();
        let old = cell.publish(m.publish(m.epoch()).unwrap());
        assert_eq!(cell.number(), 1);
        assert!(Arc::ptr_eq(&old, &pinned));
        drop(old);

        // The pinned reader still sees epoch 0: the pre-insert closure.
        let goal = parse_atom("S(x, y)").unwrap();
        let at0 = pinned.select(&goal, None).unwrap();
        assert_eq!(at0.tuples.len(), 3 + 2 + 1);
        let at1 = cell.pin().select(&goal, None).unwrap();
        assert_eq!(at1.tuples.len(), 16, "cycle closes the full square");

        // Old epochs are freed when the last pin drops: the cell holds one
        // reference to epoch 1; `pinned` is the only one left on epoch 0.
        assert_eq!(Arc::strong_count(&pinned), 1);
    }

    #[test]
    fn select_agrees_with_from_scratch_query() {
        for engine in [Engine::Stratified, Engine::WellFounded] {
            let m = handle(engine);
            let ep = m.publish(m.epoch()).unwrap();
            for goal in [
                "S(x, y)",
                "S('v0', y)",
                "S(x, x)",
                "S('v0', 'v3')",
                "E(x, y)",
            ] {
                let goal = parse_atom(goal).unwrap();
                let scanned = ep.select(&goal, None).unwrap();
                let evaluated = ep.query(&goal, &QueryOpts::default()).unwrap();
                assert_eq!(scanned.tuples, evaluated.tuples, "goal {goal:?}");
                assert_eq!(scanned.undefined, evaluated.undefined);
            }
        }
    }

    #[test]
    fn contains_is_three_valued() {
        let src = "Win(x) :- Move(x, y), !Win(y).";
        // a <-> b is a draw loop (undefined); d is stuck (lost), so c wins.
        let mut db = Database::new();
        db.insert_named_fact("Move", &["a", "b"]).unwrap();
        db.insert_named_fact("Move", &["b", "a"]).unwrap();
        db.insert_named_fact("Move", &["c", "d"]).unwrap();
        let opts = MaterializeOpts {
            engine: Engine::WellFounded,
            ..MaterializeOpts::default()
        };
        let m = Materialized::new(&inflog_syntax::parse_program(src).unwrap(), &db, &opts).unwrap();
        let ep = m.publish(0).unwrap();
        let t = |name: &str| Tuple::new(vec![db.universe().lookup(name).unwrap()]);
        assert_eq!(ep.contains("Win", &t("c")).unwrap(), Truth::True);
        assert_eq!(ep.contains("Win", &t("d")).unwrap(), Truth::False);
        assert_eq!(ep.contains("Win", &t("a")).unwrap(), Truth::Undefined);
        assert!(ep.contains("NoSuch", &t("a")).is_err());
        assert!(ep.contains("Win", &Tuple::from_ids(&[0, 1])).is_err());
    }

    #[test]
    fn recompute_oracle_accepts_published_epochs() {
        for engine in [
            Engine::Seminaive,
            Engine::Inflationary,
            Engine::Stratified,
            Engine::WellFounded,
        ] {
            let mut m = handle(engine);
            m.insert_named("E", &["v0", "v2"]).unwrap();
            let ep = m.publish(m.epoch()).unwrap();
            assert!(ep.matches_recompute(&EvalOptions::default()).unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "epoch publication must advance")]
    fn stale_publish_is_refused() {
        let m = handle(Engine::Stratified);
        let cell = EpochCell::new(m.publish(5).unwrap());
        let _ = cell.publish(m.publish(5).unwrap());
    }
}
