//! Evaluation options: the knobs every engine accepts.
//!
//! Two kinds of knob today: the **parallel round executor's** — how many
//! worker threads a Θ application may use, and how large a round has to be
//! before forking is worth the spawn/merge overhead — and the **executor
//! selection** between the flat register-machine VM (the default) and the
//! recursive tree walker kept as its oracle. The options travel from the
//! engine entry points (`*_with` variants) through the shared
//! [`DeltaDriver`](crate::DeltaDriver) into the operator executor; engines
//! called without explicit options use [`EvalOptions::default`], which reads
//! the `INFLOG_THREADS` / `INFLOG_PARALLEL_THRESHOLD` / `INFLOG_EXEC`
//! environment variables so a whole test or bench run can be forced onto the
//! parallel driver (or the oracle executor) without touching call sites.

use crate::govern::{Budget, CancelToken, Failpoints};
use std::sync::OnceLock;

/// Work-size floor (outer-loop candidates summed over the round's plans)
/// below which a round always runs sequentially in auto mode: spawning and
/// merging worker threads costs tens of microseconds, which tiny rounds
/// cannot amortize.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 512;

/// Which Θ-application executor runs the rule plans.
///
/// Both executors are bit-identical — same tuples, same insertion order,
/// same rounds and alternations, at every thread count; debug builds assert
/// this per application. The tree walker survives purely as the VM's
/// correctness oracle (and for `INFLOG_EXEC=tree` CI runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecKind {
    /// The flat register-machine VM over lowered [`RuleProgram`]s — the
    /// default, and the fast path (see [`exec`](crate::exec)).
    ///
    /// [`RuleProgram`]: crate::exec::RuleProgram
    #[default]
    Vm,
    /// The recursive tree walker over [`Plan`] steps (the oracle).
    ///
    /// [`Plan`]: crate::plan::Plan
    Tree,
}

/// Options accepted by every evaluation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOptions {
    /// Worker threads a Θ application may use. `1` evaluates sequentially
    /// (the default); `0` is **auto** — use all available hardware
    /// parallelism. Values above `1` request exactly that many workers.
    ///
    /// Whatever the count, results are **bit-identical** to sequential
    /// evaluation: same tuples, same insertion order, same round and
    /// alternation counts (see the threading-model notes in the README).
    pub threads: usize,
    /// Minimum per-round work estimate (outer-loop candidates summed over
    /// the plans of the application — for delta rounds, the size of the
    /// round's delta) before the round actually forks. Below it the round
    /// runs sequentially even when `threads > 1`. `0` forces the parallel
    /// path — with the task grain floor dropped to one candidate — for
    /// every round that has any work at all (useful for tests).
    pub parallel_threshold: usize,
    /// Which executor runs the plans. `None` (the usual value, including
    /// for [`EvalOptions::sequential`]) defers to the `INFLOG_EXEC`
    /// environment variable — resolved once per process — so a whole run
    /// can be switched to the tree oracle without touching call sites;
    /// `Some` pins the choice for this evaluation (tests use this).
    pub exec: Option<ExecKind>,
    /// Resource limits (wall-clock deadline, round cap, derived-tuple
    /// cap), unlimited by default. Violations surface as typed
    /// [`EvalError::BudgetExceeded`](crate::EvalError) errors.
    pub budget: Budget,
    /// Cooperative cancellation: keep a clone of the token, pass one
    /// here, and flip it from any thread to stop the evaluation with
    /// [`EvalError::Cancelled`](crate::EvalError). `None` (the default)
    /// means not cancellable — and lets the inner loops skip governance
    /// entirely when the budget is unlimited too.
    pub cancel: Option<CancelToken>,
    /// Fault injection for the robustness test harness; unarmed by
    /// default, armed process-wide via `INFLOG_FAILPOINT=<site>[:<n>]`.
    pub failpoints: Failpoints,
}

impl Default for EvalOptions {
    /// Sequential unless overridden by the environment: `INFLOG_THREADS`
    /// sets the thread count (`0` = auto, resolved through
    /// [`EvalOptions::effective_threads`]) and `INFLOG_PARALLEL_THRESHOLD`
    /// the fork floor. CI uses these to run the whole suite with the
    /// parallel driver forced on. A value that does not parse as an integer
    /// is **loudly ignored** (warning on stderr) rather than silently
    /// falling back to sequential.
    fn default() -> Self {
        EvalOptions::from_env_with(|key| std::env::var(key).ok())
    }
}

impl EvalOptions {
    /// Explicitly sequential options (ignores the environment for the
    /// parallel knobs; the executor choice still follows `INFLOG_EXEC` so
    /// oracle runs cover the sequential entry points too).
    pub fn sequential() -> Self {
        EvalOptions {
            threads: 1,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            exec: None,
            budget: Budget::default(),
            cancel: None,
            failpoints: Failpoints::none(),
        }
    }

    /// These options with governance stripped: unlimited budget, no
    /// cancellation token, no failpoints. The debug cross-checks use this
    /// so a recompute-for-verification never trips the caller's limits
    /// (or re-fires a one-shot failpoint).
    pub fn without_governance(&self) -> Self {
        EvalOptions {
            budget: Budget::default(),
            cancel: None,
            failpoints: Failpoints::none(),
            ..self.clone()
        }
    }

    /// Options with a fixed worker-thread count (`0` = auto) and the
    /// default fork threshold.
    pub fn with_threads(threads: usize) -> Self {
        EvalOptions {
            threads,
            ..EvalOptions::sequential()
        }
    }

    /// The concrete worker count: resolves `threads == 0` (auto) to the
    /// hardware parallelism, and anything else to itself.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }

    /// [`EvalOptions::default`] with an explicit environment accessor, so
    /// the parsing rules are testable without mutating the process
    /// environment. `INFLOG_THREADS=0` means auto (all hardware threads),
    /// exactly as `bench_report --threads 0` documents.
    fn from_env_with(get: impl Fn(&str) -> Option<String>) -> Self {
        EvalOptions {
            threads: env_usize("INFLOG_THREADS", &get).unwrap_or(1),
            parallel_threshold: env_usize("INFLOG_PARALLEL_THRESHOLD", &get)
                .unwrap_or(DEFAULT_PARALLEL_THRESHOLD),
            exec: env_exec(&get),
            failpoints: get("INFLOG_FAILPOINT")
                .map_or_else(Failpoints::none, |raw| Failpoints::from_env_value(&raw)),
            ..EvalOptions::sequential()
        }
    }

    /// The concrete executor choice: an explicit [`EvalOptions::exec`] wins;
    /// otherwise `INFLOG_EXEC` is consulted once per process (cached — the
    /// hot paths resolve this per Θ application) and defaults to the VM.
    pub fn exec_kind(&self) -> ExecKind {
        static ENV_EXEC: OnceLock<ExecKind> = OnceLock::new();
        self.exec.unwrap_or_else(|| {
            *ENV_EXEC
                .get_or_init(|| env_exec(|key: &str| std::env::var(key).ok()).unwrap_or_default())
        })
    }
}

/// Parses `INFLOG_EXEC` (`vm` or `tree`, case-insensitive). Unset and empty
/// mean "use the default"; anything else warns on stderr — the same loud
/// fallback as the numeric knobs.
fn env_exec(get: impl Fn(&str) -> Option<String>) -> Option<ExecKind> {
    let raw = get("INFLOG_EXEC")?;
    match raw.trim() {
        "" => None,
        s if s.eq_ignore_ascii_case("vm") => Some(ExecKind::Vm),
        s if s.eq_ignore_ascii_case("tree") => Some(ExecKind::Tree),
        _ => {
            eprintln!("warning: ignoring INFLOG_EXEC={raw:?}: expected \"vm\" or \"tree\"");
            None
        }
    }
}

/// Reads one `usize` knob from the environment. Unset and empty (or
/// whitespace-only) values mean "use the default"; a set-but-malformed value
/// — `INFLOG_THREADS=four` — is a configuration mistake that used to run
/// sequentially with no signal, so it now warns on stderr before falling
/// back.
fn env_usize(key: &str, get: impl Fn(&str) -> Option<String>) -> Option<usize> {
    let raw = get(key)?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("warning: ignoring {key}={raw:?}: not a non-negative integer");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_thread() {
        let o = EvalOptions::sequential();
        assert_eq!(o.threads, 1);
        assert_eq!(o.effective_threads(), 1);
    }

    #[test]
    fn auto_resolves_to_hardware_parallelism() {
        let o = EvalOptions::with_threads(0);
        assert!(o.effective_threads() >= 1);
        let o = EvalOptions::with_threads(3);
        assert_eq!(o.effective_threads(), 3);
    }

    /// Simulated environments, keyed off `INFLOG_THREADS` only.
    fn env_of(value: Option<&str>) -> impl Fn(&str) -> Option<String> + '_ {
        move |key| {
            if key == "INFLOG_THREADS" {
                value.map(str::to_owned)
            } else {
                None
            }
        }
    }

    #[test]
    fn default_reads_well_formed_env() {
        let o = EvalOptions::from_env_with(env_of(Some("4")));
        assert_eq!(o.threads, 4);
        assert_eq!(o.parallel_threshold, DEFAULT_PARALLEL_THRESHOLD);
        // Surrounding whitespace is tolerated.
        assert_eq!(EvalOptions::from_env_with(env_of(Some(" 2\n"))).threads, 2);
    }

    #[test]
    fn threads_zero_in_env_means_auto() {
        // `INFLOG_THREADS=0` must flow into the auto resolution path, not
        // be clamped or treated as unset.
        let o = EvalOptions::from_env_with(env_of(Some("0")));
        assert_eq!(o.threads, 0);
        assert!(o.effective_threads() >= 1);
    }

    #[test]
    fn malformed_env_values_fall_back_loudly() {
        // `INFLOG_THREADS=four` used to silently run sequentially; the
        // parse failure now warns (stderr) and falls back to the default.
        for bad in ["four", "-1", "1.5", "0x2", "2 threads"] {
            let o = EvalOptions::from_env_with(env_of(Some(bad)));
            assert_eq!(o.threads, 1, "INFLOG_THREADS={bad:?}");
        }
    }

    #[test]
    fn exec_env_parses_vm_tree_and_warns_otherwise() {
        let env_exec_of = |value: Option<&'static str>| {
            move |key: &str| {
                if key == "INFLOG_EXEC" {
                    value.map(str::to_owned)
                } else {
                    None
                }
            }
        };
        let kind = |v| EvalOptions::from_env_with(env_exec_of(v)).exec;
        assert_eq!(kind(Some("vm")), Some(ExecKind::Vm));
        assert_eq!(kind(Some("tree")), Some(ExecKind::Tree));
        assert_eq!(kind(Some(" TREE\n")), Some(ExecKind::Tree));
        // Unset/empty defer to the default; malformed values fall back
        // loudly (stderr) instead of silently picking an executor.
        assert_eq!(kind(None), None);
        assert_eq!(kind(Some("  ")), None);
        assert_eq!(kind(Some("fast")), None);
        // An explicit choice always wins over the environment.
        let pinned = EvalOptions {
            exec: Some(ExecKind::Tree),
            ..EvalOptions::sequential()
        };
        assert_eq!(pinned.exec_kind(), ExecKind::Tree);
    }

    #[test]
    fn empty_and_unset_env_values_mean_default() {
        for empty in [None, Some(""), Some("   "), Some("\t\n")] {
            let o = EvalOptions::from_env_with(env_of(empty));
            assert_eq!(o.threads, 1, "INFLOG_THREADS={empty:?}");
            assert_eq!(o.parallel_threshold, DEFAULT_PARALLEL_THRESHOLD);
        }
    }
}
