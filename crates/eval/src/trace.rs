//! Evaluation traces: per-round statistics for the experiment tables.
//!
//! §4 of the paper bounds the inflationary iteration by `n_0 <= |A|^k`
//! rounds; experiment E6 tabulates actual round counts against that bound,
//! which is what this trace records.

use std::fmt;

/// Statistics from one fixpoint iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalTrace {
    /// Number of rounds executed until stabilization (the round that
    /// discovers no change is not counted).
    pub rounds: usize,
    /// Tuples newly added in each round.
    pub added_per_round: Vec<usize>,
    /// Total tuples in the final interpretation.
    pub final_tuples: usize,
}

impl EvalTrace {
    /// Records a round that added `added` tuples.
    pub fn record_round(&mut self, added: usize) {
        self.rounds += 1;
        self.added_per_round.push(added);
    }

    /// Total tuples derived across rounds (equals `final_tuples` for
    /// inflationary evaluation).
    pub fn total_added(&self) -> usize {
        self.added_per_round.iter().sum()
    }
}

impl fmt::Display for EvalTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} tuples ({:?} per round)",
            self.rounds, self.final_tuples, self.added_per_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut t = EvalTrace::default();
        t.record_round(5);
        t.record_round(3);
        t.record_round(0);
        assert_eq!(t.rounds, 3);
        assert_eq!(t.total_added(), 8);
    }

    #[test]
    fn display() {
        let mut t = EvalTrace::default();
        t.record_round(2);
        t.final_tuples = 2;
        assert_eq!(t.to_string(), "1 rounds, 2 tuples ([2] per round)");
    }
}
