//! The flat register-machine executor: rule plans lowered to a
//! [`RuleProgram`] of sequential [`Op`]s, driven by an **iterative** VM.
//!
//! The tree executor (kept as the debug oracle in [`tree`](crate::tree))
//! interprets the [`Step`](crate::plan::Step) tree recursively, paying a
//! dynamic `match` per step per candidate plus a save/restore of the
//! `bound` bitmap around every scan candidate. Lowering
//! ([`plan::lower`](crate::plan::lower)) eliminates both statically:
//!
//! * boundness is decided **at lowering time** — every scan column becomes a
//!   fixed [`ColAction`] (bind a register, check a register, check a
//!   constant, or skip an index-guaranteed key column), so the VM never
//!   tracks a `bound` array at all;
//! * the step tree's recursion becomes explicit **jump targets**: every op
//!   carries the pc of its innermost enclosing loop (`fail`), and the VM
//!   runs a flat program counter over a small stack of loop cursors;
//! * the inner scan/probe loops are **arity-monomorphized** for arities
//!   1–4 — the inline-`Tuple` fast path — with a generic fallback above,
//!   so the per-candidate unification loop fully unrolls.
//!
//! The VM's iteration order is identical to the tree executor's by
//! construction (same dense order, same posting order, same filter points),
//! so its output is bit-identical — same tuples, same insertion order — at
//! every thread count; `run_program` takes the same outer-range restriction
//! the parallel sharding uses. `INFLOG_EXEC=tree` switches the whole
//! process back to the tree oracle, and debug builds cross-check every VM
//! application against it (see [`operator`](crate::operator)).

use crate::index::{Index, IndexSet};
use crate::interp::Interp;
use crate::operator::{DeltaSource, EvalContext};
use crate::plan::{PredRef, Source};
use inflog_core::{Const, Relation, Tuple};
use std::fmt;

/// Sentinel jump target: no enclosing loop — failing here ends the run.
pub const END: u32 = u32::MAX;

/// What a scan does with one column of a candidate tuple. Decided at
/// lowering time from the static binding pattern, so the VM's inner loop
/// has no boundness bookkeeping left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColAction {
    /// Fresh variable: write the column into register `r`.
    Bind(u32),
    /// Already-bound variable: the column must equal register `r`.
    CheckReg(u32),
    /// Constant term: the column must equal this constant.
    CheckConst(Const),
    /// Index key column: equality is guaranteed by the probe, skip it.
    Skip,
}

/// A value operand: a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValSrc {
    /// Register (variable slot).
    Reg(u32),
    /// Immediate constant.
    Imm(Const),
}

#[inline]
fn value(src: ValSrc, vals: &[Const]) -> Const {
    match src {
        ValSrc::Reg(r) => vals[r as usize],
        ValSrc::Imm(c) => c,
    }
}

/// One op of a lowered rule program. Ops run in sequence; loop ops
/// (`ScanEdb`/`ScanIdb`/`ProbeIndex`/`Domain`) open a cursor and every op
/// carries the explicit jump target `fail` — the pc of its innermost
/// enclosing loop, [`END`] at top level — taken when the op fails or (for
/// loop ops) exhausts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Loop over an EDB relation's dense tuples (or the EDB-shaped delta).
    ScanEdb {
        /// EDB relation id.
        rel: u32,
        /// Full relation or the application's delta interpretation.
        source: Source,
        /// Per-column unification actions (length = atom arity).
        cols: Box<[ColAction]>,
        /// Enclosing-loop pc.
        fail: u32,
    },
    /// Loop over an IDB relation's dense tuples (or the per-round delta).
    ScanIdb {
        /// IDB relation id.
        rel: u32,
        /// Full relation or the application's delta interpretation.
        source: Source,
        /// Per-column unification actions (length = atom arity).
        cols: Box<[ColAction]>,
        /// Enclosing-loop pc.
        fail: u32,
    },
    /// Keyed loop: build the key from `key`, probe the persistent
    /// hash-join index, loop its postings (falling back to a filtered
    /// linear scan when no index is registered).
    ProbeIndex {
        /// Relation to probe.
        pred: PredRef,
        /// Full relation or the application's delta interpretation.
        source: Source,
        /// Key columns (strictly ascending).
        key_cols: Box<[usize]>,
        /// Key value sources, aligned with `key_cols`.
        key: Box<[ValSrc]>,
        /// Per-column unification actions; key columns are [`ColAction::Skip`].
        cols: Box<[ColAction]>,
        /// Enclosing-loop pc.
        fail: u32,
    },
    /// Loop register `reg` over the universe `0..|A|`.
    Domain {
        /// Register to range.
        reg: u32,
        /// Enclosing-loop pc.
        fail: u32,
    },
    /// Membership test with all argument values known.
    FilterPos {
        /// Relation to test.
        pred: PredRef,
        /// Argument value sources.
        args: Box<[ValSrc]>,
        /// Enclosing-loop pc.
        fail: u32,
    },
    /// Non-membership test against the negation context.
    FilterNeg {
        /// Relation to test.
        pred: PredRef,
        /// Argument value sources.
        args: Box<[ValSrc]>,
        /// Enclosing-loop pc.
        fail: u32,
    },
    /// Unconditionally write a value into a register.
    BindEq {
        /// Destination register.
        reg: u32,
        /// Value source.
        from: ValSrc,
    },
    /// Equality test between two values.
    FilterEq {
        /// Left operand.
        a: ValSrc,
        /// Right operand.
        b: ValSrc,
        /// Enclosing-loop pc.
        fail: u32,
    },
    /// Inequality test between two values.
    FilterNeq {
        /// Left operand.
        a: ValSrc,
        /// Right operand.
        b: ValSrc,
        /// Enclosing-loop pc.
        fail: u32,
    },
    /// Build the head tuple from the program's head sources and emit it,
    /// then resume the innermost loop.
    Emit {
        /// Enclosing-loop pc.
        fail: u32,
    },
}

/// A lowered rule plan: a flat op sequence over a fixed register file,
/// ending in [`Op::Emit`]. Produced by [`plan::lower`](crate::plan::lower),
/// stored inside every [`Plan`](crate::plan::Plan) — re-planning re-lowers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleProgram {
    /// The op sequence (always ends with [`Op::Emit`]).
    pub ops: Vec<Op>,
    /// Head tuple value sources.
    pub head: Box<[ValSrc]>,
    /// Register-file size (the rule's variable-slot count).
    pub num_regs: usize,
}

impl fmt::Display for ValSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValSrc::Reg(r) => write!(f, "r{r}"),
            ValSrc::Imm(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for ColAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColAction::Bind(r) => write!(f, "bind r{r}"),
            ColAction::CheckReg(r) => write!(f, "=r{r}"),
            ColAction::CheckConst(c) => write!(f, "={c}"),
            ColAction::Skip => write!(f, "skip"),
        }
    }
}

fn fmt_pred(pred: PredRef, source: Source, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if source == Source::Delta {
        write!(f, "Δ")?;
    }
    match pred {
        PredRef::Edb(i) => write!(f, "edb{i}"),
        PredRef::Idb(i) => write!(f, "idb{i}"),
    }
}

fn fmt_list<T: fmt::Display>(items: &[T], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "[")?;
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{item}")?;
    }
    write!(f, "]")
}

fn fmt_fail(fail: u32, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if fail == END {
        write!(f, " fail=end")
    } else {
        write!(f, " fail={fail:02}")
    }
}

impl fmt::Display for RuleProgram {
    /// Stable textual form, pinned by the golden IR tests and printed by
    /// `INFLOG_DUMP_IR=1` at compile time.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program regs={}", self.num_regs)?;
        for (pc, op) in self.ops.iter().enumerate() {
            write!(f, "  {pc:02}: ")?;
            match op {
                Op::ScanEdb {
                    rel,
                    source,
                    cols,
                    fail,
                } => {
                    write!(f, "scan ")?;
                    fmt_pred(PredRef::Edb(*rel as usize), *source, f)?;
                    write!(f, " cols=")?;
                    fmt_list(cols, f)?;
                    fmt_fail(*fail, f)?;
                }
                Op::ScanIdb {
                    rel,
                    source,
                    cols,
                    fail,
                } => {
                    write!(f, "scan ")?;
                    fmt_pred(PredRef::Idb(*rel as usize), *source, f)?;
                    write!(f, " cols=")?;
                    fmt_list(cols, f)?;
                    fmt_fail(*fail, f)?;
                }
                Op::ProbeIndex {
                    pred,
                    source,
                    key_cols,
                    key,
                    cols,
                    fail,
                } => {
                    write!(f, "probe ")?;
                    fmt_pred(*pred, *source, f)?;
                    write!(f, " key=[")?;
                    for (i, (c, k)) in key_cols.iter().zip(key.iter()).enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{c}={k}")?;
                    }
                    write!(f, "] cols=")?;
                    fmt_list(cols, f)?;
                    fmt_fail(*fail, f)?;
                }
                Op::Domain { reg, fail } => {
                    write!(f, "domain r{reg}")?;
                    fmt_fail(*fail, f)?;
                }
                Op::FilterPos { pred, args, fail } => {
                    write!(f, "filter-pos ")?;
                    fmt_pred(*pred, Source::Full, f)?;
                    write!(f, " args=")?;
                    fmt_list(args, f)?;
                    fmt_fail(*fail, f)?;
                }
                Op::FilterNeg { pred, args, fail } => {
                    write!(f, "filter-neg ")?;
                    fmt_pred(*pred, Source::Full, f)?;
                    write!(f, " args=")?;
                    fmt_list(args, f)?;
                    fmt_fail(*fail, f)?;
                }
                Op::BindEq { reg, from } => {
                    write!(f, "bind r{reg} = {from}")?;
                }
                Op::FilterEq { a, b, fail } => {
                    write!(f, "filter {a} == {b}")?;
                    fmt_fail(*fail, f)?;
                }
                Op::FilterNeq { a, b, fail } => {
                    write!(f, "filter {a} != {b}")?;
                    fmt_fail(*fail, f)?;
                }
                Op::Emit { fail } => {
                    write!(f, "emit ")?;
                    fmt_list(&self.head, f)?;
                    fmt_fail(*fail, f)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The shared evaluation environment both executors resolve relations
/// against: the context's EDB, the current interpretation, the optional
/// delta, the negation context, and the read-locked persistent indexes.
pub(crate) struct ExecEnv<'a> {
    pub ctx: &'a EvalContext,
    pub s: &'a Interp,
    pub delta: Option<DeltaSource<'a>>,
    pub neg: &'a Interp,
    /// Read guard shared by every worker of one application.
    pub indexes: &'a IndexSet,
    /// Active resource governor, if any: the executors report every emitted
    /// tuple through [`Governor::note_emit`] so budgets and cancellation
    /// interrupt long single applications, not just round boundaries. `None`
    /// when governance is inert (the common case) — the hot loops then pay
    /// nothing. Derivability probes never set it: a probe inspects one
    /// plan's bounded candidates and emits at most once.
    pub gov: Option<&'a crate::govern::Governor>,
}

impl<'a> ExecEnv<'a> {
    /// Resolves a positive **full-source** relation reference against the
    /// evaluation state. Delta references never resolve to a relation —
    /// use [`scan_tuples`](Self::scan_tuples).
    pub fn relation(&self, pred: PredRef, source: Source) -> &'a Relation {
        crate::operator::resolve_relation(self.ctx, self.s, pred, source)
    }

    /// The dense tuple slice an **unkeyed scan** iterates: the resolved
    /// relation's storage for full sources, the delta slice (materialized
    /// interpretation or live suffix) for delta sources.
    pub fn scan_tuples(&self, pred: PredRef, source: Source) -> &'a [Tuple] {
        match source {
            Source::Full => self.relation(pred, source).dense(),
            Source::Delta => crate::operator::delta_scan_tuples(self.s, self.delta, pred),
        }
    }

    /// The relation a *negative* literal reads (the Γ transform swaps it).
    pub fn neg_relation(&self, pred: PredRef) -> &'a Relation {
        match pred {
            PredRef::Edb(i) => &self.ctx.edb[i],
            PredRef::Idb(i) => self.neg.get(i),
        }
    }
}

/// Where emitted tuples go: collected into a relation (Θ application) or
/// short-circuiting on the first witness (derivability probes).
enum Sink<'o> {
    Collect(&'o mut Relation),
    First,
}

/// An open *non-innermost* loop: the pc of its op (debug-checked against
/// jump targets), the pc execution resumes at per candidate, the loop's own
/// fail target, and the cursor state. The innermost loop never materializes
/// a frame — it runs fused with its straight-line tail (see [`drive`]).
struct Frame<'a> {
    #[cfg(debug_assertions)]
    loop_pc: usize,
    resume: usize,
    fail: u32,
    cursor: Cursor<'a>,
}

/// Loop cursor state. Scan/probe cursors hold borrowed dense storage (and
/// postings) so advancing never touches the index set again.
enum Cursor<'a> {
    /// Unkeyed scan over `tuples[pos..end]`.
    Dense {
        tuples: &'a [Tuple],
        pos: usize,
        end: usize,
        cols: &'a [ColAction],
    },
    /// Index probe: postings are positions into the dense storage.
    Postings {
        tuples: &'a [Tuple],
        postings: &'a [u32],
        pos: usize,
        cols: &'a [ColAction],
    },
    /// Probe fallback when no index is registered: filtered linear scan.
    Filtered {
        tuples: &'a [Tuple],
        pos: usize,
        key_cols: &'a [usize],
        key: Tuple,
        cols: &'a [ColAction],
    },
    /// `Domain` loop over the universe constants `next..end`.
    Domain { next: u32, end: u32, reg: u32 },
}

impl Cursor<'_> {
    /// Advances to the next candidate that unifies, updating registers.
    /// Returns `false` when the loop is exhausted.
    #[inline]
    fn advance(&mut self, vals: &mut [Const]) -> bool {
        match self {
            Cursor::Dense {
                tuples,
                pos,
                end,
                cols,
            } => advance_dense(tuples, pos, *end, cols, vals),
            Cursor::Postings {
                tuples,
                postings,
                pos,
                cols,
            } => advance_postings(tuples, postings, pos, cols, vals),
            Cursor::Filtered {
                tuples,
                pos,
                key_cols,
                key,
                cols,
            } => advance_filtered(tuples, pos, key_cols, key, cols, vals),
            Cursor::Domain { next, end, reg } => {
                if next < end {
                    vals[*reg as usize] = Const(*next);
                    *next += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Unifies one candidate tuple of statically-known arity `N`: the action
/// loop fully unrolls, and `items` reads the inline `Tuple` storage as a
/// fixed-size array (arities ≤ 4 never allocate).
#[inline]
fn unify_n<const N: usize>(items: &[Const; N], cols: &[ColAction; N], vals: &mut [Const]) -> bool {
    let mut i = 0;
    while i < N {
        match cols[i] {
            ColAction::Bind(r) => vals[r as usize] = items[i],
            ColAction::CheckReg(r) => {
                if items[i] != vals[r as usize] {
                    return false;
                }
            }
            ColAction::CheckConst(c) => {
                if items[i] != c {
                    return false;
                }
            }
            ColAction::Skip => {}
        }
        i += 1;
    }
    true
}

/// Generic-arity unification (arity > 4, or the filtered fallback).
#[inline]
fn unify_any(items: &[Const], cols: &[ColAction], vals: &mut [Const]) -> bool {
    for (&item, col) in items.iter().zip(cols.iter()) {
        match *col {
            ColAction::Bind(r) => vals[r as usize] = item,
            ColAction::CheckReg(r) => {
                if item != vals[r as usize] {
                    return false;
                }
            }
            ColAction::CheckConst(c) => {
                if item != c {
                    return false;
                }
            }
            ColAction::Skip => {}
        }
    }
    true
}

macro_rules! dense_loop {
    ($n:literal, $tuples:expr, $pos:expr, $end:expr, $cols:expr, $vals:expr) => {{
        let cols: &[ColAction; $n] = $cols.try_into().expect("action width == arity");
        while *$pos < $end {
            let t = &$tuples[*$pos];
            *$pos += 1;
            let items: &[Const; $n] = t.items().try_into().expect("tuple arity == plan arity");
            if unify_n::<$n>(items, cols, $vals) {
                return true;
            }
        }
        false
    }};
}

/// Scan inner loop, arity-monomorphized for 1–4 with a generic fallback.
#[inline]
fn advance_dense(
    tuples: &[Tuple],
    pos: &mut usize,
    end: usize,
    cols: &[ColAction],
    vals: &mut [Const],
) -> bool {
    match cols.len() {
        0 => {
            // Zero-ary atom: any tuple (there is at most one) matches.
            if *pos < end {
                *pos += 1;
                true
            } else {
                false
            }
        }
        1 => dense_loop!(1, tuples, pos, end, cols, vals),
        2 => dense_loop!(2, tuples, pos, end, cols, vals),
        3 => dense_loop!(3, tuples, pos, end, cols, vals),
        4 => dense_loop!(4, tuples, pos, end, cols, vals),
        _ => {
            while *pos < end {
                let t = &tuples[*pos];
                *pos += 1;
                if unify_any(t.items(), cols, vals) {
                    return true;
                }
            }
            false
        }
    }
}

macro_rules! postings_loop {
    ($n:literal, $tuples:expr, $postings:expr, $pos:expr, $cols:expr, $vals:expr) => {{
        let cols: &[ColAction; $n] = $cols.try_into().expect("action width == arity");
        while *$pos < $postings.len() {
            let t = &$tuples[$postings[*$pos] as usize];
            *$pos += 1;
            let items: &[Const; $n] = t.items().try_into().expect("tuple arity == plan arity");
            if unify_n::<$n>(items, cols, $vals) {
                return true;
            }
        }
        false
    }};
}

/// Probe inner loop over index postings, arity-monomorphized like
/// [`advance_dense`].
#[inline]
fn advance_postings(
    tuples: &[Tuple],
    postings: &[u32],
    pos: &mut usize,
    cols: &[ColAction],
    vals: &mut [Const],
) -> bool {
    match cols.len() {
        1 => postings_loop!(1, tuples, postings, pos, cols, vals),
        2 => postings_loop!(2, tuples, postings, pos, cols, vals),
        3 => postings_loop!(3, tuples, postings, pos, cols, vals),
        4 => postings_loop!(4, tuples, postings, pos, cols, vals),
        _ => {
            while *pos < postings.len() {
                let t = &tuples[postings[*pos] as usize];
                *pos += 1;
                if unify_any(t.items(), cols, vals) {
                    return true;
                }
            }
            false
        }
    }
}

/// Probe fallback when no index is registered (unprepared plan): filtered
/// linear scan — correct, just slower. Mirrors the tree executor exactly.
fn advance_filtered(
    tuples: &[Tuple],
    pos: &mut usize,
    key_cols: &[usize],
    key: &Tuple,
    cols: &[ColAction],
    vals: &mut [Const],
) -> bool {
    'outer: while *pos < tuples.len() {
        let t = &tuples[*pos];
        *pos += 1;
        for (r, &c) in key_cols.iter().enumerate() {
            if t[c] != key[r] {
                continue 'outer;
            }
        }
        if unify_any(t.items(), cols, vals) {
            return true;
        }
    }
    false
}

/// One op with its environment references resolved — relations to dense
/// tuple slices, probes to their persistent [`Index`] — built once per
/// program run. The per-candidate loops then touch only slices and
/// registers: no relation resolution, no index-registry hash, no `source`
/// dispatch survives into the hot path.
enum ROp<'a> {
    /// Unkeyed loop over a dense tuple slice (EDB, IDB, or delta).
    Scan {
        tuples: &'a [Tuple],
        cols: &'a [ColAction],
        fail: u32,
    },
    /// Keyed loop: build the key from registers, probe the pre-resolved
    /// index (or fall back to a filtered linear scan when none is
    /// registered).
    Probe {
        tuples: &'a [Tuple],
        index: Option<&'a Index>,
        key_cols: &'a [usize],
        key: &'a [ValSrc],
        cols: &'a [ColAction],
        fail: u32,
    },
    /// Loop a register over the universe.
    Domain { reg: u32, fail: u32 },
    /// Membership filter against a resolved relation.
    FilterPos {
        rel: &'a Relation,
        args: &'a [ValSrc],
        fail: u32,
    },
    /// Non-membership filter against the resolved negation relation.
    FilterNeg {
        rel: &'a Relation,
        args: &'a [ValSrc],
        fail: u32,
    },
    /// Copy a value into a register.
    BindEq { reg: u32, from: ValSrc },
    /// Equality filter.
    FilterEq { a: ValSrc, b: ValSrc, fail: u32 },
    /// Inequality filter.
    FilterNeq { a: ValSrc, b: ValSrc, fail: u32 },
    /// Produce the head tuple.
    Emit,
}

impl ROp<'_> {
    /// Whether this op opens a loop (scans, probes, domain ranges).
    fn is_loop(&self) -> bool {
        matches!(
            self,
            ROp::Scan { .. } | ROp::Probe { .. } | ROp::Domain { .. }
        )
    }

    /// The fail target of a loop op (the enclosing loop's pc, or [`END`]).
    fn loop_fail(&self) -> u32 {
        match self {
            ROp::Scan { fail, .. } | ROp::Probe { fail, .. } | ROp::Domain { fail, .. } => *fail,
            _ => unreachable!("loop_fail on a non-loop op"),
        }
    }
}

/// Resolves one lowered op against the evaluation environment.
fn resolve_op<'a>(env: &ExecEnv<'a>, op: &'a Op) -> ROp<'a> {
    match op {
        Op::ScanEdb {
            rel,
            source,
            cols,
            fail,
        } => ROp::Scan {
            tuples: env.scan_tuples(PredRef::Edb(*rel as usize), *source),
            cols,
            fail: *fail,
        },
        Op::ScanIdb {
            rel,
            source,
            cols,
            fail,
        } => ROp::Scan {
            tuples: env.scan_tuples(PredRef::Idb(*rel as usize), *source),
            cols,
            fail: *fail,
        },
        Op::ProbeIndex {
            pred,
            source,
            key_cols,
            key,
            cols,
            fail,
        } => {
            let r = env.relation(*pred, *source);
            ROp::Probe {
                tuples: r.dense(),
                index: env.indexes.resolve(r.id(), key_cols),
                key_cols,
                key,
                cols,
                fail: *fail,
            }
        }
        Op::Domain { reg, fail } => ROp::Domain {
            reg: *reg,
            fail: *fail,
        },
        Op::FilterPos { pred, args, fail } => ROp::FilterPos {
            rel: env.relation(*pred, Source::Full),
            args,
            fail: *fail,
        },
        Op::FilterNeg { pred, args, fail } => ROp::FilterNeg {
            rel: env.neg_relation(*pred),
            args,
            fail: *fail,
        },
        Op::BindEq { reg, from } => ROp::BindEq {
            reg: *reg,
            from: *from,
        },
        Op::FilterEq { a, b, fail } => ROp::FilterEq {
            a: *a,
            b: *b,
            fail: *fail,
        },
        Op::FilterNeq { a, b, fail } => ROp::FilterNeq {
            a: *a,
            b: *b,
            fail: *fail,
        },
        Op::Emit { .. } => ROp::Emit,
    }
}

/// Opens the cursor for a loop op. `range` restricts the iteration extent
/// (the parallel sharding unit) and is passed only for the program's first
/// op; probes ignore it — the planner never splits a keyed loop, exactly
/// like the tree executor's slice entry point.
fn open_cursor<'a>(
    env: &ExecEnv<'_>,
    rop: &ROp<'a>,
    range: Option<(usize, usize)>,
    vals: &[Const],
) -> Cursor<'a> {
    match *rop {
        ROp::Scan { tuples, cols, .. } => {
            let (pos, end) = range.unwrap_or((0, tuples.len()));
            Cursor::Dense {
                tuples,
                pos,
                end,
                cols,
            }
        }
        ROp::Probe {
            tuples,
            index,
            key_cols,
            key,
            cols,
            ..
        } => {
            let key: Tuple = key.iter().map(|&k| value(k, vals)).collect();
            match index {
                Some(ix) => Cursor::Postings {
                    tuples,
                    postings: ix.postings(&key),
                    pos: 0,
                    cols,
                },
                None => Cursor::Filtered {
                    tuples,
                    pos: 0,
                    key_cols,
                    key,
                    cols,
                },
            }
        }
        ROp::Domain { reg, .. } => {
            let (lo, end) = range.unwrap_or((0, env.ctx.universe_size));
            Cursor::Domain {
                next: lo as u32,
                end: end as u32,
                reg,
            }
        }
        _ => unreachable!("open_cursor on a non-loop op"),
    }
}

/// Runs the straight-line tail after the innermost loop (filters, register
/// copies, and the final emit) for one candidate binding. Returns `true`
/// only when the sink short-circuits: [`Sink::First`] reached its witness,
/// or an active governor tripped on a collected emit (budget exhausted,
/// cancelled, failpoint) — the trip rides the same early-return path, and
/// the caller reads the verdict off the governor. A failed filter or an
/// ordinary collected emit returns `false` so the fused loop advances to
/// the next candidate.
#[inline]
fn run_tail(
    rops: &[ROp<'_>],
    start: usize,
    head: &[ValSrc],
    vals: &mut [Const],
    sink: &mut Sink<'_>,
    gov: Option<&crate::govern::Governor>,
) -> bool {
    for op in &rops[start..] {
        match *op {
            ROp::FilterPos { rel, args, .. } => {
                let t: Tuple = args.iter().map(|&a| value(a, vals)).collect();
                if !rel.contains(&t) {
                    return false;
                }
            }
            ROp::FilterNeg { rel, args, .. } => {
                let t: Tuple = args.iter().map(|&a| value(a, vals)).collect();
                if rel.contains(&t) {
                    return false;
                }
            }
            ROp::BindEq { reg, from } => vals[reg as usize] = value(from, vals),
            ROp::FilterEq { a, b, .. } => {
                if value(a, vals) != value(b, vals) {
                    return false;
                }
            }
            ROp::FilterNeq { a, b, .. } => {
                if value(a, vals) == value(b, vals) {
                    return false;
                }
            }
            ROp::Emit => {
                return match sink {
                    Sink::Collect(out) => {
                        out.insert(head.iter().map(|&h| value(h, vals)).collect());
                        matches!(gov, Some(g) if g.note_emit())
                    }
                    Sink::First => true,
                };
            }
            _ => unreachable!("loop op after the innermost loop"),
        }
    }
    unreachable!("program tail must end with emit")
}

/// Runs a lowered program, collecting emitted head tuples into `out`.
///
/// `range` restricts the **outermost** loop to the contiguous slice
/// `lo..hi` — the unit of parallel execution (only legal when the first op
/// is an unkeyed scan or a `Domain` op, exactly like the tree executor's
/// slice entry point). Outputs arrive in the same order as the
/// corresponding slice of a full sequential run.
pub(crate) fn run_program(
    env: &ExecEnv<'_>,
    prog: &RuleProgram,
    out: &mut Relation,
    range: Option<(usize, usize)>,
) {
    let mut vals = vec![Const(0); prog.num_regs];
    drive(env, prog, range, &mut vals, &mut Sink::Collect(out));
}

/// Satisfiability probe: does any completion of the pre-seeded registers
/// reach `Emit`? Returns on the first witness — the one-step derivability
/// checks run entire check-plan bodies through this.
pub(crate) fn probe_program(env: &ExecEnv<'_>, prog: &RuleProgram, vals: &mut [Const]) -> bool {
    debug_assert_eq!(vals.len(), prog.num_regs);
    drive(env, prog, None, vals, &mut Sink::First)
}

/// A lowered program resolved once against an environment snapshot —
/// relations to dense slices, probes to their persistent indexes. Build
/// once and probe many times: the batch derivability sweeps amortize the
/// per-op resolution over thousands of head-bound checks. Valid only while
/// the environment's relations stay unmutated.
pub(crate) struct ResolvedProgram<'a> {
    rops: Vec<ROp<'a>>,
    head: &'a [ValSrc],
    /// Position of the innermost loop op; `None` when the program is pure
    /// straight-line (fully pre-bound check plan, or a body-free fact).
    last: Option<usize>,
}

/// Resolves every op of `prog` against `env` (see [`ResolvedProgram`]).
pub(crate) fn resolve_program<'a>(env: &ExecEnv<'a>, prog: &'a RuleProgram) -> ResolvedProgram<'a> {
    let rops: Vec<ROp<'a>> = prog.ops.iter().map(|op| resolve_op(env, op)).collect();
    let last = rops.iter().rposition(ROp::is_loop);
    ResolvedProgram {
        rops,
        head: &prog.head,
        last,
    }
}

impl<'a> ResolvedProgram<'a> {
    /// Satisfiability probe over the pre-resolved ops — [`probe_program`]
    /// without the per-call resolution.
    pub(crate) fn probe(&self, env: &ExecEnv<'_>, vals: &mut [Const]) -> bool {
        drive_resolved(env, self, None, vals, &mut Sink::First)
    }
}

/// The VM main loop over a resolved program.
///
/// The program is a linear loop nest: the op after the **innermost** loop
/// is always straight-line (filters, copies, emit), so that loop runs
/// *fused* — one tight `advance`/tail cycle per candidate with no frame
/// push, no jump-target resolution, and no stack access. Only enclosing
/// loops materialize [`Frame`]s; failing ops jump to their explicit `fail`
/// target (the innermost *open* loop, the stack top), and exhausted loops
/// pop along the fail chain.
fn drive<'a>(
    env: &ExecEnv<'a>,
    prog: &'a RuleProgram,
    range: Option<(usize, usize)>,
    vals: &mut [Const],
    sink: &mut Sink<'_>,
) -> bool {
    let resolved = resolve_program(env, prog);
    drive_resolved(env, &resolved, range, vals, sink)
}

/// [`drive`] over a pre-resolved program (see [`ResolvedProgram`]).
fn drive_resolved<'a>(
    env: &ExecEnv<'_>,
    resolved: &ResolvedProgram<'a>,
    range: Option<(usize, usize)>,
    vals: &mut [Const],
    sink: &mut Sink<'_>,
) -> bool {
    let rops = &resolved.rops;
    let Some(last) = resolved.last else {
        // No loops at all (fully pre-bound check plan, or a body-free
        // fact): the tail runs exactly once.
        return run_tail(rops, 0, resolved.head, vals, sink, env.gov);
    };
    let mut stack: Vec<Frame<'a>> = Vec::with_capacity(last);
    let mut pc: usize = 0;
    'program: loop {
        // Forward execution from `pc` down into the fused innermost loop;
        // breaks with the fail target to backtrack to.
        let mut target: u32 = 'fail: {
            while pc < last {
                match &rops[pc] {
                    op if op.is_loop() => {
                        let cursor = open_cursor(env, op, if pc == 0 { range } else { None }, vals);
                        let mut frame = Frame {
                            #[cfg(debug_assertions)]
                            loop_pc: pc,
                            resume: pc + 1,
                            fail: op.loop_fail(),
                            cursor,
                        };
                        if !frame.cursor.advance(vals) {
                            break 'fail frame.fail;
                        }
                        stack.push(frame);
                    }
                    ROp::FilterPos { rel, args, fail } => {
                        let t: Tuple = args.iter().map(|&a| value(a, vals)).collect();
                        if !rel.contains(&t) {
                            break 'fail *fail;
                        }
                    }
                    ROp::FilterNeg { rel, args, fail } => {
                        let t: Tuple = args.iter().map(|&a| value(a, vals)).collect();
                        if rel.contains(&t) {
                            break 'fail *fail;
                        }
                    }
                    ROp::BindEq { reg, from } => vals[*reg as usize] = value(*from, vals),
                    ROp::FilterEq { a, b, fail } => {
                        if value(*a, vals) != value(*b, vals) {
                            break 'fail *fail;
                        }
                    }
                    ROp::FilterNeq { a, b, fail } => {
                        if value(*a, vals) == value(*b, vals) {
                            break 'fail *fail;
                        }
                    }
                    _ => unreachable!("emit before the innermost loop"),
                }
                pc += 1;
            }
            // The innermost loop, fused with its straight-line tail.
            let mut cursor =
                open_cursor(env, &rops[last], if last == 0 { range } else { None }, vals);
            while cursor.advance(vals) {
                if run_tail(rops, last + 1, resolved.head, vals, sink, env.gov) {
                    return true;
                }
            }
            break 'fail rops[last].loop_fail();
        };
        // Backtrack along the explicit fail chain: the target is always the
        // innermost *open* loop — the stack top — so advance it, popping
        // exhausted loops through their own fail targets.
        loop {
            if target == END {
                debug_assert!(stack.is_empty(), "fail chain must mirror the loop stack");
                return false;
            }
            let frame = stack.last_mut().expect("jump target below an empty stack");
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                frame.loop_pc, target as usize,
                "jump target is not the innermost open loop"
            );
            if frame.cursor.advance(vals) {
                pc = frame.resume;
                continue 'program;
            }
            target = frame.fail;
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::resolve::CompiledProgram;
    use inflog_core::graphs::DiGraph;
    use inflog_core::Database;
    use inflog_syntax::parse_program;

    fn compile(src: &str, db: &Database) -> CompiledProgram {
        CompiledProgram::compile(&parse_program(src).unwrap(), db).unwrap()
    }

    /// Golden IR: the transitive-closure recursive rule, full plan. Pins
    /// the exact lowered form — scan `E`, probe `S` keyed on the joined
    /// column, emit. A change here is a change to the executor's input
    /// language and must be deliberate.
    #[test]
    fn golden_ir_tc_rule() {
        let db = DiGraph::path(3).to_database("E");
        let cp = compile("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).", &db);
        let prog = &cp.rules[1].full_plan.program;
        assert_eq!(
            prog.to_string(),
            "program regs=3\n\
             \x20 00: scan edb0 cols=[bind r0, bind r2] fail=end\n\
             \x20 01: probe idb0 key=[0=r2] cols=[skip, bind r1] fail=00\n\
             \x20 02: emit [r0, r1] fail=01\n"
        );
        // The semi-naive delta plan drives the IDB occurrence from the
        // per-round delta and probes E keyed on the bound join column.
        let delta = &cp.rules[1].delta_plans[0].program;
        assert_eq!(
            delta.to_string(),
            "program regs=3\n\
             \x20 00: scan Δidb0 cols=[bind r2, bind r1] fail=end\n\
             \x20 01: probe edb0 key=[1=r2] cols=[bind r0, skip] fail=00\n\
             \x20 02: emit [r0, r1] fail=01\n"
        );
    }

    /// Golden IR: the paper's π₁ negation rule `T(x) :- E(y, x), !T(y)`.
    /// The negated IDB literal lowers to a `filter-neg` op reading the
    /// negation context.
    #[test]
    fn golden_ir_negation_rule() {
        let db = DiGraph::path(3).to_database("E");
        let cp = compile("T(x) :- E(y, x), !T(y).", &db);
        let prog = &cp.rules[0].full_plan.program;
        assert_eq!(
            prog.to_string(),
            "program regs=2\n\
             \x20 00: scan edb0 cols=[bind r1, bind r0] fail=end\n\
             \x20 01: filter-neg idb0 args=[r1] fail=00\n\
             \x20 02: emit [r0] fail=00\n"
        );
    }

    /// Check plans lower with the head registers pre-bound: the body scan
    /// becomes a keyed probe and nothing re-binds the head.
    #[test]
    fn golden_ir_check_plan_probes_prebound_head() {
        let db = DiGraph::path(3).to_database("Move");
        let cp = compile("Win(x) :- Move(x, y), !Win(y).", &db);
        let prog = &cp.rules[0].check_plan.program;
        assert_eq!(
            prog.to_string(),
            "program regs=2\n\
             \x20 00: probe edb0 key=[0=r0] cols=[skip, bind r1] fail=end\n\
             \x20 01: filter-neg idb0 args=[r1] fail=00\n\
             \x20 02: emit [r0] fail=00\n"
        );
    }

    /// A body-free rule with a head variable lowers to `domain` + `emit`,
    /// and an all-constant fact to a bare `emit` that runs exactly once.
    #[test]
    fn golden_ir_domain_and_bare_emit() {
        let mut db = Database::new();
        db.universe_mut().intern("a");
        db.universe_mut().intern("b");
        let cp = compile("G(z, 'b').", &db);
        let prog = &cp.rules[0].full_plan.program;
        assert_eq!(
            prog.to_string(),
            "program regs=1\n\
             \x20 00: domain r0 fail=end\n\
             \x20 01: emit [r0, #1] fail=00\n"
        );
    }
}
