//! Well-founded semantics via Van Gelder's alternating fixpoint.
//!
//! An extension beyond the paper's text: the negation-semantics landscape the
//! paper's introduction surveys (negation as failure, stratified semantics)
//! developed into the well-founded semantics, which — like Inflationary
//! DATALOG — assigns a meaning to *every* DATALOG¬ program, but a 3-valued
//! one. Experiment E9 compares all the semantics side by side.
//!
//! Construction: let `Γ(J)` be the least fixpoint of the *positivized*
//! operator in which negative IDB literals are evaluated against the fixed
//! interpretation `J`. `Γ` is antimonotone, so `Γ²` is monotone:
//!
//! * true facts `T*` = least fixpoint of `Γ²` (iterate `T_{k+1} = Γ(Γ(T_k))`
//!   from ∅);
//! * possible facts `U*` = `Γ(T*)` (the greatest fixpoint of `Γ²`);
//! * undefined = `U* \ T*`; false = everything else.
//!
//! For stratified programs the result is total (no undefined facts) and
//! coincides with the perfect model.

use crate::interp::Interp;
use crate::operator::{apply_with_neg, EvalContext};
use crate::resolve::CompiledProgram;
use crate::Result;
use inflog_core::Database;
use inflog_syntax::Program;

/// The 3-valued well-founded model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WellFoundedModel {
    /// Facts true in the well-founded model (`T*`).
    pub true_facts: Interp,
    /// Facts undefined in the well-founded model (`U* \ T*`).
    pub undefined: Interp,
    /// Number of alternating iterations until `Γ²` stabilized.
    pub alternations: usize,
}

impl WellFoundedModel {
    /// Whether the model is total (two-valued).
    pub fn is_total(&self) -> bool {
        self.undefined.total_tuples() == 0
    }
}

/// Computes the well-founded model.
///
/// # Errors
/// Compilation errors only — the well-founded semantics is total on
/// programs.
pub fn well_founded(program: &Program, db: &Database) -> Result<WellFoundedModel> {
    let cp = CompiledProgram::compile(program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    Ok(well_founded_compiled(&cp, &ctx))
}

/// Computes the well-founded model over a compiled program.
pub fn well_founded_compiled(cp: &CompiledProgram, ctx: &EvalContext) -> WellFoundedModel {
    let mut t = cp.empty_interp();
    let mut alternations = 0;
    loop {
        let u = gamma(cp, ctx, &t);
        let t_next = gamma(cp, ctx, &u);
        alternations += 1;
        if t_next == t {
            return WellFoundedModel {
                undefined: u.difference(&t),
                true_facts: t,
                alternations,
            };
        }
        t = t_next;
    }
}

/// `Γ(J)`: the least fixpoint of the operator with negations frozen at `J`.
///
/// `s` grows in place, so within one Γ computation the context's persistent
/// indexes over it extend incrementally round over round (EDB indexes
/// persist across Γ computations and alternations too — `ctx` outlives the
/// whole alternating iteration).
fn gamma(cp: &CompiledProgram, ctx: &EvalContext, j: &Interp) -> Interp {
    let mut s = cp.empty_interp();
    loop {
        let derived = apply_with_neg(cp, ctx, &s, j);
        let added = s.union_with(&derived);
        if added == 0 {
            return s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stratified::stratified_eval;
    use inflog_core::graphs::DiGraph;
    use inflog_core::Tuple;
    use inflog_syntax::parse_program;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn positive_program_total_and_least() {
        let p = parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).").unwrap();
        let db = DiGraph::path(4).to_database("E");
        let wf = well_founded(&p, &db).unwrap();
        assert!(wf.is_total());
        let (lfp, _) = crate::naive::least_fixpoint_naive(&p, &db).unwrap();
        assert_eq!(wf.true_facts, lfp);
    }

    #[test]
    fn coincides_with_stratified_on_stratified_programs() {
        let src = "
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            C(x, y) :- !S(x, y).
        ";
        let p = parse_program(src).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let db = DiGraph::random_gnp(5, 0.3, &mut rng).to_database("E");
            let wf = well_founded(&p, &db).unwrap();
            let (perfect, _) = stratified_eval(&p, &db).unwrap();
            assert!(wf.is_total());
            assert_eq!(wf.true_facts, perfect);
        }
    }

    #[test]
    fn mutual_negation_is_undefined() {
        // A(x) <- V(x), !B(x); B(x) <- V(x), !A(x): classic undefined pair.
        let p = parse_program("A(x) :- V(x), !B(x). B(x) :- V(x), !A(x).").unwrap();
        let mut db = inflog_core::Database::new();
        db.insert_named_fact("V", &["a"]).unwrap();
        let wf = well_founded(&p, &db).unwrap();
        assert!(!wf.is_total());
        assert!(wf.true_facts.all_empty());
        assert_eq!(wf.undefined.total_tuples(), 2);
    }

    #[test]
    fn pi1_on_odd_cycle_all_undefined() {
        // On C_3 the program pi_1 has no fixpoint; well-founded leaves every
        // T(v) undefined.
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        let db = DiGraph::cycle(3).to_database("E");
        let wf = well_founded(&p, &db).unwrap();
        assert!(wf.true_facts.all_empty());
        assert_eq!(wf.undefined.total_tuples(), 3);
    }

    #[test]
    fn pi1_on_path_is_total_and_matches_unique_fixpoint() {
        // On L_n pi_1 has the unique fixpoint {2, 4, ...}; WFS is total
        // there and computes exactly it.
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        let db = DiGraph::path(5).to_database("E");
        let wf = well_founded(&p, &db).unwrap();
        assert!(wf.is_total());
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let tid = cp.idb_id("T").unwrap();
        assert_eq!(
            wf.true_facts.get(tid).sorted(),
            vec![Tuple::from_ids(&[1]), Tuple::from_ids(&[3])]
        );
    }

    #[test]
    fn even_cycle_undefined_everywhere() {
        // On C_4, pi_1 has two incomparable fixpoints; the well-founded
        // model stays agnostic: all of T is undefined.
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        let db = DiGraph::cycle(4).to_database("E");
        let wf = well_founded(&p, &db).unwrap();
        assert!(wf.true_facts.all_empty());
        assert_eq!(wf.undefined.total_tuples(), 4);
    }

    #[test]
    fn win_move_game() {
        // Win(x) <- Move(x,y), !Win(y): the canonical WFS example on a path
        // v0 -> v1 -> v2: v2 lost (no moves), v1 wins (moves to lost v2),
        // v0 lost (only move leads to winning v1).
        let p = parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap();
        let db = DiGraph::path(3).to_database("Move");
        let wf = well_founded(&p, &db).unwrap();
        assert!(wf.is_total());
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let w = cp.idb_id("Win").unwrap();
        assert_eq!(wf.true_facts.get(w).sorted(), vec![Tuple::from_ids(&[1])]);
    }

    #[test]
    fn alternations_are_bounded() {
        let p = parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap();
        let db = DiGraph::path(8).to_database("Move");
        let wf = well_founded(&p, &db).unwrap();
        // Γ² is monotone on a lattice of height ≤ |A| here.
        assert!(wf.alternations <= 9, "alternations = {}", wf.alternations);
    }
}
