//! Well-founded semantics via an **incremental** alternating fixpoint.
//!
//! An extension beyond the paper's text: the negation-semantics landscape the
//! paper's introduction surveys (negation as failure, stratified semantics)
//! developed into the well-founded semantics, which — like Inflationary
//! DATALOG — assigns a meaning to *every* DATALOG¬ program, but a 3-valued
//! one. Experiment E9 compares all the semantics side by side.
//!
//! # Construction
//!
//! Let `Γ(J)` be the least fixpoint of the *positivized* operator in which
//! negative IDB literals are evaluated against the fixed interpretation `J`.
//! `Γ` is antimonotone, so `Γ²` is monotone:
//!
//! * true facts `T*` = least fixpoint of `Γ²` (iterate `T_{k+1} = Γ(Γ(T_k))`
//!   from ∅, i.e. `U_k = Γ(T_k)`, `T_{k+1} = Γ(U_k)`);
//! * possible facts `U*` = `Γ(T*)` (the greatest fixpoint of `Γ²`);
//! * undefined = `U* \ T*`; false = everything else.
//!
//! For stratified programs the result is total (no undefined facts) and
//! coincides with the perfect model.
//!
//! # Incremental evaluation
//!
//! Naively, every `Γ` is a fresh least fixpoint from ∅ — the engine this
//! module replaces recomputed both sides in full every alternation. Here
//! each alternation costs work proportional to what *changed*, and none of
//! it changes the result: the `T_k`/`U_k` sequences — hence `T*`, `U*` and
//! the alternation count — are identical to the naive engine's. (In debug
//! builds every alternation is re-verified against a naive `Γ`.)
//!
//! 1. **Semi-naive Γ.** With negations frozen at `J`, the positivized
//!    operator is monotone in `S`, so the standard delta argument applies
//!    verbatim and each inner fixpoint runs delta rounds via the shared
//!    [`DeltaDriver`] ([`apply_delta_with_neg`](crate::apply_delta_with_neg)
//!    is its Θ step).
//!
//! 2. **Warm-started T.** The true side is increasing:
//!    `T_k ⊆ T_{k+1} = lfp(Γ_{U_k})`, because `Γ²` is monotone and the
//!    iteration starts at ∅. Seeding a monotone least-fixpoint iteration
//!    from any *subset of its fixpoint* is sound: from `S₀ ⊆ lfp`, every
//!    accumulating round stays `⊆ lfp` (monotonicity, induction), and the
//!    stable limit is a pre-fixpoint, hence `⊇ lfp` (Knaster–Tarski) — so
//!    it *is* `lfp`. `T` therefore grows in one interpretation across the
//!    whole run. Better: `T_k` is the fixpoint of the *previous* context
//!    `U_{k-1}`, and only `J` shrank, so a first-round derivation new under
//!    `U_k` must use a negated IDB literal whose atom is in
//!    `U_{k-1} \ U_k` — [`DeltaDriver::extend_from_removed`] restarts the
//!    fixpoint from exactly those (no full Θ application at all).
//!
//! 3. **U by deletion propagation.** `U` is decreasing
//!    (`U_k ⊆ U_{k-1}`), so instead of recomputing `lfp(Γ_{T_k})` the
//!    engine *edits* `U_{k-1}` in place, DRed-style:
//!    * **damage**: an instance alive under `T_{k-1}` dies only through a
//!      negated atom in `ΔT_k` — the rules' neg-delta plans, driven by
//!      `ΔT_k` with IDB negations evaluated permissively (an
//!      over-approximation is fine here), enumerate every possibly-dead
//!      head;
//!    * **overdelete**: the damage cone is closed through positive IDB
//!      dependencies (pos-delta plans driven by each deletion frontier,
//!      before the frontier leaves `U`), never crossing into `T`
//!      (`T_k ⊆ U_k` always survives). Cone members are removed from `U`
//!      with [`EvalContext`]-patched deletions, so the persistent indexes
//!      stay warm instead of rebuilding;
//!    * **rederive**: every cone member that is still one-step derivable
//!      from the surviving `U` (negations frozen at `T_k`) is confirmed
//!      back, to closure. Confirmation uses per-rule **check plans** whose
//!      head variables are pre-bound, so each check probes the persistent
//!      hash-join indexes instead of scanning — this is a chaotic iteration
//!      of the monotone frozen operator from a seed below its fixpoint, so
//!      it lands exactly on `lfp(Γ_{T_k})`.
//!
//!    The unconfirmed leftovers are exactly `U_{k-1} \ U_k` — precisely the
//!    removed set the next `T` restart round needs.
//!
//! Soundness of the overdeletion (nothing outside the cone can die): a
//! tuple of `U_{k-1} \ T_k` outside the cone has a derivation tree in which
//! every instance has no negated atom in `ΔT_k` (else its head would be
//! damage) and every positive IDB child either lies in `T_k ⊆ U_k` or is
//! itself outside the cone — by induction on the finite tree it remains
//! derivable under `(U', T_k)`, so deleting only cone members is safe, and
//! rederivation restores the cone's surviving part exactly.

use crate::driver::DeltaDriver;
use crate::govern::{Governor, SITE_OVERDELETE_CLOSE, SITE_REDERIVE_SWEEP};
use crate::interp::Interp;
use crate::operator::{self, EvalContext};
use crate::options::EvalOptions;
use crate::resolve::CompiledProgram;
use crate::Result;
use inflog_core::{Database, Tuple};
use inflog_syntax::Program;

/// The 3-valued well-founded model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WellFoundedModel {
    /// Facts true in the well-founded model (`T*`).
    pub true_facts: Interp,
    /// Facts undefined in the well-founded model (`U* \ T*`).
    pub undefined: Interp,
    /// Number of alternating iterations until `Γ²` stabilized.
    pub alternations: usize,
}

impl WellFoundedModel {
    /// Whether the model is total (two-valued).
    pub fn is_total(&self) -> bool {
        self.undefined.total_tuples() == 0
    }
}

/// Computes the well-founded model, with [`EvalOptions::default`]
/// (sequential unless the environment overrides).
///
/// # Errors
/// Compilation errors only — the well-founded semantics is total on
/// programs.
pub fn well_founded(program: &Program, db: &Database) -> Result<WellFoundedModel> {
    well_founded_with(program, db, &EvalOptions::default())
}

/// [`well_founded`] with explicit evaluation options — e.g. a worker-thread
/// count for the parallel round executor, which both Γ sides (the
/// warm-started `T` fixpoints and the damage/overdeletion sweeps on `U`)
/// drive. The model — facts, insertion orders, alternation count — is
/// bit-identical for every thread count.
///
/// # Errors
/// Compilation errors only — the well-founded semantics is total on
/// programs.
pub fn well_founded_with(
    program: &Program,
    db: &Database,
    opts: &EvalOptions,
) -> Result<WellFoundedModel> {
    let cp = CompiledProgram::compile(program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    well_founded_compiled_with(&cp, &ctx, opts)
}

/// Computes the well-founded model over a compiled program, incrementally
/// (see the module docs for the construction and its soundness). This
/// convenience wrapper strips any environment-supplied governance (budget,
/// token, failpoints) and is therefore infallible.
pub fn well_founded_compiled(cp: &CompiledProgram, ctx: &EvalContext) -> WellFoundedModel {
    well_founded_compiled_with(cp, ctx, &EvalOptions::default().without_governance())
        .expect("ungoverned well-founded evaluation cannot fail")
}

/// [`well_founded_compiled`] with explicit evaluation options; the governed
/// form checks budget, cancellation and failpoints at every round boundary
/// of every inner fixpoint, at every overdeletion-closure frontier, before
/// every rederive sweep, and every few thousand emitted tuples. One budget
/// spans the whole alternating fixpoint.
///
/// # Errors
/// [`EvalError::Cancelled`](crate::EvalError::Cancelled),
/// [`EvalError::BudgetExceeded`](crate::EvalError::BudgetExceeded), a fault
/// injected by an armed failpoint, or a contained worker panic.
pub fn well_founded_compiled_with(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    opts: &EvalOptions,
) -> Result<WellFoundedModel> {
    let governor = Governor::new(opts);
    let gov = governor.as_active();
    let num_idb = cp.num_idb();
    let mut driver = DeltaDriver::with_options(cp, opts.clone());
    // `t` grows and `u` shrinks monotonically across alternations (after
    // the first); both keep their relation identities for the whole run, so
    // the context's persistent indexes stay warm throughout.
    let mut t = cp.empty_interp();
    let mut u = cp.empty_interp();
    // Scratch (reused across alternations, cleared in place):
    let mut delta_t = cp.empty_interp(); // ΔT_k — drives damage enumeration
    let mut frontier = cp.empty_interp(); // current overdeletion frontier
    let mut heads = cp.empty_interp(); // enumeration output buffer
    let mut removed = cp.empty_interp(); // U_{k-1} \ U_k — drives the T restart
    let empty_neg = cp.empty_interp(); // permissive negation context (damage)
    let mut t_marks = vec![0usize; num_idb];
    let mut alternations = 1usize;

    // Alternation 1 (cold): U_0 = Γ(∅), then T_1 = Γ(U_0), both by
    // warm-seeded semi-naive Γ.
    driver.extend(cp, ctx, &mut u, None, Some(&t), None, &governor)?;
    let mut added = driver.extend(cp, ctx, &mut t, None, Some(&u), None, &governor)?;

    while added > 0 {
        if let Some(g) = gov {
            g.check_round()?;
        }
        // ΔT_k: the tuples T gained in the previous alternation.
        for (i, mark) in t_marks.iter_mut().enumerate() {
            let dt = delta_t.get_mut(i);
            dt.clear();
            for tuple in &t.get(i).dense()[*mark..] {
                dt.insert(tuple.clone());
            }
            *mark = t.get(i).len();
        }

        // ---- U side: U_{k-1} → U_k = lfp(Γ_{T_k}) by overdelete + rederive.
        // Damage: heads of instances killed by a negation over ΔT_k.
        operator::apply_general_into(
            cp,
            ctx,
            &u,
            None,
            operator::PlanKind::NegDelta,
            Some(operator::DeltaSource::Interp(&delta_t)),
            Some(&empty_neg),
            None,
            &mut heads,
            opts,
            gov,
        )?;
        // Overdeletion cone, closed through positive IDB dependencies. A
        // frontier is enumerated from `u` *before* it is removed, so every
        // dependent instance is seen at the first frontier touching it.
        let mut cone: Vec<Vec<Tuple>> = vec![Vec::new(); num_idb];
        loop {
            if let Some(g) = gov {
                g.fail_at(SITE_OVERDELETE_CLOSE)?;
                g.check()?;
            }
            let mut any = false;
            for i in 0..num_idb {
                let fr = frontier.get_mut(i);
                fr.clear();
                for tuple in heads.get(i).dense() {
                    if u.get(i).contains(tuple) && !t.get(i).contains(tuple) {
                        fr.insert(tuple.clone());
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            operator::apply_general_into(
                cp,
                ctx,
                &u,
                None,
                operator::PlanKind::PosDelta,
                Some(operator::DeltaSource::Interp(&frontier)),
                Some(&empty_neg),
                None,
                &mut heads,
                opts,
                gov,
            )?;
            for (i, list) in cone.iter_mut().enumerate() {
                for tuple in frontier.get(i).dense() {
                    let _ = ctx.remove_patched(u.get_mut(i), tuple);
                    list.push(tuple.clone());
                }
            }
        }
        // Rederive: seed with the cone members still one-step derivable
        // from the surviving `u` (negations frozen at T_k) — index-backed
        // checks with the head pre-bound, `u` untouched during the sweep —
        // then close under the frozen operator semi-naively. A cone member
        // missed by the sweep becomes derivable only when a positive IDB
        // atom of some rule instance re-enters `u`, so the delta rounds of
        // [`DeltaDriver::extend_seeded`] confirm exactly the rest of the
        // surviving cone: `u` stays a subset of `lfp(Γ_{T_k})` throughout
        // (overdeletion soundness, module docs), and a monotone fixpoint
        // seeded from below lands on it exactly. The previous formulation —
        // full re-sweeps of the cone until no check confirmed — did
        // `O(cone × sweeps)` derivability checks; this does one per cone
        // member plus batch delta rounds.
        {
            if let Some(g) = gov {
                g.fail_at(SITE_REDERIVE_SWEEP)?;
            }
            operator::sync_check_indexes(cp, ctx, &u);
            // `frontier` is free after the overdeletion loop; reuse it as
            // the seed buffer for the rederive rounds.
            for i in 0..num_idb {
                frontier.get_mut(i).clear();
            }
            for (i, list) in cone.iter().enumerate() {
                let seed = frontier.get_mut(i);
                operator::derivable_batch(cp, ctx, i, list, &u, &t, opts.exec_kind(), |k| {
                    seed.insert(list[k].clone());
                });
            }
            driver.extend_seeded(cp, ctx, &mut u, None, Some(&t), &frontier, None, &governor)?;
        }
        #[cfg(debug_assertions)]
        {
            // One postings sweep per alternation (not per patched removal —
            // that would make debug-build overdeletion quadratic): after the
            // whole overdelete/rederive batch, every index over `u` must
            // still be sorted and complete before the next parallel round
            // trusts its posting order.
            for i in 0..num_idb {
                ctx.debug_validate_indexes(u.get(i));
            }
            // Overdelete + rederive must land exactly on lfp(Γ_{T_k}) — the
            // same set a naive Γ from ∅ computes.
            let mut naive = cp.empty_interp();
            loop {
                let derived = operator::apply_with_neg(cp, ctx, &naive, &t);
                if naive.union_with(&derived) == 0 {
                    break;
                }
            }
            debug_assert_eq!(u, naive, "incremental U diverged from naive Γ(T)");
        }

        // The cone members that were never rederived back into `u` are
        // exactly U_{k-1} \ U_k: the tuples that just became false, driving
        // the T restart round.
        let mut any_removed = false;
        for (i, list) in cone.into_iter().enumerate() {
            let rrel = removed.get_mut(i);
            rrel.clear();
            for tuple in list {
                if !u.get(i).contains(&tuple) {
                    rrel.insert(tuple);
                    any_removed = true;
                }
            }
        }

        // T_{k+1} = Γ(U_k), warm-started from T_k ⊆ T_{k+1}. T_k is the
        // fixpoint of the previous context U_{k-1}, so only derivations a
        // negation newly enables (its atom left U) can be new — the
        // removed-driven restart round finds exactly those.
        added = if any_removed {
            driver.extend_from_removed(cp, ctx, &mut t, &removed, &u, None, &governor)?
        } else {
            0 // U unchanged ⟹ Γ(U_k) = Γ(U_{k-1}) = T_k already.
        };
        alternations += 1;
    }

    // T* ⊆ U* throughout, so equal sizes mean a total model — the common
    // case costs no difference pass at all; otherwise one pass over U*
    // clones exactly the undefined tuples.
    let undefined = if u.total_tuples() == t.total_tuples() {
        cp.empty_interp()
    } else {
        u.difference(&t)
    };
    Ok(WellFoundedModel {
        undefined,
        true_facts: t,
        alternations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stratified::stratified_eval;
    use inflog_core::graphs::DiGraph;
    use inflog_core::Tuple;
    use inflog_syntax::parse_program;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn positive_program_total_and_least() {
        let p = parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).").unwrap();
        let db = DiGraph::path(4).to_database("E");
        let wf = well_founded(&p, &db).unwrap();
        assert!(wf.is_total());
        let (lfp, _) = crate::naive::least_fixpoint_naive(&p, &db).unwrap();
        assert_eq!(wf.true_facts, lfp);
    }

    #[test]
    fn coincides_with_stratified_on_stratified_programs() {
        let src = "
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            C(x, y) :- !S(x, y).
        ";
        let p = parse_program(src).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let db = DiGraph::random_gnp(5, 0.3, &mut rng).to_database("E");
            let wf = well_founded(&p, &db).unwrap();
            let (perfect, _) = stratified_eval(&p, &db).unwrap();
            assert!(wf.is_total());
            assert_eq!(wf.true_facts, perfect);
        }
    }

    #[test]
    fn mutual_negation_is_undefined() {
        // A(x) <- V(x), !B(x); B(x) <- V(x), !A(x): classic undefined pair.
        let p = parse_program("A(x) :- V(x), !B(x). B(x) :- V(x), !A(x).").unwrap();
        let mut db = inflog_core::Database::new();
        db.insert_named_fact("V", &["a"]).unwrap();
        let wf = well_founded(&p, &db).unwrap();
        assert!(!wf.is_total());
        assert!(wf.true_facts.all_empty());
        assert_eq!(wf.undefined.total_tuples(), 2);
    }

    #[test]
    fn pi1_on_odd_cycle_all_undefined() {
        // On C_3 the program pi_1 has no fixpoint; well-founded leaves every
        // T(v) undefined.
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        let db = DiGraph::cycle(3).to_database("E");
        let wf = well_founded(&p, &db).unwrap();
        assert!(wf.true_facts.all_empty());
        assert_eq!(wf.undefined.total_tuples(), 3);
    }

    #[test]
    fn pi1_on_path_is_total_and_matches_unique_fixpoint() {
        // On L_n pi_1 has the unique fixpoint {2, 4, ...}; WFS is total
        // there and computes exactly it.
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        let db = DiGraph::path(5).to_database("E");
        let wf = well_founded(&p, &db).unwrap();
        assert!(wf.is_total());
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let tid = cp.idb_id("T").unwrap();
        assert_eq!(
            wf.true_facts.get(tid).sorted(),
            vec![Tuple::from_ids(&[1]), Tuple::from_ids(&[3])]
        );
    }

    #[test]
    fn even_cycle_undefined_everywhere() {
        // On C_4, pi_1 has two incomparable fixpoints; the well-founded
        // model stays agnostic: all of T is undefined.
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        let db = DiGraph::cycle(4).to_database("E");
        let wf = well_founded(&p, &db).unwrap();
        assert!(wf.true_facts.all_empty());
        assert_eq!(wf.undefined.total_tuples(), 4);
    }

    #[test]
    fn win_move_game() {
        // Win(x) <- Move(x,y), !Win(y): the canonical WFS example on a path
        // v0 -> v1 -> v2: v2 lost (no moves), v1 wins (moves to lost v2),
        // v0 lost (only move leads to winning v1).
        let p = parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap();
        let db = DiGraph::path(3).to_database("Move");
        let wf = well_founded(&p, &db).unwrap();
        assert!(wf.is_total());
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let w = cp.idb_id("Win").unwrap();
        assert_eq!(wf.true_facts.get(w).sorted(), vec![Tuple::from_ids(&[1])]);
    }

    #[test]
    fn alternations_are_bounded() {
        let p = parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap();
        let db = DiGraph::path(8).to_database("Move");
        let wf = well_founded(&p, &db).unwrap();
        // Γ² is monotone on a lattice of height ≤ |A| here.
        assert!(wf.alternations <= 9, "alternations = {}", wf.alternations);
    }

    #[test]
    fn context_indexes_survive_the_alternation() {
        // A program whose Γ joins through the IDB (so keyed scans index the
        // growing/rolled-back interpretations) and whose negation forces
        // several alternations.
        let src = "
            R(x, y) :- E(x, y), !B(x).
            R(x, y) :- R(x, z), E(z, y), !B(y).
            B(x) :- M(x, y), !B(y).
        ";
        let p = parse_program(src).unwrap();
        let mut g = DiGraph::path(8);
        g.add_edge(7, 0);
        let mut db = g.to_database("E");
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3)] {
            db.insert_named_fact("M", &[&format!("v{u}"), &format!("v{v}")])
                .unwrap();
        }
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let ctx = EvalContext::new(&cp, &db).unwrap();
        let wf = well_founded_compiled(&cp, &ctx);
        assert!(
            wf.alternations >= 2,
            "needs a real alternation to exercise rollback"
        );
        assert!(
            ctx.num_indexes() > 0,
            "keyed scans must have registered indexes"
        );
        // Rerunning over the same warm context gives the identical model.
        let wf2 = well_founded_compiled(&cp, &ctx);
        assert_eq!(wf, wf2);
    }
}
