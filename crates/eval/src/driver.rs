//! The shared semi-naive round driver.
//!
//! Every delta-capable engine — semi-naive least fixpoint, per-stratum
//! stratified evaluation, inflationary iteration, and both sides of the
//! well-founded alternating fixpoint — runs the *same* loop: one full Θ
//! application to pick up derivations the current state has no delta for,
//! then delta-restricted rounds until nothing new appears. Before this
//! module each engine carried its own copy of that loop; now they all drive
//! [`DeltaDriver::extend`], parameterized by a rule subset (stratified) and
//! a frozen negation context (well-founded Γ).
//!
//! `extend` grows `s` **in place**: relations keep their identity, so the
//! evaluation context's persistent hash-join indexes extend incrementally
//! round over round (and across calls — a warm-started fixpoint that reuses
//! `s` also reuses the index work of the previous call).
//!
//! The driver owns one scratch interpretation (`derived`) that is cleared
//! and refilled each round instead of reallocated, and the round's delta is
//! `s`'s own dense suffix past a per-relation watermark — never a separate
//! interpretation, so the set-difference pass the per-engine loops used to
//! run every round is gone, and so is the per-tuple clone + hash insert of
//! a materialized delta.
//!
//! Soundness of the delta restriction requires the effective operator to be
//! monotone in `s` over the rounds of one `extend` call. Each caller
//! discharges that differently:
//!
//! * positive programs (semi-naive): Θ itself is monotone;
//! * stratified, per stratum: negations refer to lower strata only, which
//!   `extend` never grows while iterating that stratum's rules;
//! * well-founded Γ: negations are frozen at an explicit `neg`
//!   interpretation, and the positivized operator is monotone;
//! * inflationary: not monotone, but under an *increasing* `s` a negated
//!   literal only decays true→false, so a body instance newly true this
//!   round still must have gained a positive IDB tuple — the delta argument
//!   goes through (this is §4's observation, see `inflationary.rs`).
//!
//! In debug builds every delta round is cross-checked against a full naive
//! application from the same state: the new tuples must match exactly,
//! round by round.

use crate::govern::Governor;
use crate::interp::Interp;
use crate::operator::{apply_general_into, DeltaSource, EvalContext, PlanKind};
use crate::options::EvalOptions;
use crate::plan::CardSnapshot;
use crate::resolve::{CompiledProgram, CompiledRule, RulePlans};
use crate::trace::EvalTrace;
use crate::Result;
use inflog_core::Relation;

/// Reusable round driver: scratch buffers plus the shared semi-naive loop.
///
/// Create one per evaluation (or per engine) and call
/// [`extend`](Self::extend) as many times as needed — the scratch space is
/// recycled across rounds and across calls.
#[derive(Debug)]
pub struct DeltaDriver {
    /// Output buffer for Θ applications (cleared, not reallocated).
    derived: Interp,
    /// Per-IDB dense-storage watermarks: `s.get(i).dense()[delta_marks[i]..]`
    /// *is* the round's delta. The delta is never materialized as its own
    /// interpretation — delta scans are always unkeyed and leading (the
    /// delta-first invariant), so a borrowed slice of `s`'s live storage
    /// serves directly, eliminating a clone and a hash insert per derived
    /// tuple per round.
    delta_marks: Vec<usize>,
    /// Parallel-executor knobs forwarded to every Θ application this driver
    /// issues; rounds below the threshold stay sequential automatically.
    opts: EvalOptions,
    /// Live plans, rebuilt before every application from a fresh
    /// [`CardSnapshot`] of the EDB and the growing interpretation — so the
    /// planner's cardinality tie-break tracks the relations as they exist
    /// *this round*, not as they were at compile time. The cardinality
    /// snapshot of the previous replan; replanning is skipped while the
    /// sizes that drive scan ordering are unchanged.
    plans: Vec<RulePlans>,
    cards: CardSnapshot,
    /// Whether any rule's scan order can react to cardinalities at all
    /// (some rule has ≥ 2 positive body atoms). Computed on first use; when
    /// `false`, replanning is skipped and the compile-time plans run —
    /// single-join programs pay zero replanning overhead.
    order_sensitive: Option<bool>,
}

impl DeltaDriver {
    /// Builds a driver with scratch buffers shaped for `cp`'s IDB arities,
    /// using [`EvalOptions::default`] (sequential unless the environment
    /// says otherwise).
    pub fn new(cp: &CompiledProgram) -> Self {
        DeltaDriver::with_options(cp, EvalOptions::default())
    }

    /// Builds a driver with explicit evaluation options.
    pub fn with_options(cp: &CompiledProgram, opts: EvalOptions) -> Self {
        let derived = cp.empty_interp();
        DeltaDriver {
            delta_marks: vec![0; derived.len()],
            derived,
            opts,
            plans: Vec::new(),
            cards: CardSnapshot::unknown(),
            order_sensitive: None,
        }
    }

    /// Replaces the driver's evaluation options (parallelism, executor
    /// choice) for subsequent rounds. Cardinality and delta state are
    /// preserved — this exists so a long-lived caller (a
    /// [`Materialized`](crate::Materialized) handle) can re-arm governance
    /// between updates without rebuilding the driver.
    pub fn set_options(&mut self, opts: EvalOptions) {
        self.opts = opts;
    }

    /// Re-plans every rule against the live relation cardinalities (the
    /// materialized EDB plus the current `s`). Skipped entirely when no
    /// rule's order can depend on cardinalities, and skipped whenever every
    /// size stayed within the same power-of-two bucket as the previous
    /// replan — a fixpoint that grows a relation by a few tuples per round
    /// would otherwise rebuild and re-lower every plan family every round
    /// for plans that come out identical anyway.
    fn replan(&mut self, cp: &CompiledProgram, ctx: &EvalContext, s: &Interp) {
        let sensitive = *self
            .order_sensitive
            .get_or_insert_with(|| cp.rules.iter().any(CompiledRule::order_sensitive));
        if !sensitive {
            return;
        }
        let cards = CardSnapshot::new(
            ctx.edb.iter().map(Relation::len).collect(),
            s.relations().iter().map(Relation::len).collect(),
        );
        if self.plans.len() == cp.rules.len() && cards.same_magnitude(&self.cards) {
            return;
        }
        self.plans = cp.rules.iter().map(|r| r.replan(&cards)).collect();
        self.cards = cards;
    }

    /// The live plan overrides to execute with — `None` until a replan has
    /// produced any (order-insensitive programs run their compile-time
    /// plans forever).
    fn overrides(plans: &[RulePlans]) -> Option<&[RulePlans]> {
        (!plans.is_empty()).then_some(plans)
    }

    /// Extends `s` in place to the least fixpoint of the (effective)
    /// operator above `s`, semi-naively. Returns the number of tuples
    /// added.
    ///
    /// * `rules` — restrict to these rule indices (stratified evaluation);
    ///   `None` runs the whole program.
    /// * `frozen_neg` — evaluate negative IDB literals against this fixed
    ///   interpretation (the well-founded Γ transform); `None` evaluates
    ///   them against the current `s` (standard Θ).
    /// * `trace` — when present, one round is recorded per application that
    ///   added tuples, exactly as the engines' hand-rolled loops did.
    ///
    /// The first round is a **full** application against the current `s`:
    /// a warm-started call (`s` non-empty) has no delta describing how `s`
    /// came to be, and rules without positive IDB atoms never fire in delta
    /// rounds. Subsequent rounds are delta-restricted.
    ///
    /// `gov` enforces the caller's budget/cancellation at every round
    /// boundary and inside the executors' inner loops; pass
    /// [`Governor::free`] for ungoverned evaluation. On `Err`, `s` holds a
    /// sound partial extension (every absorbed round was complete), but is
    /// generally **not** a fixpoint.
    ///
    /// # Errors
    /// Budget/cancellation/failpoint trips and contained worker panics.
    #[allow(clippy::too_many_arguments)]
    pub fn extend(
        &mut self,
        cp: &CompiledProgram,
        ctx: &EvalContext,
        s: &mut Interp,
        rules: Option<&[usize]>,
        frozen_neg: Option<&Interp>,
        trace: Option<&mut EvalTrace>,
        gov: &Governor,
    ) -> Result<usize> {
        gov.check_round()?;
        self.replan(cp, ctx, s);
        apply_general_into(
            cp,
            ctx,
            s,
            rules,
            PlanKind::Full,
            None,
            frozen_neg,
            Self::overrides(&self.plans),
            &mut self.derived,
            &self.opts,
            Some(gov),
        )?;
        self.drain_rounds(cp, ctx, s, rules, frozen_neg, trace, gov)
    }

    /// Like [`extend`](Self::extend), but the first round is **restricted**
    /// to derivations enabled by `removed` — the tuples that just left the
    /// frozen negation context — via the rules' neg-delta plans, instead of
    /// a full application.
    ///
    /// Sound and complete when (a) `s` is already a fixpoint of the operator
    /// with the *previous* negation context, and (b) `frozen_neg` differs
    /// from that context exactly by `removed` shrinking out of it: a ground
    /// instance newly true under the smaller context, with `s` unchanged,
    /// must use at least one negated IDB literal whose atom is in `removed`
    /// (negations only gain truth when their context shrinks), and the
    /// neg-delta plan driven by that occurrence enumerates it. The
    /// incremental well-founded engine calls this for every alternation
    /// after the first; the debug cross-check verifies the argument against
    /// a full naive round.
    #[allow(clippy::too_many_arguments)]
    pub fn extend_from_removed(
        &mut self,
        cp: &CompiledProgram,
        ctx: &EvalContext,
        s: &mut Interp,
        removed: &Interp,
        frozen_neg: &Interp,
        trace: Option<&mut EvalTrace>,
        gov: &Governor,
    ) -> Result<usize> {
        gov.check_round()?;
        self.replan(cp, ctx, s);
        apply_general_into(
            cp,
            ctx,
            s,
            None,
            PlanKind::NegDelta,
            Some(DeltaSource::Interp(removed)),
            Some(frozen_neg),
            Self::overrides(&self.plans),
            &mut self.derived,
            &self.opts,
            Some(gov),
        )?;
        #[cfg(debug_assertions)]
        self.cross_check_against_naive_round(cp, ctx, s, None, Some(frozen_neg));
        self.drain_rounds(cp, ctx, s, None, Some(frozen_neg), trace, gov)
    }

    /// Like [`extend`](Self::extend), but the first round's derivations are
    /// supplied directly as `seed` (IDB-shaped) instead of computed by a
    /// full application — the caller has already enumerated exactly the
    /// instances enabled by whatever changed.
    ///
    /// The materialized-view repair path builds the seed from the EDB-delta
    /// plan families (plus the cross-engine `PosDelta`/`NegDelta` damage
    /// accumulators) and drains it here; soundness of the subsequent delta
    /// rounds is the caller's obligation, discharged in `materialize.rs`,
    /// and the debug cross-check inside [`drain_rounds`](Self::drain_rounds)
    /// verifies each round against a full naive application.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn extend_seeded(
        &mut self,
        cp: &CompiledProgram,
        ctx: &EvalContext,
        s: &mut Interp,
        rules: Option<&[usize]>,
        frozen_neg: Option<&Interp>,
        seed: &Interp,
        trace: Option<&mut EvalTrace>,
        gov: &Governor,
    ) -> Result<usize> {
        gov.check_round()?;
        self.replan(cp, ctx, s);
        for i in 0..self.derived.len() {
            let out = self.derived.get_mut(i);
            out.clear();
            out.union_with(seed.get(i));
        }
        self.drain_rounds(cp, ctx, s, rules, frozen_neg, trace, gov)
    }

    /// Snapshots the driver state a transactional caller must restore on
    /// rollback: the per-IDB delta watermarks (which must equal the
    /// rolled-back interpretation's dense lengths in steady state) and the
    /// replan cardinality snapshot. The live plans are *not* part of the
    /// snapshot — any plan set is semantically correct, and the next replan
    /// re-derives them from the restored cardinalities when they drift.
    pub(crate) fn save_state(&self) -> (Vec<usize>, CardSnapshot) {
        (self.delta_marks.clone(), self.cards.clone())
    }

    /// Restores a [`save_state`](Self::save_state) snapshot after a failed
    /// transactional update.
    pub(crate) fn restore_state(&mut self, state: (Vec<usize>, CardSnapshot)) {
        let (marks, cards) = state;
        self.delta_marks = marks;
        self.cards = cards;
    }

    /// Shared tail of the entry points: absorb the first round already
    /// sitting in `self.derived`, then run delta rounds until stable.
    ///
    /// Rounds absorbed before an `Err` are complete — `s` never holds a
    /// torn round, only a prefix of the rounds the full evaluation would
    /// have run.
    #[allow(clippy::too_many_arguments)]
    fn drain_rounds(
        &mut self,
        cp: &CompiledProgram,
        ctx: &EvalContext,
        s: &mut Interp,
        rules: Option<&[usize]>,
        frozen_neg: Option<&Interp>,
        mut trace: Option<&mut EvalTrace>,
        gov: &Governor,
    ) -> Result<usize> {
        let mut total = 0;
        let mut added = absorb(s, &self.derived, &mut self.delta_marks);
        while added > 0 {
            total += added;
            if let Some(tr) = trace.as_deref_mut() {
                tr.record_round(added);
            }
            gov.check_round()?;
            self.replan(cp, ctx, s);
            apply_general_into(
                cp,
                ctx,
                s,
                rules,
                PlanKind::PosDelta,
                Some(DeltaSource::Suffix(&self.delta_marks)),
                frozen_neg,
                Self::overrides(&self.plans),
                &mut self.derived,
                &self.opts,
                Some(gov),
            )?;
            #[cfg(debug_assertions)]
            self.cross_check_against_naive_round(cp, ctx, s, rules, frozen_neg);
            added = absorb(s, &self.derived, &mut self.delta_marks);
        }
        Ok(total)
    }

    /// Debug-build invariant: the delta application just stored in
    /// `self.derived` must contribute exactly the tuples a full (naive)
    /// application from the same `s` would — semi-naive Γ equals naive Γ,
    /// round by round (and likewise for every other engine on the driver).
    ///
    /// The check only runs after an `Ok` application (a governed trip
    /// short-circuits past it via `?`), and the replay itself is ungoverned
    /// — it must neither double-count emissions nor re-fire failpoints.
    #[cfg(debug_assertions)]
    fn cross_check_against_naive_round(
        &self,
        cp: &CompiledProgram,
        ctx: &EvalContext,
        s: &Interp,
        rules: Option<&[usize]>,
        frozen_neg: Option<&Interp>,
    ) {
        let mut full = cp.empty_interp();
        apply_general_into(
            cp,
            ctx,
            s,
            rules,
            PlanKind::Full,
            None,
            frozen_neg,
            None,
            &mut full,
            &EvalOptions::sequential(),
            None,
        )
        .expect("ungoverned sequential application cannot fail");
        debug_assert_eq!(
            full.difference(s),
            self.derived.difference(s),
            "semi-naive round diverged from the naive round"
        );
    }
}

/// Unions `derived` into `s` and records the pre-union dense lengths in
/// `marks` — the next round's delta is exactly `s`'s dense suffix past each
/// mark, read in place with no set-difference pass and no delta
/// materialization. Returns the number of tuples added.
fn absorb(s: &mut Interp, derived: &Interp, marks: &mut [usize]) -> usize {
    let mut added = 0;
    for (i, mark) in marks.iter_mut().enumerate() {
        let before = s.get(i).len();
        *mark = before;
        s.get_mut(i).union_with(derived.get(i));
        added += s.get(i).len() - before;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::least_fixpoint_naive;
    use crate::operator::apply_with_neg;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::parse_program;

    const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";

    fn setup(src: &str, db: &inflog_core::Database) -> (CompiledProgram, EvalContext) {
        let p = parse_program(src).unwrap();
        let cp = CompiledProgram::compile(&p, db).unwrap();
        let ctx = EvalContext::new(&cp, db).unwrap();
        (cp, ctx)
    }

    #[test]
    fn extend_from_empty_computes_least_fixpoint() {
        let db = DiGraph::binary_tree(15).to_database("E");
        let (cp, ctx) = setup(TC, &db);
        let mut s = cp.empty_interp();
        let mut driver = DeltaDriver::new(&cp);
        let added = driver
            .extend(&cp, &ctx, &mut s, None, None, None, &Governor::free())
            .unwrap();
        let (lfp, _) = least_fixpoint_naive(&parse_program(TC).unwrap(), &db).unwrap();
        assert_eq!(s, lfp);
        assert_eq!(added, lfp.total_tuples());
    }

    #[test]
    fn extend_is_idempotent_once_at_fixpoint() {
        let db = DiGraph::path(6).to_database("E");
        let (cp, ctx) = setup(TC, &db);
        let mut s = cp.empty_interp();
        let mut driver = DeltaDriver::new(&cp);
        driver
            .extend(&cp, &ctx, &mut s, None, None, None, &Governor::free())
            .unwrap();
        let again = driver
            .extend(&cp, &ctx, &mut s, None, None, None, &Governor::free())
            .unwrap();
        assert_eq!(again, 0);
    }

    #[test]
    fn warm_start_from_subset_reaches_the_same_fixpoint() {
        // Seed with a strict subset of the least fixpoint (the base facts):
        // warm-started extension must land on exactly the lfp.
        let db = DiGraph::path(7).to_database("E");
        let (cp, ctx) = setup(TC, &db);
        let mut driver = DeltaDriver::new(&cp);

        let mut cold = cp.empty_interp();
        driver
            .extend(&cp, &ctx, &mut cold, None, None, None, &Governor::free())
            .unwrap();

        let mut warm = cp.empty_interp();
        let sid = cp.idb_id("S").unwrap();
        for t in ctx.edb[0].iter() {
            warm.insert(sid, t.clone());
        }
        driver
            .extend(&cp, &ctx, &mut warm, None, None, None, &Governor::free())
            .unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn frozen_neg_extend_matches_naive_gamma() {
        // Γ(J) via the driver equals Γ(J) by naive iteration of
        // apply_with_neg, for the win-move program and several J.
        let db = DiGraph::path(6).to_database("Move");
        let (cp, ctx) = setup("Win(x) :- Move(x, y), !Win(y).", &db);
        let wid = cp.idb_id("Win").unwrap();
        let mut driver = DeltaDriver::new(&cp);
        for j_members in [vec![], vec![1u32], vec![0, 2, 4]] {
            let mut j = cp.empty_interp();
            for m in &j_members {
                j.insert(wid, inflog_core::Tuple::from_ids(&[*m]));
            }
            let mut s = cp.empty_interp();
            driver
                .extend(&cp, &ctx, &mut s, None, Some(&j), None, &Governor::free())
                .unwrap();
            // Naive Γ(J): iterate the frozen-neg operator from ∅.
            let mut naive = cp.empty_interp();
            loop {
                let derived = apply_with_neg(&cp, &ctx, &naive, &j);
                if naive.union_with(&derived) == 0 {
                    break;
                }
            }
            assert_eq!(s, naive, "J = {j_members:?}");
        }
    }

    #[test]
    fn empty_delta_early_exit_runs_no_delta_round() {
        // Re-extending at a fixpoint with every round forced parallel must
        // issue exactly one (full) application and exit on the empty delta
        // — no delta round, hence no extra fork.
        let db = DiGraph::path(20).to_database("E");
        let (cp, ctx) = setup(TC, &db);
        let mut driver = DeltaDriver::with_options(
            &cp,
            EvalOptions {
                threads: 4,
                parallel_threshold: 0,
                ..EvalOptions::sequential()
            },
        );
        let mut s = cp.empty_interp();
        driver
            .extend(&cp, &ctx, &mut s, None, None, None, &Governor::free())
            .unwrap();
        let at_fixpoint = ctx.parallel_applications();
        assert!(at_fixpoint > 0, "forced-parallel rounds must have forked");
        let again = driver
            .extend(&cp, &ctx, &mut s, None, None, None, &Governor::free())
            .unwrap();
        assert_eq!(again, 0);
        assert_eq!(
            ctx.parallel_applications() - at_fixpoint,
            1,
            "only the full re-check application may run at a fixpoint"
        );
    }

    #[test]
    fn auto_mode_never_forks_below_the_threshold() {
        // Tiny workload, 4 requested threads, default threshold: every
        // round falls back to sequential execution — and still computes the
        // right fixpoint.
        let db = DiGraph::path(6).to_database("E");
        let (cp, ctx) = setup(TC, &db);
        let mut driver = DeltaDriver::with_options(&cp, EvalOptions::with_threads(4));
        let mut s = cp.empty_interp();
        driver
            .extend(&cp, &ctx, &mut s, None, None, None, &Governor::free())
            .unwrap();
        assert_eq!(
            ctx.parallel_applications(),
            0,
            "auto mode must not spawn threads for tiny rounds"
        );
        let (lfp, _) = least_fixpoint_naive(&parse_program(TC).unwrap(), &db).unwrap();
        assert_eq!(s, lfp);
    }

    #[test]
    fn trace_rounds_match_hand_rolled_loop() {
        let db = DiGraph::path(5).to_database("E");
        let (cp, ctx) = setup(TC, &db);
        let mut s = cp.empty_interp();
        let mut driver = DeltaDriver::new(&cp);
        let mut trace = EvalTrace::default();
        driver
            .extend(
                &cp,
                &ctx,
                &mut s,
                None,
                None,
                Some(&mut trace),
                &Governor::free(),
            )
            .unwrap();
        // L_5 TC: rounds add 4, 3, 2, 1 tuples.
        assert_eq!(trace.added_per_round, vec![4, 3, 2, 1]);
    }
}
