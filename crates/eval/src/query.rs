//! Goal-directed query evaluation: compute only the cone of tuples a goal
//! atom can depend on, instead of the whole fixpoint.
//!
//! [`query`] answers a point query like `Win('v3')` or `S('v0', y)` against
//! a program and a database. Instead of running the program to its full
//! fixpoint and filtering afterwards, it rewrites the program with the
//! demand transformations of `inflog-rewrite` and evaluates the rewritten
//! program with the existing engines (the shared [`DeltaDriver`]
//! underneath), so that only goal-relevant tuples are ever derived. The
//! answers are **set-identical** to full-fixpoint-then-filter — debug
//! builds re-verify that identity on every call.
//!
//! # Strategy selection (the capability check)
//!
//! [`demand_support`] classifies the program:
//!
//! * **Stratified** programs take the adorned magic-set rewrite
//!   ([`inflog_rewrite::rewrite_stratified`]). Demand never crosses a
//!   negated literal — the negated predicate's cone rides along
//!   unrewritten, so the rewritten program is stratified by construction
//!   and the stratified engine evaluates it stratum by stratum. Answers
//!   are two-valued (the perfect model restricted to the goal).
//! * **Non-stratifiable** programs have no perfect model; their natural
//!   total semantics here is the well-founded model, whose alternating
//!   fixpoint is *not* freely reorderable — demand must be closed under
//!   positive **and** negative dependencies before any evaluation starts.
//!   The default [`NonStratifiedPolicy::DemandCone`] runs the two-phase
//!   cone rewrite ([`inflog_rewrite::rewrite_cone`]): a positive demand
//!   fixpoint first, then the well-founded engine on the demand-guarded
//!   program; by the relevance property of the well-founded semantics the
//!   3-valued answers on demanded atoms coincide with the full model's.
//!   [`NonStratifiedPolicy::FullEvaluation`] instead falls back to the
//!   plain well-founded engine plus a filter, and
//!   [`NonStratifiedPolicy::Error`] refuses.
//!
//! Goals over EDB predicates are answered straight from the database, and a
//! goal constant outside the database universe simply has no answers (full
//! evaluation could never derive a tuple mentioning it).

use crate::error::EvalError;
use crate::operator::EvalContext;
use crate::options::EvalOptions;
use crate::resolve::CompiledProgram;
use crate::seminaive::least_fixpoint_seminaive_compiled_with;
use crate::stratified::{stratified_eval_compiled_with, stratify};
use crate::wellfounded::well_founded_compiled_with;
use crate::Result;
use inflog_core::{Const, Database, Relation, Tuple};
use inflog_rewrite::{rewrite_cone, rewrite_stratified};
use inflog_syntax::{Atom, Program, Term};
use std::collections::HashMap;

/// What the demand-transformation subsystem can do with a program — the
/// explicit capability check behind [`query`]'s strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandSupport {
    /// Stratified: the adorned magic-set rewrite applies, evaluated
    /// stratum-by-stratum; answers are two-valued.
    Stratified,
    /// Not stratifiable: only well-founded evaluation is sound, via the
    /// demand-cone rewrite or a full-evaluation fallback (see
    /// [`NonStratifiedPolicy`]).
    WellFoundedOnly,
}

/// Classifies `program` for goal-directed evaluation.
pub fn demand_support(program: &Program) -> DemandSupport {
    if stratify(program).is_ok() {
        DemandSupport::Stratified
    } else {
        DemandSupport::WellFoundedOnly
    }
}

/// How [`query`] treats non-stratifiable programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonStratifiedPolicy {
    /// Restrict the well-founded evaluation to the goal's demand cone
    /// (demand closed under positive and negative dependencies) — the
    /// goal-directed default.
    #[default]
    DemandCone,
    /// Compute the full well-founded model and filter — the conservative
    /// fallback when demand restriction is not wanted.
    FullEvaluation,
    /// Refuse with [`EvalError::UnsupportedQuery`].
    Error,
}

/// Options for [`query`].
#[derive(Debug, Clone, Default)]
pub struct QueryOpts {
    /// Engine options (worker threads etc.), forwarded to every evaluation
    /// phase the query runs.
    pub eval: EvalOptions,
    /// Policy for non-stratifiable programs.
    pub non_stratified: NonStratifiedPolicy,
}

/// Which evaluation path a query actually took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStrategy {
    /// The goal predicate is extensional: answered by scanning the stored
    /// relation.
    EdbScan,
    /// Adorned magic-set rewrite + stratified evaluation.
    MagicStratified,
    /// Demand-cone rewrite + well-founded evaluation of the guarded
    /// program.
    MagicWellFounded,
    /// Full well-founded evaluation + filter (the explicit fallback).
    FullWellFounded,
}

/// A query's answers: the goal-matching tuples, sorted lexicographically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAnswer {
    /// Tuples matching the goal that are **true** (in the perfect model for
    /// stratified programs, the well-founded model otherwise).
    pub tuples: Vec<Tuple>,
    /// Goal-matching tuples **undefined** in the well-founded model (always
    /// empty on stratified programs, whose models are total).
    pub undefined: Vec<Tuple>,
    /// The evaluation path taken.
    pub strategy: QueryStrategy,
}

impl QueryAnswer {
    fn empty(strategy: QueryStrategy) -> Self {
        QueryAnswer {
            tuples: Vec::new(),
            undefined: Vec::new(),
            strategy,
        }
    }
}

/// One resolved goal position: a universe constant that must match, or a
/// variable identified by the position of its first occurrence (repeated
/// goal variables become equality constraints between positions).
#[derive(Debug, Clone, Copy)]
enum Slot {
    Const(Const),
    Var(usize),
}

/// Resolves the goal's terms against the database universe. `None` when a
/// goal constant is not in the universe — no derivable tuple can match.
fn goal_pattern(goal: &Atom, db: &Database) -> Option<Vec<Slot>> {
    let mut first: HashMap<&str, usize> = HashMap::new();
    goal.terms
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            Term::Const(c) => db.universe().lookup(c).map(Slot::Const),
            Term::Var(v) => Some(Slot::Var(*first.entry(v).or_insert(i))),
        })
        .collect()
}

fn tuple_matches(pattern: &[Slot], t: &Tuple) -> bool {
    pattern.iter().enumerate().all(|(i, s)| match s {
        Slot::Const(c) => t[i] == *c,
        Slot::Var(j) => t[i] == t[*j],
    })
}

/// The goal-matching tuples of `rel`, sorted (deterministic answers).
fn filter_relation(rel: &Relation, pattern: &[Slot]) -> Vec<Tuple> {
    rel.sorted()
        .into_iter()
        .filter(|t| tuple_matches(pattern, t))
        .collect()
}

/// Evaluates a goal atom against `(program, db)`, computing only the goal's
/// demand cone. The answer is set-identical to computing the program's full
/// model and filtering by the goal (verified in debug builds).
///
/// # Errors
/// * compilation errors of the (rewritten) program — same conditions as the
///   full-evaluation engines;
/// * [`EvalError::ArityMismatch`] — goal arity conflicts with the
///   predicate's arity in the program or database;
/// * [`EvalError::UnsupportedQuery`] — non-stratifiable program under
///   [`NonStratifiedPolicy::Error`];
/// * [`EvalError::Cancelled`] / [`EvalError::BudgetExceeded`] — the
///   [`EvalOptions`] in `opts.eval` carry a budget or cancellation token
///   and an evaluation phase tripped it.
pub fn query(
    program: &Program,
    goal: &Atom,
    db: &Database,
    opts: &QueryOpts,
) -> Result<QueryAnswer> {
    // Goal arity must agree with the predicate as the program/database use it.
    let declared = program
        .predicate_arities()
        .get(&goal.predicate)
        .copied()
        .or_else(|| db.relation(&goal.predicate).map(Relation::arity));
    if let Some(arity) = declared {
        if arity != goal.arity() {
            return Err(EvalError::ArityMismatch {
                predicate: goal.predicate.clone(),
                expected: arity,
                found: goal.arity(),
            });
        }
    }

    if !program.idb_predicates().contains(&goal.predicate) {
        // Extensional goal: scan the stored relation (absent = empty).
        let tuples = match (goal_pattern(goal, db), db.relation(&goal.predicate)) {
            (Some(pattern), Some(rel)) => filter_relation(rel, &pattern),
            _ => Vec::new(),
        };
        return Ok(QueryAnswer {
            tuples,
            undefined: Vec::new(),
            strategy: QueryStrategy::EdbScan,
        });
    }

    let support = demand_support(program);
    let strategy = match (support, opts.non_stratified) {
        (DemandSupport::Stratified, _) => QueryStrategy::MagicStratified,
        (DemandSupport::WellFoundedOnly, NonStratifiedPolicy::DemandCone) => {
            QueryStrategy::MagicWellFounded
        }
        (DemandSupport::WellFoundedOnly, NonStratifiedPolicy::FullEvaluation) => {
            QueryStrategy::FullWellFounded
        }
        (DemandSupport::WellFoundedOnly, NonStratifiedPolicy::Error) => {
            return Err(EvalError::UnsupportedQuery {
                reason: format!(
                    "program is not stratified (goal `{goal}`); demand-driven evaluation \
                     requires the DemandCone or FullEvaluation policy"
                ),
            })
        }
    };

    let Some(pattern) = goal_pattern(goal, db) else {
        // A goal constant outside the universe can never be derived.
        return Ok(QueryAnswer::empty(strategy));
    };

    let answer = match strategy {
        QueryStrategy::MagicStratified => query_stratified(program, goal, db, &pattern, &opts.eval),
        QueryStrategy::MagicWellFounded => query_cone(program, goal, db, &pattern, &opts.eval),
        QueryStrategy::FullWellFounded => query_full_wf(program, goal, db, &pattern, &opts.eval),
        QueryStrategy::EdbScan => unreachable!("extensional goals answered above"),
    }?;

    #[cfg(debug_assertions)]
    verify_against_full(program, goal, db, &pattern, &answer, &opts.eval);

    Ok(answer)
}

/// Stratified path: magic rewrite, stratified evaluation, filter.
fn query_stratified(
    program: &Program,
    goal: &Atom,
    db: &Database,
    pattern: &[Slot],
    eval: &EvalOptions,
) -> Result<QueryAnswer> {
    let rw = rewrite_stratified(program, goal);
    let strat = stratify(&rw.program)
        .expect("the stratified magic rewrite preserves stratification by construction");
    let cp = CompiledProgram::compile(&rw.program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    let (model, _) = stratified_eval_compiled_with(&cp, &ctx, &strat, &rw.program, eval)?;
    let gid = cp
        .idb_id(&rw.goal_pred)
        .expect("the adorned goal predicate heads its guarded rules");
    Ok(QueryAnswer {
        tuples: filter_relation(model.get(gid), pattern),
        undefined: Vec::new(),
        strategy: QueryStrategy::MagicStratified,
    })
}

/// Non-stratifiable path: positive demand fixpoint, then the well-founded
/// engine on the demand-guarded program with the magic relations
/// materialized as extensional relations.
fn query_cone(
    program: &Program,
    goal: &Atom,
    db: &Database,
    pattern: &[Slot],
    eval: &EvalOptions,
) -> Result<QueryAnswer> {
    let rw = rewrite_cone(program, goal);
    debug_assert!(rw.demand.is_positive(), "demand programs are positive");
    let dcp = CompiledProgram::compile(&rw.demand, db)?;
    let dctx = EvalContext::new(&dcp, db)?;
    let (demand, _) = least_fixpoint_seminaive_compiled_with(&dcp, &dctx, eval)?;

    // Phase 2 reads the magic predicates as EDB relations. They are absent
    // from the database, so compilation gives them empty relations in the
    // context; install the demand fixpoint's relations in their place —
    // moved, not cloned, and without copying the database (point queries
    // must not pay a whole-database clone for a 10-tuple cone).
    let cp = CompiledProgram::compile(&rw.guarded, db)?;
    let mut ctx = EvalContext::new(&cp, db)?;
    let mut demand_rels = demand.into_relations();
    for name in &rw.magic_preds {
        let di = dcp
            .idb_id(name)
            .expect("every demanded magic predicate heads a demand rule");
        let ei = cp
            .edb_names
            .iter()
            .position(|n| n == name)
            .expect("every demanded magic predicate guards a phase-2 rule");
        let arity = demand_rels[di].arity();
        ctx.edb[ei] = std::mem::replace(&mut demand_rels[di], Relation::new(arity));
    }
    let wf = well_founded_compiled_with(&cp, &ctx, eval)?;
    let gid = cp
        .idb_id(&rw.goal_pred)
        .expect("the adorned goal predicate heads its guarded rules");
    Ok(QueryAnswer {
        tuples: filter_relation(wf.true_facts.get(gid), pattern),
        undefined: filter_relation(wf.undefined.get(gid), pattern),
        strategy: QueryStrategy::MagicWellFounded,
    })
}

/// Fallback: full well-founded model, filtered.
fn query_full_wf(
    program: &Program,
    goal: &Atom,
    db: &Database,
    pattern: &[Slot],
    eval: &EvalOptions,
) -> Result<QueryAnswer> {
    let cp = CompiledProgram::compile(program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    let wf = well_founded_compiled_with(&cp, &ctx, eval)?;
    let gid = cp
        .idb_id(&goal.predicate)
        .expect("IDB goals checked by the caller");
    Ok(QueryAnswer {
        tuples: filter_relation(wf.true_facts.get(gid), pattern),
        undefined: filter_relation(wf.undefined.get(gid), pattern),
        strategy: QueryStrategy::FullWellFounded,
    })
}

/// Debug-build ground truth: every query answer must be set-identical to
/// full-fixpoint-then-filter under the program's semantics (perfect model
/// when stratified, well-founded model otherwise).
#[cfg(debug_assertions)]
fn verify_against_full(
    program: &Program,
    goal: &Atom,
    db: &Database,
    pattern: &[Slot],
    answer: &QueryAnswer,
    eval: &EvalOptions,
) {
    // Run the ground truth without governance: the verification pass must
    // not double-spend the caller's budget or re-fire one-shot failpoints.
    let eval = eval.without_governance();
    let cp = CompiledProgram::compile(program, db).expect("query compiled the same program");
    let ctx = EvalContext::new(&cp, db).expect("query built the same context");
    let gid = cp.idb_id(&goal.predicate).expect("IDB goal");
    let (full_true, full_undef) = match stratify(program) {
        Ok(strat) => {
            let (m, _) = stratified_eval_compiled_with(&cp, &ctx, &strat, program, &eval)
                .expect("ungoverned verification evaluation cannot fail");
            (filter_relation(m.get(gid), pattern), Vec::new())
        }
        Err(_) => {
            let wf = well_founded_compiled_with(&cp, &ctx, &eval)
                .expect("ungoverned verification evaluation cannot fail");
            (
                filter_relation(wf.true_facts.get(gid), pattern),
                filter_relation(wf.undefined.get(gid), pattern),
            )
        }
    };
    assert_eq!(
        answer.tuples, full_true,
        "goal-directed answers diverged from full-fixpoint-then-filter for `{goal}`"
    );
    assert_eq!(
        answer.undefined, full_undef,
        "goal-directed undefined set diverged from the full model for `{goal}`"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::{parse_atom, parse_program};

    const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
    const WIN: &str = "Win(x) :- Move(x, y), !Win(y).";

    fn t1(x: u32) -> Tuple {
        Tuple::from_ids(&[x])
    }

    fn t2(x: u32, y: u32) -> Tuple {
        Tuple::from_ids(&[x, y])
    }

    #[test]
    fn reachability_from_source() {
        let p = parse_program(TC).unwrap();
        let db = DiGraph::path(5).to_database("E");
        let a = query(
            &p,
            &parse_atom("S('v1', y)").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        assert_eq!(a.strategy, QueryStrategy::MagicStratified);
        assert_eq!(a.tuples, vec![t2(1, 2), t2(1, 3), t2(1, 4)]);
        assert!(a.undefined.is_empty());
    }

    #[test]
    fn fully_bound_goal() {
        let p = parse_program(TC).unwrap();
        let db = DiGraph::path(5).to_database("E");
        let yes = query(
            &p,
            &parse_atom("S('v0', 'v4')").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        assert_eq!(yes.tuples, vec![t2(0, 4)]);
        let no = query(
            &p,
            &parse_atom("S('v4', 'v0')").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        assert!(no.tuples.is_empty());
    }

    #[test]
    fn goal_constant_outside_universe_matches_nothing() {
        let p = parse_program(TC).unwrap();
        let db = DiGraph::path(3).to_database("E");
        let a = query(
            &p,
            &parse_atom("S('w9', y)").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        assert!(a.tuples.is_empty());
    }

    #[test]
    fn repeated_goal_variable_filters_diagonal() {
        let p = parse_program(TC).unwrap();
        let db = DiGraph::cycle(3).to_database("E");
        let a = query(
            &p,
            &parse_atom("S(x, x)").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        assert_eq!(a.tuples, vec![t2(0, 0), t2(1, 1), t2(2, 2)]);
    }

    #[test]
    fn edb_goal_scans_database() {
        let p = parse_program(TC).unwrap();
        let db = DiGraph::path(3).to_database("E");
        let a = query(
            &p,
            &parse_atom("E('v0', y)").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        assert_eq!(a.strategy, QueryStrategy::EdbScan);
        assert_eq!(a.tuples, vec![t2(0, 1)]);
        // Unknown predicate entirely: empty.
        let none = query(
            &p,
            &parse_atom("Zed(x)").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        assert!(none.tuples.is_empty());
    }

    #[test]
    fn goal_arity_mismatch_errors() {
        let p = parse_program(TC).unwrap();
        let db = DiGraph::path(3).to_database("E");
        let err = query(&p, &parse_atom("S(x)").unwrap(), &db, &QueryOpts::default()).unwrap_err();
        assert!(matches!(err, EvalError::ArityMismatch { .. }));
    }

    #[test]
    fn win_move_point_query_uses_cone() {
        let p = parse_program(WIN).unwrap();
        let db = DiGraph::path(4).to_database("Move");
        // v2 wins (moves to sink v3); v1 loses; v0 wins.
        let a = query(
            &p,
            &parse_atom("Win('v2')").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        assert_eq!(a.strategy, QueryStrategy::MagicWellFounded);
        assert_eq!(a.tuples, vec![t1(2)]);
        let b = query(
            &p,
            &parse_atom("Win('v1')").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        assert!(b.tuples.is_empty() && b.undefined.is_empty());
    }

    #[test]
    fn undefined_atoms_are_reported() {
        let p = parse_program(WIN).unwrap();
        let db = DiGraph::cycle(3).to_database("Move");
        let a = query(
            &p,
            &parse_atom("Win('v0')").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        assert!(a.tuples.is_empty());
        assert_eq!(a.undefined, vec![t1(0)]);
    }

    #[test]
    fn non_stratified_policies() {
        let p = parse_program(WIN).unwrap();
        let db = DiGraph::path(4).to_database("Move");
        let goal = parse_atom("Win(x)").unwrap();
        let cone = query(&p, &goal, &db, &QueryOpts::default()).unwrap();
        let full = query(
            &p,
            &goal,
            &db,
            &QueryOpts {
                non_stratified: NonStratifiedPolicy::FullEvaluation,
                ..QueryOpts::default()
            },
        )
        .unwrap();
        assert_eq!(full.strategy, QueryStrategy::FullWellFounded);
        assert_eq!(cone.tuples, full.tuples);
        assert_eq!(cone.undefined, full.undefined);
        let err = query(
            &p,
            &goal,
            &db,
            &QueryOpts {
                non_stratified: NonStratifiedPolicy::Error,
                ..QueryOpts::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::UnsupportedQuery { .. }));
    }

    #[test]
    fn stratified_negation_goal() {
        let src = "
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            C(x, y) :- !S(x, y).
        ";
        let p = parse_program(src).unwrap();
        let db = DiGraph::path(3).to_database("E");
        let a = query(
            &p,
            &parse_atom("C('v0', y)").unwrap(),
            &db,
            &QueryOpts::default(),
        )
        .unwrap();
        // v0 reaches v1 and v2; the complement row for v0 is just (v0, v0).
        assert_eq!(a.tuples, vec![t2(0, 0)]);
    }

    #[test]
    fn capability_check_classifies() {
        assert_eq!(
            demand_support(&parse_program(TC).unwrap()),
            DemandSupport::Stratified
        );
        assert_eq!(
            demand_support(&parse_program(WIN).unwrap()),
            DemandSupport::WellFoundedOnly
        );
    }
}
