//! # inflog-eval
//!
//! Evaluation engines for DATALOG¬ programs, all built on one immediate-
//! consequence operator Θ (§2 of *"Why Not Negation by Fixpoint?"*):
//!
//! * [`operator`] — the operator Θ itself, over compiled rule plans, with
//!   synchronous (Jacobi) application and delta-restricted application;
//! * [`index`] — persistent hash-join indexes, owned by the evaluation
//!   context and maintained incrementally across Θ applications (and across
//!   watermark rollbacks of the well-founded engine's decreasing side);
//! * [`driver`] — the one semi-naive round loop every delta-capable engine
//!   drives, with reusable scratch buffers and a debug cross-check against
//!   the naive round;
//! * [`options`] — per-evaluation knobs, notably the worker-thread count of
//!   the parallel round executor (rounds over a size threshold shard their
//!   work across `std::thread::scope` workers and merge deterministically —
//!   results are bit-identical to sequential evaluation at any count);
//! * [`govern`] — resource governance: [`Budget`] limits and
//!   [`CancelToken`] cancellation enforced at round boundaries and in the
//!   executor inner loops, per-task panic containment in the parallel
//!   runner, and the `INFLOG_FAILPOINT` fault-injection layer the
//!   transactional-update tests drive;
//! * [`naive`] / [`seminaive`] — least-fixpoint evaluation of *positive*
//!   DATALOG programs (the paper's standard semantics);
//! * [`inflationary()`](inflationary()) — the paper's §4 proposal: Θ̃(S) = S ∪ Θ(S) iterated to
//!   its inductive fixpoint, defined for **every** DATALOG¬ program and
//!   computable in polynomial time (data complexity);
//! * [`stratified`] — the Chandra–Harel / Apt–Blair–Walker semantics the
//!   paper contrasts with (stratification check + per-stratum evaluation);
//! * [`wellfounded`] — Van Gelder's alternating-fixpoint semantics
//!   (3-valued), an extension point for comparing negation semantics;
//! * [`plan`] / [`resolve`] — the rule compiler: name resolution against a
//!   database and join planning (greedy bound-position ordering with a
//!   live-cardinality tie-break; the round driver re-plans every round).
//!   Because the paper's semantics is domain-grounded, plans may contain
//!   `Domain` steps that range a variable over the whole universe — unsafe
//!   rules evaluate correctly;
//! * [`materialize`] — live incremental view maintenance: a long-lived
//!   [`Materialized`] handle whose `insert`/`retract` repair the fixpoint
//!   (delete–rederive per stratum; a documented restart fallback for the
//!   non-change-monotone inflationary and non-stratifiable well-founded
//!   fixpoints) instead of recomputing it;
//! * [`durable`] — crash durability for a materialized handle: every
//!   committed batch goes to an `inflog-store` write-ahead log before it is
//!   acknowledged, snapshots compact the log, and recovery replays the WAL
//!   into a warm handle that is bit-identical to a from-scratch recompute
//!   (the determinism of the paper's semantics is the recovery oracle);
//! * [`epoch`] — immutable epoch snapshots of a materialized model and the
//!   single-writer/many-reader [`EpochCell`] publication point that
//!   `inflog-serve` builds on: readers pin the epoch they started on while
//!   the writer commits and publishes the next one;
//! * [`query`] — goal-directed evaluation: the demand rewrites of
//!   `inflog-rewrite` (adorned magic sets for stratified programs, the
//!   demand-cone restriction for well-founded ones) plus an explicit
//!   capability check, answering point queries without computing the full
//!   fixpoint — set-identical to full-fixpoint-then-filter.
//!
//! The different engines share plans and state types, so cross-engine
//! agreement (naive ≡ semi-naive; inflationary ≡ least fixpoint on positive
//! programs; stratified model is a fixpoint of Θ) is tested directly.

pub mod driver;
pub mod durable;
pub mod epoch;
pub mod error;
pub mod exec;
pub mod govern;
pub mod index;
pub mod inflationary;
pub mod interp;
pub mod materialize;
pub mod naive;
pub mod operator;
pub mod options;
pub mod plan;
pub mod query;
pub mod resolve;
pub mod seminaive;
pub mod stratified;
pub mod trace;
pub(crate) mod tree;
pub mod wellfounded;

pub use driver::DeltaDriver;
pub use durable::{Durability, DurableMaterialized, DurableOpts};
pub use epoch::{Epoch, EpochCell, Truth};
pub use error::{BudgetKind, EvalError};
pub use exec::{ColAction, Op, RuleProgram, ValSrc};
pub use govern::{
    Budget, CancelToken, Failpoints, Governor, FAILPOINT_SITES, SERVE_FAILPOINT_SITES,
};
pub use index::IndexSet;
pub use inflationary::{inflationary, inflationary_naive, inflationary_with};
pub use interp::Interp;
pub use materialize::{Engine, MaterializeOpts, Materialized, RepairStrategy};
pub use naive::{least_fixpoint_naive, least_fixpoint_naive_with};
pub use operator::{
    apply, apply_delta, apply_delta_with_neg, apply_subset, apply_with_neg, enumerate_bindings,
    EvalContext,
};
pub use options::{EvalOptions, ExecKind};
pub use plan::lower;
pub use query::{
    demand_support, query, DemandSupport, NonStratifiedPolicy, QueryAnswer, QueryOpts,
    QueryStrategy,
};
pub use resolve::{ensure_program_constants, CompiledProgram, RulePlans};
pub use seminaive::{least_fixpoint_seminaive, least_fixpoint_seminaive_with};
pub use stratified::{stratified_eval, stratified_eval_with, stratify, Stratification};
pub use trace::EvalTrace;
pub use wellfounded::{well_founded, well_founded_with, WellFoundedModel};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EvalError>;
