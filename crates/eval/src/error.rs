//! Evaluation errors.

use std::fmt;

/// Errors raised while compiling or evaluating a program against a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A program constant does not exist in the database universe.
    ///
    /// The paper's semantics interprets programs over the database's universe
    /// `A`; a rule constant outside `A` has no denotation. Use
    /// [`ensure_program_constants`](crate::ensure_program_constants) to intern
    /// them first when that is intended.
    UnknownConstant {
        /// The constant's name as written in the program.
        name: String,
    },
    /// An incremental update named a relation the program does not read as
    /// an extensional predicate — the materialization could never observe
    /// the change, so the update is almost certainly a mistake.
    UnknownRelation {
        /// The relation name as given to the update.
        name: String,
    },
    /// A predicate is used with inconsistent arities (program-internal or
    /// against the database).
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// One observed arity.
        expected: usize,
        /// The conflicting arity.
        found: usize,
    },
    /// An engine that requires a positive (negation-free) program was given
    /// a program with negation or inequality.
    NotPositive {
        /// Human-readable description of the offending literal.
        offending: String,
    },
    /// The program is not stratified (recursion through negation).
    NotStratified {
        /// A negative dependency cycle witness, e.g. `T -!-> T`.
        witness: String,
    },
    /// An iteration cap was exceeded (guards against misuse of naive
    /// iteration on non-monotone programs).
    IterationLimit {
        /// The cap that was hit.
        limit: usize,
    },
    /// A goal-directed query was refused under the caller's policy (e.g. a
    /// non-stratifiable program queried with
    /// [`NonStratifiedPolicy::Error`](crate::query::NonStratifiedPolicy)).
    UnsupportedQuery {
        /// Why the query could not be answered as requested.
        reason: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownConstant { name } => write!(
                f,
                "program constant `{name}` is not in the database universe \
                 (intern it first with ensure_program_constants)"
            ),
            EvalError::UnknownRelation { name } => write!(
                f,
                "relation `{name}` is not an extensional predicate of the program"
            ),
            EvalError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate `{predicate}` used with arity {found}, expected {expected}"
            ),
            EvalError::NotPositive { offending } => write!(
                f,
                "engine requires a positive DATALOG program, found {offending}"
            ),
            EvalError::NotStratified { witness } => {
                write!(f, "program is not stratified: {witness}")
            }
            EvalError::IterationLimit { limit } => {
                write!(f, "iteration limit {limit} exceeded")
            }
            EvalError::UnsupportedQuery { reason } => {
                write!(f, "query not supported: {reason}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(EvalError::UnknownConstant { name: "a".into() }
            .to_string()
            .contains("`a`"));
        assert!(EvalError::UnknownRelation { name: "R".into() }
            .to_string()
            .contains("`R`"));
        assert!(EvalError::NotStratified {
            witness: "T -!-> T".into()
        }
        .to_string()
        .contains("not stratified"));
        assert!(EvalError::IterationLimit { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(EvalError::UnsupportedQuery {
            reason: "not stratified".into()
        }
        .to_string()
        .contains("not stratified"));
        assert!(EvalError::NotPositive {
            offending: "!T(y)".into()
        }
        .to_string()
        .contains("!T(y)"));
        assert!(EvalError::ArityMismatch {
            predicate: "E".into(),
            expected: 2,
            found: 3
        }
        .to_string()
        .contains("arity 3"));
    }
}
