//! Evaluation errors.

use std::fmt;

/// Errors raised while compiling or evaluating a program against a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A program constant does not exist in the database universe.
    ///
    /// The paper's semantics interprets programs over the database's universe
    /// `A`; a rule constant outside `A` has no denotation. Use
    /// [`ensure_program_constants`](crate::ensure_program_constants) to intern
    /// them first when that is intended.
    UnknownConstant {
        /// The constant's name as written in the program.
        name: String,
    },
    /// An incremental update named a relation the program does not read as
    /// an extensional predicate — the materialization could never observe
    /// the change, so the update is almost certainly a mistake.
    UnknownRelation {
        /// The relation name as given to the update.
        name: String,
    },
    /// A predicate is used with inconsistent arities (program-internal or
    /// against the database).
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// One observed arity.
        expected: usize,
        /// The conflicting arity.
        found: usize,
    },
    /// An engine that requires a positive (negation-free) program was given
    /// a program with negation or inequality.
    NotPositive {
        /// Human-readable description of the offending literal.
        offending: String,
    },
    /// The program is not stratified (recursion through negation).
    NotStratified {
        /// A negative dependency cycle witness, e.g. `T -!-> T`.
        witness: String,
    },
    /// An iteration cap was exceeded (guards against misuse of naive
    /// iteration on non-monotone programs).
    ///
    /// **Deprecated in favor of [`EvalError::BudgetExceeded`]** with
    /// [`BudgetKind::Rounds`]: round caps are now expressed through
    /// [`Budget::max_rounds`](crate::Budget) on
    /// [`EvalOptions`](crate::EvalOptions) and enforced uniformly across
    /// every engine. The variant is kept so downstream `From` conversions
    /// and exhaustive matches stay source-compatible; no engine raises it
    /// any more.
    IterationLimit {
        /// The cap that was hit.
        limit: usize,
    },
    /// The evaluation was cancelled through its
    /// [`CancelToken`](crate::CancelToken) (cooperative cancellation:
    /// checked at round boundaries and every few thousand emitted tuples).
    Cancelled,
    /// A [`Budget`](crate::Budget) limit was exceeded. The partial result
    /// is discarded; [`Materialized`](crate::Materialized) updates roll
    /// back to the pre-update state before surfacing this.
    BudgetExceeded {
        /// Which budget dimension tripped.
        kind: BudgetKind,
        /// The configured limit (milliseconds for
        /// [`BudgetKind::Deadline`], a count otherwise).
        limit: u64,
    },
    /// A parallel worker task panicked. The panic was contained per task
    /// (`catch_unwind`) so the evaluation returns an error instead of
    /// aborting the process; the output of the application is discarded.
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A registered failpoint fired (`INFLOG_FAILPOINT=<site>[:<n>]`, or a
    /// programmatically armed [`Failpoints`](crate::Failpoints)). Only used
    /// by the fault-injection test harness.
    FaultInjected {
        /// The failpoint site that fired.
        site: String,
    },
    /// A goal-directed query was refused under the caller's policy (e.g. a
    /// non-stratifiable program queried with
    /// [`NonStratifiedPolicy::Error`](crate::query::NonStratifiedPolicy)).
    UnsupportedQuery {
        /// Why the query could not be answered as requested.
        reason: String,
    },
    /// The durable store failed: a WAL append could not be acknowledged, a
    /// snapshot or log frame is corrupt (the inner error names the file and
    /// byte offset), or recovered state does not fit the program. Raised
    /// only through [`DurableMaterialized`](crate::DurableMaterialized).
    Store {
        /// The underlying store error.
        source: inflog_store::StoreError,
    },
}

impl From<inflog_store::StoreError> for EvalError {
    fn from(source: inflog_store::StoreError) -> Self {
        EvalError::Store { source }
    }
}

/// The budget dimension a [`EvalError::BudgetExceeded`] error names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The wall-clock deadline ([`Budget::deadline`](crate::Budget)).
    Deadline,
    /// The round cap ([`Budget::max_rounds`](crate::Budget)): semi-naive
    /// rounds, naive iterations, and well-founded alternations all count.
    Rounds,
    /// The derived-tuple cap ([`Budget::max_tuples`](crate::Budget)),
    /// counted as tuple emissions in the executors' inner loops.
    Tuples,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Deadline => write!(f, "deadline (ms)"),
            BudgetKind::Rounds => write!(f, "rounds"),
            BudgetKind::Tuples => write!(f, "derived tuples"),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownConstant { name } => write!(
                f,
                "program constant `{name}` is not in the database universe \
                 (intern it first with ensure_program_constants)"
            ),
            EvalError::UnknownRelation { name } => write!(
                f,
                "relation `{name}` is not an extensional predicate of the program"
            ),
            EvalError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate `{predicate}` used with arity {found}, expected {expected}"
            ),
            EvalError::NotPositive { offending } => write!(
                f,
                "engine requires a positive DATALOG program, found {offending}"
            ),
            EvalError::NotStratified { witness } => {
                write!(f, "program is not stratified: {witness}")
            }
            EvalError::IterationLimit { limit } => {
                write!(f, "iteration limit {limit} exceeded")
            }
            EvalError::Cancelled => write!(f, "evaluation cancelled"),
            EvalError::BudgetExceeded { kind, limit } => {
                write!(f, "evaluation budget exceeded: {kind} limit {limit}")
            }
            EvalError::WorkerPanic { message } => {
                write!(f, "a parallel worker task panicked: {message}")
            }
            EvalError::FaultInjected { site } => {
                write!(f, "failpoint `{site}` fired (fault injection)")
            }
            EvalError::UnsupportedQuery { reason } => {
                write!(f, "query not supported: {reason}")
            }
            EvalError::Store { source } => {
                write!(f, "durable store error: {source}")
            }
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Store { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(EvalError::UnknownConstant { name: "a".into() }
            .to_string()
            .contains("`a`"));
        assert!(EvalError::UnknownRelation { name: "R".into() }
            .to_string()
            .contains("`R`"));
        assert!(EvalError::NotStratified {
            witness: "T -!-> T".into()
        }
        .to_string()
        .contains("not stratified"));
        assert!(EvalError::IterationLimit { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(EvalError::UnsupportedQuery {
            reason: "not stratified".into()
        }
        .to_string()
        .contains("not stratified"));
        assert!(EvalError::NotPositive {
            offending: "!T(y)".into()
        }
        .to_string()
        .contains("!T(y)"));
        assert!(EvalError::ArityMismatch {
            predicate: "E".into(),
            expected: 2,
            found: 3
        }
        .to_string()
        .contains("arity 3"));
        assert!(EvalError::Cancelled.to_string().contains("cancelled"));
        assert!(EvalError::BudgetExceeded {
            kind: BudgetKind::Rounds,
            limit: 7
        }
        .to_string()
        .contains("rounds limit 7"));
        assert!(EvalError::WorkerPanic {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(EvalError::FaultInjected {
            site: "round".into()
        }
        .to_string()
        .contains("`round`"));
    }
}
