//! Semi-naive least-fixpoint evaluation of positive DATALOG programs.
//!
//! The classic optimization of the naive loop: after the first round, a rule
//! can only produce a *new* tuple if its body uses at least one tuple that
//! was new in the previous round, so each rule is re-run once per positive
//! IDB atom occurrence with that occurrence restricted to the delta.
//! Ablation bench `seminaive.rs` measures the win over naive iteration.

use crate::driver::DeltaDriver;
use crate::govern::Governor;
use crate::interp::Interp;
use crate::naive::require_positive;
use crate::operator::EvalContext;
use crate::options::EvalOptions;
use crate::resolve::CompiledProgram;
use crate::trace::EvalTrace;
use crate::Result;
use inflog_core::Database;
use inflog_syntax::Program;

/// Computes the least fixpoint of a positive program semi-naively, with
/// [`EvalOptions::default`] (sequential unless the environment overrides).
///
/// # Errors
/// Same conditions as [`least_fixpoint_naive`](crate::least_fixpoint_naive).
pub fn least_fixpoint_seminaive(program: &Program, db: &Database) -> Result<(Interp, EvalTrace)> {
    least_fixpoint_seminaive_with(program, db, &EvalOptions::default())
}

/// [`least_fixpoint_seminaive`] with explicit evaluation options — e.g. a
/// worker-thread count for the parallel round executor. The result is
/// bit-identical for every thread count.
///
/// # Errors
/// Same conditions as [`least_fixpoint_naive`](crate::least_fixpoint_naive).
pub fn least_fixpoint_seminaive_with(
    program: &Program,
    db: &Database,
    opts: &EvalOptions,
) -> Result<(Interp, EvalTrace)> {
    require_positive(program)?;
    let cp = CompiledProgram::compile(program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    least_fixpoint_seminaive_compiled_with(&cp, &ctx, opts)
}

/// Semi-naive iteration over an already-compiled positive program.
///
/// The round loop itself lives in [`DeltaDriver::extend`]; this engine is
/// the trivial instantiation (all rules, standard negation context, cold
/// start from ∅). This convenience wrapper strips any environment-supplied
/// governance (budget, token, failpoints) and is therefore infallible.
pub fn least_fixpoint_seminaive_compiled(
    cp: &CompiledProgram,
    ctx: &EvalContext,
) -> (Interp, EvalTrace) {
    least_fixpoint_seminaive_compiled_with(cp, ctx, &EvalOptions::default().without_governance())
        .expect("ungoverned semi-naive evaluation cannot fail")
}

/// [`least_fixpoint_seminaive_compiled`] with explicit evaluation options;
/// the governed form checks budget, cancellation and failpoints at every
/// round boundary and every few thousand emitted tuples.
///
/// # Errors
/// [`EvalError::Cancelled`](crate::EvalError::Cancelled),
/// [`EvalError::BudgetExceeded`](crate::EvalError::BudgetExceeded), a fault
/// injected by an armed failpoint, or a contained worker panic.
pub fn least_fixpoint_seminaive_compiled_with(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    opts: &EvalOptions,
) -> Result<(Interp, EvalTrace)> {
    let governor = Governor::new(opts);
    let mut trace = EvalTrace::default();
    let mut s = cp.empty_interp();
    DeltaDriver::with_options(cp, opts.clone()).extend(
        cp,
        ctx,
        &mut s,
        None,
        None,
        Some(&mut trace),
        &governor,
    )?;
    trace.final_tuples = s.total_tuples();
    Ok((s, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::least_fixpoint_naive;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::parse_program;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";

    #[test]
    fn agrees_with_naive_on_paths_and_cycles() {
        let p = parse_program(TC).unwrap();
        for db in [
            DiGraph::path(6).to_database("E"),
            DiGraph::cycle(5).to_database("E"),
            DiGraph::binary_tree(7).to_database("E"),
            DiGraph::grid(3, 3).to_database("E"),
        ] {
            let (a, _) = least_fixpoint_naive(&p, &db).unwrap();
            let (b, _) = least_fixpoint_seminaive(&p, &db).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn agrees_with_naive_on_random_graphs() {
        let p = parse_program(TC).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let g = DiGraph::random_gnp(8, 0.25, &mut rng);
            let db = g.to_database("E");
            let (a, _) = least_fixpoint_naive(&p, &db).unwrap();
            let (b, _) = least_fixpoint_seminaive(&p, &db).unwrap();
            assert_eq!(a, b, "graph: {g}");
        }
    }

    #[test]
    fn agrees_on_multi_idb_program() {
        // Same-generation: a classic two-IDB positive program.
        let src = "
            Sg(x, y) :- Flat(x, y).
            Sg(x, y) :- Up(x, u), Sg(u, v), Down(v, y).
            Reach(x) :- Start(x).
            Reach(y) :- Reach(x), Up(x, y).
        ";
        let p = parse_program(src).unwrap();
        let mut db = inflog_core::Database::new();
        for (u, v) in [("a", "b"), ("b", "c")] {
            db.insert_named_fact("Up", &[u, v]).unwrap();
            db.insert_named_fact("Down", &[v, u]).unwrap();
        }
        db.insert_named_fact("Flat", &["c", "c"]).unwrap();
        db.insert_named_fact("Start", &["a"]).unwrap();
        let (a, _) = least_fixpoint_naive(&p, &db).unwrap();
        let (b, _) = least_fixpoint_seminaive(&p, &db).unwrap();
        assert_eq!(a, b);
        assert!(a.total_tuples() > 0);
    }

    #[test]
    fn delta_rounds_match_naive_rounds() {
        // Both engines apply Θ once per level, so round counts agree.
        let p = parse_program(TC).unwrap();
        let db = DiGraph::path(7).to_database("E");
        let (_, tn) = least_fixpoint_naive(&p, &db).unwrap();
        let (_, ts) = least_fixpoint_seminaive(&p, &db).unwrap();
        assert_eq!(tn.rounds, ts.rounds);
        assert_eq!(tn.added_per_round, ts.added_per_round);
    }

    #[test]
    fn repeated_idb_atoms_get_one_delta_plan_each() {
        // S(x, z) :- S(x, y), S(y, z) mentions S positively twice: the
        // compiler must emit one delta plan per occurrence, since a new
        // derivation may come through either side of the join.
        let src = "S(x, y) :- E(x, y). S(x, z) :- S(x, y), S(y, z).";
        let db = DiGraph::path(3).to_database("E");
        let cp = CompiledProgram::compile(&parse_program(src).unwrap(), &db).unwrap();
        assert_eq!(cp.rules[1].delta_plans.len(), 2);
    }

    #[test]
    fn repeated_idb_atoms_agree_with_naive_on_random_graphs() {
        // TC by squaring (S ∘ S) exercises both delta plans of the repeated
        // atom: deriving S(x,z) where S(x,y) is old and S(y,z) is new needs
        // the second plan, and vice versa. Any missing plan loses tuples on
        // graphs with long paths.
        let squaring = parse_program("S(x, y) :- E(x, y). S(x, z) :- S(x, y), S(y, z).").unwrap();
        // A two-predicate variant: P joins S with itself.
        let two_pred = parse_program(
            "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y). P(x, z) :- S(x, y), S(y, z).",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..8 {
            let g = DiGraph::random_gnp(8, 0.2, &mut rng);
            let db = g.to_database("E");
            for p in [&squaring, &two_pred] {
                let (a, _) = least_fixpoint_naive(p, &db).unwrap();
                let (b, _) = least_fixpoint_seminaive(p, &db).unwrap();
                assert_eq!(a, b, "graph: {g}");
            }
        }
        // And on a long path, where squaring's second round really does
        // join old tuples with new ones.
        let db = DiGraph::path(16).to_database("E");
        let (a, _) = least_fixpoint_naive(&squaring, &db).unwrap();
        let (b, _) = least_fixpoint_seminaive(&squaring, &db).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.total_tuples(), 16 * 15 / 2);
    }

    #[test]
    fn indexes_persist_across_rounds() {
        // The evaluation context owns the hash-join indexes: after a
        // semi-naive run they are still warm (EDB indexes built once, IDB
        // indexes extended per round), not rebuilt per application.
        let p = parse_program(TC).unwrap();
        let db = DiGraph::path(10).to_database("E");
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let ctx = crate::operator::EvalContext::new(&cp, &db).unwrap();
        let (a, _) = least_fixpoint_seminaive_compiled(&cp, &ctx);
        let warm = ctx.num_indexes();
        assert!(warm > 0, "keyed scans must have registered indexes");
        // A second run over the same context reuses them.
        let (b, _) = least_fixpoint_seminaive_compiled(&cp, &ctx);
        assert_eq!(a, b);
        assert!(ctx.num_indexes() >= warm);
    }

    #[test]
    fn rejects_negation() {
        let db = DiGraph::path(2).to_database("E");
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        assert!(least_fixpoint_seminaive(&p, &db).is_err());
    }

    #[test]
    fn empty_database() {
        let db = inflog_core::Database::new();
        let p = parse_program(TC).unwrap();
        let (lfp, trace) = least_fixpoint_seminaive(&p, &db).unwrap();
        assert_eq!(lfp.total_tuples(), 0);
        assert_eq!(trace.rounds, 0);
    }
}
