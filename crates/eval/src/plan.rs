//! Rule execution plans: compiled, ordered step sequences for evaluating one
//! rule body under a variable binding.
//!
//! The planner is a small query optimizer:
//!
//! * positive atoms become [`Step::Scan`]s, greedily ordered so that atoms
//!   with the most already-bound argument positions run first (those
//!   positions become hash-index keys);
//! * **cardinality tie-break**: when two candidate atoms have the same
//!   bound-position and constant counts, the one whose relation is
//!   currently *smaller* — per the [`CardSnapshot`] the caller supplies —
//!   is scanned first, since its candidate set is the smaller outer loop;
//!   only a genuine size tie falls back to source order. Compile-time plans
//!   snapshot the live EDB cardinalities (IDB relations are unknown and
//!   assumed large); the round driver re-plans each semi-naive round with
//!   the live IDB sizes, so scan order tracks the growing interpretation;
//! * equalities bind variables ([`Step::BindEq`]) or filter
//!   ([`Step::FilterEq`]);
//! * negated atoms and inequalities are pushed down to the earliest point at
//!   which all their variables are bound;
//! * variables bound by nothing — the paper's unsafe rules — get
//!   [`Step::Domain`] steps that range them over the whole universe `A`,
//!   implementing the paper's domain-grounded semantics.
//!
//! For semi-naive evaluation each rule additionally gets one *delta plan* per
//! positive IDB atom occurrence: that occurrence reads the per-round delta
//! relation (and is scanned first, since the delta is the smallest input).
//!
//! Every plan is additionally [`lower`]ed at construction into a flat
//! [`RuleProgram`] — the register-machine IR the default executor runs (the
//! step tree survives as the oracle executor's input and for plan
//! introspection). Because lowering happens inside the planner, every path
//! that builds or re-builds plans (compile-time planning, per-round
//! replanning, grounding, check plans) gets a fresh program for free.

use crate::exec::{ColAction, Op, RuleProgram, ValSrc, END};
use inflog_core::Const;
use std::fmt;

/// A compiled term: a variable slot or a resolved constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CTerm {
    /// Variable, identified by its slot in the rule's binding array.
    Var(usize),
    /// Constant already resolved against the database universe.
    Const(Const),
}

impl fmt::Display for CTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CTerm::Var(v) => write!(f, "x{v}"),
            CTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A reference to a relation: extensional (database) or intensional
/// (computed), by dense id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredRef {
    /// Database relation id.
    Edb(usize),
    /// Non-database relation id.
    Idb(usize),
}

/// A snapshot of relation cardinalities the planner's scan-order tie-break
/// consults: equal bound-position counts prefer the smaller relation.
///
/// Relations without a recorded size count as *unknown* and are treated as
/// maximally large, so an [`unknown`](Self::unknown) snapshot degenerates to
/// the historical pure source-order tie-break. The compiler records live
/// EDB sizes with unknown IDBs; the round driver snapshots both sides every
/// round (see `DeltaDriver`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CardSnapshot {
    edb: Vec<usize>,
    idb: Vec<usize>,
}

impl CardSnapshot {
    /// Builds a snapshot from per-id sizes (EDB and IDB dense ids).
    pub fn new(edb: Vec<usize>, idb: Vec<usize>) -> Self {
        CardSnapshot { edb, idb }
    }

    /// The empty snapshot: every relation size unknown (assumed large), so
    /// ties fall back to source order.
    pub fn unknown() -> Self {
        CardSnapshot::default()
    }

    /// Estimated cardinality of `pred` (`usize::MAX` when unknown).
    pub fn size(&self, pred: PredRef) -> usize {
        let (sizes, i) = match pred {
            PredRef::Edb(i) => (&self.edb, i),
            PredRef::Idb(i) => (&self.idb, i),
        };
        sizes.get(i).copied().unwrap_or(usize::MAX)
    }

    /// Whether `other` is close enough to this snapshot that re-planning
    /// from it would be noise: every size is in the same power-of-two
    /// bucket. The planner only reads cardinalities through order
    /// comparisons, so two snapshots whose sizes agree bucket-by-bucket
    /// almost always order scans identically — and a fixpoint loop that
    /// re-plans per round would otherwise rebuild every plan (and re-lower
    /// every program) each time a relation grows by a single tuple.
    pub fn same_magnitude(&self, other: &CardSnapshot) -> bool {
        let bucket = |n: usize| usize::BITS - n.leading_zeros();
        let agree = |a: &[usize], b: &[usize]| {
            a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| bucket(x) == bucket(y))
        };
        agree(&self.edb, &other.edb) && agree(&self.idb, &other.idb)
    }
}

/// Which version of an IDB relation a scan reads (semi-naive evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// The full current relation.
    Full,
    /// The per-round delta.
    Delta,
}

/// One step of a rule plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Iterate the tuples of a relation, consistent with already-bound
    /// positions (`key_cols`), binding the rest.
    Scan {
        /// Relation to scan.
        pred: PredRef,
        /// Full or delta version. Delta scans resolve against the delta
        /// interpretation of the application: IDB-shaped for semi-naive
        /// rounds, EDB-shaped for the view-maintenance repair seeds.
        source: Source,
        /// Argument terms of the atom.
        terms: Vec<CTerm>,
        /// Columns whose value is known *before* this step (constants or
        /// previously bound variables) — used as a hash-index key.
        key_cols: Vec<usize>,
    },
    /// Bind `var` to every constant of the universe in turn (domain
    /// grounding for otherwise-unbound variables).
    Domain {
        /// Variable slot to bind.
        var: usize,
    },
    /// Membership test with all variables bound.
    FilterPos {
        /// Relation to probe.
        pred: PredRef,
        /// Argument terms (all bound at this point).
        terms: Vec<CTerm>,
    },
    /// Non-membership test with all variables bound.
    FilterNeg {
        /// Relation to probe.
        pred: PredRef,
        /// Argument terms (all bound at this point).
        terms: Vec<CTerm>,
    },
    /// Bind an unbound variable to the value of a bound term.
    BindEq {
        /// Variable slot to bind.
        var: usize,
        /// Bound term supplying the value.
        from: CTerm,
    },
    /// Equality test between two bound terms.
    FilterEq {
        /// Left term.
        a: CTerm,
        /// Right term.
        b: CTerm,
    },
    /// Inequality test between two bound terms.
    FilterNeq {
        /// Left term.
        a: CTerm,
        /// Right term.
        b: CTerm,
    },
}

/// A resolved body literal, pre-planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RLit {
    /// Positive atom.
    Pos {
        /// Relation.
        pred: PredRef,
        /// Arguments.
        terms: Vec<CTerm>,
    },
    /// Negated atom.
    Neg {
        /// Relation.
        pred: PredRef,
        /// Arguments.
        terms: Vec<CTerm>,
    },
    /// Equality.
    Eq(CTerm, CTerm),
    /// Inequality.
    Neq(CTerm, CTerm),
}

impl RLit {
    fn vars(&self) -> Vec<usize> {
        fn tv(t: &CTerm, out: &mut Vec<usize>) {
            if let CTerm::Var(v) = t {
                out.push(*v);
            }
        }
        let mut out = Vec::new();
        match self {
            RLit::Pos { terms, .. } | RLit::Neg { terms, .. } => {
                terms.iter().for_each(|t| tv(t, &mut out));
            }
            RLit::Eq(a, b) | RLit::Neq(a, b) => {
                tv(a, &mut out);
                tv(b, &mut out);
            }
        }
        out
    }
}

/// A complete plan for one rule (body steps + head construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Ordered execution steps.
    pub steps: Vec<Step>,
    /// Head terms (tuple construction; all variables bound after `steps`).
    pub head: Vec<CTerm>,
    /// Number of variable slots in the rule.
    pub num_vars: usize,
    /// The steps [`lower`]ed to the flat register-machine IR the default
    /// executor runs. Always consistent with `steps`: both are produced
    /// together by the planner.
    pub program: RuleProgram,
}

/// Builds a plan for a rule body.
///
/// `delta_lit` optionally names a body literal index that must be a positive
/// atom (IDB for semi-naive rounds; EDB for the view-maintenance plans that
/// seed a repair from an EDB delta); it is scanned first from the
/// [`Source::Delta`] relation (the delta-first invariant: the delta is
/// always the smallest input, so cardinality estimates never reorder it away
/// from the front).
///
/// `cards` supplies the relation-cardinality estimates for the scan-order
/// tie-break; [`CardSnapshot::unknown`] reproduces pure source order.
///
/// # Panics
/// Panics if `delta_lit` does not refer to a positive atom (an internal
/// compiler invariant).
pub fn plan_rule(
    head: Vec<CTerm>,
    body: &[RLit],
    num_vars: usize,
    delta_lit: Option<usize>,
    cards: &CardSnapshot,
) -> Plan {
    plan_rule_inner(head, body, num_vars, delta_lit, false, &[], cards)
}

/// Builds a plan whose leading scan reads the [`Source::Delta`] relation for
/// the **negated** atom at body index `neg_lit` — the atom's tuples are
/// drawn from a *removed set* (tuples that just left the negation context:
/// the frozen IDB context for the well-founded engine, the extensional
/// database for view-maintenance repairs), its variables bound by
/// unification like any positive scan.
///
/// The driven occurrence itself is consumed: a removed tuple is by
/// definition absent from the negation context, so re-filtering it is a
/// tautology (other negated occurrences still filter normally). The
/// incremental well-founded engine uses these plans to run the first round
/// of `Γ` restricted to derivations that a shrinking `J` newly enables;
/// the materialized-view repair path drives the EDB variants with the
/// retracted (for damage) or inserted (for top-up) fact sets.
///
/// # Panics
/// Panics if `neg_lit` does not refer to a negated atom.
pub fn plan_rule_neg_delta(
    head: Vec<CTerm>,
    body: &[RLit],
    num_vars: usize,
    neg_lit: usize,
    cards: &CardSnapshot,
) -> Plan {
    plan_rule_inner(head, body, num_vars, Some(neg_lit), true, &[], cards)
}

/// Builds a plan with the given variable slots already bound by the caller
/// (seeded into the executor's binding array before the plan runs).
///
/// Used for **check plans**: the head variables are pre-bound from a
/// candidate head tuple, so the body atoms mentioning them become keyed
/// scans against the persistent indexes and the plan decides one-step
/// derivability of that tuple.
pub fn plan_rule_prebound(
    head: Vec<CTerm>,
    body: &[RLit],
    num_vars: usize,
    pre_bound: &[usize],
    cards: &CardSnapshot,
) -> Plan {
    plan_rule_inner(head, body, num_vars, None, false, pre_bound, cards)
}

#[allow(clippy::too_many_arguments)]
fn plan_rule_inner(
    head: Vec<CTerm>,
    body: &[RLit],
    num_vars: usize,
    delta_lit: Option<usize>,
    delta_is_neg: bool,
    pre_bound: &[usize],
    cards: &CardSnapshot,
) -> Plan {
    let mut steps = Vec::new();
    let mut bound = vec![false; num_vars];
    for &v in pre_bound {
        bound[v] = true;
    }
    let mut remaining: Vec<(usize, &RLit)> = body.iter().enumerate().collect();

    let term_bound = |t: &CTerm, bound: &[bool]| match t {
        CTerm::Const(_) => true,
        CTerm::Var(v) => bound[*v],
    };

    // Emit the delta scan first: the delta is the smallest relation.
    if let Some(d) = delta_lit {
        let lit = &body[d];
        let (pred, terms) = match (lit, delta_is_neg) {
            (RLit::Pos { pred, terms }, false) | (RLit::Neg { pred, terms }, true) => (pred, terms),
            _ => panic!("delta literal polarity does not match the requested plan"),
        };
        steps.push(Step::Scan {
            pred: *pred,
            source: Source::Delta,
            terms: terms.clone(),
            key_cols: Vec::new(),
        });
        for v in lit.vars() {
            bound[v] = true;
        }
        remaining.retain(|(i, _)| *i != d);
    }

    while !remaining.is_empty() {
        // Phase 1: drain every literal that is ready as a filter/bind.
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut i = 0;
            while i < remaining.len() {
                let (_, lit) = remaining[i];
                let step = match lit {
                    RLit::Eq(a, b) => match (term_bound(a, &bound), term_bound(b, &bound)) {
                        (true, true) => Some(Step::FilterEq { a: *a, b: *b }),
                        (true, false) => {
                            let CTerm::Var(v) = b else { unreachable!() };
                            Some(Step::BindEq { var: *v, from: *a })
                        }
                        (false, true) => {
                            let CTerm::Var(v) = a else { unreachable!() };
                            Some(Step::BindEq { var: *v, from: *b })
                        }
                        (false, false) => None,
                    },
                    RLit::Neq(a, b) if term_bound(a, &bound) && term_bound(b, &bound) => {
                        Some(Step::FilterNeq { a: *a, b: *b })
                    }
                    RLit::Neg { pred, terms } if terms.iter().all(|t| term_bound(t, &bound)) => {
                        Some(Step::FilterNeg {
                            pred: *pred,
                            terms: terms.clone(),
                        })
                    }
                    RLit::Pos { pred, terms } if terms.iter().all(|t| term_bound(t, &bound)) => {
                        Some(Step::FilterPos {
                            pred: *pred,
                            terms: terms.clone(),
                        })
                    }
                    _ => None,
                };
                if let Some(s) = step {
                    if let Step::BindEq { var, .. } = &s {
                        bound[*var] = true;
                    }
                    steps.push(s);
                    remaining.remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
        }
        if remaining.is_empty() {
            break;
        }

        // Phase 2: scan the positive atom with the most bound columns
        // (ties: more constants, then the smaller relation per the
        // cardinality snapshot — the smaller estimated candidate set is the
        // cheaper outer loop — then source order).
        let best = remaining
            .iter()
            .enumerate()
            .filter_map(|(slot, (idx, lit))| match lit {
                RLit::Pos { pred, terms } => {
                    let bound_cols = terms.iter().filter(|t| term_bound(t, &bound)).count();
                    let const_cols = terms
                        .iter()
                        .filter(|t| matches!(t, CTerm::Const(_)))
                        .count();
                    Some((slot, *idx, *pred, terms.clone(), bound_cols, const_cols))
                }
                _ => None,
            })
            .max_by_key(|&(_, idx, pred, _, bc, cc)| {
                (
                    bc,
                    cc,
                    std::cmp::Reverse(cards.size(pred)),
                    std::cmp::Reverse(idx),
                )
            });

        if let Some((slot, _, pred, terms, _, _)) = best {
            let key_cols: Vec<usize> = terms
                .iter()
                .enumerate()
                .filter(|(_, t)| term_bound(t, &bound))
                .map(|(c, _)| c)
                .collect();
            for t in &terms {
                if let CTerm::Var(v) = t {
                    bound[*v] = true;
                }
            }
            steps.push(Step::Scan {
                pred,
                source: Source::Full,
                terms,
                key_cols,
            });
            remaining.remove(slot);
            continue;
        }

        // Phase 3: only negations / inequalities / var-var equalities with
        // unbound variables remain. Ground the smallest-numbered unbound
        // variable over the universe and retry.
        let next_var = remaining
            .iter()
            .flat_map(|(_, l)| l.vars())
            .filter(|&v| !bound[v])
            .min()
            .expect("unready literals must mention an unbound variable");
        steps.push(Step::Domain { var: next_var });
        bound[next_var] = true;
    }

    // Head variables never bound by the body range over the universe.
    for t in &head {
        if let CTerm::Var(v) = t {
            if !bound[*v] {
                steps.push(Step::Domain { var: *v });
                bound[*v] = true;
            }
        }
    }

    let program = lower(&steps, &head, num_vars, pre_bound);
    Plan {
        steps,
        head,
        num_vars,
        program,
    }
}

/// Lowers a plan's step tree to the flat [`RuleProgram`] IR.
///
/// The key property making this a *static* compilation: variable boundness
/// at every step is fully determined by the plan (plus `pre_bound`), never
/// by runtime data. So each scan column's behavior is decided here once —
/// bind a register, check a register, check a constant, or skip an
/// index-guaranteed key column — and the executing VM carries no `bound`
/// bitmap at all. Keyed scans become [`Op::ProbeIndex`] with the key built
/// from registers/immediates; each op records the pc of its innermost
/// enclosing loop as its explicit `fail` jump target ([`END`] at top
/// level); the terminal [`Op::Emit`] resumes the innermost loop.
///
/// `pre_bound` lists variable slots the caller seeds before running (check
/// plans pre-bind the head variables) — they start as bound registers.
pub fn lower(steps: &[Step], head: &[CTerm], num_vars: usize, pre_bound: &[usize]) -> RuleProgram {
    let mut bound = vec![false; num_vars];
    for &v in pre_bound {
        bound[v] = true;
    }
    let vsrc = |t: &CTerm, bound: &[bool]| -> ValSrc {
        match t {
            CTerm::Const(c) => ValSrc::Imm(*c),
            CTerm::Var(v) => {
                debug_assert!(bound[*v], "value read from an unbound variable");
                ValSrc::Reg(*v as u32)
            }
        }
    };
    let mut ops: Vec<Op> = Vec::with_capacity(steps.len() + 1);
    // Innermost enclosing loop so far — the fail target of the next op.
    let mut last_loop: u32 = END;
    for step in steps {
        let pc = ops.len() as u32;
        let fail = last_loop;
        match step {
            Step::Scan {
                pred,
                source,
                terms,
                key_cols,
            } => {
                let cols: Box<[ColAction]> = terms
                    .iter()
                    .enumerate()
                    .map(|(col, term)| {
                        if key_cols.contains(&col) {
                            // The probe key guarantees equality here (the
                            // fallback path re-checks the key explicitly).
                            return ColAction::Skip;
                        }
                        match term {
                            CTerm::Const(c) => ColAction::CheckConst(*c),
                            CTerm::Var(v) => {
                                // First fresh occurrence binds; repeats (in
                                // earlier columns or earlier steps) check —
                                // the same rule as the tree executor's
                                // binds mask.
                                if !bound[*v] && !terms[..col].contains(term) {
                                    ColAction::Bind(*v as u32)
                                } else {
                                    ColAction::CheckReg(*v as u32)
                                }
                            }
                        }
                    })
                    .collect();
                if key_cols.is_empty() {
                    ops.push(match pred {
                        PredRef::Edb(i) => Op::ScanEdb {
                            rel: *i as u32,
                            source: *source,
                            cols,
                            fail,
                        },
                        PredRef::Idb(i) => Op::ScanIdb {
                            rel: *i as u32,
                            source: *source,
                            cols,
                            fail,
                        },
                    });
                } else {
                    let key: Box<[ValSrc]> =
                        key_cols.iter().map(|&c| vsrc(&terms[c], &bound)).collect();
                    ops.push(Op::ProbeIndex {
                        pred: *pred,
                        source: *source,
                        key_cols: key_cols.clone().into_boxed_slice(),
                        key,
                        cols,
                        fail,
                    });
                }
                last_loop = pc;
                for t in terms {
                    if let CTerm::Var(v) = t {
                        bound[*v] = true;
                    }
                }
            }
            Step::Domain { var } => {
                ops.push(Op::Domain {
                    reg: *var as u32,
                    fail,
                });
                last_loop = pc;
                bound[*var] = true;
            }
            Step::FilterPos { pred, terms } => ops.push(Op::FilterPos {
                pred: *pred,
                args: terms.iter().map(|t| vsrc(t, &bound)).collect(),
                fail,
            }),
            Step::FilterNeg { pred, terms } => ops.push(Op::FilterNeg {
                pred: *pred,
                args: terms.iter().map(|t| vsrc(t, &bound)).collect(),
                fail,
            }),
            Step::BindEq { var, from } => {
                let from = vsrc(from, &bound);
                bound[*var] = true;
                ops.push(Op::BindEq {
                    reg: *var as u32,
                    from,
                });
            }
            Step::FilterEq { a, b } => ops.push(Op::FilterEq {
                a: vsrc(a, &bound),
                b: vsrc(b, &bound),
                fail,
            }),
            Step::FilterNeq { a, b } => ops.push(Op::FilterNeq {
                a: vsrc(a, &bound),
                b: vsrc(b, &bound),
                fail,
            }),
        }
    }
    ops.push(Op::Emit { fail: last_loop });
    RuleProgram {
        ops,
        head: head.iter().map(|t| vsrc(t, &bound)).collect(),
        num_regs: num_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: PredRef = PredRef::Edb(0);
    const T: PredRef = PredRef::Idb(0);

    fn v(i: usize) -> CTerm {
        CTerm::Var(i)
    }

    #[test]
    fn pi1_plan_scans_then_filters() {
        // T(x) <- E(y,x), !T(y): scan E, then the negation is a filter.
        let body = vec![
            RLit::Pos {
                pred: E,
                terms: vec![v(1), v(0)],
            },
            RLit::Neg {
                pred: T,
                terms: vec![v(1)],
            },
        ];
        let p = plan_rule(vec![v(0)], &body, 2, None, &CardSnapshot::unknown());
        assert_eq!(p.steps.len(), 2);
        assert!(matches!(
            p.steps[0],
            Step::Scan {
                pred: PredRef::Edb(0),
                ..
            }
        ));
        assert!(matches!(p.steps[1], Step::FilterNeg { .. }));
    }

    #[test]
    fn toggle_rule_gets_domain_steps() {
        // T(z) <- !Q(u), !T(w): all three variables need Domain steps.
        let q = PredRef::Idb(1);
        let body = vec![
            RLit::Neg {
                pred: q,
                terms: vec![v(1)],
            },
            RLit::Neg {
                pred: T,
                terms: vec![v(2)],
            },
        ];
        let p = plan_rule(vec![v(0)], &body, 3, None, &CardSnapshot::unknown());
        let domains = p
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Domain { .. }))
            .count();
        assert_eq!(domains, 3);
        // Filters come after the Domain step binding their variable.
        let first_filter = p
            .steps
            .iter()
            .position(|s| matches!(s, Step::FilterNeg { .. }))
            .unwrap();
        assert!(first_filter >= 1);
    }

    #[test]
    fn equality_binds_instead_of_domain() {
        // P(y) <- V(x), x = y.
        let vp = PredRef::Edb(1);
        let body = vec![
            RLit::Pos {
                pred: vp,
                terms: vec![v(0)],
            },
            RLit::Eq(v(0), v(1)),
        ];
        let p = plan_rule(vec![v(1)], &body, 2, None, &CardSnapshot::unknown());
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(s, Step::BindEq { var: 1, .. })));
        assert!(!p.steps.iter().any(|s| matches!(s, Step::Domain { .. })));
    }

    #[test]
    fn second_scan_uses_bound_key_cols() {
        // S(x,y) <- E(x,z), S(z,y): after scanning E, S's first column is a key.
        let s = PredRef::Idb(0);
        let body = vec![
            RLit::Pos {
                pred: E,
                terms: vec![v(0), v(2)],
            },
            RLit::Pos {
                pred: s,
                terms: vec![v(2), v(1)],
            },
        ];
        let p = plan_rule(vec![v(0), v(1)], &body, 3, None, &CardSnapshot::unknown());
        match &p.steps[1] {
            Step::Scan { key_cols, .. } => assert_eq!(key_cols, &vec![0]),
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn delta_plan_scans_delta_first() {
        let s = PredRef::Idb(0);
        let body = vec![
            RLit::Pos {
                pred: E,
                terms: vec![v(0), v(2)],
            },
            RLit::Pos {
                pred: s,
                terms: vec![v(2), v(1)],
            },
        ];
        let p = plan_rule(
            vec![v(0), v(1)],
            &body,
            3,
            Some(1),
            &CardSnapshot::unknown(),
        );
        match &p.steps[0] {
            Step::Scan { source, pred, .. } => {
                assert_eq!(*source, Source::Delta);
                assert_eq!(*pred, s);
            }
            other => panic!("expected delta scan, got {other:?}"),
        }
        // The E atom is now keyed on its second column (bound by the delta).
        match &p.steps[1] {
            Step::Scan { key_cols, .. } => assert_eq!(key_cols, &vec![1]),
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn neg_delta_plan_scans_removed_set_first() {
        // Win(x) <- Move(x,y), !Win(y): the neg-delta plan scans the removed
        // Win tuples (binding y), then probes Move keyed on its second
        // column. The driven negation is consumed, not re-filtered.
        let body = vec![
            RLit::Pos {
                pred: E,
                terms: vec![v(0), v(1)],
            },
            RLit::Neg {
                pred: T,
                terms: vec![v(1)],
            },
        ];
        let p = plan_rule_neg_delta(vec![v(0)], &body, 2, 1, &CardSnapshot::unknown());
        match &p.steps[0] {
            Step::Scan { pred, source, .. } => {
                assert_eq!(*pred, T);
                assert_eq!(*source, Source::Delta);
            }
            other => panic!("expected removed-set scan, got {other:?}"),
        }
        match &p.steps[1] {
            Step::Scan { pred, key_cols, .. } => {
                assert_eq!(*pred, E);
                assert_eq!(key_cols, &vec![1]);
            }
            other => panic!("expected keyed Move scan, got {other:?}"),
        }
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn neg_delta_plan_keeps_other_negations_as_filters() {
        let q = PredRef::Idb(1);
        let body = vec![
            RLit::Pos {
                pred: E,
                terms: vec![v(0), v(1)],
            },
            RLit::Neg {
                pred: T,
                terms: vec![v(1)],
            },
            RLit::Neg {
                pred: q,
                terms: vec![v(0)],
            },
        ];
        let p = plan_rule_neg_delta(vec![v(0)], &body, 2, 1, &CardSnapshot::unknown());
        let neg_filters = p
            .steps
            .iter()
            .filter(|s| matches!(s, Step::FilterNeg { .. }))
            .count();
        assert_eq!(neg_filters, 1, "only the driven occurrence is consumed");
    }

    #[test]
    fn prebound_head_vars_key_the_first_scan() {
        // Check plan for Win(x) <- Move(x,y), !Win(y) with x pre-bound:
        // Move is scanned keyed on column 0, no Domain steps.
        let body = vec![
            RLit::Pos {
                pred: E,
                terms: vec![v(0), v(1)],
            },
            RLit::Neg {
                pred: T,
                terms: vec![v(1)],
            },
        ];
        let p = plan_rule_prebound(vec![v(0)], &body, 2, &[0], &CardSnapshot::unknown());
        match &p.steps[0] {
            Step::Scan { key_cols, .. } => assert_eq!(key_cols, &vec![0]),
            other => panic!("expected keyed scan, got {other:?}"),
        }
        assert!(matches!(p.steps[1], Step::FilterNeg { .. }));
        assert!(!p.steps.iter().any(|s| matches!(s, Step::Domain { .. })));
    }

    #[test]
    fn fact_head_variables_get_domains() {
        // G(z, c) <- .  : z ranges over the universe.
        let p = plan_rule(
            vec![v(0), CTerm::Const(inflog_core::Const(1))],
            &[],
            1,
            None,
            &CardSnapshot::unknown(),
        );
        assert_eq!(p.steps.len(), 1);
        assert!(matches!(p.steps[0], Step::Domain { var: 0 }));
    }

    #[test]
    fn var_var_equality_with_no_bindings() {
        // P(x) <- x = y (both unbound): Domain then BindEq.
        let body = vec![RLit::Eq(v(0), v(1))];
        let p = plan_rule(vec![v(0)], &body, 2, None, &CardSnapshot::unknown());
        assert!(matches!(p.steps[0], Step::Domain { .. }));
        assert!(matches!(p.steps[1], Step::BindEq { .. }));
    }

    #[test]
    fn all_bound_positive_atom_becomes_filter() {
        // P(x) <- E(x, x), E(x, x) — the second occurrence is a filter.
        let body = vec![
            RLit::Pos {
                pred: E,
                terms: vec![v(0), v(0)],
            },
            RLit::Pos {
                pred: E,
                terms: vec![v(0), v(0)],
            },
        ];
        let p = plan_rule(vec![v(0)], &body, 1, None, &CardSnapshot::unknown());
        let scans = p
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Scan { .. }))
            .count();
        let filters = p
            .steps
            .iter()
            .filter(|s| matches!(s, Step::FilterPos { .. }))
            .count();
        assert_eq!((scans, filters), (1, 1));
    }

    #[test]
    fn cardinality_breaks_bound_count_ties() {
        // P(x, y) :- E(x, z), F(z, y): both atoms start with zero bound
        // columns. With F smaller than E, F must be scanned first (smaller
        // outer loop) and E keyed on its now-bound z column — the reverse of
        // source order.
        let f = PredRef::Edb(1);
        let body = vec![
            RLit::Pos {
                pred: E,
                terms: vec![v(0), v(2)],
            },
            RLit::Pos {
                pred: f,
                terms: vec![v(2), v(1)],
            },
        ];
        let cards = CardSnapshot::new(vec![100, 3], Vec::new());
        let p = plan_rule(vec![v(0), v(1)], &body, 3, None, &cards);
        match &p.steps[0] {
            Step::Scan { pred, key_cols, .. } => {
                assert_eq!(*pred, f, "smaller relation scans first");
                assert!(key_cols.is_empty());
            }
            other => panic!("expected scan, got {other:?}"),
        }
        match &p.steps[1] {
            Step::Scan { pred, key_cols, .. } => {
                assert_eq!(*pred, E);
                assert_eq!(key_cols, &vec![1], "E keyed on z bound by F");
            }
            other => panic!("expected scan, got {other:?}"),
        }

        // Equal sizes: the tie falls back to source order (E first).
        let tied = CardSnapshot::new(vec![5, 5], Vec::new());
        let p = plan_rule(vec![v(0), v(1)], &body, 3, None, &tied);
        match &p.steps[0] {
            Step::Scan { pred, .. } => assert_eq!(*pred, E, "size ties keep source order"),
            other => panic!("expected scan, got {other:?}"),
        }

        // Bound columns still dominate cardinality: a keyed E beats a
        // smaller unkeyed F.
        let body_keyed = vec![
            RLit::Pos {
                pred: E,
                terms: vec![v(0), v(2)],
            },
            RLit::Pos {
                pred: f,
                terms: vec![v(3), v(1)],
            },
        ];
        let p = plan_rule_prebound(vec![v(0), v(1)], &body_keyed, 4, &[0], &cards);
        match &p.steps[0] {
            Step::Scan { pred, key_cols, .. } => {
                assert_eq!(*pred, E, "bound columns outrank cardinality");
                assert_eq!(key_cols, &vec![0]);
            }
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn neq_filter_after_binding() {
        let body = vec![
            RLit::Neq(v(0), v(1)),
            RLit::Pos {
                pred: E,
                terms: vec![v(0), v(1)],
            },
        ];
        let p = plan_rule(vec![v(0)], &body, 2, None, &CardSnapshot::unknown());
        assert!(matches!(p.steps[0], Step::Scan { .. }));
        assert!(matches!(p.steps[1], Step::FilterNeq { .. }));
    }
}
