//! Naive least-fixpoint evaluation of positive DATALOG programs.
//!
//! For a DATALOG program (no negated atoms, no inequalities) the operator Θ
//! is monotone, so iterating `S_{n+1} = Θ(S_n)` from `S_0 = ∅` climbs to the
//! least fixpoint (Tarski) — the paper's *standard semantics* for DATALOG.

use crate::error::EvalError;
use crate::govern::Governor;
use crate::interp::Interp;
use crate::operator::{apply_governed, EvalContext};
use crate::options::EvalOptions;
use crate::resolve::CompiledProgram;
use crate::trace::EvalTrace;
use crate::Result;
use inflog_core::Database;
use inflog_syntax::{Literal, Program};

/// Checks the paper's DATALOG condition and reports the first offender.
pub(crate) fn require_positive(program: &Program) -> Result<()> {
    for rule in &program.rules {
        for lit in &rule.body {
            match lit {
                Literal::Neg(_) | Literal::Neq(_, _) => {
                    return Err(EvalError::NotPositive {
                        offending: lit.to_string(),
                    })
                }
                Literal::Pos(_) | Literal::Eq(_, _) => {}
            }
        }
    }
    Ok(())
}

/// Computes the least fixpoint of a positive program by naive iteration.
///
/// # Errors
/// * [`EvalError::NotPositive`] if the program contains negation or
///   inequality;
/// * compilation errors from [`CompiledProgram::compile`].
pub fn least_fixpoint_naive(program: &Program, db: &Database) -> Result<(Interp, EvalTrace)> {
    least_fixpoint_naive_with(program, db, &EvalOptions::default())
}

/// [`least_fixpoint_naive`] with explicit evaluation options.
///
/// The [`Budget`](crate::govern::Budget), cancellation token and failpoints
/// in `opts` are honored: the budget's `max_rounds` cap subsumes the old
/// ad-hoc [`EvalError::IterationLimit`] mechanism (exceeding it now reports
/// [`EvalError::BudgetExceeded`]), and deadline/cancellation are polled at
/// every round boundary and every few thousand emitted tuples.
///
/// # Errors
/// Same conditions as [`least_fixpoint_naive`], plus the governance errors
/// [`EvalError::Cancelled`] and [`EvalError::BudgetExceeded`].
pub fn least_fixpoint_naive_with(
    program: &Program,
    db: &Database,
    opts: &EvalOptions,
) -> Result<(Interp, EvalTrace)> {
    require_positive(program)?;
    let cp = CompiledProgram::compile(program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    least_fixpoint_naive_compiled_with(&cp, &ctx, opts)
}

/// Naive iteration over an already-compiled positive program.
///
/// Θ must be monotone (callers ensure positivity); iteration therefore
/// terminates within `Σ |A|^{k_i}` rounds. This convenience wrapper runs
/// ungoverned (no budget, token or failpoints) and is therefore infallible.
pub fn least_fixpoint_naive_compiled(
    cp: &CompiledProgram,
    ctx: &EvalContext,
) -> (Interp, EvalTrace) {
    least_fixpoint_naive_compiled_with(cp, ctx, &EvalOptions::sequential())
        .expect("ungoverned naive evaluation cannot fail")
}

/// [`least_fixpoint_naive_compiled`] with explicit evaluation options; the
/// governed form checks budget, cancellation and failpoints at every round
/// boundary (see [`least_fixpoint_naive_with`]).
///
/// # Errors
/// [`EvalError::Cancelled`], [`EvalError::BudgetExceeded`], or a fault
/// injected by an armed failpoint.
pub fn least_fixpoint_naive_compiled_with(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    opts: &EvalOptions,
) -> Result<(Interp, EvalTrace)> {
    let governor = Governor::new(opts);
    let gov = governor.as_active();
    let mut trace = EvalTrace::default();
    let mut s = cp.empty_interp();
    loop {
        if let Some(g) = gov {
            g.check_round()?;
        }
        let next = apply_governed(cp, ctx, &s, gov)?;
        // Monotone Θ iterated from ∅ is an increasing chain (Θⁿ⁺¹(∅) ⊇
        // Θⁿ(∅)), so in-place union computes exactly s ← Θ(s) while keeping
        // relation identities stable — the context's persistent indexes
        // extend incrementally instead of rebuilding every round — and "no
        // new tuples" is exactly the fixpoint test.
        let added = s.union_with(&next);
        if added == 0 {
            break;
        }
        trace.record_round(added);
    }
    trace.final_tuples = s.total_tuples();
    Ok((s, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::apply;
    use inflog_core::graphs::DiGraph;
    use inflog_core::Tuple;
    use inflog_syntax::parse_program;

    const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";

    #[test]
    fn tc_on_path_matches_graph_baseline() {
        for n in [1usize, 2, 5, 8] {
            let g = DiGraph::path(n);
            let db = g.to_database("E");
            let p = parse_program(TC).unwrap();
            let (lfp, trace) = least_fixpoint_naive(&p, &db).unwrap();
            let cp = CompiledProgram::compile(&p, &db).unwrap();
            let sid = cp.idb_id("S").unwrap();
            let expected: Vec<Tuple> = g
                .transitive_closure()
                .into_iter()
                .map(|(u, v)| Tuple::from_ids(&[u, v]))
                .collect();
            let mut got = lfp.get(sid).sorted();
            got.sort();
            assert_eq!(got, expected, "n = {n}");
            assert_eq!(trace.final_tuples, expected.len());
        }
    }

    #[test]
    fn tc_on_cycle_is_complete() {
        let db = DiGraph::cycle(4).to_database("E");
        let p = parse_program(TC).unwrap();
        let (lfp, _) = least_fixpoint_naive(&p, &db).unwrap();
        assert_eq!(lfp.total_tuples(), 16);
    }

    #[test]
    fn result_is_a_fixpoint_and_least() {
        let db = DiGraph::path(4).to_database("E");
        let p = parse_program(TC).unwrap();
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let ctx = EvalContext::new(&cp, &db).unwrap();
        let (lfp, _) = least_fixpoint_naive(&p, &db).unwrap();
        assert_eq!(apply(&cp, &ctx, &lfp), lfp, "must be a fixpoint");
        // Any other fixpoint contains it: check the full interpretation.
        let full = cp.full_interp(db.universe_size());
        assert!(apply(&cp, &ctx, &full).is_subset(&full));
        assert!(lfp.is_subset(&full));
    }

    #[test]
    fn rejects_negation() {
        let db = DiGraph::path(2).to_database("E");
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        assert!(matches!(
            least_fixpoint_naive(&p, &db),
            Err(EvalError::NotPositive { .. })
        ));
    }

    #[test]
    fn rejects_inequality() {
        let db = DiGraph::path(2).to_database("E");
        let p = parse_program("T(x) :- E(x, y), x != y.").unwrap();
        assert!(matches!(
            least_fixpoint_naive(&p, &db),
            Err(EvalError::NotPositive { .. })
        ));
    }

    #[test]
    fn equalities_are_allowed() {
        let db = DiGraph::path(3).to_database("E");
        let p = parse_program("P(x) :- E(x, y), E(y, z), y = z.").unwrap();
        assert!(least_fixpoint_naive(&p, &db).is_ok());
    }

    #[test]
    fn empty_program_empty_result() {
        let db = DiGraph::path(3).to_database("E");
        let p = parse_program("").unwrap();
        let (lfp, trace) = least_fixpoint_naive(&p, &db).unwrap();
        assert_eq!(lfp.total_tuples(), 0);
        assert_eq!(trace.rounds, 0);
    }

    #[test]
    fn rounds_grow_linearly_on_paths() {
        // Naive TC on L_n stabilizes in Θ(n) rounds.
        let p = parse_program(TC).unwrap();
        let (_, t4) = least_fixpoint_naive(&p, &DiGraph::path(4).to_database("E")).unwrap();
        let (_, t8) = least_fixpoint_naive(&p, &DiGraph::path(8).to_database("E")).unwrap();
        assert!(t8.rounds > t4.rounds);
    }
}
