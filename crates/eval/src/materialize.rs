//! Live incremental view maintenance: a long-lived materialized fixpoint
//! that *repairs* itself under EDB inserts and retracts instead of
//! recomputing.
//!
//! The paper defines every negation semantics — least fixpoint, stratified,
//! inflationary, well-founded — over a *fixed* database. [`Materialized`]
//! lifts each of them to a changing one: [`Materialized::new`] runs the
//! chosen engine once, and [`Materialized::insert`] /
//! [`Materialized::retract`] bring the model back to what a from-scratch
//! evaluation over the mutated database would produce, doing work
//! proportional to the *change* wherever the semantics allows it.
//!
//! # Repair strategies
//!
//! * **Delete–rederive (DRed)** — for the semi-naive least fixpoint,
//!   stratified evaluation, and the well-founded model of stratifiable
//!   programs (where it coincides with the perfect model). Per stratum,
//!   bottom up:
//!
//!   1. *Damage*: before the EDB mutates, enumerate exactly the rule
//!      instances the change kills — positive occurrences of retracted
//!      facts through the `EdbDelta` plans, negated occurrences of inserted
//!      facts through the `EdbNegDelta` plans — with every other literal
//!      still reading the old state, so the enumeration is exact.
//!   2. *Overdelete*: close the damage cone through positive IDB
//!      dependencies (the same frontier sweep as the incremental
//!      well-founded engine), removing cone members with
//!      [`IndexSet::patch_swap_remove`](crate::IndexSet) so the persistent
//!      indexes stay warm. Heads landing in higher strata are parked until
//!      their stratum's turn.
//!   3. *Rederive*: confirm cone members that still have an alternative
//!      one-step derivation via the index-backed `derivable` check plans,
//!      to closure.
//!   4. *Top-up*: seed one semi-naive extension with the instances the
//!      change *enables* — inserted facts through positive EDB occurrences,
//!      retracted facts through negated ones, plus lower-strata additions
//!      (`PosDelta`) and genuine removals (`NegDelta`) — and drain it with
//!      the shared [`DeltaDriver`].
//!
//!   A batch is one-sided (an insert adds facts only; a retract removes
//!   only), which is what makes step 1 exact rather than approximate.
//!
//! * **Restart** — for the inflationary fixpoint, whose Θ̃-iteration is not
//!   change-monotone (an inserted fact can invalidate an inference the old
//!   run made early, and a retracted one can resurrect it — there is no
//!   sound local repair), and for the well-founded model of
//!   non-stratifiable programs, whose alternating fixpoint interleaves
//!   growth and shrinkage the same way. These engines re-run from the
//!   mutated EDB over the *warm* [`EvalContext`], so the persistent indexes
//!   and scratch buffers are reused even though the fixpoint is not.
//!
//! In debug builds every update re-evaluates from scratch and asserts the
//! repaired state — true facts and undefined sets — is identical, and
//! validates the index postings of every live relation.
//!
//! # The transactional invariant
//!
//! [`Materialized::insert`] and [`Materialized::retract`] are
//! **transactional**: after the call returns, the handle is either *fully
//! repaired* (on `Ok`) or *bit-identical to its pre-update state* (on
//! `Err`) — same database snapshot, same dense tuple orders in every EDB
//! and IDB relation, same driver watermarks — and remains fully usable
//! either way. A repair can fail mid-flight through the governance layer
//! (deadline, [`Budget`](crate::govern::Budget) exhaustion, a
//! [`CancelToken`](crate::govern::CancelToken) trip, an armed failpoint) or
//! through a contained panic; every mutation a repair makes is therefore
//! recorded in an undo log — swap-remove positions for deletions, dense
//! watermarks for appended suffixes — and on failure the log is replayed in
//! reverse: appended suffixes are truncated away and swap-removed tuples
//! are re-inserted at their exact former dense positions. Relations touched
//! by the rollback get a fresh relation id, so the persistent
//! [`IndexSet`](crate::IndexSet) lazily discards any postings patched
//! during the aborted repair instead of serving stale data. The
//! [`RepairStrategy::Restart`] engines get the same guarantee cheaply:
//! their re-evaluation builds the new model in fresh interpretations and
//! the handle's state is assigned only after it fully succeeds, so only the
//! EDB mutation itself needs the log. Debug builds re-verify the invariant
//! after every rollback by comparing against a from-scratch evaluation;
//! the release-mode failpoint sweep in `tests/materialized_churn.rs`
//! asserts dense-order bit-identity at every registered site.

use crate::driver::DeltaDriver;
use crate::epoch::Epoch;
use crate::error::EvalError;
use crate::govern::{Governor, SITE_OVERDELETE_CLOSE, SITE_REDERIVE_SWEEP};
use crate::inflationary::inflationary_compiled_with;
use crate::interp::Interp;
use crate::naive::require_positive;
use crate::operator::{self, EvalContext, PlanKind};
use crate::options::EvalOptions;
use crate::query::{self, QueryAnswer, QueryOpts};
use crate::resolve::CompiledProgram;
use crate::stratified::{stratify, Stratification};
use crate::wellfounded::well_founded_compiled_with;
use crate::Result;
use inflog_core::{Const, Database, Tuple};
use inflog_syntax::{Atom, Program};
use std::sync::Arc;

/// Which semantics a [`Materialized`] handle maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Semi-naive least fixpoint of a positive program.
    Seminaive,
    /// Inflationary fixpoint (§4) — defined for every program.
    Inflationary,
    /// Stratified (perfect-model) semantics; requires stratifiability.
    #[default]
    Stratified,
    /// Well-founded (3-valued) semantics — defined for every program.
    WellFounded,
}

/// How a handle brings its state back in line after an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// Delete–rederive repair: overdelete the change's cone, rederive
    /// survivors, top up insertions — work proportional to the change.
    DeleteRederive,
    /// Full re-evaluation from the mutated EDB over the warm context. Used
    /// where the fixpoint is not change-monotone (inflationary always;
    /// well-founded when the program is not stratifiable).
    Restart,
}

/// Options for [`Materialized::new`].
#[derive(Debug, Clone, Default)]
pub struct MaterializeOpts {
    /// The semantics to maintain.
    pub engine: Engine,
    /// Engine options (worker threads etc.), used by the initial evaluation
    /// and by every repair.
    pub eval: EvalOptions,
}

/// One reversible mutation a repair made, recorded so a failed update can
/// be replayed backwards (see the module docs' *transactional invariant*).
/// Each undo assumes the state right after the op it reverses — which
/// reverse-order replay guarantees.
#[derive(Debug)]
enum UndoOp {
    /// A tuple was appended to IDB `idb` (a rederive confirmation); it is
    /// the last dense tuple at undo time.
    IdbInsert { idb: usize },
    /// `t` was swap-removed from IDB `idb` at dense position `pos`
    /// (overdeletion).
    IdbRemove { idb: usize, pos: usize, t: Tuple },
    /// A driver extension may have appended a dense suffix to IDB `idb`;
    /// `before` is the pre-extension length.
    IdbAppend { idb: usize, before: usize },
    /// A staged fact was appended to EDB `edb` and to the database
    /// relation `name`.
    EdbInsert { edb: usize, name: String },
    /// `t` was swap-removed from EDB `edb` at dense position `pos` and from
    /// the database relation `name` at `db_pos`.
    EdbRemove {
        edb: usize,
        name: String,
        pos: usize,
        db_pos: Option<usize>,
        t: Tuple,
    },
}

/// A live materialized model: the fixpoint of one program over a database
/// that changes underneath it.
///
/// The handle owns its program, database snapshot, compiled plans and
/// evaluation context; [`insert`](Materialized::insert) and
/// [`retract`](Materialized::retract) mutate the database *and* repair the
/// model in one step. After any sequence of updates the state is identical
/// to evaluating the program from scratch over the current database —
/// debug builds assert exactly that after every update.
#[derive(Debug)]
pub struct Materialized {
    /// Shared with every [`Epoch`] this handle publishes: an epoch snapshot
    /// clones the mutable state (database, model) but only bumps a
    /// refcount for the program and its compiled plans.
    program: Arc<Program>,
    db: Database,
    /// Shared with published epochs, like `program`.
    cp: Arc<CompiledProgram>,
    ctx: EvalContext,
    driver: DeltaDriver,
    engine: Engine,
    strategy: RepairStrategy,
    /// Stratification, when the program has one (always for `Seminaive` and
    /// `Stratified`; opportunistically for `WellFounded`).
    strat: Option<Stratification>,
    /// Rule indices grouped by head stratum (source order within each).
    rules_by_stratum: Vec<Vec<usize>>,
    /// Stratum of each IDB predicate, by IDB id.
    strata_of_idb: Vec<usize>,
    opts: EvalOptions,
    /// True facts of the maintained model.
    s: Interp,
    /// Undefined facts (non-empty only for non-stratifiable well-founded).
    undefined: Interp,
    /// Number of committed updates since construction: every `Ok` return of
    /// [`Materialized::insert`]/[`Materialized::retract`] — including no-op
    /// batches — bumps it by one, so the durable layer's WAL record count
    /// always equals the epoch delta. A failed (rolled-back) update does not
    /// advance it.
    epoch: u64,
}

impl Materialized {
    /// Evaluates `program` over `db` once with the chosen engine and
    /// returns the live handle.
    ///
    /// # Errors
    /// Compilation errors; [`EvalError::NotPositive`] for
    /// [`Engine::Seminaive`] on programs with negation;
    /// [`EvalError::NotStratified`] for [`Engine::Stratified`] on
    /// non-stratifiable programs.
    pub fn new(program: &Program, db: &Database, opts: &MaterializeOpts) -> Result<Materialized> {
        let mut m = Self::build(program, db, opts)?;
        match m.strategy {
            RepairStrategy::DeleteRederive => {
                let governor = Governor::new(&m.opts);
                for rules in &m.rules_by_stratum {
                    if !rules.is_empty() {
                        m.driver.extend(
                            &m.cp,
                            &m.ctx,
                            &mut m.s,
                            Some(rules),
                            None,
                            None,
                            &governor,
                        )?;
                    }
                }
            }
            RepairStrategy::Restart => m.reevaluate()?,
        }
        #[cfg(debug_assertions)]
        m.debug_check();
        Ok(m)
    }

    /// Rebuilds a warm handle around a previously committed model instead of
    /// evaluating — the recovery path of `DurableMaterialized`.
    ///
    /// The caller asserts that `s`/`undefined` are exactly what the chosen
    /// engine produces over `db`; debug builds re-verify that with a
    /// from-scratch evaluation, and the crash-recovery tests assert it (down
    /// to dense tuple order) in release mode. Installing the state directly
    /// is sound because the handle's incremental machinery carries no
    /// cross-update deltas: `DeltaDriver::extend` always opens with a full
    /// application and sets its per-call delta marks itself, so a fresh
    /// driver over an installed interpretation repairs exactly like the
    /// original handle would have.
    ///
    /// # Errors
    /// The same construction errors as [`Materialized::new`], plus a
    /// [`StoreError::Mismatch`](inflog_store::StoreError::Mismatch)-carrying
    /// [`EvalError::Store`] when the supplied state does not fit the
    /// program's IDB shape.
    pub fn with_state(
        program: &Program,
        db: &Database,
        opts: &MaterializeOpts,
        s: Interp,
        undefined: Interp,
    ) -> Result<Materialized> {
        let mut m = Self::build(program, db, opts)?;
        for (what, interp) in [("model", &s), ("undefined set", &undefined)] {
            if interp.len() != m.cp.num_idb() {
                return Err(EvalError::Store {
                    source: inflog_store::StoreError::Mismatch {
                        detail: format!(
                            "recovered {what} has {} relations, program has {} IDB predicates",
                            interp.len(),
                            m.cp.num_idb()
                        ),
                    },
                });
            }
            for (i, arity) in m.cp.idb_arities.iter().enumerate() {
                if interp.get(i).arity() != *arity {
                    return Err(EvalError::Store {
                        source: inflog_store::StoreError::Mismatch {
                            detail: format!(
                                "recovered {what} relation {} ({}) has arity {}, expected {arity}",
                                i,
                                m.cp.idb_names[i],
                                interp.get(i).arity()
                            ),
                        },
                    });
                }
            }
        }
        m.s = s;
        m.undefined = undefined;
        #[cfg(debug_assertions)]
        m.debug_check();
        Ok(m)
    }

    /// Everything [`Materialized::new`] does except the initial evaluation:
    /// compile, stratify, pick the repair strategy, build the warm context
    /// and driver, leave the model empty.
    fn build(program: &Program, db: &Database, opts: &MaterializeOpts) -> Result<Materialized> {
        let cp = CompiledProgram::compile(program, db)?;
        let strat = match opts.engine {
            Engine::Seminaive => {
                require_positive(program)?;
                // Positive programs have no negative dependency edges.
                Some(stratify(program).expect("positive programs stratify"))
            }
            Engine::Stratified => Some(stratify(program)?),
            Engine::WellFounded => stratify(program).ok(),
            Engine::Inflationary => None,
        };
        let strategy = if matches!(opts.engine, Engine::Inflationary) || strat.is_none() {
            RepairStrategy::Restart
        } else {
            RepairStrategy::DeleteRederive
        };
        let (rules_by_stratum, strata_of_idb) = match &strat {
            Some(st) => {
                let mut by_stratum: Vec<Vec<usize>> = vec![Vec::new(); st.num_strata];
                for (i, rule) in program.rules.iter().enumerate() {
                    by_stratum[st.stratum(&rule.head.predicate)].push(i);
                }
                let of_idb = cp.idb_names.iter().map(|n| st.stratum(n)).collect();
                (by_stratum, of_idb)
            }
            None => (Vec::new(), vec![0; cp.num_idb()]),
        };
        let ctx = EvalContext::new(&cp, db)?;
        let driver = DeltaDriver::with_options(&cp, opts.eval.clone());
        let s = cp.empty_interp();
        let undefined = cp.empty_interp();
        let m = Materialized {
            program: Arc::new(program.clone()),
            db: db.clone(),
            cp: Arc::new(cp),
            ctx,
            driver,
            engine: opts.engine,
            strategy,
            strat,
            rules_by_stratum,
            strata_of_idb,
            opts: opts.eval.clone(),
            s,
            undefined,
            epoch: 0,
        };
        Ok(m)
    }

    /// Inserts `facts` (relation name, tuple) into the database and repairs
    /// the materialization. Facts already present are ignored; the whole
    /// batch is validated before anything mutates. Returns the number of
    /// facts actually added.
    ///
    /// The update is **transactional**: if the repair fails mid-flight —
    /// budget exhausted, cancellation, an armed failpoint, a contained
    /// panic — every mutation is rolled back and the handle is bit-identical
    /// to its pre-update state and fully usable (the module docs detail the
    /// invariant). Retrying the same batch later is always legal.
    ///
    /// # Errors
    /// [`EvalError::UnknownRelation`] for a relation the program does not
    /// read, [`EvalError::ArityMismatch`] on a wrong-width tuple,
    /// [`EvalError::UnknownConstant`] for a constant outside the database
    /// universe (the universe is fixed at construction);
    /// [`EvalError::Cancelled`], [`EvalError::BudgetExceeded`] or
    /// [`EvalError::WorkerPanic`] when the governed repair trips — with the
    /// state rolled back.
    pub fn insert(&mut self, facts: &[(&str, Tuple)]) -> Result<usize> {
        self.update(facts, true)
    }

    /// Removes `facts` from the database and repairs the materialization.
    /// Facts not present are ignored (retracting a never-inserted fact is a
    /// no-op); the whole batch is validated before anything mutates.
    /// Returns the number of facts actually removed. Transactional exactly
    /// like [`Materialized::insert`]: a failed repair rolls back to the
    /// bit-identical pre-update state.
    ///
    /// # Errors
    /// Same conditions as [`Materialized::insert`].
    pub fn retract(&mut self, facts: &[(&str, Tuple)]) -> Result<usize> {
        self.update(facts, false)
    }

    /// Single-fact [`Materialized::insert`] with named constants.
    ///
    /// # Errors
    /// Same conditions as [`Materialized::insert`].
    pub fn insert_named(&mut self, pred: &str, consts: &[&str]) -> Result<usize> {
        let t = self.named_tuple(consts)?;
        self.insert(&[(pred, t)])
    }

    /// Single-fact [`Materialized::retract`] with named constants.
    ///
    /// # Errors
    /// Same conditions as [`Materialized::insert`].
    pub fn retract_named(&mut self, pred: &str, consts: &[&str]) -> Result<usize> {
        let t = self.named_tuple(consts)?;
        self.retract(&[(pred, t)])
    }

    /// The true facts of the maintained model (IDB relations by IDB id —
    /// see [`Materialized::compiled`] for the id mapping).
    pub fn interp(&self) -> &Interp {
        &self.s
    }

    /// Facts undefined in the maintained model. Empty except for the
    /// well-founded engine on non-stratifiable programs.
    pub fn undefined(&self) -> &Interp {
        &self.undefined
    }

    /// The engine this handle maintains.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// How updates are repaired ([`RepairStrategy::DeleteRederive`] or the
    /// documented [`RepairStrategy::Restart`] fallback).
    pub fn repair_strategy(&self) -> RepairStrategy {
        self.strategy
    }

    /// The stratification the per-stratum repair follows, when the program
    /// is stratifiable (`None` exactly when the strategy is
    /// [`RepairStrategy::Restart`] for the well-founded engine, or always
    /// for the inflationary one).
    pub fn stratification(&self) -> Option<&Stratification> {
        self.strat.as_ref()
    }

    /// Number of committed updates since construction (see the `epoch` field
    /// docs: no-op batches count, failed updates do not).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The database as of the last update.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The compiled program (predicate-id mappings, arities).
    pub fn compiled(&self) -> &CompiledProgram {
        &self.cp
    }

    /// The maintained program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Clones the committed model into an immutable, shareable
    /// [`Epoch`] snapshot stamped `number` (callers pick the numbering —
    /// the durable layer uses its durable epoch, in-memory servers use
    /// [`Materialized::epoch`]).
    ///
    /// The snapshot deep-copies only the mutable state (database, model,
    /// undefined set, EDB index context); the program and its compiled
    /// plans are shared by refcount. Publishing never blocks on or is
    /// observed by concurrent readers of previously published epochs —
    /// an [`EpochCell`](crate::epoch::EpochCell) swap makes it visible.
    ///
    /// # Errors
    /// Cannot fail in practice: the context rebuild re-checks arities that
    /// already compiled against this very database.
    pub fn publish(&self, number: u64) -> Result<Arc<Epoch>> {
        let ctx = EvalContext::new(&self.cp, &self.db)?;
        Ok(Arc::new(Epoch::from_parts(
            number,
            Arc::clone(&self.program),
            Arc::clone(&self.cp),
            self.engine,
            self.strat.clone(),
            self.db.clone(),
            self.s.clone(),
            self.undefined.clone(),
            ctx,
        )))
    }

    /// Replaces the evaluation options used by subsequent repairs — the
    /// way to attach a [`Budget`](crate::Budget),
    /// [`CancelToken`](crate::CancelToken) or armed
    /// [`Failpoints`](crate::Failpoints) to a live handle. Arming at
    /// construction instead would let the initial evaluation spend the
    /// budget (or a one-shot failpoint trigger) before the first update
    /// runs.
    pub fn set_eval_options(&mut self, opts: EvalOptions) {
        self.driver.set_options(opts.clone());
        self.opts = opts;
    }

    /// Whether `t` is true for predicate `pred` (IDB: in the model; EDB: in
    /// the database). Unknown predicates are simply false.
    pub fn contains(&self, pred: &str, t: &Tuple) -> bool {
        if let Some(i) = self.cp.idb_id(pred) {
            return self.s.get(i).contains(t);
        }
        if let Some(i) = self.cp.edb_id(pred) {
            return self.ctx.edb[i].contains(t);
        }
        false
    }

    /// Answers a goal-directed [`query`](crate::query::query) against the
    /// handle's current database — after an update, answers agree with the
    /// maintained model.
    ///
    /// # Errors
    /// Same conditions as [`query`](crate::query::query).
    pub fn query(&self, goal: &Atom, opts: &QueryOpts) -> Result<QueryAnswer> {
        query::query(&self.program, goal, &self.db, opts)
    }

    /// Resolves named constants against the (fixed) universe.
    fn named_tuple(&self, consts: &[&str]) -> Result<Tuple> {
        let ids: Result<Vec<Const>> = consts
            .iter()
            .map(|c| {
                self.db
                    .universe()
                    .lookup(c)
                    .ok_or_else(|| EvalError::UnknownConstant {
                        name: (*c).to_owned(),
                    })
            })
            .collect();
        Ok(Tuple::new(ids?))
    }

    /// Shared insert/retract entry: validate, dedupe, repair — and on any
    /// mid-repair failure (budget, cancellation, failpoint, contained
    /// panic), roll every mutation back so the handle is bit-identical to
    /// its pre-update state and stays usable.
    fn update(&mut self, facts: &[(&str, Tuple)], inserting: bool) -> Result<usize> {
        let staged = self.stage(facts, inserting)?;
        let n = staged.total_tuples();
        if n == 0 {
            // No-op batches still commit an epoch: the durable layer logs a
            // WAL record before knowing the batch changes nothing, and the
            // record count must equal the epoch delta for replay to line up.
            self.epoch += 1;
            return Ok(0);
        }
        let saved_driver = self.driver.save_state();
        let mut log: Vec<UndoOp> = Vec::new();
        let outcome = {
            let this = &mut *self;
            let log = &mut log;
            // A panic anywhere inside the repair must not poison the handle:
            // contain it, roll back, and surface it as a typed error. The
            // unwind-safety assertion is justified by the rollback — any
            // half-mutated state the panic leaves behind is exactly what the
            // undo log reverses.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || -> Result<()> {
                match this.strategy {
                    RepairStrategy::DeleteRederive => this.repair(&staged, inserting, log),
                    RepairStrategy::Restart => {
                        this.mutate_edb(&staged, inserting, log);
                        this.reevaluate()
                    }
                }
            }))
        };
        match outcome {
            Ok(Ok(())) => {
                #[cfg(debug_assertions)]
                self.debug_check();
                self.epoch += 1;
                Ok(n)
            }
            Ok(Err(e)) => {
                self.rollback(log, saved_driver);
                Err(e)
            }
            Err(payload) => {
                self.rollback(log, saved_driver);
                Err(EvalError::WorkerPanic {
                    message: operator::panic_message(&*payload),
                })
            }
        }
    }

    /// Reverse-replays the undo log, restoring every relation's exact dense
    /// order, then invalidates the persistent indexes over the touched
    /// relations (fresh relation ids — stale postings are never served) and
    /// restores the driver's watermarks.
    fn rollback(
        &mut self,
        log: Vec<UndoOp>,
        saved_driver: (Vec<usize>, crate::plan::CardSnapshot),
    ) {
        let mut touched_idb = vec![false; self.cp.num_idb()];
        let mut touched_edb = vec![false; self.ctx.edb.len()];
        for op in log.into_iter().rev() {
            match op {
                UndoOp::IdbInsert { idb } => {
                    let rel = self.s.get_mut(idb);
                    let len = rel.len();
                    rel.truncate(len - 1);
                    touched_idb[idb] = true;
                }
                UndoOp::IdbRemove { idb, pos, t } => {
                    self.s.get_mut(idb).restore_swap_removed(pos, t);
                    touched_idb[idb] = true;
                }
                UndoOp::IdbAppend { idb, before } => {
                    let rel = self.s.get_mut(idb);
                    if rel.len() > before {
                        rel.truncate(before);
                        touched_idb[idb] = true;
                    }
                }
                UndoOp::EdbInsert { edb, name } => {
                    let rel = &mut self.ctx.edb[edb];
                    let len = rel.len();
                    rel.truncate(len - 1);
                    touched_edb[edb] = true;
                    let db_rel = self
                        .db
                        .relation_mut(&name)
                        .expect("the rolled-back insert put the relation there");
                    let db_len = db_rel.len();
                    db_rel.truncate(db_len - 1);
                }
                UndoOp::EdbRemove {
                    edb,
                    name,
                    pos,
                    db_pos,
                    t,
                } => {
                    self.ctx.edb[edb].restore_swap_removed(pos, t.clone());
                    touched_edb[edb] = true;
                    if let Some(db_rel) = self.db.relation_mut(&name) {
                        match db_pos {
                            Some(p) => db_rel.restore_swap_removed(p, t),
                            None => {
                                db_rel.insert(t);
                            }
                        }
                    }
                }
            }
        }
        for (i, touched) in touched_idb.into_iter().enumerate() {
            if touched {
                self.s.get_mut(i).refresh_id();
            }
        }
        for (i, touched) in touched_edb.into_iter().enumerate() {
            if touched {
                self.ctx.edb[i].refresh_id();
            }
        }
        self.driver.restore_state(saved_driver);
        // The rolled-back handle must be indistinguishable from one that
        // never attempted the update.
        #[cfg(debug_assertions)]
        self.debug_check();
    }

    /// Validates a batch and reduces it to the facts that actually change
    /// the EDB (new facts for an insert, present facts for a retract),
    /// shaped as an EDB-indexed interpretation. Nothing mutates on error.
    fn stage(&self, facts: &[(&str, Tuple)], inserting: bool) -> Result<Interp> {
        let mut staged = Interp::empty(&self.cp.edb_arities);
        for (name, t) in facts {
            let Some(id) = self.cp.edb_id(name) else {
                return Err(EvalError::UnknownRelation {
                    name: (*name).to_owned(),
                });
            };
            if t.arity() != self.cp.edb_arities[id] {
                return Err(EvalError::ArityMismatch {
                    predicate: (*name).to_owned(),
                    expected: self.cp.edb_arities[id],
                    found: t.arity(),
                });
            }
            for &c in t.items() {
                if !self.db.universe().contains(c) {
                    return Err(EvalError::UnknownConstant {
                        name: format!("#{}", c.id()),
                    });
                }
            }
            if self.ctx.edb[id].contains(t) != inserting {
                staged.insert(id, t.clone());
            }
        }
        Ok(staged)
    }

    /// Applies the staged facts to both the evaluation context's EDB (with
    /// index patching on removal) and the handle's database snapshot,
    /// recording every mutation in the undo log.
    fn mutate_edb(&mut self, staged: &Interp, inserting: bool, log: &mut Vec<UndoOp>) {
        for id in 0..staged.len() {
            let name = self.cp.edb_names[id].clone();
            for t in staged.get(id).dense().to_vec() {
                if inserting {
                    self.ctx.edb[id].insert(t.clone());
                    self.db
                        .insert_fact(&name, t)
                        .expect("staged facts are validated");
                    log.push(UndoOp::EdbInsert {
                        edb: id,
                        name: name.clone(),
                    });
                } else {
                    let (pos, _) = self
                        .ctx
                        .remove_edb_patched(id, &t)
                        .expect("staged retracts are present in the context EDB");
                    let db_pos = self
                        .db
                        .relation_mut(&name)
                        .and_then(|r| r.remove_tracked(&t))
                        .map(|(p, _)| p);
                    log.push(UndoOp::EdbRemove {
                        edb: id,
                        name: name.clone(),
                        pos,
                        db_pos,
                        t,
                    });
                }
            }
        }
    }

    /// Full re-evaluation over the warm context (the [`RepairStrategy::
    /// Restart`] engines). The new model is built in fresh interpretations
    /// and assigned only on success, so a governed failure leaves the
    /// handle's state untouched (the EDB mutation is the caller's to roll
    /// back).
    fn reevaluate(&mut self) -> Result<()> {
        match self.engine {
            Engine::Inflationary => {
                let (s, _) = inflationary_compiled_with(&self.cp, &self.ctx, &self.opts)?;
                self.s = s;
            }
            Engine::WellFounded => {
                let model = well_founded_compiled_with(&self.cp, &self.ctx, &self.opts)?;
                self.s = model.true_facts;
                self.undefined = model.undefined;
            }
            Engine::Seminaive | Engine::Stratified => {
                unreachable!("delete\u{2013}rederive engines repair in place")
            }
        }
        Ok(())
    }

    /// Delete–rederive repair of a one-sided batch, stratum by stratum.
    /// Every mutation is recorded in `log`; on `Err` the caller reverse-
    /// replays it (see the module docs' transactional invariant).
    fn repair(&mut self, staged: &Interp, inserting: bool, log: &mut Vec<UndoOp>) -> Result<()> {
        let governor = Governor::new(&self.opts);
        let gov = governor.as_active();
        let num_idb = self.cp.num_idb();

        // ---- Damage: rule instances the change kills, enumerated *before*
        // the EDB mutates so every other literal reads the old state — an
        // insert kills through negated EDB occurrences, a retract through
        // positive ones. Exact, because the batch is one-sided.
        let mut pending = self.cp.empty_interp();
        let damage_kind = if inserting {
            PlanKind::EdbNegDelta
        } else {
            PlanKind::EdbDelta
        };
        operator::apply_general_into(
            &self.cp,
            &self.ctx,
            &self.s,
            None,
            damage_kind,
            Some(operator::DeltaSource::Interp(staged)),
            None,
            None,
            &mut pending,
            &self.opts,
            gov,
        )?;

        self.mutate_edb(staged, inserting, log);

        // ---- Per-stratum overdelete / rederive / top-up. Accumulators
        // carry the net IDB change of lower strata into higher ones.
        let mut added_acc = self.cp.empty_interp();
        let mut removed_acc = self.cp.empty_interp();
        let mut heads = self.cp.empty_interp();
        let mut frontier = self.cp.empty_interp();
        let mut seed = self.cp.empty_interp();
        let mut scratch = self.cp.empty_interp();
        let empty_neg = self.cp.empty_interp();

        for (k, rules) in self.rules_by_stratum.iter().enumerate() {
            // Damage from lower-strata *additions* appearing under this
            // stratum's negations (permissive IDB negation: the cone is an
            // over-approximation that rederivation trims back).
            if added_acc.total_tuples() > 0 && !rules.is_empty() {
                operator::apply_general_into(
                    &self.cp,
                    &self.ctx,
                    &self.s,
                    Some(rules),
                    PlanKind::NegDelta,
                    Some(operator::DeltaSource::Interp(&added_acc)),
                    Some(&empty_neg),
                    None,
                    &mut heads,
                    &self.opts,
                    gov,
                )?;
                for i in 0..num_idb {
                    pending.get_mut(i).union_with(heads.get(i));
                }
            }

            // Overdeletion cone, closed through positive dependencies. Each
            // frontier is enumerated from `s` before removal, so dependents
            // are seen at the first frontier touching them; dependent heads
            // of higher strata park in `pending` until their stratum.
            let mut cone: Vec<Vec<Tuple>> = vec![Vec::new(); num_idb];
            loop {
                if let Some(g) = gov {
                    g.fail_at(SITE_OVERDELETE_CLOSE)?;
                    g.check()?;
                }
                let mut any = false;
                for i in 0..num_idb {
                    let fr = frontier.get_mut(i);
                    fr.clear();
                    if self.strata_of_idb[i] != k {
                        continue;
                    }
                    for t in pending.get(i).dense() {
                        if self.s.get(i).contains(t) {
                            fr.insert(t.clone());
                            any = true;
                        }
                    }
                    pending.get_mut(i).clear();
                }
                if !any {
                    break;
                }
                operator::apply_general_into(
                    &self.cp,
                    &self.ctx,
                    &self.s,
                    None,
                    PlanKind::PosDelta,
                    Some(operator::DeltaSource::Interp(&frontier)),
                    Some(&empty_neg),
                    None,
                    &mut heads,
                    &self.opts,
                    gov,
                )?;
                for (i, list) in cone.iter_mut().enumerate() {
                    for t in frontier.get(i).dense() {
                        let (pos, _) = self
                            .ctx
                            .remove_patched(self.s.get_mut(i), t)
                            .expect("frontier tuples were enumerated from the live state");
                        log.push(UndoOp::IdbRemove {
                            idb: i,
                            pos,
                            t: t.clone(),
                        });
                        list.push(t.clone());
                    }
                }
                for i in 0..num_idb {
                    pending.get_mut(i).union_with(heads.get(i));
                }
            }

            // Rederive: cone members with a surviving alternative
            // derivation go back, to closure (a rederived tuple can be the
            // witness for another one).
            if cone.iter().any(|l| !l.is_empty()) {
                loop {
                    if let Some(g) = gov {
                        g.fail_at(SITE_REDERIVE_SWEEP)?;
                        g.check()?;
                    }
                    operator::sync_check_indexes(&self.cp, &self.ctx, &self.s);
                    let mut confirmed = false;
                    for (i, list) in cone.iter_mut().enumerate() {
                        let mut j = 0;
                        while j < list.len() {
                            if operator::derivable(
                                &self.cp,
                                &self.ctx,
                                i,
                                &list[j],
                                &self.s,
                                &self.s,
                                self.opts.exec_kind(),
                            ) {
                                let t = list.swap_remove(j);
                                let inserted = self.s.insert(i, t);
                                debug_assert!(inserted, "rederived tuples were overdeleted");
                                log.push(UndoOp::IdbInsert { idb: i });
                                confirmed = true;
                            } else {
                                j += 1;
                            }
                        }
                    }
                    if !confirmed {
                        break;
                    }
                }
            }
            for (i, list) in cone.into_iter().enumerate() {
                for t in list {
                    removed_acc.insert(i, t);
                }
            }

            // ---- Top-up: seed a semi-naive extension with exactly the
            // instances the change enables for this stratum — through EDB
            // occurrences of the batch and IDB occurrences of lower-strata
            // changes — then drain it. `marks` snapshots the dense lengths
            // so the drained suffix is precisely what the top-up added
            // (rederivation above is not an addition).
            let marks: Vec<usize> = (0..num_idb).map(|i| self.s.get(i).len()).collect();
            if !rules.is_empty() {
                for i in 0..num_idb {
                    seed.get_mut(i).clear();
                }
                let topup_kind = if inserting {
                    PlanKind::EdbDelta
                } else {
                    PlanKind::EdbNegDelta
                };
                operator::apply_general_into(
                    &self.cp,
                    &self.ctx,
                    &self.s,
                    Some(rules),
                    topup_kind,
                    Some(operator::DeltaSource::Interp(staged)),
                    None,
                    None,
                    &mut scratch,
                    &self.opts,
                    gov,
                )?;
                for i in 0..num_idb {
                    seed.get_mut(i).union_with(scratch.get(i));
                }
                if added_acc.total_tuples() > 0 {
                    operator::apply_general_into(
                        &self.cp,
                        &self.ctx,
                        &self.s,
                        Some(rules),
                        PlanKind::PosDelta,
                        Some(operator::DeltaSource::Interp(&added_acc)),
                        None,
                        None,
                        &mut scratch,
                        &self.opts,
                        gov,
                    )?;
                    for i in 0..num_idb {
                        seed.get_mut(i).union_with(scratch.get(i));
                    }
                }
                if removed_acc.total_tuples() > 0 {
                    // Consume semantics requires the driven tuples to be
                    // genuinely absent — `removed_acc` is pruned below to
                    // exactly the tuples that stayed out.
                    operator::apply_general_into(
                        &self.cp,
                        &self.ctx,
                        &self.s,
                        Some(rules),
                        PlanKind::NegDelta,
                        Some(operator::DeltaSource::Interp(&removed_acc)),
                        None,
                        None,
                        &mut scratch,
                        &self.opts,
                        gov,
                    )?;
                    for i in 0..num_idb {
                        seed.get_mut(i).union_with(scratch.get(i));
                    }
                }
                // The drained suffix must be undoable even when the
                // extension itself fails mid-round (rounds it already
                // absorbed stay in `s`), so the watermarks go into the log
                // *before* the call.
                for i in 0..num_idb {
                    log.push(UndoOp::IdbAppend {
                        idb: i,
                        before: self.s.get(i).len(),
                    });
                }
                self.driver.extend_seeded(
                    &self.cp,
                    &self.ctx,
                    &mut self.s,
                    Some(rules),
                    None,
                    &seed,
                    None,
                    &governor,
                )?;
            }

            // Net change bookkeeping for the strata above: everything past
            // the marks was added; a removal that came back (via rederive
            // into a later top-up round) is no removal at all.
            for (i, &mark) in marks.iter().enumerate() {
                for t in self.s.get(i).dense()[mark..].iter().cloned() {
                    added_acc.insert(i, t);
                }
                let keep: Vec<Tuple> = removed_acc
                    .get(i)
                    .iter()
                    .filter(|t| !self.s.get(i).contains(t))
                    .cloned()
                    .collect();
                let rrel = removed_acc.get_mut(i);
                if keep.len() != rrel.len() {
                    rrel.clear();
                    for t in keep {
                        rrel.insert(t);
                    }
                }
            }
        }
        Ok(())
    }

    /// Debug invariant: the handle's state is identical to a from-scratch
    /// evaluation over the current database, and every live relation's
    /// index postings are sorted and complete.
    #[cfg(debug_assertions)]
    fn debug_check(&self) {
        for i in 0..self.cp.num_idb() {
            self.ctx.debug_validate_indexes(self.s.get(i));
        }
        for rel in &self.ctx.edb {
            self.ctx.debug_validate_indexes(rel);
        }
        let fresh = EvalContext::new(&self.cp, &self.db).expect("handle state recompiles");
        let empty = self.cp.empty_interp();
        // The ground truth runs without governance: the verification pass
        // must not double-spend the update's budget or re-fire one-shot
        // failpoints (it also runs *after a rollback*, where the budget is
        // by definition already spent).
        let opts = self.opts.without_governance();
        let (s, undefined) = match self.engine {
            Engine::Seminaive => (
                crate::seminaive::least_fixpoint_seminaive_compiled_with(&self.cp, &fresh, &opts)
                    .expect("ungoverned verification evaluation cannot fail")
                    .0,
                empty,
            ),
            Engine::Inflationary => (
                inflationary_compiled_with(&self.cp, &fresh, &opts)
                    .expect("ungoverned verification evaluation cannot fail")
                    .0,
                empty,
            ),
            Engine::Stratified => (
                crate::stratified::stratified_eval_compiled_with(
                    &self.cp,
                    &fresh,
                    self.strat.as_ref().expect("stratified engine stratifies"),
                    &self.program,
                    &opts,
                )
                .expect("ungoverned verification evaluation cannot fail")
                .0,
                empty,
            ),
            Engine::WellFounded => {
                let model = well_founded_compiled_with(&self.cp, &fresh, &opts)
                    .expect("ungoverned verification evaluation cannot fail");
                (model.true_facts, model.undefined)
            }
        };
        debug_assert_eq!(
            self.s, s,
            "materialized state diverged from a from-scratch evaluation"
        );
        debug_assert_eq!(
            self.undefined, undefined,
            "undefined set diverged from a from-scratch evaluation"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::parse_program;

    const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
    const WIN: &str = "Win(x) :- Move(x, y), !Win(y).";

    fn handle(src: &str, db: &Database, engine: Engine) -> Materialized {
        let opts = MaterializeOpts {
            engine,
            ..MaterializeOpts::default()
        };
        Materialized::new(&parse_program(src).unwrap(), db, &opts).unwrap()
    }

    #[test]
    fn initial_state_matches_engine() {
        let db = DiGraph::path(5).to_database("E");
        let m = handle(TC, &db, Engine::Seminaive);
        let (lfp, _) = crate::least_fixpoint_seminaive(&parse_program(TC).unwrap(), &db).unwrap();
        assert_eq!(*m.interp(), lfp);
        assert_eq!(m.repair_strategy(), RepairStrategy::DeleteRederive);
    }

    #[test]
    fn insert_extends_transitive_closure() {
        // Path 0→1→2, 3→4; bridging 2→3 adds all crossing pairs.
        let mut db = DiGraph::path(5).to_database("E");
        let e23 = Tuple::from_ids(&[2, 3]);
        db.relation_mut("E").unwrap().remove(&e23);
        let mut m = handle(TC, &db, Engine::Seminaive);
        let sid = m.compiled().idb_id("S").unwrap();
        assert_eq!(m.interp().get(sid).len(), 3 + 1);
        assert_eq!(m.insert(&[("E", e23.clone())]).unwrap(), 1);
        assert_eq!(m.interp().get(sid).len(), 10);
        // Re-inserting is a no-op.
        assert_eq!(m.insert(&[("E", e23)]).unwrap(), 0);
    }

    #[test]
    fn retract_shrinks_transitive_closure() {
        let db = DiGraph::path(5).to_database("E");
        let mut m = handle(TC, &db, Engine::Seminaive);
        let sid = m.compiled().idb_id("S").unwrap();
        assert_eq!(m.interp().get(sid).len(), 10);
        assert_eq!(m.retract(&[("E", Tuple::from_ids(&[2, 3]))]).unwrap(), 1);
        assert_eq!(m.interp().get(sid).len(), 4);
        // Retracting a never-present fact is a no-op.
        assert_eq!(m.retract(&[("E", Tuple::from_ids(&[0, 4]))]).unwrap(), 0);
        assert_eq!(m.interp().get(sid).len(), 4);
    }

    #[test]
    fn stratified_negation_repairs_both_directions() {
        // Unreach(x) flips as edges appear/disappear — negation damage from
        // lower-stratum additions and re-enabling from removals.
        let src = "
            Reach(y) :- Start(x), E(x, y).
            Reach(y) :- Reach(x), E(x, y).
            Unreach(x) :- V(x), !Reach(x).
        ";
        let mut db = DiGraph::path(4).to_database("E");
        for v in ["v0", "v1", "v2", "v3"] {
            db.insert_named_fact("V", &[v]).unwrap();
        }
        db.insert_named_fact("Start", &["v0"]).unwrap();
        let mut m = handle(src, &db, Engine::Stratified);
        let uid = m.compiled().idb_id("Unreach").unwrap();
        assert_eq!(m.interp().get(uid).len(), 1); // only v0 unreached
        m.retract_named("E", &["v1", "v2"]).unwrap();
        assert_eq!(m.interp().get(uid).len(), 3); // v0, v2, v3
        m.insert_named("E", &["v1", "v2"]).unwrap();
        assert_eq!(m.interp().get(uid).len(), 1);
    }

    #[test]
    fn wellfounded_nonstratified_restarts() {
        let db = DiGraph::path(4).to_database("Move");
        let mut m = handle(WIN, &db, Engine::WellFounded);
        assert_eq!(m.repair_strategy(), RepairStrategy::Restart);
        let wid = m.compiled().idb_id("Win").unwrap();
        // Path v0→v1→v2→v3: v3 loses, so v2 wins, v1 loses, v0 wins.
        assert_eq!(m.interp().get(wid).len(), 2);
        assert!(m.undefined().all_empty());
        // A self-loop at the end makes the tail undefined.
        m.insert_named("Move", &["v3", "v3"]).unwrap();
        assert!(!m.undefined().get(wid).is_empty());
        m.retract_named("Move", &["v3", "v3"]).unwrap();
        assert!(m.undefined().all_empty());
        assert_eq!(m.interp().get(wid).len(), 2);
    }

    #[test]
    fn inflationary_restart_fallback() {
        let db = DiGraph::path(4).to_database("Move");
        let mut m = handle(WIN, &db, Engine::Inflationary);
        assert_eq!(m.repair_strategy(), RepairStrategy::Restart);
        m.insert_named("Move", &["v3", "v0"]).unwrap();
        let (expect, _) = crate::inflationary(&parse_program(WIN).unwrap(), m.database()).unwrap();
        assert_eq!(*m.interp(), expect);
    }

    #[test]
    fn batch_updates_and_emptying_a_relation() {
        let db = DiGraph::path(4).to_database("E");
        let mut m = handle(TC, &db, Engine::Seminaive);
        let all: Vec<(&str, Tuple)> = (0..3)
            .map(|i| ("E", Tuple::from_ids(&[i, i + 1])))
            .collect();
        assert_eq!(m.retract(&all).unwrap(), 3);
        assert!(m.interp().all_empty());
        assert_eq!(m.insert(&all).unwrap(), 3);
        let sid = m.compiled().idb_id("S").unwrap();
        assert_eq!(m.interp().get(sid).len(), 6);
    }

    #[test]
    fn update_validation_is_atomic() {
        let db = DiGraph::path(3).to_database("E");
        let mut m = handle(TC, &db, Engine::Seminaive);
        let before = m.interp().clone();
        // Second fact is bad: nothing may change.
        let batch = [
            ("E", Tuple::from_ids(&[0, 2])),
            ("F", Tuple::from_ids(&[0, 1])),
        ];
        assert!(matches!(
            m.insert(&batch),
            Err(EvalError::UnknownRelation { .. })
        ));
        assert_eq!(*m.interp(), before);
        assert!(matches!(
            m.insert(&[("E", Tuple::from_ids(&[0]))]),
            Err(EvalError::ArityMismatch { .. })
        ));
        assert!(matches!(
            m.insert(&[("E", Tuple::from_ids(&[0, 99]))]),
            Err(EvalError::UnknownConstant { .. })
        ));
    }

    #[test]
    fn engine_prerequisites_are_enforced() {
        let db = DiGraph::path(3).to_database("Move");
        let p = parse_program(WIN).unwrap();
        let err = Materialized::new(
            &p,
            &db,
            &MaterializeOpts {
                engine: Engine::Seminaive,
                ..MaterializeOpts::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::NotPositive { .. }));
    }

    #[test]
    fn query_after_update_agrees() {
        let db = DiGraph::path(4).to_database("E");
        let mut m = handle(TC, &db, Engine::Stratified);
        m.retract_named("E", &["v1", "v2"]).unwrap();
        let goal = Atom {
            predicate: "S".into(),
            terms: vec![
                inflog_syntax::Term::Const("v0".into()),
                inflog_syntax::Term::Var("y".into()),
            ],
        };
        let ans = m.query(&goal, &QueryOpts::default()).unwrap();
        let sid = m.compiled().idb_id("S").unwrap();
        let v0 = m.database().universe().lookup("v0").unwrap();
        let expect: Vec<Tuple> = m
            .interp()
            .get(sid)
            .sorted()
            .iter()
            .filter(|t| t.items()[0] == v0)
            .cloned()
            .collect();
        assert_eq!(ans.tuples, expect);
    }
}
