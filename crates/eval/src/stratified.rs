//! Stratified semantics (Chandra–Harel; Apt–Blair–Walker; Van Gelder).
//!
//! The paper's introduction recalls this semantics as the established
//! treatment of negation that *does not cover all programs*: relation
//! symbols are divided into layers and a relation may be used negatively
//! only by strictly higher layers. §4 then shows the distance-query program
//! is stratified yet its stratified meaning *differs* from its inflationary
//! meaning — experiment E8 reproduces that divergence.
//!
//! [`stratify`] computes strata (or a recursion-through-negation witness);
//! [`stratified_eval`] evaluates stratum by stratum, bottom-up. Within a
//! stratum, negated IDB atoms refer only to lower (already fixed) strata, so
//! the per-stratum operator is monotone and its least fixpoint is reached by
//! accumulating iteration (semi-naive after the first round).

use crate::driver::DeltaDriver;
use crate::error::EvalError;
use crate::govern::Governor;
use crate::interp::Interp;
use crate::operator::EvalContext;
use crate::options::EvalOptions;
use crate::resolve::CompiledProgram;
use crate::trace::EvalTrace;
use crate::Result;
use inflog_core::Database;
use inflog_syntax::{Literal, Program};
use std::collections::BTreeMap;

/// A stratification: stratum index per IDB predicate, plus rule grouping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratification {
    /// Stratum of each IDB predicate, by name.
    pub strata: BTreeMap<String, usize>,
    /// Number of strata.
    pub num_strata: usize,
}

impl Stratification {
    /// Stratum of a predicate (0 for EDB/unknown predicates).
    pub fn stratum(&self, pred: &str) -> usize {
        self.strata.get(pred).copied().unwrap_or(0)
    }
}

/// Computes a stratification, or fails with a recursion-through-negation
/// witness.
///
/// Uses the classic label-correcting iteration: `stratum(P) >= stratum(Q)`
/// for positive body IDB atoms `Q`, `stratum(P) > stratum(Q)` for negated
/// ones; a label exceeding the number of IDB predicates certifies a negative
/// cycle.
///
/// # Errors
/// [`EvalError::NotStratified`] when the program has recursion through
/// negation (like the paper's `T(z) <- !Q(u), !T(w)` rule).
pub fn stratify(program: &Program) -> Result<Stratification> {
    let idb = program.idb_predicates();
    let n = idb.len();
    let mut strata: BTreeMap<String, usize> = idb.iter().map(|p| (p.clone(), 0)).collect();

    let mut changed = true;
    while changed {
        changed = false;
        for rule in &program.rules {
            let head = &rule.head.predicate;
            let mut head_stratum = strata[head];
            for lit in &rule.body {
                let Some(atom) = lit.atom() else { continue };
                let Some(&body_stratum) = strata.get(&atom.predicate) else {
                    continue; // EDB: stratum 0
                };
                let required = match lit {
                    Literal::Pos(_) => body_stratum,
                    Literal::Neg(_) => body_stratum + 1,
                    _ => unreachable!("atom() returned Some for eq literal"),
                };
                if required > head_stratum {
                    head_stratum = required;
                    if head_stratum > n {
                        return Err(EvalError::NotStratified {
                            witness: format!(
                                "negative cycle through `{}` (rule: {rule})",
                                atom.predicate
                            ),
                        });
                    }
                }
            }
            if head_stratum > strata[head] {
                strata.insert(head.clone(), head_stratum);
                changed = true;
            }
        }
    }

    let num_strata = strata.values().copied().max().map_or(0, |m| m + 1);
    Ok(Stratification { strata, num_strata })
}

/// Evaluates a stratified program bottom-up; returns the perfect model.
/// Uses [`EvalOptions::default`] (sequential unless the environment
/// overrides).
///
/// # Errors
/// [`EvalError::NotStratified`] or compilation errors.
pub fn stratified_eval(program: &Program, db: &Database) -> Result<(Interp, EvalTrace)> {
    stratified_eval_with(program, db, &EvalOptions::default())
}

/// [`stratified_eval`] with explicit evaluation options — e.g. a
/// worker-thread count for the parallel round executor. The result is
/// bit-identical for every thread count.
///
/// # Errors
/// [`EvalError::NotStratified`] or compilation errors.
pub fn stratified_eval_with(
    program: &Program,
    db: &Database,
    opts: &EvalOptions,
) -> Result<(Interp, EvalTrace)> {
    let strat = stratify(program)?;
    let cp = CompiledProgram::compile(program, db)?;
    let ctx = EvalContext::new(&cp, db)?;
    stratified_eval_compiled_with(&cp, &ctx, &strat, program, opts)
}

/// Stratified evaluation over a compiled program. This convenience wrapper
/// strips any environment-supplied governance (budget, token, failpoints)
/// and is therefore infallible.
pub fn stratified_eval_compiled(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    strat: &Stratification,
    program: &Program,
) -> (Interp, EvalTrace) {
    stratified_eval_compiled_with(
        cp,
        ctx,
        strat,
        program,
        &EvalOptions::default().without_governance(),
    )
    .expect("ungoverned stratified evaluation cannot fail")
}

/// [`stratified_eval_compiled`] with explicit evaluation options; the
/// governed form checks budget, cancellation and failpoints at every round
/// boundary of every stratum, and every few thousand emitted tuples. One
/// budget spans all strata — rounds and derived tuples accumulate across
/// them.
///
/// # Errors
/// [`EvalError::Cancelled`], [`EvalError::BudgetExceeded`], a fault
/// injected by an armed failpoint, or a contained worker panic.
pub fn stratified_eval_compiled_with(
    cp: &CompiledProgram,
    ctx: &EvalContext,
    strat: &Stratification,
    program: &Program,
    opts: &EvalOptions,
) -> Result<(Interp, EvalTrace)> {
    let governor = Governor::new(opts);
    let mut trace = EvalTrace::default();
    let mut s = cp.empty_interp();

    // Group rule indices by the stratum of their head predicate.
    let mut rules_by_stratum: Vec<Vec<usize>> = vec![Vec::new(); strat.num_strata];
    for (i, rule) in program.rules.iter().enumerate() {
        rules_by_stratum[strat.stratum(&rule.head.predicate)].push(i);
    }

    // `s` grows in place across strata and rounds, so the context's
    // persistent hash-join indexes extend incrementally from each round's
    // newly derived tuples — lower strata stay indexed when negations and
    // joins of higher strata read them. Each stratum is one warm-started
    // call of the shared semi-naive driver: within the stratum the operator
    // is monotone (negations see lower strata only), so delta iteration
    // computes its least fixpoint.
    let mut driver = DeltaDriver::with_options(cp, opts.clone());
    for rules in &rules_by_stratum {
        if rules.is_empty() {
            continue;
        }
        driver.extend(
            cp,
            ctx,
            &mut s,
            Some(rules),
            None,
            Some(&mut trace),
            &governor,
        )?;
    }

    trace.final_tuples = s.total_tuples();
    Ok((s, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::least_fixpoint_naive;
    use crate::operator::apply;
    use inflog_core::graphs::DiGraph;
    use inflog_core::Tuple;
    use inflog_syntax::parse_program;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn positive_program_is_single_stratum() {
        let p = parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).").unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.num_strata, 1);
        assert_eq!(s.stratum("S"), 0);
    }

    #[test]
    fn negation_on_lower_stratum_ok() {
        let p =
            parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y). C(x, y) :- !S(x, y).")
                .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.num_strata, 2);
        assert_eq!(s.stratum("S"), 0);
        assert_eq!(s.stratum("C"), 1);
    }

    #[test]
    fn pi1_is_not_stratified() {
        // T uses itself negatively: recursion through negation.
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        assert!(matches!(stratify(&p), Err(EvalError::NotStratified { .. })));
    }

    #[test]
    fn mutual_negative_recursion_rejected() {
        let p = parse_program("A(x) :- V(x), !B(x). B(x) :- V(x), !A(x).").unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn paper_distance_program_has_two_strata() {
        // §4's remark: the distance program is stratified with two strata.
        let src = "
            S1(x, y) :- E(x, y).
            S1(x, y) :- E(x, z), S1(z, y).
            S2(x, y) :- E(x, y).
            S2(x, y) :- E(x, z), S2(z, y).
            S3(x, y, u, v) :- E(x, y), !S2(u, v).
            S3(x, y, u, v) :- E(x, z), S1(z, y), !S2(u, v).
        ";
        let p = parse_program(src).unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.num_strata, 2);
        assert_eq!(s.stratum("S1"), 0);
        assert_eq!(s.stratum("S2"), 0);
        assert_eq!(s.stratum("S3"), 1);
    }

    #[test]
    fn stratified_matches_naive_on_positive_programs() {
        let p = parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).").unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..6 {
            let db = DiGraph::random_gnp(7, 0.3, &mut rng).to_database("E");
            let (a, _) = least_fixpoint_naive(&p, &db).unwrap();
            let (b, _) = stratified_eval(&p, &db).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn complement_of_tc() {
        // §5 hierarchy: TC-complement is stratified but not DATALOG.
        let src = "
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            C(x, y) :- !S(x, y).
        ";
        let p = parse_program(src).unwrap();
        let g = DiGraph::path(3);
        let db = g.to_database("E");
        let (m, _) = stratified_eval(&p, &db).unwrap();
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        let cid = cp.idb_id("C").unwrap();
        let tc = g.transitive_closure();
        for u in 0..3u32 {
            for v in 0..3u32 {
                let t = Tuple::from_ids(&[u, v]);
                assert_eq!(m.get(cid).contains(&t), !tc.contains(&(u, v)), "({u},{v})");
            }
        }
    }

    #[test]
    fn perfect_model_is_a_supported_model() {
        // The stratified (perfect) model is a fixpoint of Θ — the bridge
        // between the paper's fixpoints and stratified semantics.
        let src = "
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            C(x, y) :- !S(x, y).
        ";
        let p = parse_program(src).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..5 {
            let db = DiGraph::random_gnp(5, 0.35, &mut rng).to_database("E");
            let (m, _) = stratified_eval(&p, &db).unwrap();
            let cp = CompiledProgram::compile(&p, &db).unwrap();
            let ctx = EvalContext::new(&cp, &db).unwrap();
            assert_eq!(apply(&cp, &ctx, &m), m);
        }
    }

    #[test]
    fn three_strata_chain() {
        let src = "
            A(x) :- V(x).
            B(x) :- V(x), !A(x).
            C(x) :- V(x), !B(x).
        ";
        let p = parse_program(src).unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.num_strata, 3);
        let mut db = inflog_core::Database::new();
        db.insert_named_fact("V", &["a"]).unwrap();
        let (m, _) = stratified_eval(&p, &db).unwrap();
        let cp = CompiledProgram::compile(&p, &db).unwrap();
        // A = {a}; B = ∅ (a ∈ A); C = {a} (a ∉ B).
        assert_eq!(m.get(cp.idb_id("A").unwrap()).len(), 1);
        assert_eq!(m.get(cp.idb_id("B").unwrap()).len(), 0);
        assert_eq!(m.get(cp.idb_id("C").unwrap()).len(), 1);
    }
}
