//! Interpretations: the tuples of IDB relations that Θ maps between.

use inflog_core::{Relation, Tuple};
use std::fmt;

/// A sequence `S = (S_1, ..., S_m)` of relations, one per IDB predicate of a
/// compiled program, in the program's IDB index order.
///
/// This is the domain and codomain of the paper's operator Θ. The subset
/// order used throughout (least fixpoints, incomparability) is the
/// **coordinatewise** inclusion the paper defines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interp {
    rels: Vec<Relation>,
}

impl Interp {
    /// Creates an interpretation with all-empty relations of the given
    /// arities.
    pub fn empty(arities: &[usize]) -> Self {
        Interp {
            rels: arities.iter().map(|&a| Relation::new(a)).collect(),
        }
    }

    /// Creates an interpretation from explicit relations.
    pub fn from_relations(rels: Vec<Relation>) -> Self {
        Interp { rels }
    }

    /// Creates the **full** interpretation `(A^{k_1}, ..., A^{k_m})`.
    pub fn full(universe_size: usize, arities: &[usize]) -> Self {
        Interp {
            rels: arities
                .iter()
                .map(|&a| Relation::full(universe_size, a))
                .collect(),
        }
    }

    /// Number of component relations `m`.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether there are no component relations.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Component access by IDB index.
    pub fn get(&self, idx: usize) -> &Relation {
        &self.rels[idx]
    }

    /// Mutable component access by IDB index.
    pub fn get_mut(&mut self, idx: usize) -> &mut Relation {
        &mut self.rels[idx]
    }

    /// All components as a slice.
    pub fn relations(&self) -> &[Relation] {
        &self.rels
    }

    /// Consumes into the component vector.
    pub fn into_relations(self) -> Vec<Relation> {
        self.rels
    }

    /// Coordinatewise union; returns the number of tuples added.
    pub fn union_with(&mut self, other: &Interp) -> usize {
        debug_assert_eq!(self.rels.len(), other.rels.len());
        self.rels
            .iter_mut()
            .zip(&other.rels)
            .map(|(a, b)| a.union_with(b))
            .sum()
    }

    /// Coordinatewise intersection.
    pub fn intersection(&self, other: &Interp) -> Interp {
        debug_assert_eq!(self.rels.len(), other.rels.len());
        Interp {
            rels: self
                .rels
                .iter()
                .zip(&other.rels)
                .map(|(a, b)| a.intersection(b))
                .collect(),
        }
    }

    /// Coordinatewise difference `self \ other`.
    pub fn difference(&self, other: &Interp) -> Interp {
        debug_assert_eq!(self.rels.len(), other.rels.len());
        Interp {
            rels: self
                .rels
                .iter()
                .zip(&other.rels)
                .map(|(a, b)| a.difference(b))
                .collect(),
        }
    }

    /// Coordinatewise subset test (the paper's ordering on interpretations).
    pub fn is_subset(&self, other: &Interp) -> bool {
        self.rels
            .iter()
            .zip(&other.rels)
            .all(|(a, b)| a.is_subset(b))
    }

    /// Whether two interpretations are ⊆-incomparable.
    pub fn incomparable(&self, other: &Interp) -> bool {
        !self.is_subset(other) && !other.is_subset(self)
    }

    /// Total number of tuples across components.
    pub fn total_tuples(&self) -> usize {
        self.rels.iter().map(Relation::len).sum()
    }

    /// Whether every component is empty.
    pub fn all_empty(&self) -> bool {
        self.rels.iter().all(Relation::is_empty)
    }

    /// Inserts a tuple into component `idx`; returns whether it was new.
    pub fn insert(&mut self, idx: usize, t: Tuple) -> bool {
        self.rels[idx].insert(t)
    }

    /// Membership test on component `idx`.
    pub fn contains(&self, idx: usize, t: &Tuple) -> bool {
        self.rels[idx].contains(t)
    }

    /// Deterministic rendering with component names supplied by the caller.
    pub fn display_with_names(&self, names: &[String]) -> String {
        let mut out = String::new();
        for (i, r) in self.rels.iter().enumerate() {
            let name = names.get(i).map(String::as_str).unwrap_or("?");
            out.push_str(&format!("{name} = {r}\n"));
        }
        out
    }
}

impl fmt::Display for Interp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rels.iter().enumerate() {
            writeln!(f, "S{i} = {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u32]) -> Tuple {
        Tuple::from_ids(ids)
    }

    #[test]
    fn empty_and_full() {
        let e = Interp::empty(&[1, 2]);
        assert_eq!(e.len(), 2);
        assert!(e.all_empty());
        let f = Interp::full(3, &[1, 2]);
        assert_eq!(f.get(0).len(), 3);
        assert_eq!(f.get(1).len(), 9);
        assert!(e.is_subset(&f));
        assert!(!f.is_subset(&e));
    }

    #[test]
    fn union_and_difference() {
        let mut a = Interp::empty(&[1]);
        a.insert(0, t(&[0]));
        let mut b = Interp::empty(&[1]);
        b.insert(0, t(&[1]));
        let added = a.union_with(&b);
        assert_eq!(added, 1);
        assert_eq!(a.total_tuples(), 2);
        let d = a.difference(&b);
        assert_eq!(d.get(0).len(), 1);
        assert!(d.contains(0, &t(&[0])));
    }

    #[test]
    fn intersection_coordinatewise() {
        let mut a = Interp::empty(&[1, 1]);
        a.insert(0, t(&[0]));
        a.insert(1, t(&[2]));
        let mut b = Interp::empty(&[1, 1]);
        b.insert(0, t(&[0]));
        b.insert(1, t(&[3]));
        let i = a.intersection(&b);
        assert_eq!(i.get(0).len(), 1);
        assert!(i.get(1).is_empty());
    }

    #[test]
    fn incomparability() {
        // The paper's C_2 example: {1} vs {2} on a 2-cycle.
        let mut a = Interp::empty(&[1]);
        a.insert(0, t(&[0]));
        let mut b = Interp::empty(&[1]);
        b.insert(0, t(&[1]));
        assert!(a.incomparable(&b));
        assert!(!a.incomparable(&a));
    }

    #[test]
    fn display_with_names() {
        let mut a = Interp::empty(&[1]);
        a.insert(0, t(&[1]));
        let s = a.display_with_names(&["T".to_string()]);
        assert_eq!(s, "T = {(1)}\n");
    }

    #[test]
    fn insert_dedup() {
        let mut a = Interp::empty(&[2]);
        assert!(a.insert(0, t(&[0, 1])));
        assert!(!a.insert(0, t(&[0, 1])));
        assert!(a.contains(0, &t(&[0, 1])));
    }
}
