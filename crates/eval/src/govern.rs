//! Resource governance: evaluation budgets, cooperative cancellation,
//! panic containment support, and the failpoint fault-injection layer.
//!
//! The paper's own landscape motivates this machinery: inflationary and
//! well-founded fixpoints on adversarial programs have genuinely large
//! round/alternation behavior, so a long-lived serving process must be able
//! to **stop cleanly** — not just finish fast. Three cooperating pieces:
//!
//! * [`Budget`] — declarative limits (wall-clock deadline, round cap,
//!   derived-tuple cap) carried on [`EvalOptions`];
//! * [`CancelToken`] — a shared, cloneable flag another thread can flip to
//!   stop an in-flight evaluation;
//! * [`Failpoints`] — env-driven (`INFLOG_FAILPOINT=<site>[:<n>]`) or
//!   programmatically armed injection points that force a typed failure at
//!   a registered site, used by the fault-injection test harness to prove
//!   every mid-flight failure leaves [`Materialized`](crate::Materialized)
//!   handles transactionally intact.
//!
//! At evaluation entry every engine resolves its options into a
//! [`Governor`] — the per-call runtime that owns the resolved deadline,
//! the shared counters, and the one-shot trip state. The governor is
//! checked at **round boundaries** ([`Governor::check_round`], which also
//! hosts the `round` failpoint) and **every few thousand emitted tuples**
//! in the executors' inner loops ([`Governor::note_emit`]); a trip is
//! recorded once, the executors drain out early, and the evaluation
//! surfaces the stored [`EvalError`]. When no limit, token, or failpoint
//! is configured the governor reports itself inert
//! ([`Governor::as_active`] returns `None`) and the inner loops carry
//! **zero** governance overhead — the bench gate holds the budget checks
//! to noise on the headline suites.

use crate::error::{BudgetKind, EvalError};
use crate::options::EvalOptions;
use crate::Result;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Declarative evaluation limits. All dimensions default to unlimited;
/// every engine enforces whichever are set, surfacing
/// [`EvalError::BudgetExceeded`] with the tripped [`BudgetKind`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, measured from evaluation entry. Checked at
    /// round boundaries and polled every few thousand emitted tuples.
    pub deadline: Option<Duration>,
    /// Maximum number of rounds: semi-naive delta rounds, naive
    /// iterations, and well-founded alternations all count against it
    /// (this subsumes the old ad-hoc `IterationLimit` cap).
    pub max_rounds: Option<usize>,
    /// Maximum number of derived tuples, counted as head-tuple emissions
    /// in the executor inner loops (an emission that deduplicates away
    /// still counts — the bound is on work performed, not on distinct
    /// results).
    pub max_tuples: Option<u64>,
}

impl Budget {
    /// Whether no dimension is limited (the default).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_rounds.is_none() && self.max_tuples.is_none()
    }

    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Budget {
            deadline: Some(deadline),
            ..Budget::default()
        }
    }

    /// A budget with only a round cap.
    pub fn with_max_rounds(max_rounds: usize) -> Self {
        Budget {
            max_rounds: Some(max_rounds),
            ..Budget::default()
        }
    }

    /// A budget with only a derived-tuple cap.
    pub fn with_max_tuples(max_tuples: u64) -> Self {
        Budget {
            max_tuples: Some(max_tuples),
            ..Budget::default()
        }
    }
}

/// A shared, cloneable cancellation flag. Clone it, hand one copy to the
/// evaluation (via [`EvalOptions::cancel`]), keep the other; calling
/// [`CancelToken::cancel`] from any thread makes the in-flight evaluation
/// stop at its next governance check and return [`EvalError::Cancelled`].
///
/// Cancellation is **cooperative and sticky**: once cancelled, every
/// evaluation started with this token fails immediately.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Flips the flag; safe to call from any thread, idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Tokens compare by identity: two tokens are equal iff they share the
/// same flag (clones of one another).
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

/// Failpoint site: the top of every [`DeltaDriver`](crate::DeltaDriver)
/// round (including each engine's first full application).
pub const SITE_ROUND: &str = "round";
/// Failpoint site: index preparation/extension at the start of a Θ
/// application (`prepare_plan`, under the index write lock's scope).
pub const SITE_INDEX_EXTEND: &str = "index-extend";
/// Failpoint site: closing the overdelete cone of a delete–rederive
/// repair (fires per cone round, after damage has been removed).
pub const SITE_OVERDELETE_CLOSE: &str = "overdelete-close";
/// Failpoint site: the rederivation sweep of a delete–rederive repair
/// (fires per sweep pass, after overdeleted tuples may have been
/// re-inserted).
pub const SITE_REDERIVE_SWEEP: &str = "rederive-sweep";
/// Failpoint site: **panics** inside a parallel worker task instead of
/// returning an error — exercises the per-task `catch_unwind` containment.
/// Only reachable when the application actually forks (force with
/// `parallel_threshold = 0`).
pub const SITE_WORKER_PANIC: &str = "worker-panic";

/// Every registered failpoint site, for sweep harnesses.
pub const FAILPOINT_SITES: &[&str] = &[
    SITE_ROUND,
    SITE_INDEX_EXTEND,
    SITE_OVERDELETE_CLOSE,
    SITE_REDERIVE_SWEEP,
    SITE_WORKER_PANIC,
];

/// Serving-layer failpoint sites (`inflog-serve`). The registry constant
/// lives here — not in the serve crate — because the shared
/// `INFLOG_FAILPOINT` diagnostic below must enumerate every layer's sites,
/// and `inflog-serve` depends on this crate (the reverse import would be a
/// cycle). The serve crate re-exports these names and owns their semantics:
///
/// - `serve-epoch-publish`: the writer dies after the WAL record is durable
///   and applied but before the new epoch is swapped in — readers keep the
///   old epoch; recovery may legitimately land one epoch past the last ack.
/// - `serve-queue-full`: the write admission path behaves as if the bounded
///   writer queue were full — a typed `Overloaded` shed, never a hang.
/// - `serve-reply-drop`: the connection is dropped mid-reply, after the
///   epoch header but before the tuples — the server must keep serving.
/// - `serve-writer-crash`: the writer dies *before* logging the batch —
///   recovery must restore exactly the last acked epoch.
pub const SERVE_FAILPOINT_SITES: &[&str] = &[
    "serve-epoch-publish",
    "serve-queue-full",
    "serve-reply-drop",
    "serve-writer-crash",
];

#[derive(Debug)]
struct ArmedFailpoint {
    site: String,
    /// 1-based: the failpoint fires on exactly the `trigger`-th hit of its
    /// site, then never again — so a retried operation runs clean.
    trigger: u64,
    hits: AtomicU64,
}

/// An armed fault-injection point. At most one site is armed per value;
/// the hit counter is shared across clones (`Arc`), so arming a handle's
/// options once and retrying after the injected failure runs clean.
///
/// Environment form (parsed by [`EvalOptions::default`]):
/// `INFLOG_FAILPOINT=<site>[:<n>]` arms `<site>` to fire on its `n`-th hit
/// (default 1). Sites are listed in [`FAILPOINT_SITES`]; an unknown site
/// warns on stderr and is ignored, like the other `INFLOG_*` knobs.
#[derive(Debug, Clone, Default)]
pub struct Failpoints(Option<Arc<ArmedFailpoint>>);

impl Failpoints {
    /// No failpoint armed (the default).
    pub fn none() -> Self {
        Failpoints::default()
    }

    /// Arms `site` to fire on its `trigger`-th hit (1-based; 0 is clamped
    /// to 1). Panics on unregistered sites — arming a typo'd site would
    /// silently test nothing.
    pub fn armed(site: &str, trigger: u64) -> Self {
        assert!(
            FAILPOINT_SITES.contains(&site),
            "unknown failpoint site `{site}` (registered: {FAILPOINT_SITES:?})"
        );
        Failpoints(Some(Arc::new(ArmedFailpoint {
            site: site.to_owned(),
            trigger: trigger.max(1),
            hits: AtomicU64::new(0),
        })))
    }

    /// Parses the `INFLOG_FAILPOINT` value form `<site>[:<n>]`. Empty
    /// means none; malformed values warn on stderr and arm nothing.
    pub fn from_env_value(raw: &str) -> Self {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Failpoints::none();
        }
        let (site, trigger) = match trimmed.split_once(':') {
            None => (trimmed, 1),
            Some((site, n)) => match n.trim().parse::<u64>() {
                Ok(n) => (site.trim(), n.max(1)),
                Err(_) => {
                    eprintln!(
                        "warning: ignoring INFLOG_FAILPOINT={raw:?}: \
                         expected <site>[:<n>] with integer n"
                    );
                    return Failpoints::none();
                }
            },
        };
        if !FAILPOINT_SITES.contains(&site) {
            // Store- and serve-layer sites are valid arming targets for the
            // same variable — the durable store parses them itself
            // (`inflog_store::Failpoints::from_env`) and the serving layer
            // parses [`SERVE_FAILPOINT_SITES`]; the evaluation layer just
            // stays inert, without a spurious warning.
            if !inflog_store::STORE_FAILPOINT_SITES.contains(&site)
                && !SERVE_FAILPOINT_SITES.contains(&site)
            {
                eprintln!(
                    "warning: ignoring INFLOG_FAILPOINT={raw:?}: unknown site \
                     (registered: {FAILPOINT_SITES:?} for evaluation, {:?} \
                     for the durable store, {SERVE_FAILPOINT_SITES:?} for the \
                     serving layer)",
                    inflog_store::STORE_FAILPOINT_SITES
                );
            }
            return Failpoints::none();
        }
        Failpoints(Some(Arc::new(ArmedFailpoint {
            site: site.to_owned(),
            trigger,
            hits: AtomicU64::new(0),
        })))
    }

    /// Whether any site is armed.
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// Records a hit at `site`; returns `true` exactly when this hit is
    /// the armed site's trigger-th (the injection moment).
    pub fn fire(&self, site: &str) -> bool {
        let Some(armed) = &self.0 else { return false };
        if armed.site != site {
            return false;
        }
        armed.hits.fetch_add(1, Ordering::Relaxed) + 1 == armed.trigger
    }
}

/// Failpoints compare by identity (or both-unarmed), keeping
/// [`EvalOptions`]'s derived equality meaningful.
impl PartialEq for Failpoints {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for Failpoints {}

/// How many emissions pass between deadline/cancellation polls in the
/// executor inner loops (power of two; the counter is masked). Small
/// enough that a cancelled or expired evaluation stops within
/// microseconds, large enough that the poll — an `Instant::now` call —
/// never shows up in profiles.
const POLL_MASK: u64 = (1 << 12) - 1;

/// The per-call governance runtime: resolved limits plus shared trip
/// state. Engines build one at entry ([`Governor::new`]) and thread a
/// reference through the [`DeltaDriver`](crate::DeltaDriver) into both
/// executors; parallel workers share it through the execution
/// environment, so a trip on any worker stops all of them.
///
/// The trip is **one-shot**: the first limit violation (or cancellation,
/// or fired failpoint) stores its typed error and flips an atomic flag;
/// everything downstream observes the flag cheaply and drains out.
#[derive(Debug)]
pub struct Governor {
    deadline: Option<Instant>,
    deadline_ms: u64,
    max_rounds: Option<usize>,
    max_tuples: Option<u64>,
    cancel: Option<CancelToken>,
    failpoints: Failpoints,
    rounds: AtomicUsize,
    emitted: AtomicU64,
    tripped: AtomicBool,
    error: Mutex<Option<EvalError>>,
}

impl Governor {
    /// Resolves options into a governor: the deadline (if any) starts
    /// counting now.
    pub fn new(opts: &EvalOptions) -> Self {
        Governor {
            deadline: opts.budget.deadline.map(|d| Instant::now() + d),
            deadline_ms: opts
                .budget
                .deadline
                .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
            max_rounds: opts.budget.max_rounds,
            max_tuples: opts.budget.max_tuples,
            cancel: opts.cancel.clone(),
            failpoints: opts.failpoints.clone(),
            rounds: AtomicUsize::new(0),
            emitted: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    /// A fully inert governor: no limits, no cancellation, no failpoints.
    /// The ungoverned entry points use this.
    pub fn free() -> Self {
        Governor::new(&EvalOptions::sequential())
    }

    /// `Some(self)` when any check could ever trip — the executors only
    /// carry a governor reference in that case, so inert evaluations pay
    /// nothing in the inner loops. Round caps alone still count as
    /// active: the round counter lives here.
    pub fn as_active(&self) -> Option<&Governor> {
        let active = self.deadline.is_some()
            || self.max_rounds.is_some()
            || self.max_tuples.is_some()
            || self.cancel.is_some()
            || self.failpoints.is_armed();
        active.then_some(self)
    }

    /// Whether a limit has already tripped (relaxed; safe to poll from
    /// any worker).
    #[inline]
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Records the first error; later trips keep the original.
    fn trip(&self, e: EvalError) {
        let mut slot = self.error.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        self.tripped.store(true, Ordering::Release);
    }

    /// The stored trip error, as a `Result`: `Ok(())` while untripped.
    pub fn check(&self) -> Result<()> {
        if !self.tripped() {
            return Ok(());
        }
        let slot = self.error.lock().unwrap_or_else(PoisonError::into_inner);
        Err(slot.clone().unwrap_or(EvalError::Cancelled))
    }

    /// Deadline + cancellation checks (trips and returns the error on
    /// violation; also surfaces an earlier trip).
    fn poll_signals(&self) -> Result<()> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip(EvalError::BudgetExceeded {
                    kind: BudgetKind::Deadline,
                    limit: self.deadline_ms,
                });
            }
        }
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                self.trip(EvalError::Cancelled);
            }
        }
        self.check()
    }

    /// Round-boundary check: fires the `round` failpoint, counts one
    /// round against [`Budget::max_rounds`], and polls deadline and
    /// cancellation. Called by the driver before the full first
    /// application and before every delta round, by naive iteration per
    /// step, and by the well-founded engine per alternation.
    pub fn check_round(&self) -> Result<()> {
        self.fail_at(SITE_ROUND)?;
        let r = self.rounds.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.max_rounds {
            if r > max {
                self.trip(EvalError::BudgetExceeded {
                    kind: BudgetKind::Rounds,
                    limit: max as u64,
                });
            }
        }
        self.poll_signals()
    }

    /// Inner-loop hook, called per emitted head tuple by both executors:
    /// counts against [`Budget::max_tuples`] and polls deadline and
    /// cancellation every [`POLL_MASK`]` + 1` emissions. Returns `true`
    /// when the evaluation must stop (the executors then drain out; the
    /// caller surfaces [`Governor::check`]).
    #[inline]
    pub(crate) fn note_emit(&self) -> bool {
        let n = self.emitted.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.max_tuples {
            if n > max {
                self.trip(EvalError::BudgetExceeded {
                    kind: BudgetKind::Tuples,
                    limit: max,
                });
                return true;
            }
        }
        if n & POLL_MASK == 0 && self.poll_signals().is_err() {
            return true;
        }
        self.tripped()
    }

    /// Fires the failpoint registered at `site`, if armed and due: trips
    /// with [`EvalError::FaultInjected`] and returns it.
    pub(crate) fn fail_at(&self, site: &str) -> Result<()> {
        if self.failpoints.fire(site) {
            let e = EvalError::FaultInjected {
                site: site.to_owned(),
            };
            self.trip(e.clone());
            return Err(e);
        }
        self.check()
    }

    /// Whether the [`SITE_WORKER_PANIC`] failpoint is due — the parallel
    /// task runner panics deliberately when it is (inside the per-task
    /// `catch_unwind`), proving panic containment end to end.
    pub(crate) fn should_inject_worker_panic(&self) -> bool {
        self.failpoints.fire(SITE_WORKER_PANIC)
    }

    /// Total head-tuple emissions observed so far (for tests/diagnostics).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Rounds counted so far (for tests/diagnostics).
    pub fn rounds(&self) -> usize {
        self.rounds.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_with_budget(budget: Budget) -> EvalOptions {
        EvalOptions {
            budget,
            ..EvalOptions::sequential()
        }
    }

    #[test]
    fn default_budget_is_unlimited_and_governor_inert() {
        assert!(Budget::default().is_unlimited());
        let gov = Governor::free();
        assert!(gov.as_active().is_none());
        assert!(gov.check_round().is_ok());
        assert!(!gov.note_emit());
        assert!(gov.check().is_ok());
    }

    #[test]
    fn round_cap_trips_with_typed_error() {
        let gov = Governor::new(&opts_with_budget(Budget::with_max_rounds(2)));
        assert!(gov.as_active().is_some());
        assert!(gov.check_round().is_ok());
        assert!(gov.check_round().is_ok());
        let err = gov.check_round().unwrap_err();
        assert_eq!(
            err,
            EvalError::BudgetExceeded {
                kind: BudgetKind::Rounds,
                limit: 2
            }
        );
        // The trip is sticky: later checks return the same first error.
        assert_eq!(gov.check().unwrap_err(), err);
    }

    #[test]
    fn tuple_cap_trips_in_the_emit_hook() {
        let gov = Governor::new(&opts_with_budget(Budget::with_max_tuples(3)));
        assert!(!gov.note_emit());
        assert!(!gov.note_emit());
        assert!(!gov.note_emit());
        assert!(gov.note_emit(), "4th emission exceeds max_tuples=3");
        assert!(matches!(
            gov.check(),
            Err(EvalError::BudgetExceeded {
                kind: BudgetKind::Tuples,
                limit: 3
            })
        ));
    }

    #[test]
    fn zero_deadline_trips_at_the_first_round_boundary() {
        let gov = Governor::new(&opts_with_budget(Budget::with_deadline(Duration::ZERO)));
        assert!(matches!(
            gov.check_round(),
            Err(EvalError::BudgetExceeded {
                kind: BudgetKind::Deadline,
                ..
            })
        ));
    }

    #[test]
    fn cancellation_is_shared_across_clones_and_sticky() {
        let token = CancelToken::new();
        let opts = EvalOptions {
            cancel: Some(token.clone()),
            ..EvalOptions::sequential()
        };
        let gov = Governor::new(&opts);
        assert!(gov.as_active().is_some(), "a token alone activates");
        assert!(gov.check_round().is_ok());
        token.cancel();
        assert_eq!(gov.check_round().unwrap_err(), EvalError::Cancelled);
        assert!(token.is_cancelled());
        // Equality is identity: clones are equal, fresh tokens are not.
        assert_eq!(token, token.clone());
        assert_ne!(token, CancelToken::new());
    }

    #[test]
    fn failpoint_fires_on_exactly_the_nth_hit() {
        let fp = Failpoints::armed(SITE_ROUND, 3);
        assert!(!fp.fire(SITE_ROUND));
        assert!(!fp.fire(SITE_INDEX_EXTEND), "other sites never fire");
        assert!(!fp.fire(SITE_ROUND));
        assert!(fp.fire(SITE_ROUND), "third hit is the trigger");
        assert!(!fp.fire(SITE_ROUND), "one-shot: never fires again");
    }

    #[test]
    fn failpoint_env_parsing() {
        assert!(!Failpoints::from_env_value("").is_armed());
        assert!(!Failpoints::from_env_value("  ").is_armed());
        let fp = Failpoints::from_env_value("round");
        assert!(fp.is_armed());
        assert!(fp.fire(SITE_ROUND), "default trigger is the first hit");
        let fp = Failpoints::from_env_value(" rederive-sweep : 2 ");
        assert!(fp.is_armed());
        assert!(!fp.fire(SITE_REDERIVE_SWEEP));
        assert!(fp.fire(SITE_REDERIVE_SWEEP));
        // Malformed and unknown values arm nothing (and warn on stderr).
        assert!(!Failpoints::from_env_value("round:x").is_armed());
        assert!(!Failpoints::from_env_value("no-such-site").is_armed());
        // Store- and serve-layer sites are foreign here: inert, no warning.
        assert!(!Failpoints::from_env_value("store-wal-bit-flip").is_armed());
        assert!(!Failpoints::from_env_value("serve-epoch-publish").is_armed());
        assert!(!Failpoints::from_env_value("serve-writer-crash:3").is_armed());
    }

    #[test]
    fn fail_at_surfaces_fault_injected_and_trips() {
        let opts = EvalOptions {
            failpoints: Failpoints::armed(SITE_INDEX_EXTEND, 1),
            ..EvalOptions::sequential()
        };
        let gov = Governor::new(&opts);
        assert!(gov.as_active().is_some());
        let err = gov.fail_at(SITE_INDEX_EXTEND).unwrap_err();
        assert_eq!(
            err,
            EvalError::FaultInjected {
                site: SITE_INDEX_EXTEND.into()
            }
        );
        assert_eq!(gov.check().unwrap_err(), err);
    }

    #[test]
    fn governor_counters_report() {
        let gov = Governor::new(&opts_with_budget(Budget::with_max_tuples(100)));
        gov.check_round().unwrap();
        assert!(!gov.note_emit());
        assert!(!gov.note_emit());
        assert_eq!(gov.rounds(), 1);
        assert_eq!(gov.emitted(), 2);
    }
}
