//! Durable materialized fixpoints: a [`Materialized`] handle paired with an
//! `inflog-store` directory, so the model survives a crash and comes back
//! **verifiably identical**.
//!
//! # Protocol (log-first)
//!
//! [`DurableMaterialized::insert`]/[`retract`](DurableMaterialized::retract)
//! commit in this order:
//!
//! 1. Encode the batch as one WAL record stamped with the *next* epoch and
//!    append it ([`inflog_store::Store::append`]); under
//!    [`Durability::Sync`] the record is fsynced before anything else
//!    happens. If the append fails, the in-memory handle is untouched, the
//!    WAL poisons itself (preserving the crash-shaped disk state for
//!    recovery), and the typed error surfaces.
//! 2. Apply the batch through the transactional in-memory update. If *that*
//!    fails (budget, cancellation, a contained panic), the in-memory state
//!    rolls back bit-identically — and the just-written record is truncated
//!    away again, so the log never runs ahead of acknowledged state.
//! 3. Only when both succeed is the update acknowledged; the epoch advances
//!    by one (no-op batches included — the WAL record count must equal the
//!    epoch delta).
//!
//! # Recovery
//!
//! [`DurableMaterialized::open`] loads the newest valid snapshot, replays
//! the WAL records past its epoch through the normal update path, and
//! returns a warm handle. Because every maintained semantics is a
//! deterministic function of the EDB (the paper's central observation), the
//! recovered state must equal a from-scratch recompute over the recovered
//! database — debug builds assert it on every step, and the crash tests
//! assert it (down to dense tuple order) in release mode. Recovery either
//! restores the last committed epoch exactly or fails with a typed
//! [`StoreError`] naming the corrupt offset — never a wrong answer.

use crate::interp::Interp;
use crate::materialize::{Engine, MaterializeOpts, Materialized, RepairStrategy};
use crate::options::EvalOptions;
use crate::Result;
use inflog_core::{Database, Relation, Tuple};
use inflog_store::{SnapshotState, Store, StoreOptions, WalOp, WalRecord};
use inflog_syntax::Program;
use std::path::Path;

pub use inflog_store::Durability;

/// Options for creating or opening a [`DurableMaterialized`].
#[derive(Debug, Clone, Default)]
pub struct DurableOpts {
    /// The semantics to maintain (as in [`MaterializeOpts`]).
    pub engine: Engine,
    /// Evaluation options for the initial run and every repair.
    pub eval: EvalOptions,
    /// Whether WAL appends fsync before acknowledging ([`Durability::Sync`],
    /// the default) or leave flushing to the OS.
    pub durability: Durability,
    /// Store-layer crash-injection sites (inert by default; the test
    /// harness arms them, or use [`StoreOptions::from_env`] semantics via
    /// [`inflog_store::Failpoints::from_env`]).
    pub store_failpoints: inflog_store::Failpoints,
}

impl DurableOpts {
    fn materialize(&self) -> MaterializeOpts {
        MaterializeOpts {
            engine: self.engine,
            eval: self.eval.clone(),
        }
    }

    fn store(&self) -> StoreOptions {
        StoreOptions {
            durability: self.durability,
            failpoints: self.store_failpoints.clone(),
        }
    }
}

/// A [`Materialized`] handle whose committed updates survive the process.
#[derive(Debug)]
pub struct DurableMaterialized {
    m: Materialized,
    store: Store,
    /// Epoch of the snapshot the in-memory handle was built from; the
    /// durable epoch is `base_epoch + m.epoch()`.
    base_epoch: u64,
}

impl DurableMaterialized {
    /// Evaluates `program` over `db` once and initializes `dir` with the
    /// epoch-0 snapshot and an empty WAL.
    ///
    /// # Errors
    /// Construction errors of [`Materialized::new`]; [`EvalError::Store`]
    /// if the directory cannot be initialized.
    pub fn create(
        program: &Program,
        db: &Database,
        dir: &Path,
        opts: &DurableOpts,
    ) -> Result<DurableMaterialized> {
        let m = Materialized::new(program, db, &opts.materialize())?;
        let state = SnapshotState {
            epoch: 0,
            db: m.database().clone(),
            idb: m.interp().relations().to_vec(),
            undefined: m.undefined().relations().to_vec(),
        };
        let store = Store::create(dir, &state, &opts.store())?;
        Ok(DurableMaterialized {
            m,
            store,
            base_epoch: 0,
        })
    }

    /// Recovers the handle from `dir`: newest valid snapshot, then WAL
    /// replay through the normal update path.
    ///
    /// # Errors
    /// Typed [`StoreError`](inflog_store::StoreError)s (via
    /// [`EvalError::Store`]) for corrupt frames (with the byte offset),
    /// epoch gaps, or state that does not fit `program`; plus any
    /// evaluation error a replayed record hits.
    pub fn open(program: &Program, dir: &Path, opts: &DurableOpts) -> Result<DurableMaterialized> {
        let (store, state, records) = Store::open(dir, &opts.store())?;
        let base_epoch = state.epoch;
        let SnapshotState {
            db, idb, undefined, ..
        } = state;
        let mut m = Materialized::with_state(
            program,
            &db,
            &opts.materialize(),
            Interp::from_relations(idb),
            Interp::from_relations(undefined),
        )?;
        for rec in &records {
            let facts: Vec<(&str, Tuple)> = rec
                .facts
                .iter()
                .map(|(name, t)| (name.as_str(), t.clone()))
                .collect();
            match rec.op {
                WalOp::Insert => m.insert(&facts)?,
                WalOp::Retract => m.retract(&facts)?,
            };
        }
        debug_assert_eq!(m.epoch(), records.len() as u64);
        Ok(DurableMaterialized {
            m,
            store,
            base_epoch,
        })
    }

    /// Durable [`Materialized::insert`]: the batch is on disk before it is
    /// acknowledged (see the module docs for the exact order).
    ///
    /// # Errors
    /// [`EvalError::Store`] when the WAL append fails (in-memory state
    /// untouched); otherwise the same errors as [`Materialized::insert`]
    /// (in-memory state rolled back *and* the record un-logged).
    pub fn insert(&mut self, facts: &[(&str, Tuple)]) -> Result<usize> {
        self.update(facts, WalOp::Insert)
    }

    /// Durable [`Materialized::retract`].
    ///
    /// # Errors
    /// Same conditions as [`DurableMaterialized::insert`].
    pub fn retract(&mut self, facts: &[(&str, Tuple)]) -> Result<usize> {
        self.update(facts, WalOp::Retract)
    }

    fn update(&mut self, facts: &[(&str, Tuple)], op: WalOp) -> Result<usize> {
        let rec = WalRecord {
            epoch: self.epoch() + 1,
            op,
            facts: facts
                .iter()
                .map(|(name, t)| ((*name).to_string(), t.clone()))
                .collect(),
        };
        // Log first: if this fails, nothing in memory has changed and the
        // WAL is poisoned until the directory is re-opened through recovery.
        let pre_len = self.store.append(&rec)?;
        let applied = match op {
            WalOp::Insert => self.m.insert(facts),
            WalOp::Retract => self.m.retract(facts),
        };
        match applied {
            Ok(n) => Ok(n),
            Err(e) => {
                // The in-memory handle rolled back; un-log the record so the
                // WAL does not run ahead of acknowledged state. If even that
                // fails the WAL poisons itself, so surface the store error.
                self.store.undo_append(pre_len)?;
                Err(e)
            }
        }
    }

    /// Rewrites a fresh snapshot at the current epoch and truncates the WAL
    /// (both atomically); keeps the previous snapshot as a fallback.
    ///
    /// # Errors
    /// [`EvalError::Store`] if a step fails; the directory stays
    /// recoverable at the current epoch either way (the crash tests drive
    /// both windows).
    pub fn compact(&mut self) -> Result<()> {
        let state = SnapshotState {
            epoch: self.epoch(),
            db: self.m.database().clone(),
            idb: self.m.interp().relations().to_vec(),
            undefined: self.m.undefined().relations().to_vec(),
        };
        self.store.compact(&state)?;
        Ok(())
    }

    /// The durable epoch: snapshot base plus committed updates since.
    pub fn epoch(&self) -> u64 {
        self.base_epoch + self.m.epoch()
    }

    /// [`Materialized::publish`] stamped with the *durable* epoch, so a
    /// served epoch number means the same thing before and after a crash
    /// recovery (WAL record count ≡ epoch delta).
    ///
    /// # Errors
    /// Same (practically unreachable) conditions as
    /// [`Materialized::publish`].
    pub fn publish(&self) -> Result<std::sync::Arc<crate::epoch::Epoch>> {
        self.m.publish(self.epoch())
    }

    /// Replaces the evaluation options used by subsequent repairs (see
    /// [`Materialized::set_eval_options`]).
    pub fn set_eval_options(&mut self, opts: EvalOptions) {
        self.m.set_eval_options(opts);
    }

    /// The true facts of the maintained model.
    pub fn interp(&self) -> &Interp {
        self.m.interp()
    }

    /// The undefined facts of the maintained model.
    pub fn undefined(&self) -> &Interp {
        self.m.undefined()
    }

    /// The database as of the last committed update.
    pub fn database(&self) -> &Database {
        self.m.database()
    }

    /// The engine this handle maintains.
    pub fn engine(&self) -> Engine {
        self.m.engine()
    }

    /// How updates are repaired.
    pub fn repair_strategy(&self) -> RepairStrategy {
        self.m.repair_strategy()
    }

    /// Read access to the wrapped in-memory handle (queries, compiled
    /// program, containment checks). Mutations must go through the durable
    /// [`insert`](DurableMaterialized::insert)/
    /// [`retract`](DurableMaterialized::retract), which is why no mutable
    /// accessor exists.
    pub fn handle(&self) -> &Materialized {
        &self.m
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// Epoch of the newest committed snapshot in the directory.
    pub fn snapshot_epoch(&self) -> u64 {
        self.store.snapshot_epoch()
    }

    /// Whether the WAL refused further appends after a failed one (recover
    /// by re-opening the directory).
    pub fn is_poisoned(&self) -> bool {
        self.store.is_poisoned()
    }
}

/// Bit-level comparison helper used by the crash tests: the dense tuple
/// order of every IDB/undefined/database relation, not just set equality.
pub fn dense_fingerprint(m: &Materialized) -> Vec<(String, Vec<Tuple>)> {
    let mut out = Vec::new();
    for (i, rel) in m.interp().relations().iter().enumerate() {
        out.push((format!("idb:{i}"), rel.dense().to_vec()));
    }
    for (i, rel) in m.undefined().relations().iter().enumerate() {
        out.push((format!("undef:{i}"), rel.dense().to_vec()));
    }
    for (name, rel) in m.database().iter() {
        out.push((format!("edb:{name}"), rel.dense().to_vec()));
    }
    out
}

/// Convenience for tests: total tuples across a relation list.
pub fn total_tuples(rels: &[Relation]) -> usize {
    rels.iter().map(Relation::len).sum()
}
