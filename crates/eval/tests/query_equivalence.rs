//! Randomized (fixed-seed) equivalence tests: `query(P, goal)` must be
//! set-identical to full-fixpoint-then-filter, for stratified programs
//! under the perfect model and non-stratifiable programs under the
//! well-founded model — over paths, cycles and `gnp` random graphs,
//! including goals with zero answers and fully-bound goals.
//!
//! (Debug builds additionally re-verify the identity *inside* `query` on
//! every call; these tests assert it independently so release builds are
//! covered too.)

use inflog_core::graphs::DiGraph;
use inflog_core::{Database, Tuple};
use inflog_eval::{
    query, stratified_eval, well_founded, CompiledProgram, NonStratifiedPolicy, QueryOpts,
    QueryStrategy,
};
use inflog_syntax::{parse_atom, parse_program, Atom, Program, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Full-fixpoint-then-filter reference for a stratified program.
fn perfect_filtered(p: &Program, db: &Database, goal: &Atom) -> Vec<Tuple> {
    let (m, _) = stratified_eval(p, db).expect("stratified reference");
    filtered(p, db, goal, &m)
}

/// Filters an interpretation's goal relation by the goal atom.
fn filtered(p: &Program, db: &Database, goal: &Atom, m: &inflog_eval::Interp) -> Vec<Tuple> {
    let cp = CompiledProgram::compile(p, db).expect("reference compiles");
    let gid = cp.idb_id(&goal.predicate).expect("goal is IDB");
    let resolved: Vec<Option<inflog_core::Const>> = goal
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(db.universe().lookup(c).expect("goal constant interned")),
            Term::Var(_) => None,
        })
        .collect();
    // Repeated goal variables: positions that must be pairwise equal.
    let var_groups: Vec<Option<usize>> = goal
        .terms
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            Term::Var(v) => goal
                .terms
                .iter()
                .position(|u| u.as_var() == Some(v))
                .filter(|&j| j < i),
            Term::Const(_) => None,
        })
        .collect();
    m.get(gid)
        .sorted()
        .into_iter()
        .filter(|t| {
            resolved
                .iter()
                .enumerate()
                .all(|(i, c)| c.is_none_or(|c| t[i] == c))
                && var_groups
                    .iter()
                    .enumerate()
                    .all(|(i, g)| g.is_none_or(|j| t[i] == t[j]))
        })
        .collect()
}

fn graphs(seed: u64) -> Vec<DiGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gs = vec![
        DiGraph::path(7),
        DiGraph::cycle(6),
        DiGraph::cycle(5),
        DiGraph::binary_tree(15),
        DiGraph::grid(3, 4),
    ];
    for _ in 0..6 {
        gs.push(DiGraph::random_gnp(9, 0.18, &mut rng));
    }
    gs
}

#[test]
fn tc_queries_match_filter_across_graphs() {
    let p = parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).").unwrap();
    let mut rng = StdRng::seed_from_u64(101);
    for g in graphs(7) {
        let db = g.to_database("E");
        let n = g.num_vertices();
        let src = rng.gen_range(0..n as u32);
        let dst = rng.gen_range(0..n as u32);
        let goals = [
            format!("S('v{src}', y)"),
            format!("S(x, 'v{dst}')"),
            format!("S('v{src}', 'v{dst}')"), // fully bound (0 or 1 answers)
            "S(x, y)".to_string(),
            "S(x, x)".to_string(),
        ];
        for gsrc in goals {
            let goal = parse_atom(&gsrc).unwrap();
            let a = query(&p, &goal, &db, &QueryOpts::default()).unwrap();
            assert_eq!(a.strategy, QueryStrategy::MagicStratified);
            assert_eq!(
                a.tuples,
                perfect_filtered(&p, &db, &goal),
                "goal {gsrc} on {g}"
            );
            assert!(a.undefined.is_empty());
        }
    }
}

#[test]
fn stratified_negation_queries_match_filter() {
    // Two strata, plus an unsafe-ish complement through negation.
    let p = parse_program(
        "S(x, y) :- E(x, y).
         S(x, y) :- E(x, z), S(z, y).
         C(x, y) :- !S(x, y).
         D(x) :- E(x, y), !S(y, x).",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(202);
    for g in graphs(8) {
        let db = g.to_database("E");
        let n = g.num_vertices();
        let v = rng.gen_range(0..n as u32);
        for gsrc in [
            format!("C('v{v}', y)"),
            format!("C('v{v}', 'v{}')", (v + 1) % n as u32),
            format!("D('v{v}')"),
            "D(x)".to_string(),
        ] {
            let goal = parse_atom(&gsrc).unwrap();
            let a = query(&p, &goal, &db, &QueryOpts::default()).unwrap();
            assert_eq!(
                a.tuples,
                perfect_filtered(&p, &db, &goal),
                "goal {gsrc} on {g}"
            );
        }
    }
}

#[test]
fn three_strata_chain_queries() {
    let p = parse_program(
        "A(x) :- V(x), E(x, y).
         B(x) :- V(x), !A(x).
         C(x) :- V(x), !B(x).",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(303);
    for _ in 0..5 {
        let g = DiGraph::random_gnp(8, 0.2, &mut rng);
        let mut db = g.to_database("E");
        for v in 0..8u32 {
            db.insert_named_fact("V", &[&DiGraph::vertex_name(v)])
                .unwrap();
        }
        for gsrc in ["C('v3')", "C(x)", "B('v0')", "A('v5')"] {
            let goal = parse_atom(gsrc).unwrap();
            let a = query(&p, &goal, &db, &QueryOpts::default()).unwrap();
            assert_eq!(a.tuples, perfect_filtered(&p, &db, &goal), "goal {gsrc}");
        }
    }
}

#[test]
fn win_move_queries_match_wellfounded_filter() {
    let p = parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap();
    let mut rng = StdRng::seed_from_u64(404);
    for g in graphs(9) {
        let db = g.to_database("Move");
        let n = g.num_vertices() as u32;
        let wf = well_founded(&p, &db).unwrap();
        for _ in 0..3 {
            let v = rng.gen_range(0..n);
            let goal = parse_atom(&format!("Win('v{v}')")).unwrap();
            let a = query(&p, &goal, &db, &QueryOpts::default()).unwrap();
            assert_eq!(a.strategy, QueryStrategy::MagicWellFounded);
            assert_eq!(
                a.tuples,
                filtered(&p, &db, &goal, &wf.true_facts),
                "true answers for Win('v{v}') on {g}"
            );
            assert_eq!(
                a.undefined,
                filtered(&p, &db, &goal, &wf.undefined),
                "undefined answers for Win('v{v}') on {g}"
            );
        }
        // All-free goal through the cone path: full demand, same model.
        let goal = parse_atom("Win(x)").unwrap();
        let a = query(&p, &goal, &db, &QueryOpts::default()).unwrap();
        assert_eq!(a.tuples, filtered(&p, &db, &goal, &wf.true_facts));
        assert_eq!(a.undefined, filtered(&p, &db, &goal, &wf.undefined));
    }
}

#[test]
fn nonstratified_mixed_recursion_queries() {
    // Win/move plus positive recursion guarded by the non-stratified
    // predicate — the same shape as the wellfounded_win_move_gnp bench.
    let p = parse_program(
        "Win(x) :- Move(x, y), !Win(y).
         Safe(x, y) :- Move(x, y), !Win(x).
         Safe(x, y) :- Safe(x, z), Move(z, y), !Win(y).",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(505);
    for _ in 0..6 {
        let g = DiGraph::random_gnp(8, 0.2, &mut rng);
        let db = g.to_database("Move");
        let wf = well_founded(&p, &db).unwrap();
        let v = rng.gen_range(0..8u32);
        for gsrc in [
            format!("Safe('v{v}', y)"),
            format!("Safe('v{v}', 'v{}')", (v + 3) % 8),
            format!("Win('v{v}')"),
        ] {
            let goal = parse_atom(&gsrc).unwrap();
            let a = query(&p, &goal, &db, &QueryOpts::default()).unwrap();
            assert_eq!(
                a.tuples,
                filtered(&p, &db, &goal, &wf.true_facts),
                "goal {gsrc} on {g}"
            );
            assert_eq!(
                a.undefined,
                filtered(&p, &db, &goal, &wf.undefined),
                "undefined for {gsrc} on {g}"
            );
        }
    }
}

#[test]
fn cone_and_full_policies_agree() {
    let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
    let mut rng = StdRng::seed_from_u64(606);
    for _ in 0..5 {
        let g = DiGraph::random_gnp(7, 0.25, &mut rng);
        let db = g.to_database("E");
        let v = rng.gen_range(0..7u32);
        let goal = parse_atom(&format!("T('v{v}')")).unwrap();
        let cone = query(&p, &goal, &db, &QueryOpts::default()).unwrap();
        let full = query(
            &p,
            &goal,
            &db,
            &QueryOpts {
                non_stratified: NonStratifiedPolicy::FullEvaluation,
                ..QueryOpts::default()
            },
        )
        .unwrap();
        assert_eq!(cone.tuples, full.tuples, "T('v{v}') on {g}");
        assert_eq!(cone.undefined, full.undefined, "T('v{v}') on {g}");
    }
}

#[test]
fn zero_answer_goals() {
    let p = parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).").unwrap();
    // Two disjoint paths: nothing reaches across components.
    let g = DiGraph::path(4).disjoint_union(&DiGraph::path(3));
    let db = g.to_database("E");
    for gsrc in ["S('v3', y)", "S('v0', 'v5')", "S('v6', y)"] {
        let goal = parse_atom(gsrc).unwrap();
        let a = query(&p, &goal, &db, &QueryOpts::default()).unwrap();
        assert!(a.tuples.is_empty(), "{gsrc} must have no answers");
        assert_eq!(a.tuples, perfect_filtered(&p, &db, &goal));
    }
}

#[test]
fn unsafe_rules_under_demand() {
    // Head variable never bound by the body: domain-grounded semantics
    // ranges it over the whole universe; the guard restricts it to demand.
    let p = parse_program(
        "P(x, y) :- E(x, z).
         Q(x) :- P(x, x), !R(x).
         R(x) :- E(x, x).",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(707);
    for _ in 0..4 {
        let g = DiGraph::random_gnp(6, 0.3, &mut rng);
        let db = g.to_database("E");
        for gsrc in ["Q('v2')", "Q(x)", "P('v1', y)"] {
            let goal = parse_atom(gsrc).unwrap();
            let a = query(&p, &goal, &db, &QueryOpts::default()).unwrap();
            assert_eq!(a.tuples, perfect_filtered(&p, &db, &goal), "goal {gsrc}");
        }
    }
}
