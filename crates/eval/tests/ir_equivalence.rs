//! Flat-IR VM ≡ tree executor, bit for bit.
//!
//! The lowering pass (`plan::lower`) and the register-machine VM
//! (`exec::run_program` / `exec::probe_program`) promise to be observationally
//! indistinguishable from the recursive tree walker they replaced: the **same
//! tuples in the same insertion order**, the same per-round deltas, and the
//! same alternation counts, at every thread count. Debug builds already
//! assert this per Θ application; these tests enforce it end to end with the
//! executor choice **pinned** through [`EvalOptions::exec`] (so they hold in
//! release builds too, where the per-application oracle is compiled out),
//! over fixed-seed random programs and graphs plus hand-picked templates
//! covering every op the lowering emits — scans, index probes, negation
//! filters, equality/inequality filters, and `Domain` ranges from unsafe
//! rules.

use inflog_core::graphs::DiGraph;
use inflog_core::Database;
use inflog_eval::{
    inflationary_with, least_fixpoint_seminaive_with, stratified_eval_with, stratify,
    well_founded_with, EvalOptions, ExecKind, Interp,
};
use inflog_syntax::{parse_program, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Thread counts under test: sequential, plus forced-parallel fan-outs.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Options with the executor pinned. `threads > 1` also drops the fork
/// threshold to zero so every round with any work takes the parallel path.
fn pinned(kind: ExecKind, threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        parallel_threshold: if threads > 1 { 0 } else { usize::MAX },
        exec: Some(kind),
        ..EvalOptions::sequential()
    }
}

/// Bit-identity: same tuples in the same dense (insertion) order, per
/// relation — strictly stronger than `Interp` equality, which is set-based.
fn assert_bit_identical(tree: &Interp, vm: &Interp, label: &str) {
    assert_eq!(tree.len(), vm.len(), "relation count diverged: {label}");
    for i in 0..tree.len() {
        assert_eq!(
            tree.get(i).dense(),
            vm.get(i).dense(),
            "insertion order of relation {i} diverged: {label}"
        );
    }
}

/// Runs every engine whose semantics is defined for `program` under both
/// executors and asserts bit-identity of models, traces, and alternation
/// counts at each thread count.
fn assert_vm_matches_tree(program: &Program, db: &Database, label: &str) {
    let positive = program.is_positive();
    for threads in THREAD_COUNTS {
        let tree = pinned(ExecKind::Tree, threads);
        let vm = pinned(ExecKind::Vm, threads);
        let label = format!("{label}, {threads} threads");

        if positive {
            let (t, tt) = least_fixpoint_seminaive_with(program, db, &tree).unwrap();
            let (v, vt) = least_fixpoint_seminaive_with(program, db, &vm).unwrap();
            assert_bit_identical(&t, &v, &format!("seminaive {label}"));
            assert_eq!(tt.rounds, vt.rounds, "seminaive rounds: {label}");
            assert_eq!(
                tt.added_per_round, vt.added_per_round,
                "seminaive deltas: {label}"
            );
        }

        let (t, tt) = inflationary_with(program, db, &tree).unwrap();
        let (v, vt) = inflationary_with(program, db, &vm).unwrap();
        assert_bit_identical(&t, &v, &format!("inflationary {label}"));
        assert_eq!(tt.rounds, vt.rounds, "inflationary rounds: {label}");
        assert_eq!(
            tt.added_per_round, vt.added_per_round,
            "inflationary deltas: {label}"
        );

        if stratify(program).is_ok() {
            let (t, tt) = stratified_eval_with(program, db, &tree).unwrap();
            let (v, vt) = stratified_eval_with(program, db, &vm).unwrap();
            assert_bit_identical(&t, &v, &format!("stratified {label}"));
            assert_eq!(tt.rounds, vt.rounds, "stratified rounds: {label}");
            assert_eq!(
                tt.added_per_round, vt.added_per_round,
                "stratified deltas: {label}"
            );
        }

        let t = well_founded_with(program, db, &tree).unwrap();
        let v = well_founded_with(program, db, &vm).unwrap();
        assert_bit_identical(&t.true_facts, &v.true_facts, &format!("wf true {label}"));
        assert_bit_identical(&t.undefined, &v.undefined, &format!("wf undef {label}"));
        assert_eq!(t.alternations, v.alternations, "wf alternations: {label}");
    }
}

/// Generates a random program: 2–4 rules over IDB `P/2`, `Q/1` and EDB
/// `E/2`, with literals drawn from atoms, negated atoms (when allowed),
/// equalities, and inequalities — so the generator reaches every filter op
/// the lowering can emit, including `Domain` steps when a head variable
/// ends up bound by nothing positive.
fn random_program(rng: &mut StdRng, allow_negation: bool) -> Program {
    let vars = ["x", "y", "z", "w"];
    let mut src = String::new();
    let num_rules = rng.gen_range(2usize..5);
    for _ in 0..num_rules {
        if rng.gen_bool(0.5) {
            let (a, b) = (
                vars[rng.gen_range(0usize..2)],
                vars[rng.gen_range(0usize..3)],
            );
            src.push_str(&format!("P({a}, {b}) :- "));
        } else {
            src.push_str(&format!("Q({}) :- ", vars[rng.gen_range(0usize..3)]));
        }
        let num_lits = rng.gen_range(1usize..4);
        for li in 0..num_lits {
            if li > 0 {
                src.push_str(", ");
            }
            let (a, b) = (
                vars[rng.gen_range(0usize..4)],
                vars[rng.gen_range(0usize..4)],
            );
            match rng.gen_range(0u32..5) {
                0 => {
                    if allow_negation && li > 0 && rng.gen_bool(0.4) {
                        src.push('!');
                    }
                    src.push_str(&format!("E({a}, {b})"));
                }
                1 => {
                    if allow_negation && li > 0 && rng.gen_bool(0.4) {
                        src.push('!');
                    }
                    src.push_str(&format!("P({a}, {b})"));
                }
                2 => src.push_str(&format!("Q({a})")),
                3 => src.push_str(&format!("{a} = {b}")),
                _ => src.push_str(&format!("{a} != {b}")),
            }
        }
        src.push_str(". ");
    }
    parse_program(&src).expect("generated programs are syntactically valid")
}

/// A random graph database small enough that `Domain` steps over unsafe
/// rules stay affordable, large enough that joins have real fan-out.
fn random_db(rng: &mut StdRng) -> Database {
    let n = rng.gen_range(4usize..8);
    DiGraph::random_gnp(n, 0.3, rng).to_database("E")
}

#[test]
fn vm_matches_tree_on_random_positive_programs() {
    let mut rng = StdRng::seed_from_u64(0x1_F1A7_0001);
    for round in 0..10 {
        let program = random_program(&mut rng, false);
        let db = random_db(&mut rng);
        assert_vm_matches_tree(&program, &db, &format!("positive round {round}"));
    }
}

#[test]
fn vm_matches_tree_on_random_negation_programs() {
    let mut rng = StdRng::seed_from_u64(0x1_F1A7_0002);
    for round in 0..10 {
        let program = random_program(&mut rng, true);
        let db = random_db(&mut rng);
        assert_vm_matches_tree(&program, &db, &format!("negation round {round}"));
    }
}

#[test]
fn vm_matches_tree_on_structured_templates() {
    // Hand-picked programs covering each lowering shape: pure joins (TC),
    // the canonical alternating-fixpoint instance (win–move), projection
    // under negation, double negation through an intermediate predicate,
    // constant and (in)equality filters, and an unsafe rule whose head
    // variable ranges over the whole universe via a `Domain` op.
    let templates = [
        ("tc", "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y)."),
        ("win-move", "Win(x) :- E(x, y), !Win(y)."),
        (
            "projection-negation",
            "R(x) :- E(x, y). Iso(x) :- V(x), !R(x). V(x) :- E(x, y). V(y) :- E(x, y).",
        ),
        (
            "double-negation",
            "A(x) :- E(x, y), !B(y). B(x) :- E(x, y), !A(y). C(x) :- E(x, x), !B(x).",
        ),
        (
            "filters",
            "Loop(x) :- E(x, y), x = y. Hop(x, y) :- E(x, z), E(z, y), x != y.",
        ),
        ("unsafe-domain", "U(x, y) :- E(x, x), !E(x, y)."),
    ];
    let mut rng = StdRng::seed_from_u64(0x1_F1A7_0003);
    for (name, src) in templates {
        let program = parse_program(src).unwrap();
        for g in [
            DiGraph::path(8),
            DiGraph::cycle(5),
            DiGraph::random_gnp(7, 0.35, &mut rng),
            {
                let mut g = DiGraph::cycle(6);
                g.add_edge(2, 2);
                g.add_edge(0, 3);
                g
            },
        ] {
            let db = g.to_database("E");
            assert_vm_matches_tree(&program, &db, &format!("{name} on {g}"));
        }
    }
}
